//! Offline stand-in for `serde_derive`.
//!
//! Derives the stub `serde` crate's `Serialize`/`Deserialize` (which go
//! through `serde::Value`) for the shapes this workspace uses:
//!
//! * structs with named fields — serialized as objects;
//! * tuple structs — newtypes serialize transparently, wider tuples as
//!   arrays;
//! * enums whose variants are all unit variants — serialized as the
//!   variant-name string.
//!
//! Generic types and `#[serde(...)]` attributes are not supported; the
//! derive panics at compile time with a clear message if it meets one.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    Named(String, Vec<String>),
    Tuple(String, usize),
    UnitEnum(String, Vec<String>),
}

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`) at `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: unexpected token {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub derive: expected type name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde stub derive: generic types are not supported ({name})");
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(name, parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(name, count_tuple_fields(g.stream()))
            }
            other => panic!("serde stub derive: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_unit_variants(g.stream(), &name);
                Shape::UnitEnum(name, variants)
            }
            other => panic!("serde stub derive: unsupported enum body {other:?}"),
        },
        other => panic!("serde stub derive: cannot derive for `{other}`"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        // Skip `: Type` up to the next top-level comma.
        i += 1;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    break;
                }
            }
            i += 1;
        }
        i += 1; // past the comma
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    // Fields are comma-separated; a trailing comma adds no field.
    let mut count = 1;
    let mut saw_content_since_comma = true;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            if p.as_char() == ',' {
                count += 1;
                saw_content_since_comma = false;
                continue;
            }
        }
        saw_content_since_comma = true;
    }
    if !saw_content_since_comma {
        count -= 1;
    }
    count
}

fn parse_unit_variants(stream: TokenStream, name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        variants.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip the expression.
                i += 1;
                while i < tokens.len() {
                    if let TokenTree::Punct(p) = &tokens[i] {
                        if p.as_char() == ',' {
                            break;
                        }
                    }
                    i += 1;
                }
                i += 1;
            }
            Some(TokenTree::Group(_)) => {
                panic!("serde stub derive: enum {name} has data-carrying variants (unsupported)")
            }
            Some(other) => panic!("serde stub derive: unexpected token {other} in enum {name}"),
        }
    }
    variants
}

/// Derives `serde::Serialize` (stub data model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_shape(input) {
        Shape::Named(name, fields) => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Obj(::std::vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Tuple(name, 1) => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::Tuple(name, n) => {
            let items: String = (0..n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Arr(::std::vec![{items}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitEnum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("serde stub derive: generated code parses")
}

/// Derives `serde::Deserialize` (stub data model).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_shape(input) {
        Shape::Named(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(v, \"{f}\")?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Tuple(name, 1) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::Tuple(name, n) => {
            let items: String = (0..n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Arr(items) if items.len() == {n} => \
                                 ::std::result::Result::Ok({name}({items})),\n\
                             other => ::std::result::Result::Err(::serde::DeError(\
                                 ::std::format!(\"expected {n}-element array for {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitEnum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => ::std::result::Result::Err(::serde::DeError(\
                                     ::std::format!(\"unknown {name} variant {{other:?}}\"))),\n\
                             }},\n\
                             other => ::std::result::Result::Err(::serde::DeError(\
                                 ::std::format!(\"expected string for {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("serde stub derive: generated code parses")
}
