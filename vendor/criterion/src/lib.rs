//! Offline stand-in for `criterion`.
//!
//! The build environment has no registry access, so this crate provides a
//! small wall-clock benchmarking harness behind the criterion API surface
//! the workspace's benches use: `Criterion`, `benchmark_group`,
//! `bench_with_input`/`bench_function`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Each benchmark is warmed up, then measured in `sample_size` samples of
//! auto-scaled iteration batches; the median per-iteration time is
//! reported on stdout. When `BENCH_JSON_OUT` names a file, one JSON record
//! per benchmark is appended (`{"name": ..., "ns_per_iter": ...,
//! "throughput_elems": ...}`), which the workspace's `BENCH_obs.json`
//! writer consumes.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness configuration.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Warm-up duration before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Upstream-API shim: CLI filtering is not supported; returns `self`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let cfg = MeasureConfig {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        };
        run_one(&id.label, None, cfg, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        let cfg = MeasureConfig {
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            warm_up_time: self.criterion.warm_up_time,
            measurement_time: self.criterion.measurement_time,
        };
        run_one(&label, self.throughput, cfg, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f` without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        let cfg = MeasureConfig {
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            warm_up_time: self.criterion.warm_up_time,
            measurement_time: self.criterion.measurement_time,
        };
        run_one(&label, self.throughput, cfg, &mut f);
        self
    }

    /// Ends the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id, e.g. function name + parameter.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Units of work per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; `iter` runs the measured routine.
pub struct Bencher {
    /// Iterations the harness wants for the current sample.
    iters: u64,
    /// Measured wall time for those iterations.
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone, Copy)]
struct MeasureConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

fn run_one(
    label: &str,
    throughput: Option<Throughput>,
    cfg: MeasureConfig,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Warm-up: also discovers the per-iteration cost to scale batches.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(100);
    while warm_start.elapsed() < cfg.warm_up_time {
        f(&mut b);
        if !b.elapsed.is_zero() {
            per_iter = b.elapsed / (b.iters as u32).max(1);
        }
        // Grow batches until one takes ~1/10 of the warm-up budget.
        if b.elapsed < cfg.warm_up_time / 10 {
            b.iters = (b.iters * 2).min(1 << 20);
        }
    }

    // Choose a batch size so `sample_size` samples fill the budget.
    let per_sample = cfg.measurement_time / cfg.sample_size as u32;
    let iters = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(cfg.sample_size);
    for _ in 0..cfg.sample_size {
        b.iters = iters;
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, c| a.partial_cmp(c).expect("no NaN timings"));
    let median = samples_ns[samples_ns.len() / 2];

    let mut line = format!("bench {label:<60} {median:>12.1} ns/iter");
    if let Some(t) = throughput {
        match t {
            Throughput::Elements(n) => {
                let rate = n as f64 / (median * 1e-9);
                let _ = write!(line, "  ({rate:.0} elem/s)");
            }
            Throughput::Bytes(n) => {
                let rate = n as f64 / (median * 1e-9) / 1e6;
                let _ = write!(line, "  ({rate:.1} MB/s)");
            }
        }
    }
    println!("{line}");

    if let Ok(path) = std::env::var("BENCH_JSON_OUT") {
        let elems = match throughput {
            Some(Throughput::Elements(n)) => n,
            _ => 0,
        };
        let record = format!(
            "{{\"name\":\"{}\",\"ns_per_iter\":{median:.1},\"throughput_elems\":{elems}}}\n",
            label.replace('"', "'")
        );
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = file.write_all(record.as_bytes());
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn ids_format_as_expected() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
