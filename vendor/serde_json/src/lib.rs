//! Offline stand-in for `serde_json`.
//!
//! Renders and parses the stub `serde` crate's [`serde::Value`] data model
//! as JSON text. Supports the functions the workspace calls:
//! [`to_string`], [`to_string_pretty`], [`from_str`].

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses `s` as JSON and deserializes a `T` from it.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    Ok(T::from_value(&v)?)
}

// --- writer ---------------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error(format!("non-finite number {f} is not valid JSON")));
            }
            // Like upstream serde_json, keep floats recognizably floats.
            if f.fract() == 0.0 && f.abs() < 1e15 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&format!("{f}"));
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, x, d| {
            write_value(o, x, indent, d)
        })?,
        Value::Obj(pairs) => write_seq(
            out,
            pairs.iter(),
            indent,
            depth,
            ('{', '}'),
            |o, (k, x), d| {
                write_escaped(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, x, indent, d)
            },
        )?,
    }
    Ok(())
}

fn write_seq<I, F, T>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: F,
) -> Result<(), Error>
where
    I: ExactSizeIterator<Item = T>,
    F: FnMut(&mut String, T, usize) -> Result<(), Error>,
{
    out.push(brackets.0);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, depth + 1)?;
    }
    if !empty {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(brackets.1);
    Ok(())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.eat_keyword("null", Value::Null),
            b't' => self.eat_keyword("true", Value::Bool(true)),
            b'f' => self.eat_keyword("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `]`, got `{}` at byte {}",
                                other as char, self.pos
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    pairs.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `}}`, got `{}` at byte {}",
                                other as char, self.pos
                            )))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // No surrogate-pair support: the writer never
                            // emits them (it escapes only control chars).
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error("truncated UTF-8".into()))?;
                    let chunk =
                        std::str::from_utf8(chunk).map_err(|_| Error("bad UTF-8".into()))?;
                    s.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error(format!("bad number `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "42", "-7", "1.5", "\"hi\""] {
            let v = parse(text).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v, None, 0).unwrap();
            assert_eq!(out, text);
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2,{"b":"x"}],"c":null,"d":[[]]}"#;
        let v = parse(text).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v, None, 0).unwrap();
        assert_eq!(out, text);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = parse(r#"{"a":[1,2],"b":{"c":1.25}}"#).unwrap();
        let mut pretty = String::new();
        write_value(&mut pretty, &v, Some(2), 0).unwrap();
        assert!(pretty.contains("\n  "));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}".into());
        let mut out = String::new();
        write_value(&mut out, &v, None, 0).unwrap();
        assert_eq!(parse(&out).unwrap(), v);
    }

    #[test]
    fn typed_round_trip() {
        let v: Vec<(u64, f64)> = serde_json::from_str("[[1,2.5],[3,4.0]]").unwrap();
        assert_eq!(v, vec![(1, 2.5), (3, 4.0)]);
        assert_eq!(to_string(&v).unwrap(), "[[1,2.5],[3,4.0]]");
    }

    #[test]
    fn errors_carry_context() {
        assert!(parse("[1,").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1] junk").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }

    use crate as serde_json;
}
