//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this crate implements
//! the proptest API surface the workspace uses as a deterministic sampling
//! property tester: strategies produce random values from a seeded
//! generator, the `proptest!` macro runs each property over
//! `ProptestConfig::cases` samples, and `prop_assert*` / `prop_assume!`
//! report failures/rejections. **No shrinking** — a failing case is
//! reported as drawn. Runs are deterministic per test (the RNG is seeded
//! from the test's module path and name), so failures reproduce.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runtime configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted samples each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases by default (overridable with `PROPTEST_CASES`), sized so
    /// the full workspace suite stays fast on one core.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Why a test-case closure did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed: draw another sample.
    Reject,
    /// `prop_assert*` failed: the property is violated.
    Fail(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// A rejection (assume failed).
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// The deterministic generator driving strategies.
pub type TestRng = StdRng;

/// Seeds the per-test generator from the test's fully qualified name.
pub fn rng_for_test(name: &str) -> TestRng {
    // FNV-1a over the name: any stable spread works.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of random values of type [`Strategy::Value`].
///
/// `sample` returns `None` when the draw was rejected (e.g. by
/// `prop_filter`); the harness then retries with fresh randomness.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value, or `None` on rejection.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Keeps only values satisfying `pred`; others are rejected.
    fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { base: self, pred }
    }

    /// Maps through `f`, rejecting draws where `f` returns `None`.
    fn prop_filter_map<O, F>(self, _whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.base.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.base.sample(rng).filter(&self.pred)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.base.sample(rng).and_then(&self.f)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rand::Rng::gen_range(rng, self.clone()))
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rand::Rng::gen_range(rng, self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128, f64, f32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.sample(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Strategy namespace, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Sizes accepted by [`vec`].
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_inclusive: n,
                }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi_inclusive: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range");
                SizeRange {
                    lo: *r.start(),
                    hi_inclusive: *r.end(),
                }
            }
        }

        /// A `Vec` of values from `element`, with a length drawn from
        /// `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
                let len = rand::Rng::gen_range(rng, self.size.lo..=self.size.hi_inclusive);
                let mut out = Vec::with_capacity(len);
                for _ in 0..len {
                    // Give each element a few retries before rejecting the
                    // whole vector.
                    let mut tries = 0;
                    loop {
                        if let Some(v) = self.element.sample(rng) {
                            out.push(v);
                            break;
                        }
                        tries += 1;
                        if tries >= 16 {
                            return None;
                        }
                    }
                }
                Some(out)
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Uniformly selects one of the given values.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select: empty options");
            Select { options }
        }

        /// See [`select`].
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> Option<T> {
                let i = rand::Rng::gen_range(rng, 0..self.options.len());
                Some(self.options[i].clone())
            }
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests. See the crate docs for semantics (sampling
/// only, no shrinking).
#[macro_export]
macro_rules! proptest {
    (@with_config ($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut attempts: u64 = 0;
                let max_attempts = u64::from(cfg.cases).saturating_mul(100).max(1000);
                'cases: while accepted < cfg.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "{}: too many rejected samples ({} accepted of {} wanted)",
                        stringify!($name), accepted, cfg.cases
                    );
                    $(
                        let $arg = match $crate::Strategy::sample(&($strat), &mut rng) {
                            ::std::option::Option::Some(v) => v,
                            ::std::option::Option::None => continue 'cases,
                        };
                    )*
                    let outcome = (move ||
                        -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed after {} cases: {}",
                                   stringify!($name), accepted, msg);
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` for property bodies: fails the case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -2i32..=2) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2..=2).contains(&y));
        }

        #[test]
        fn map_and_filter_compose(
            v in prop::collection::vec((1u64..5, 5u64..9), 1..8)
                .prop_map(|pairs| pairs.into_iter().map(|(a, b)| a + b).collect::<Vec<_>>())
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&s| (6..14).contains(&s)));
        }

        #[test]
        fn select_draws_from_options(q in prop::sample::select(vec![1u64, 2, 3])) {
            prop_assert!((1..=3).contains(&q));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn explicit_config_is_honored(_x in 0u64..10) {
            prop_assert!(true);
        }
    }

    #[test]
    fn filter_map_rejects_none() {
        let strat = (1u64..100).prop_filter_map("even", |x| (x % 2 == 0).then_some(x / 2));
        let mut rng = crate::rng_for_test("filter_map_rejects_none");
        let mut some = 0;
        for _ in 0..200 {
            if let Some(v) = Strategy::sample(&strat, &mut rng) {
                assert!(v < 50);
                some += 1;
            }
        }
        assert!(some > 50, "rejection should not dominate: {some}");
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x = {x} is never > 100");
            }
        }
        inner();
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::rng_for_test("same-name");
        let mut b = crate::rng_for_test("same-name");
        let s = 0u64..1_000_000;
        for _ in 0..50 {
            assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
        }
    }
}
