//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so this crate provides the
//! serde surface this workspace uses: `Serialize`/`Deserialize` traits, a
//! `#[derive(Serialize, Deserialize)]` macro (from the sibling
//! `serde_derive` stub), and impls for the primitive/container types the
//! workspace serializes. Instead of upstream serde's visitor architecture,
//! both traits go through one JSON-shaped [`Value`] tree; `serde_json`
//! renders and parses that tree.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped dynamic value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer (covers u64/i64 exactly).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, as ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: what was expected, and where.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Derive-internal helper: fetches and deserializes an object field.
///
/// A *missing* field deserializes as if it were `null`, which only
/// `Option` fields accept — so adding an `Option` field to a wire struct
/// stays backward compatible with peers that never send it, while a
/// missing required field still errors by name.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(f) => T::from_value(f).map_err(|DeError(e)| DeError(format!("field `{name}`: {e}"))),
        None => T::from_value(&Value::Null).map_err(|_| DeError(format!("missing field `{name}`"))),
    }
}

// --- primitive impls ------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError(format!("{i} out of range for {}", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError(format!(
                        "expected integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(DeError(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// --- containers -----------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError(format!("expected object, got {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+ ; $len:expr)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Arr(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError(format!(
                        "expected {}-tuple array, got {other:?}", $len
                    ))),
                }
            }
        }
    )+};
}

impl_tuple! {
    (A.0; 1),
    (A.0, B.1; 2),
    (A.0, B.1, C.2; 3),
    (A.0, B.1, C.2, D.3; 4),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u64, 2u64), (3, 4)];
        assert_eq!(Vec::<(u64, u64)>::from_value(&v.to_value()), Ok(v));
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&7u32.to_value()), Ok(Some(7)));
    }

    #[test]
    fn missing_field_is_none_for_option_error_otherwise() {
        let obj = Value::Obj(vec![("present".to_string(), Value::Int(1))]);
        assert_eq!(field::<Option<u32>>(&obj, "absent"), Ok(None));
        assert_eq!(field::<Option<u32>>(&obj, "present"), Ok(Some(1)));
        assert!(field::<u32>(&obj, "absent")
            .unwrap_err()
            .0
            .contains("missing field"));
    }

    #[test]
    fn narrowing_is_checked() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn missing_field_reports_name() {
        let obj = Value::Obj(vec![("a".into(), Value::Int(1))]);
        let err = field::<u64>(&obj, "b").unwrap_err();
        assert!(err.0.contains("`b`"));
    }
}
