//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! subset of the rand 0.8 API the workspace actually uses — [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`] and [`rngs::SmallRng`] — backed by a
//! xoshiro256++ generator seeded through SplitMix64. Streams are
//! deterministic per seed (they differ from upstream rand's ChaCha-based
//! `StdRng`, which is fine: every consumer in this workspace treats the
//! generator as an arbitrary reproducible source).

#![forbid(unsafe_code)]

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen_range`] can sample uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`hi` exclusive).
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]` (`hi` inclusive).
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                lo.wrapping_add(uniform_u128(rng, span) as $t)
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = ((hi as i128).wrapping_sub(lo as i128) as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width i128 range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, u128, i128);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_closed(rng, lo as f64, hi as f64) as f32
    }
}

/// Uniform draw in `[0, span)` by 128-bit multiply-shift (Lemire, without
/// the rejection step: the bias is < 2⁻⁶⁴, irrelevant for simulations).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let x = rng.next_u64() as u128;
        (x * span) >> 64
    } else {
        let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        x % span
    }
}

/// Uniform `f64` in `[0, 1)` with 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Small generator; same engine as [`StdRng`] here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100).all(|_| a.gen_range(0u64..1_000_000) == c.gen_range(0u64..1_000_000));
        assert!(!same, "different seeds must diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(1);
        let heads = (0..100_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((45_000..55_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn full_range_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }
}
