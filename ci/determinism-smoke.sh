#!/usr/bin/env bash
# Determinism smoke: every parallel sweep binary must emit byte-identical
# CSV at --threads 1 and --threads 4.
#
# The roster is DERIVED, not maintained: any binary under
# crates/experiments/src/bin/ that instantiates SweepDriver is picked up
# automatically, and the script fails loudly if it has no smoke_args case
# below — adding a sweep binary without wiring it into this gate is a CI
# error by construction.
#
# Env: BIN_DIR (default ./target/release), METRICS_DIR (default
# smoke-metrics) for the --threads 1 run's --metrics-out JSON.
set -eu

B=${BIN_DIR:-./target/release}
OUT=${METRICS_DIR:-smoke-metrics}
mkdir -p "$OUT"

sweep_binaries() {
  grep -l 'SweepDriver::new(' crates/experiments/src/bin/*.rs \
    | xargs -n1 basename | sed 's/\.rs$//' | sort
}

# Small-but-representative flags per binary; keep each under ~10 s.
smoke_args() {
  case "$1" in
    ablation)   echo "--sets 5 --seed 3" ;;
    erfair)     echo "--tasks 8 --cpus 2 --sets 2 --slots 500 --seed 3" ;;
    faults)     echo "--tasks 5 --util 1.25 --sets 2 --horizon 300 --seed 3" ;;
    fig3)       echo "--tasks 10 --sets 4 --points 6 --seed 3" ;;
    fig4)       echo "--tasks 10 --sets 4 --points 6 --seed 3" ;;
    locking)    echo "--cpus 2 --slots 2000 --seed 3" ;;
    quantum)    echo "--tasks 10 --sets 4 --seed 3" ;;
    rmff)       echo "--cpus 4 --tasks 8 --sets 10 --seed 3" ;;
    slack)      echo "--tasks 5 --util 1.25 --sets 2 --horizon 400 --seed 3" ;;
    switches)   echo "--tasks 8 --sets 2 --horizon 100000 --seed 3" ;;
    tournament) echo "--cpus 2 --tasks 6 --sets 3 --horizon 720 --seed 3" ;;
    *)          return 1 ;;
  esac
}

status=0
for name in $(sweep_binaries); do
  if ! args=$(smoke_args "$name"); then
    echo "$0: sweep binary '$name' uses SweepDriver but has no smoke_args" \
         "case — add one to ci/determinism-smoke.sh" >&2
    status=1
    continue
  fi
  # shellcheck disable=SC2086
  "$B/$name" $args --csv --threads 1 --metrics-out "$OUT/$name.json" > "$name.t1.csv"
  # shellcheck disable=SC2086
  "$B/$name" $args --csv --threads 4 > "$name.t4.csv"
  diff "$name.t1.csv" "$name.t4.csv"
  echo "$name: byte-identical across thread counts"
  rm -f "$name.t1.csv" "$name.t4.csv"
done
exit "$status"
