//! Differential check against exhaustive search: on small task systems, a
//! backtracking solver decides whether *any* valid Pfair schedule exists
//! over a hyperperiod (window containment for every subtask, ≤ M per
//! slot); PD² must find one exactly when the solver says one exists —
//! which, by the feasibility theorem (Equation (2)), is exactly when
//! `Σ wt ≤ M`. Both implications are checked against both oracles.

use pfair_core::sched::SchedConfig;
use pfair_core::subtask;
use pfair_model::{Rat, TaskSet};
use sched_sim::{check_windows, MultiSim};

/// Backtracking search for a valid Pfair schedule of `tasks` on `m`
/// processors over `horizon` slots (horizon = hyperperiod suffices for
/// synchronous periodic systems: the state at the hyperperiod boundary is
/// the initial state).
fn pfair_schedule_exists(tasks: &TaskSet, m: u32, horizon: u64) -> bool {
    let n = tasks.len();
    let weights: Vec<_> = tasks.iter().map(|(_, t)| t.weight()).collect();
    // next[i] = 1-based index of the next unscheduled subtask of task i.
    let mut next: Vec<u64> = vec![1; n];

    fn solve(
        t: u64,
        horizon: u64,
        m: usize,
        weights: &[pfair_model::Weight],
        next: &mut Vec<u64>,
    ) -> bool {
        if t == horizon {
            // Valid iff no pending subtask has a deadline ≤ horizon
            // (each task's due work is exactly done).
            return next
                .iter()
                .enumerate()
                .all(|(i, &k)| subtask::deadline(weights[i], k) > horizon);
        }
        // Tasks whose current subtask MUST run by its deadline and MAY run
        // now (released).
        let mut urgent = Vec::new();
        let mut eligible = Vec::new();
        for i in 0..next.len() {
            let k = next[i];
            let r = subtask::release(weights[i], k);
            let d = subtask::deadline(weights[i], k);
            if d <= t {
                return false; // already missed
            }
            if r <= t {
                eligible.push(i);
                if d == t + 1 {
                    urgent.push(i);
                }
            }
        }
        if urgent.len() > m {
            return false;
        }
        // Choose up to m of the eligible tasks, must include all urgent.
        // Enumerate subsets of the non-urgent eligible tasks of size
        // ≤ m − urgent.len(). Small n keeps this tractable.
        let optional: Vec<usize> = eligible
            .iter()
            .copied()
            .filter(|i| !urgent.contains(i))
            .collect();
        let room = m - urgent.len();
        let combos = 1usize << optional.len();
        for mask in (0..combos).rev() {
            if (mask as u32).count_ones() as usize > room {
                continue;
            }
            let chosen: Vec<usize> = urgent
                .iter()
                .copied()
                .chain(
                    optional
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| mask & (1 << j) != 0)
                        .map(|(_, &i)| i),
                )
                .collect();
            for &i in &chosen {
                next[i] += 1;
            }
            if solve(t + 1, horizon, m, weights, next) {
                return true;
            }
            for &i in &chosen {
                next[i] -= 1;
            }
        }
        false
    }
    solve(0, horizon, m as usize, &weights, &mut next)
}

/// Enumerate small task systems; compare three oracles: the feasibility
/// condition `Σw ≤ M`, the exhaustive solver, and PD² simulation.
#[test]
fn pd2_agrees_with_exhaustive_search_and_equation_2() {
    // Small systems over periods {2, 3, 4}: hyperperiod 12, ≤ 4 tasks,
    // M ∈ {1, 2}. Exhaustive over a curated grid (full cross-product is
    // exponential; this grid still covers feasible, infeasible, and
    // boundary cases).
    let grid: Vec<Vec<(u64, u64)>> = vec![
        vec![(1, 2), (1, 3)],
        vec![(1, 2), (1, 2)],
        vec![(2, 3), (2, 3), (2, 3)],
        vec![(1, 2), (1, 3), (1, 4)],
        vec![(3, 4), (1, 2), (1, 4)],
        vec![(2, 3), (1, 2), (1, 3), (1, 2)],
        vec![(1, 2), (1, 2), (1, 2), (1, 2)],
        vec![(3, 4), (3, 4)],
        vec![(2, 3), (3, 4)],
        vec![(1, 4), (1, 4), (1, 4), (1, 4)],
        vec![(1, 3), (2, 3)],
        vec![(3, 4), (2, 3), (1, 2)],
    ];
    for pairs in grid {
        let tasks = TaskSet::from_pairs(pairs.iter().copied()).unwrap();
        let h = tasks.hyperperiod();
        for m in 1u32..=2 {
            let feasible = tasks.total_utilization() <= Rat::from(m as u64);
            let exists = pfair_schedule_exists(&tasks, m, h);
            assert_eq!(
                exists, feasible,
                "solver vs Equation (2) on {pairs:?}, M={m}"
            );
            if feasible {
                // PD² must realize it (simulate two hyperperiods and
                // verify window containment end to end).
                let mut sim = MultiSim::new(&tasks, SchedConfig::pd2(m));
                sim.record_schedule();
                let metrics = sim.run(2 * h);
                assert_eq!(metrics.misses, 0, "{pairs:?} M={m}");
                assert_eq!(
                    check_windows(&tasks, sim.schedule().unwrap()),
                    Ok(()),
                    "{pairs:?} M={m}"
                );
            }
        }
    }
}

/// The solver itself is sound: it never certifies an over-utilized system.
#[test]
fn solver_rejects_overload() {
    let tasks = TaskSet::from_pairs([(1u64, 2u64), (2, 3)]).unwrap(); // 7/6
    assert!(!pfair_schedule_exists(&tasks, 1, tasks.hyperperiod()));
    assert!(pfair_schedule_exists(&tasks, 2, tasks.hyperperiod()));
}
