//! End-to-end pipeline test: workload generation → overhead inflation →
//! both schedulability analyses → actual simulation of the PD² verdict.
//!
//! This is the full Fig. 3 pipeline plus a step the paper could only argue
//! analytically: we *simulate* the PD²-schedulable quantum task system and
//! confirm zero misses, closing the loop between the schedulability test
//! and the scheduler.

use overhead::{inflate_pd2, pd2_processors_required, OverheadParams};
use partition::{partition_unbounded, EdfOverheadAware, Heuristic, SortOrder};
use pfair_core::sched::SchedConfig;
use pfair_model::TaskSet;
use sched_sim::MultiSim;
use workload::{CacheDelayDist, TaskSetGenerator};

#[test]
fn fig3_pipeline_with_simulation_closure() {
    let params = OverheadParams::paper2003();
    let dist = CacheDelayDist::paper2003();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(99);

    for seed in 0..5u64 {
        let n = 15;
        let mut gen = TaskSetGenerator::new(n, 4.0, seed);
        let set = gen.generate();
        let d = dist.sample_n(&mut rng, n);

        // Analysis: processors needed by each approach.
        let m_pd2 = pd2_processors_required(&set.tasks, &params, &d, 60).unwrap();
        let acc = EdfOverheadAware::new(&set.tasks, &d, params);
        let m_edf = partition_unbounded(
            n,
            &acc,
            Heuristic::FirstFit,
            SortOrder::DecreasingPeriod,
            |i| (set.tasks[i].utilization(), set.tasks[i].period_us),
        )
        .unwrap()
        .processors;

        assert!(m_pd2 >= 4 && m_edf >= 4, "raw U = 4 lower-bounds both");

        // Closure: build the inflated quantum task system PD² promised to
        // schedule on m_pd2 processors and simulate it.
        let mut quantum_tasks = TaskSet::new();
        for (t, &dd) in set.tasks.iter().zip(&d) {
            let inf = inflate_pd2(*t, &params, m_pd2, n, dd).unwrap();
            quantum_tasks.push(pfair_model::Task::new(inf.quanta, inf.period_quanta).unwrap());
        }
        assert!(quantum_tasks.feasible_on(m_pd2));
        let mut sim = MultiSim::new(&quantum_tasks, SchedConfig::pd2(m_pd2));
        let horizon = 20_000; // 20 s of 1 ms quanta
        let metrics = sim.run(horizon);
        assert_eq!(metrics.misses, 0, "seed {seed}: PD2 delivered its promise");
    }
}

/// The headline comparison direction at high per-task utilization: when
/// tasks are heavy, partitioning fragments and PD² pulls ahead — the
/// crossover the paper's Fig. 3 shows on its right-hand side.
#[test]
fn heavy_tasks_favor_pd2() {
    let params = OverheadParams::paper2003();
    let dist = CacheDelayDist::paper2003();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);

    let mut pd2_wins = 0i32;
    let trials = 10;
    for seed in 0..trials {
        // Mean utilization 0.55: near the (M+1)/2 worst case for packing.
        let n = 12;
        let mut gen = TaskSetGenerator::new(n, 6.6, seed);
        let set = gen.generate();
        let d = dist.sample_n(&mut rng, n);
        let Ok(m_pd2) = pd2_processors_required(&set.tasks, &params, &d, 60) else {
            continue; // a near-unit task neither side can place: no verdict
        };
        let acc = EdfOverheadAware::new(&set.tasks, &d, params);
        let m_edf = partition_unbounded(
            n,
            &acc,
            Heuristic::FirstFit,
            SortOrder::DecreasingPeriod,
            |i| (set.tasks[i].utilization(), set.tasks[i].period_us),
        )
        .map(|r| r.processors);
        match m_edf {
            // EDF-FF cannot place a near-unit inflated task at all while
            // PD² schedules the set: the strongest form of a PD² win.
            None => pd2_wins += 1,
            Some(m_edf) if m_pd2 < m_edf => pd2_wins += 1,
            Some(m_edf) if m_pd2 > m_edf => pd2_wins -= 1,
            Some(_) => {}
        }
    }
    assert!(
        pd2_wins > 0,
        "PD2 should win the heavy-task regime on balance ({pd2_wins:+} over {trials} trials)"
    );
}

/// And the opposite regime: in the paper's middle band (N = 50, total
/// utilization in [4, 14)) quantum rounding and per-quantum charges make
/// PD² pay more than FF fragmentation costs, and EDF-FF wins — the
/// left/middle of Fig. 3(a).
#[test]
fn moderate_tasks_favor_edf_ff() {
    let params = OverheadParams::paper2003();
    let dist = CacheDelayDist::paper2003();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(6);

    let mut edf_wins = 0i32;
    for seed in 0..10u64 {
        // Mean utilization 0.2 — inside the paper's EDF-wins band.
        let n = 50;
        let mut gen = TaskSetGenerator::new(n, 10.0, seed);
        let set = gen.generate();
        let d = dist.sample_n(&mut rng, n);
        let m_pd2 = pd2_processors_required(&set.tasks, &params, &d, 200).unwrap();
        let acc = EdfOverheadAware::new(&set.tasks, &d, params);
        let m_edf = partition_unbounded(
            n,
            &acc,
            Heuristic::FirstFit,
            SortOrder::DecreasingPeriod,
            |i| (set.tasks[i].utilization(), set.tasks[i].period_us),
        )
        .unwrap()
        .processors;
        if m_edf < m_pd2 {
            edf_wins += 1;
        } else if m_edf > m_pd2 {
            edf_wins -= 1;
        }
    }
    assert!(edf_wins > 0, "EDF-FF should win the light-task regime");
}
