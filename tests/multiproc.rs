//! Multi-process sweep gate (CI): `--procs N` must produce output
//! byte-identical to a single-process, single-thread run — including when
//! a worker is SIGKILLed mid-range with its shard tail torn (`--chaos`),
//! and when the retry budget is exhausted and a fresh run resumes from
//! whatever the dead workers committed.
//!
//! Exercises the full binary surface via `CARGO_BIN_EXE_fig3`: the
//! coordinator/worker re-exec protocol, shard-per-worker checkpoint
//! writes, lease-based supervision, and the flag validation in
//! `SweepDriver::new`. The chaos workload is sized so every point takes
//! ~100 ms: a worker that has just committed its first point is still
//! mid-computation on its second when the kill threshold trips, so the
//! injected kill lands on a live process in every run.

use std::path::PathBuf;
use std::process::{Command, Output};

/// ~100 ms per point in both debug and release builds; 6 points across
/// 3 workers at `--chunk 2` gives each worker a two-point range.
const HEAVY: [&str; 11] = [
    "--tasks", "100", "--sets", "150", "--points", "6", "--seed", "3", "--csv", "--batch", "1",
];

fn fig3(args: &[&str], extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fig3"))
        .args(args)
        .args(extra)
        .output()
        .expect("failed to spawn fig3")
}

fn temp_ck(tag: &str) -> (PathBuf, String) {
    let ck = std::env::temp_dir().join(format!("pfair-mp-{}-{tag}.json", std::process::id()));
    let s = ck.to_str().unwrap().to_string();
    (ck, s)
}

/// Removes the checkpoint header file and its v3 shard directory.
fn cleanup(ck: &PathBuf) {
    let _ = std::fs::remove_file(ck);
    let _ = std::fs::remove_dir_all(experiments::checkpoint::shard_dir(ck));
}

#[test]
fn multiprocess_sweep_matches_single_process_byte_for_byte() {
    let (ck, ck_str) = temp_ck("det");
    cleanup(&ck);

    let clean = fig3(&HEAVY, &["--threads", "1"]);
    assert!(clean.status.success());
    let expected = String::from_utf8(clean.stdout).unwrap();
    assert!(expected.lines().count() > 1, "clean run produced no rows");

    let multi = fig3(
        &HEAVY,
        &["--procs", "3", "--threads", "2", "--checkpoint", &ck_str],
    );
    assert!(
        multi.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&multi.stderr)
    );
    assert_eq!(
        String::from_utf8(multi.stdout).unwrap(),
        expected,
        "--procs 3 --threads 2 must be byte-identical to --threads 1"
    );

    // The coordinator left a v3 shard set behind; a rerun over it serves
    // every point from cache and still matches.
    let cached = fig3(&HEAVY, &["--procs", "3", "--checkpoint", &ck_str]);
    assert!(cached.status.success());
    assert_eq!(String::from_utf8(cached.stdout).unwrap(), expected);
    cleanup(&ck);
}

#[test]
fn chaos_kill_with_torn_tail_recovers_in_run() {
    let (ck, ck_str) = temp_ck("chaos");
    cleanup(&ck);

    let clean = fig3(&HEAVY, &["--threads", "1"]);
    assert!(clean.status.success());
    let expected = String::from_utf8(clean.stdout).unwrap();

    let chaos = fig3(
        &HEAVY,
        &[
            "--procs",
            "3",
            "--threads",
            "1",
            "--chunk",
            "2",
            "--checkpoint",
            &ck_str,
            "--chaos",
            "kill-after=1,torn-tail",
        ],
    );
    let stderr = String::from_utf8_lossy(&chaos.stderr).into_owned();
    assert!(chaos.status.success(), "stderr: {stderr}");
    assert!(
        stderr.contains("chaos: killed"),
        "the injected kill must actually fire: {stderr}"
    );
    assert_eq!(
        String::from_utf8(chaos.stdout).unwrap(),
        expected,
        "output after a mid-range SIGKILL + torn shard tail must be byte-identical"
    );
    cleanup(&ck);
}

#[test]
fn exhausted_retry_budget_fails_loud_and_a_rerun_resumes() {
    let (ck, ck_str) = temp_ck("abandon");
    cleanup(&ck);

    let clean = fig3(&HEAVY, &["--threads", "1"]);
    assert!(clean.status.success());
    let expected = String::from_utf8(clean.stdout).unwrap();

    // With a zero retry budget the killed range is abandoned: partial
    // CSV is still printed, but the exit code must flag the loss.
    let chaos = fig3(
        &HEAVY,
        &[
            "--procs",
            "3",
            "--threads",
            "1",
            "--chunk",
            "2",
            "--checkpoint",
            &ck_str,
            "--chaos",
            "kill-after=1,torn-tail",
            "--worker-retries",
            "0",
        ],
    );
    let stderr = String::from_utf8_lossy(&chaos.stderr).into_owned();
    assert_eq!(chaos.status.code(), Some(1), "stderr: {stderr}");
    assert!(
        stderr.contains("gave up on"),
        "abandonment must be reported: {stderr}"
    );

    // A plain rerun over the same checkpoint restores the surviving
    // points and recomputes the abandoned range.
    let resumed = fig3(&HEAVY, &["--checkpoint", &ck_str]);
    assert!(
        resumed.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let rerr = String::from_utf8_lossy(&resumed.stderr).into_owned();
    assert!(
        rerr.contains("restored"),
        "the rerun must restore committed points: {rerr}"
    );
    assert_eq!(String::from_utf8(resumed.stdout).unwrap(), expected);
    cleanup(&ck);
}

#[test]
fn multiprocess_flags_are_validated() {
    // --procs without --checkpoint: no shared store for workers.
    let out = fig3(&["--procs", "2"], &[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--checkpoint"));

    // --chaos without --procs: nothing to kill.
    let (ck, ck_str) = temp_ck("flags");
    cleanup(&ck);
    let out = fig3(&["--checkpoint", &ck_str, "--chaos", "kill-after=1"], &[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--procs"));

    // --fail-after under --procs: crash injection belongs to --chaos.
    let out = fig3(
        &["--procs", "2", "--checkpoint", &ck_str, "--fail-after", "1"],
        &[],
    );
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--chaos"));

    // Malformed chaos spec.
    let out = fig3(
        &[
            "--procs",
            "2",
            "--checkpoint",
            &ck_str,
            "--chaos",
            "kill-after=0",
        ],
        &[],
    );
    assert_eq!(out.status.code(), Some(2));
    cleanup(&ck);
}
