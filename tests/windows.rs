//! E1/E2 — Fig. 1 reproduction as an integration test: the window layout
//! of a weight-8/11 periodic task (Fig. 1(a)) and the shifted layout of
//! the same task as an IS task with a late subtask (Fig. 1(b)).

use pfair_core::sched::{MapDelays, PfairScheduler, SchedConfig};
use pfair_core::subtask;
use pfair_model::{TaskId, TaskSet, Weight};

/// Fig. 1(a): windows of the first two jobs of a periodic task with
/// weight 8/11, exactly as drawn in the paper.
#[test]
fn fig1a_first_two_jobs() {
    let w = Weight::new(8, 11).unwrap();
    // (release, deadline) for T1..T16 read off the figure.
    let expected: [(u64, u64); 16] = [
        (0, 2),
        (1, 3),
        (2, 5),
        (4, 6),
        (5, 7),
        (6, 9),
        (8, 10),
        (9, 11),
        (11, 13),
        (12, 14),
        (13, 16),
        (15, 17),
        (16, 18),
        (17, 20),
        (19, 21),
        (20, 22),
    ];
    for (i, &(r, d)) in expected.iter().enumerate() {
        let idx = (i + 1) as u64;
        assert_eq!(subtask::release(w, idx), r, "r(T{idx})");
        assert_eq!(subtask::deadline(w, idx), d, "d(T{idx})");
    }
}

/// Fig. 1(b): the same task as an IS task where subtask T5 becomes
/// eligible one slot late — every window from T5 on shifts right by one.
#[test]
fn fig1b_is_task_with_late_subtask() {
    let w = Weight::new(8, 11).unwrap();
    let tasks = TaskSet::from_pairs([(8u64, 11u64)]).unwrap();
    let mut delays = MapDelays::new();
    delays.insert(TaskId(0), 5, 1);
    let mut sched = PfairScheduler::with_delays(&tasks, SchedConfig::pd2(1), delays);

    // Alone on one processor under plain Pfair, each subtask runs exactly
    // at its (shifted) release.
    let schedule = sched.run(24);
    assert!(sched.misses().is_empty());
    let run_slots: Vec<u64> = schedule
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.is_empty())
        .map(|(t, _)| t as u64)
        .collect();
    // T1..T4 at synchronous releases; T5.. shifted by one.
    let expected: Vec<u64> = (1..=32u64)
        .map(|i| subtask::release(w, i) + u64::from(i >= 5))
        .filter(|&r| r < 24)
        .collect();
    assert_eq!(run_slots, expected);
}

/// The b-bit/group-deadline narrative of Section 2, cross-checked over
/// many subtasks and both heavy example weights used in the paper's prose.
#[test]
fn section2_tiebreak_parameters() {
    let w = Weight::new(8, 11).unwrap();
    assert!(subtask::b_bit(w, 3));
    assert_eq!(subtask::group_deadline(w, 3), 8);
    assert_eq!(subtask::group_deadline(w, 7), 11);
    // A light task never has a group deadline.
    let l = Weight::new(2, 9).unwrap();
    for i in 1..=18 {
        assert_eq!(subtask::group_deadline(l, i), 0);
    }
}
