//! End-to-end tests against a real `admitd` process over its socket.
//!
//! Covers the tentpole acceptance path: a live daemon absorbing a
//! thousand joins and leaves whose every decision is window-verified
//! offline from the trace it dumps at shutdown, plus the chaos variant —
//! SIGKILL mid-stream must surface as a clean client error, not a hang.

use daemon::client::{ClientError, DaemonClient};
use daemon::proto::{Reply, Request, Status};
use sched_sim::ScheduleTrace;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Unique scratch paths per test (sockets have a ~100-byte path limit,
/// so stay in /tmp rather than target/).
fn scratch(tag: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    (
        dir.join(format!("admitd-{tag}-{pid}.sock")),
        dir.join(format!("admitd-{tag}-{pid}.trace.json")),
    )
}

fn spawn_admitd(socket: &PathBuf, extra: &[&str]) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_admitd"));
    cmd.arg("--socket")
        .arg(socket)
        .args(["--cpus", "8", "--no-overhead"])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    cmd.spawn().expect("spawn admitd")
}

fn connect(socket: &PathBuf) -> DaemonClient {
    DaemonClient::connect_retry(socket, Duration::from_secs(10)).expect("daemon did not come up")
}

/// 1000 tasks join, then every admitted one leaves, through a pipelined
/// socket connection; the daemon's shutdown trace must window-verify.
#[test]
fn thousand_joins_and_leaves_window_verify() {
    let (socket, trace_out) = scratch("e2e");
    std::fs::remove_file(&socket).ok();
    let mut child = spawn_admitd(&socket, &["--trace-out", trace_out.to_str().unwrap()]);
    let mut client = connect(&socket);

    // 1000 joins of one quantum per 1000 (weight 1/1000 after
    // quantization): Σwt = 1 on 8 cpus, so all admit. Pipeline in
    // windows of 64 to exercise batching.
    let mut inflight = 0usize;
    let mut admitted: Vec<u32> = Vec::new();
    let drain = |client: &mut DaemonClient,
                 inflight: &mut usize,
                 admitted: &mut Vec<u32>,
                 down_to: usize| {
        while *inflight > down_to {
            let reply: Reply = client.recv().expect("reply");
            *inflight -= 1;
            match reply.status {
                Status::Admitted => admitted.push(reply.task.expect("admitted id")),
                Status::Left => {}
                other => panic!("unexpected status {other:?}: {:?}", reply.error),
            }
        }
    };
    for _ in 0..1000 {
        drain(&mut client, &mut inflight, &mut admitted, 63);
        let nonce = client.take_nonce();
        client
            .send(&Request::join(nonce, 1_000, 1_000_000))
            .expect("send join");
        inflight += 1;
    }
    drain(&mut client, &mut inflight, &mut admitted, 0);
    assert_eq!(admitted.len(), 1000, "all thousand joins fit on 8 cpus");

    for &id in &admitted {
        drain(&mut client, &mut inflight, &mut Vec::new(), 63);
        let nonce = client.take_nonce();
        client.send(&Request::leave(nonce, id)).expect("send leave");
        inflight += 1;
    }
    let mut none = Vec::new();
    drain(&mut client, &mut inflight, &mut none, 0);
    assert!(none.is_empty(), "leaves must not report admissions");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.task_count, Some(0), "everyone left");

    let bye = client.shutdown().expect("shutdown ack");
    assert!(matches!(bye.status, Status::ShuttingDown));
    let status = child.wait().expect("daemon exit");
    assert!(status.success(), "clean daemon exit, got {status}");

    // Offline verification: every slot the daemon scheduled, re-checked
    // against PD² windows with the join/leave event stream.
    let json = std::fs::read_to_string(&trace_out).expect("trace dumped");
    let trace = ScheduleTrace::from_json(&json).expect("trace parses");
    trace.verify().expect("daemon schedule window-verifies");

    std::fs::remove_file(&socket).ok();
    std::fs::remove_file(&trace_out).ok();
}

/// Every protocol path over a real socket: admit with the computed
/// weight, reject-with-reason when full, reweight, leave/free_at, and
/// the error replies for nonsense requests.
#[test]
fn protocol_paths_over_the_socket() {
    let (socket, _) = scratch("proto");
    std::fs::remove_file(&socket).ok();
    let mut child = spawn_admitd(&socket, &["--cpus", "2", "--no-trace"]);
    let mut client = connect(&socket);

    // Admit: weight and first pseudo-release come back computed.
    let r = client.join(1_000, 2_000).expect("join");
    assert!(matches!(r.status, Status::Admitted), "{:?}", r.error);
    let id = r.task.expect("task id");
    assert_eq!((r.weight_num, r.weight_den), (Some(1), Some(2)));
    assert!(r.first_release.is_some());

    // A full-processor task still fits (Σ = 1.5 ≤ 2)…
    let r = client.join(2_000, 2_000).expect("reply");
    assert!(matches!(r.status, Status::Admitted), "{:?}", r.error);
    // …but the next one overloads (1.5 + 1.0 > 2): reject, with reason.
    let r2 = client.join(1_900, 2_000).expect("reply");
    assert!(matches!(r2.status, Status::Rejected), "{:?}", r2.status);
    assert!(r2.error.is_some(), "rejections carry a reason");

    // Reweight the first task downward. (The pre-check is conservative —
    // it charges the new weight without crediting the old — so upward
    // moves need Σ + new ≤ M; 1.5 + 0.25 fits.)
    let r = client.reweight(id, 500, 2_000).expect("reweight");
    assert!(matches!(r.status, Status::Admitted), "{:?}", r.error);
    assert_eq!((r.weight_num, r.weight_den), (Some(1), Some(4)));
    let id = r.task.expect("reweight hands back the new id");

    // Leave reports the §5.2 safe release point.
    let r = client.leave(id).expect("leave");
    assert!(matches!(r.status, Status::Left));
    assert!(r.free_at.is_some());

    // Nonsense: leaving a task that never existed is an error reply,
    // not a dropped connection.
    let r = client.leave(4_242).expect("reply");
    assert!(matches!(r.status, Status::Error));

    client.shutdown().expect("shutdown");
    assert!(child.wait().expect("exit").success());
    std::fs::remove_file(&socket).ok();
}

/// Two clients whose nonces collide (every `DaemonClient` starts at
/// nonce 1) submit distinguishable joins into the same batch; each must
/// receive the reply for *its own* request — routing is by connection,
/// not by the client-chosen nonce.
#[test]
fn colliding_nonces_across_clients_route_to_own_connection() {
    let (socket, _) = scratch("nonce");
    std::fs::remove_file(&socket).ok();
    // A long real-time quantum makes both requests land in one batch.
    let mut child = spawn_admitd(
        &socket,
        &["--no-trace", "--pace", "real", "--quantum-us", "50000"],
    );
    let mut a = connect(&socket);
    let mut b = connect(&socket);

    // Both calls use nonce 1. Params are multiples of the 50 ms quantum
    // so quantization cannot blur them: A is weight 1/2, B is 1/4.
    let ta = std::thread::spawn(move || a.join(100_000, 200_000).expect("join a"));
    let tb = std::thread::spawn(move || b.join(50_000, 200_000).expect("join b"));
    let ra = ta.join().expect("client a thread");
    let rb = tb.join().expect("client b thread");

    assert!(matches!(ra.status, Status::Admitted), "{:?}", ra.error);
    assert!(matches!(rb.status, Status::Admitted), "{:?}", rb.error);
    assert_eq!(
        (ra.weight_num, ra.weight_den),
        (Some(1), Some(2)),
        "client a must get the reply for its own 1/2-weight join"
    );
    assert_eq!(
        (rb.weight_num, rb.weight_den),
        (Some(1), Some(4)),
        "client b must get the reply for its own 1/4-weight join"
    );
    assert_ne!(ra.task, rb.task);

    connect(&socket).shutdown().expect("shutdown");
    assert!(child.wait().expect("exit").success());
    std::fs::remove_file(&socket).ok();
}

/// Real-time pacing ticks off absolute wall-clock edges: a burst of
/// pipelined requests accumulates into a few quantum batches instead of
/// advancing one slot per request, and idle wall time keeps slots
/// moving.
#[test]
fn realtime_pace_batches_by_wall_clock() {
    let (socket, _) = scratch("pace");
    std::fs::remove_file(&socket).ok();
    let mut child = spawn_admitd(
        &socket,
        &["--no-trace", "--pace", "real", "--quantum-us", "20000"],
    );
    let mut client = connect(&socket);

    // 30 light joins (1/100 weight each) at ~1 ms spacing — sustained
    // traffic much faster than the quantum. Edges are absolute, so the
    // ~30 ms of sends must be decided in a handful of 20 ms batches;
    // request-triggered pacing would advance ~one slot per arrival.
    const BURST: usize = 30;
    for _ in 0..BURST {
        let nonce = client.take_nonce();
        client
            .send(&Request::join(nonce, 20_000, 2_000_000))
            .expect("send join");
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut slots = Vec::new();
    for _ in 0..BURST {
        let reply = client.recv().expect("reply");
        assert!(
            matches!(reply.status, Status::Admitted),
            "{:?}",
            reply.error
        );
        slots.push(reply.slot);
    }
    slots.dedup();
    assert!(
        slots.len() <= 8,
        "{BURST} requests over ~1.5 quanta decided across {} slots — \
         real-time pacing is advancing per-request, not per-quantum",
        slots.len()
    );

    // Idle wall time still ticks: ~150 ms with a 20 ms quantum must
    // advance the slot counter even with no requests in flight.
    let before = client.stats().expect("stats").slot;
    std::thread::sleep(Duration::from_millis(150));
    let after = client.stats().expect("stats").slot;
    assert!(
        after >= before + 3,
        "idle wall time must advance slots (before={before}, after={after})"
    );

    client.shutdown().expect("shutdown");
    assert!(child.wait().expect("exit").success());
    std::fs::remove_file(&socket).ok();
}

/// Chaos: SIGKILL the daemon while a subscriber is streaming decisions
/// and a second client has requests in flight. Both must see a clean
/// [`ClientError::Disconnected`] promptly — no hang, no panic.
#[test]
fn sigkill_mid_stream_surfaces_clean_error() {
    let (socket, _) = scratch("chaos");
    std::fs::remove_file(&socket).ok();
    // A 1 ms quantum keeps the real-time pacer off a busy spin (zero
    // overheads alone would mean 1 µs slots).
    let mut child = spawn_admitd(
        &socket,
        &["--no-trace", "--pace", "real", "--quantum-us", "1000"],
    );

    let mut sub = connect(&socket).subscribe().expect("subscribe");
    let mut client = connect(&socket);
    client
        .join(100, 10_000)
        .expect("one admitted task to stream about");
    sub.next().expect("stream is live before the kill");

    child.kill().expect("SIGKILL daemon");
    child.wait().expect("reap");

    let started = Instant::now();
    // The subscriber's blocking read must end in Disconnected, fast —
    // after draining whatever frames were already buffered in the
    // socket when the daemon died.
    loop {
        match sub.next() {
            Ok(_) if started.elapsed() < Duration::from_secs(5) => continue,
            Ok(_) => panic!("stream still yielding frames 5s after SIGKILL"),
            Err(ClientError::Disconnected) => break,
            Err(other) => panic!("expected Disconnected after SIGKILL, got {other:?}"),
        }
    }
    // In-flight request path: send may still succeed into the dead
    // socket's buffer, but the reply read must fail cleanly.
    let err = client.join(100, 10_000).expect_err("daemon is gone");
    assert!(
        matches!(err, ClientError::Disconnected | ClientError::Io(_)),
        "clean transport error, got {err:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "death must surface promptly, took {:?}",
        started.elapsed()
    );
    std::fs::remove_file(&socket).ok();
}
