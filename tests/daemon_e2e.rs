//! End-to-end tests against a real `admitd` process over its socket.
//!
//! Covers the tentpole acceptance path: a live daemon absorbing a
//! thousand joins and leaves whose every decision is window-verified
//! offline from the trace it dumps at shutdown; the multi-set scenario
//! (≥2 task-set shards, interleaved clients, per-set traces) over both
//! the Unix and TCP transports; and the chaos variants — SIGKILL
//! mid-stream, a stale socket file after an unclean death, a half-open
//! TCP peer stalled mid-frame, an oversized frame, and byte-determinism
//! of per-set decision logs.

use daemon::client::{ClientError, DaemonAddr, DaemonClient};
use daemon::proto::{self, Reply, Request, Status};
use sched_sim::ScheduleTrace;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Unique scratch paths per test (sockets have a ~100-byte path limit,
/// so stay in /tmp rather than target/).
fn scratch(tag: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    (
        dir.join(format!("admitd-{tag}-{pid}.sock")),
        dir.join(format!("admitd-{tag}-{pid}.trace.json")),
    )
}

fn spawn_admitd(socket: &Path, extra: &[&str]) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_admitd"));
    cmd.arg("--socket")
        .arg(socket)
        .args(["--cpus", "8", "--no-overhead"])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    cmd.spawn().expect("spawn admitd")
}

/// Spawns a TCP daemon on an ephemeral loopback port and parses the
/// actual address from its `admitd: listening on tcp://…` stderr line.
fn spawn_admitd_tcp(extra: &[&str]) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_admitd"));
    cmd.args(["--listen", "127.0.0.1:0", "--cpus", "8", "--no-overhead"])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn admitd");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("admitd exited before announcing its address")
            .expect("read admitd stderr");
        if let Some(rest) = line.strip_prefix("admitd: listening on tcp://") {
            break rest.to_string();
        }
    };
    // Keep draining stderr so the daemon can never block on a full pipe.
    std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
    (child, addr)
}

fn connect(socket: &Path) -> DaemonClient {
    DaemonClient::connect_retry(socket, Duration::from_secs(10)).expect("daemon did not come up")
}

fn connect_addr(addr: &DaemonAddr) -> DaemonClient {
    DaemonClient::connect_to_retry(addr, Duration::from_secs(10)).expect("daemon did not come up")
}

/// 1000 tasks join, then every admitted one leaves, through a pipelined
/// socket connection; the daemon's shutdown trace must window-verify.
#[test]
fn thousand_joins_and_leaves_window_verify() {
    let (socket, trace_out) = scratch("e2e");
    std::fs::remove_file(&socket).ok();
    let mut child = spawn_admitd(&socket, &["--trace-out", trace_out.to_str().unwrap()]);
    let mut client = connect(&socket);

    // 1000 joins of one quantum per 1000 (weight 1/1000 after
    // quantization): Σwt = 1 on 8 cpus, so all admit. Pipeline in
    // windows of 64 to exercise batching.
    let mut inflight = 0usize;
    let mut admitted: Vec<u32> = Vec::new();
    let drain = |client: &mut DaemonClient,
                 inflight: &mut usize,
                 admitted: &mut Vec<u32>,
                 down_to: usize| {
        while *inflight > down_to {
            let reply: Reply = client.recv().expect("reply");
            *inflight -= 1;
            match reply.status {
                Status::Admitted => admitted.push(reply.task.expect("admitted id")),
                Status::Left => {}
                other => panic!("unexpected status {other:?}: {:?}", reply.error),
            }
        }
    };
    for _ in 0..1000 {
        drain(&mut client, &mut inflight, &mut admitted, 63);
        let nonce = client.take_nonce();
        client
            .send(&Request::join(nonce, 1_000, 1_000_000))
            .expect("send join");
        inflight += 1;
    }
    drain(&mut client, &mut inflight, &mut admitted, 0);
    assert_eq!(admitted.len(), 1000, "all thousand joins fit on 8 cpus");

    for &id in &admitted {
        drain(&mut client, &mut inflight, &mut Vec::new(), 63);
        let nonce = client.take_nonce();
        client.send(&Request::leave(nonce, id)).expect("send leave");
        inflight += 1;
    }
    let mut none = Vec::new();
    drain(&mut client, &mut inflight, &mut none, 0);
    assert!(none.is_empty(), "leaves must not report admissions");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.task_count, Some(0), "everyone left");

    let bye = client.shutdown().expect("shutdown ack");
    assert!(matches!(bye.status, Status::ShuttingDown));
    let status = child.wait().expect("daemon exit");
    assert!(status.success(), "clean daemon exit, got {status}");

    // Offline verification: every slot the daemon scheduled, re-checked
    // against PD² windows with the join/leave event stream.
    let json = std::fs::read_to_string(&trace_out).expect("trace dumped");
    let trace = ScheduleTrace::from_json(&json).expect("trace parses");
    trace.verify().expect("daemon schedule window-verifies");

    std::fs::remove_file(&socket).ok();
    std::fs::remove_file(&trace_out).ok();
}

/// Every protocol path over a real socket: admit with the computed
/// weight, reject-with-reason when full, reweight, leave/free_at, and
/// the error replies for nonsense requests.
#[test]
fn protocol_paths_over_the_socket() {
    let (socket, _) = scratch("proto");
    std::fs::remove_file(&socket).ok();
    let mut child = spawn_admitd(&socket, &["--cpus", "2", "--no-trace"]);
    let mut client = connect(&socket);

    // Admit: weight and first pseudo-release come back computed.
    let r = client.join(1_000, 2_000).expect("join");
    assert!(matches!(r.status, Status::Admitted), "{:?}", r.error);
    let id = r.task.expect("task id");
    assert_eq!((r.weight_num, r.weight_den), (Some(1), Some(2)));
    assert!(r.first_release.is_some());

    // A full-processor task still fits (Σ = 1.5 ≤ 2)…
    let r = client.join(2_000, 2_000).expect("reply");
    assert!(matches!(r.status, Status::Admitted), "{:?}", r.error);
    // …but the next one overloads (1.5 + 1.0 > 2): reject, with reason.
    let r2 = client.join(1_900, 2_000).expect("reply");
    assert!(matches!(r2.status, Status::Rejected), "{:?}", r2.status);
    assert!(r2.error.is_some(), "rejections carry a reason");

    // Reweight the first task downward. (The pre-check is conservative —
    // it charges the new weight without crediting the old — so upward
    // moves need Σ + new ≤ M; 1.5 + 0.25 fits.)
    let r = client.reweight(id, 500, 2_000).expect("reweight");
    assert!(matches!(r.status, Status::Admitted), "{:?}", r.error);
    assert_eq!((r.weight_num, r.weight_den), (Some(1), Some(4)));
    let id = r.task.expect("reweight hands back the new id");

    // Leave reports the §5.2 safe release point.
    let r = client.leave(id).expect("leave");
    assert!(matches!(r.status, Status::Left));
    assert!(r.free_at.is_some());

    // Nonsense: leaving a task that never existed is an error reply,
    // not a dropped connection.
    let r = client.leave(4_242).expect("reply");
    assert!(matches!(r.status, Status::Error));

    client.shutdown().expect("shutdown");
    assert!(child.wait().expect("exit").success());
    std::fs::remove_file(&socket).ok();
}

/// Two clients whose nonces collide (every `DaemonClient` starts at
/// nonce 1) submit distinguishable joins into the same batch; each must
/// receive the reply for *its own* request — routing is by connection,
/// not by the client-chosen nonce.
#[test]
fn colliding_nonces_across_clients_route_to_own_connection() {
    let (socket, _) = scratch("nonce");
    std::fs::remove_file(&socket).ok();
    // A long real-time quantum makes both requests land in one batch.
    let mut child = spawn_admitd(
        &socket,
        &["--no-trace", "--pace", "real", "--quantum-us", "50000"],
    );
    let mut a = connect(&socket);
    let mut b = connect(&socket);

    // Both calls use nonce 1. Params are multiples of the 50 ms quantum
    // so quantization cannot blur them: A is weight 1/2, B is 1/4.
    let ta = std::thread::spawn(move || a.join(100_000, 200_000).expect("join a"));
    let tb = std::thread::spawn(move || b.join(50_000, 200_000).expect("join b"));
    let ra = ta.join().expect("client a thread");
    let rb = tb.join().expect("client b thread");

    assert!(matches!(ra.status, Status::Admitted), "{:?}", ra.error);
    assert!(matches!(rb.status, Status::Admitted), "{:?}", rb.error);
    assert_eq!(
        (ra.weight_num, ra.weight_den),
        (Some(1), Some(2)),
        "client a must get the reply for its own 1/2-weight join"
    );
    assert_eq!(
        (rb.weight_num, rb.weight_den),
        (Some(1), Some(4)),
        "client b must get the reply for its own 1/4-weight join"
    );
    assert_ne!(ra.task, rb.task);

    connect(&socket).shutdown().expect("shutdown");
    assert!(child.wait().expect("exit").success());
    std::fs::remove_file(&socket).ok();
}

/// Real-time pacing ticks off absolute wall-clock edges: a burst of
/// pipelined requests accumulates into a few quantum batches instead of
/// advancing one slot per request, and idle wall time keeps slots
/// moving.
#[test]
fn realtime_pace_batches_by_wall_clock() {
    let (socket, _) = scratch("pace");
    std::fs::remove_file(&socket).ok();
    let mut child = spawn_admitd(
        &socket,
        &["--no-trace", "--pace", "real", "--quantum-us", "20000"],
    );
    let mut client = connect(&socket);

    // 30 light joins (1/100 weight each) at ~1 ms spacing — sustained
    // traffic much faster than the quantum. Edges are absolute, so the
    // ~30 ms of sends must be decided in a handful of 20 ms batches;
    // request-triggered pacing would advance ~one slot per arrival.
    const BURST: usize = 30;
    for _ in 0..BURST {
        let nonce = client.take_nonce();
        client
            .send(&Request::join(nonce, 20_000, 2_000_000))
            .expect("send join");
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut slots = Vec::new();
    for _ in 0..BURST {
        let reply = client.recv().expect("reply");
        assert!(
            matches!(reply.status, Status::Admitted),
            "{:?}",
            reply.error
        );
        slots.push(reply.slot);
    }
    slots.dedup();
    assert!(
        slots.len() <= 8,
        "{BURST} requests over ~1.5 quanta decided across {} slots — \
         real-time pacing is advancing per-request, not per-quantum",
        slots.len()
    );

    // Idle wall time still ticks: ~150 ms with a 20 ms quantum must
    // advance the slot counter even with no requests in flight.
    let before = client.stats().expect("stats").slot;
    std::thread::sleep(Duration::from_millis(150));
    let after = client.stats().expect("stats").slot;
    assert!(
        after >= before + 3,
        "idle wall time must advance slots (before={before}, after={after})"
    );

    client.shutdown().expect("shutdown");
    assert!(child.wait().expect("exit").success());
    std::fs::remove_file(&socket).ok();
}

/// Chaos: SIGKILL the daemon while a subscriber is streaming decisions
/// and a second client has requests in flight. Both must see a clean
/// [`ClientError::Disconnected`] promptly — no hang, no panic.
#[test]
fn sigkill_mid_stream_surfaces_clean_error() {
    let (socket, _) = scratch("chaos");
    std::fs::remove_file(&socket).ok();
    // A 1 ms quantum keeps the real-time pacer off a busy spin (zero
    // overheads alone would mean 1 µs slots).
    let mut child = spawn_admitd(
        &socket,
        &["--no-trace", "--pace", "real", "--quantum-us", "1000"],
    );

    let mut sub = connect(&socket).subscribe().expect("subscribe");
    let mut client = connect(&socket);
    client
        .join(100, 10_000)
        .expect("one admitted task to stream about");
    sub.next().expect("stream is live before the kill");

    child.kill().expect("SIGKILL daemon");
    child.wait().expect("reap");

    let started = Instant::now();
    // The subscriber's blocking read must end in Disconnected, fast —
    // after draining whatever frames were already buffered in the
    // socket when the daemon died.
    loop {
        match sub.next() {
            Ok(_) if started.elapsed() < Duration::from_secs(5) => continue,
            Ok(_) => panic!("stream still yielding frames 5s after SIGKILL"),
            Err(ClientError::Disconnected) => break,
            Err(other) => panic!("expected Disconnected after SIGKILL, got {other:?}"),
        }
    }
    // In-flight request path: send may still succeed into the dead
    // socket's buffer, but the reply read must fail cleanly.
    let err = client.join(100, 10_000).expect_err("daemon is gone");
    assert!(
        matches!(err, ClientError::Disconnected | ClientError::Io(_)),
        "clean transport error, got {err:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "death must surface promptly, took {:?}",
        started.elapsed()
    );
    std::fs::remove_file(&socket).ok();
}

// ---------------------------------------------------------------------------
// Multi-set scenario, shared by the Unix and TCP transports.
// ---------------------------------------------------------------------------

/// The acceptance scenario: ≥2 sets live, interleaved clients, per-set
/// capacity isolation (`--cpus 1`, yet a full-processor task fits in
/// *each* set), unknown-set errors, a mid-run drop, and every set's
/// shutdown trace window-verifying offline from its own file.
fn multi_set_scenario(addr: DaemonAddr, mut child: Child, trace_base: &Path) {
    let mut admin = connect_addr(&addr);
    let r = admin.create_set("alpha").expect("create alpha");
    assert!(matches!(r.status, Status::SetCreated), "{:?}", r.error);
    let r = admin.create_set("beta").expect("create beta");
    assert!(matches!(r.status, Status::SetCreated), "{:?}", r.error);
    let r = admin.create_set("alpha").expect("reply");
    assert!(
        matches!(r.status, Status::Error),
        "duplicate create must error, got {:?}",
        r.status
    );
    let names = admin.list_sets().expect("list").sets.expect("sets field");
    assert_eq!(names, vec!["alpha", "beta", "default"]);

    let mut d = connect_addr(&addr); // default set
    let mut a = connect_addr(&addr);
    a.set_scope(Some("alpha"));

    // Capacity isolation: M=1 *per set*, so a full-processor task fits
    // in both. A shared weight sum would reject the second one.
    let rd = d.join(4_000, 4_000).expect("join default");
    assert!(matches!(rd.status, Status::Admitted), "{:?}", rd.error);
    let ra = a.join(4_000, 4_000).expect("join alpha");
    assert!(
        matches!(ra.status, Status::Admitted),
        "sets must not share capacity: {:?}",
        ra.error
    );
    let (big_d, big_a) = (rd.task.unwrap(), ra.task.unwrap());

    // Both sets are full now: a light join rejects in each.
    for (who, c) in [("default", &mut d), ("alpha", &mut a)] {
        let r = c.join(1_000, 4_000).expect("reply");
        assert!(
            matches!(r.status, Status::Rejected),
            "set {who} should be full, got {:?}",
            r.status
        );
    }

    // A request naming a set that does not exist is an error reply.
    let mut ghost = connect_addr(&addr);
    ghost.set_scope(Some("nope"));
    let r = ghost.join(1_000, 4_000).expect("reply");
    assert!(matches!(r.status, Status::Error));
    assert!(
        r.error.as_deref().unwrap_or("").contains("no such set"),
        "{:?}",
        r.error
    );

    // Leave the big tasks; §5.2 keeps the weight charged until free_at,
    // and with virtual pacing each (rejected) join attempt advances one
    // slot — retry until the safe point passes.
    for (c, big) in [(&mut d, big_d), (&mut a, big_a)] {
        let r = c.leave(big).expect("leave");
        assert!(matches!(r.status, Status::Left), "{:?}", r.error);
        let mut admitted = None;
        for _ in 0..100 {
            let r = c.join(1_000, 4_000).expect("reply");
            if matches!(r.status, Status::Admitted) {
                admitted = r.task;
                break;
            }
        }
        admitted.expect("light join admits once the safe point passes");
    }

    // Interleaved light traffic across the two sets (capacity 1 = up to
    // four 1/4-weight tasks; one is already in from the retry loop).
    let mut ids_d = Vec::new();
    let mut ids_a = Vec::new();
    for _ in 0..3 {
        let r = d.join(1_000, 4_000).expect("join default");
        assert!(matches!(r.status, Status::Admitted), "{:?}", r.error);
        ids_d.push(r.task.unwrap());
        let r = a.join(1_000, 4_000).expect("join alpha");
        assert!(matches!(r.status, Status::Admitted), "{:?}", r.error);
        ids_a.push(r.task.unwrap());
    }
    for (id_d, id_a) in ids_d.iter().zip(&ids_a) {
        assert!(matches!(
            d.leave(*id_d).expect("leave default").status,
            Status::Left
        ));
        assert!(matches!(
            a.leave(*id_a).expect("leave alpha").status,
            Status::Left
        ));
    }

    // Per-set stats echo the set they describe.
    let sd = d.stats().expect("stats default");
    assert_eq!(sd.set.as_deref(), Some("default"));
    let sa = a.stats().expect("stats alpha");
    assert_eq!(sa.set.as_deref(), Some("alpha"));
    assert_eq!(sd.task_count, Some(1), "one light task left in default");
    assert_eq!(sa.task_count, Some(1), "one light task left in alpha");

    // Drop beta mid-run; its (empty) report is retained for shutdown.
    let r = admin.drop_set("beta").expect("drop beta");
    assert!(matches!(r.status, Status::SetDropped), "{:?}", r.error);
    let names = admin.list_sets().expect("list").sets.expect("sets field");
    assert_eq!(names, vec!["alpha", "default"]);
    let r = admin.drop_set("beta").expect("reply");
    assert!(matches!(r.status, Status::Error), "double drop must error");

    admin.shutdown().expect("shutdown");
    assert!(child.wait().expect("exit").success());

    // Each set's trace landed in its own file and window-verifies.
    let base = trace_base.to_str().unwrap();
    let alpha_path = base.replace(".trace.json", ".trace.alpha.json");
    let beta_path = base.replace(".trace.json", ".trace.beta.dropped-0.json");
    for (name, path, must_advance) in [
        ("default", base.to_string(), true),
        ("alpha", alpha_path, true),
        ("beta", beta_path, false),
    ] {
        let json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("set {name} trace at {path}: {e}"));
        let trace = ScheduleTrace::from_json(&json).expect("trace parses");
        if must_advance {
            assert!(!trace.slots.is_empty(), "set {name} advanced");
        }
        trace
            .verify()
            .unwrap_or_else(|e| panic!("set {name} trace window-verifies: {e:?}"));
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn multi_set_scenario_over_unix() {
    let (socket, trace_out) = scratch("msunix");
    std::fs::remove_file(&socket).ok();
    let child = spawn_admitd(
        &socket,
        &["--cpus", "1", "--trace-out", trace_out.to_str().unwrap()],
    );
    multi_set_scenario(DaemonAddr::Unix(socket.clone()), child, &trace_out);
    std::fs::remove_file(&socket).ok();
}

#[test]
fn multi_set_scenario_over_tcp() {
    let dir = std::env::temp_dir();
    let trace_out = dir.join(format!("admitd-mstcp-{}.trace.json", std::process::id()));
    let (child, addr) =
        spawn_admitd_tcp(&["--cpus", "1", "--trace-out", trace_out.to_str().unwrap()]);
    multi_set_scenario(DaemonAddr::Tcp(addr), child, &trace_out);
}

// ---------------------------------------------------------------------------
// Socket-path bugfix sweep.
// ---------------------------------------------------------------------------

/// Total CPU ticks (utime + stime) a process has burned, per
/// `/proc/<pid>/stat`.
#[cfg(target_os = "linux")]
fn cpu_ticks(pid: u32) -> u64 {
    let stat = std::fs::read_to_string(format!("/proc/{pid}/stat")).expect("read /proc stat");
    // comm may contain spaces; fields restart after the closing paren.
    let rest = &stat[stat.rfind(')').expect("comm paren") + 2..];
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // rest[0] is field 3 (state); utime/stime are fields 14/15.
    fields[11].parse::<u64>().unwrap() + fields[12].parse::<u64>().unwrap()
}

/// The accept loop must back off while idle instead of busy-spinning:
/// one second of idle daemon may cost at most a few CPU ticks.
#[cfg(target_os = "linux")]
#[test]
fn accept_loop_idles_without_busy_spin() {
    let (socket, _) = scratch("idlecpu");
    std::fs::remove_file(&socket).ok();
    let mut child = spawn_admitd(&socket, &["--no-trace"]);
    let mut client = connect(&socket);
    client.stats().expect("daemon is up");

    let before = cpu_ticks(child.id());
    std::thread::sleep(Duration::from_millis(1_000));
    let spent = cpu_ticks(child.id()) - before;
    // A busy-spinning accept loop burns ~a full core (≈100 ticks/s at
    // the usual 100 Hz); the backed-off poll plus one connection's
    // 100 ms read slices should be well under 25.
    assert!(
        spent <= 25,
        "idle daemon burned {spent} CPU ticks in 1 s — accept loop is busy-spinning"
    );

    client.shutdown().expect("shutdown");
    assert!(child.wait().expect("exit").success());
    std::fs::remove_file(&socket).ok();
}

/// A SIGKILLed daemon leaves its socket file behind; a restart on the
/// same path must probe the dead peer, unlink, and bind — while a
/// *live* daemon's socket must never be stolen (the second daemon exits
/// with the documented usage/transport code 2).
#[test]
fn stale_socket_from_sigkilled_daemon_is_reclaimed() {
    let (socket, _) = scratch("stale");
    std::fs::remove_file(&socket).ok();
    let mut first = spawn_admitd(&socket, &["--no-trace"]);
    let mut c = connect(&socket);
    let r = c.join(1_000, 4_000).expect("join");
    assert!(matches!(r.status, Status::Admitted), "{:?}", r.error);

    first.kill().expect("SIGKILL daemon");
    first.wait().expect("reap");
    assert!(
        socket.exists(),
        "SIGKILL leaves the stale socket file behind"
    );

    // Restart on the same path: connect-probe finds nobody home,
    // unlink-then-bind succeeds.
    let mut second = spawn_admitd(&socket, &["--no-trace"]);
    let mut c2 = connect(&socket);
    let r = c2.join(1_000, 4_000).expect("join after restart");
    assert!(matches!(r.status, Status::Admitted), "{:?}", r.error);

    // A third daemon on the *live* socket must refuse, not steal it.
    let status = Command::new(env!("CARGO_BIN_EXE_admitd"))
        .arg("--socket")
        .arg(&socket)
        .args(["--cpus", "8", "--no-overhead", "--no-trace"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run third admitd");
    assert_eq!(
        status.code(),
        Some(2),
        "binding a live socket must exit with the usage/transport code"
    );
    // …and the live daemon is untouched by the refused bind.
    let r = c2.join(1_000, 8_000).expect("live daemon still serves");
    assert!(matches!(r.status, Status::Admitted), "{:?}", r.error);

    c2.shutdown().expect("shutdown");
    assert!(second.wait().expect("exit").success());
    std::fs::remove_file(&socket).ok();
}

/// TCP chaos: a peer that starts a frame and stalls (half-open
/// connection) is reaped by the idle timeout without wedging the accept
/// loop or other clients.
#[test]
fn half_open_tcp_peer_is_reaped_without_wedging_others() {
    let (mut child, addr) = spawn_admitd_tcp(&["--no-trace", "--idle-timeout-ms", "400"]);

    // Stalled peer: claims a 64-byte frame, sends 3 bytes, goes silent.
    let mut stalled = TcpStream::connect(&addr).expect("connect stalled peer");
    stalled
        .write_all(&64u32.to_le_bytes())
        .expect("length prefix");
    stalled.write_all(b"abc").expect("partial body");
    stalled.flush().expect("flush");

    // Meanwhile other clients round-trip freely.
    let daddr = DaemonAddr::Tcp(addr.clone());
    let mut healthy = connect_addr(&daddr);
    for i in 0..5 {
        let r = healthy.join(1_000, 100_000).expect("healthy join");
        assert!(
            matches!(r.status, Status::Admitted),
            "join {i} while a peer stalls mid-frame: {:?}",
            r.error
        );
    }

    // The stalled connection is shut down by the daemon within the idle
    // timeout (plus slack): reads drain the error frame, then EOF.
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let started = Instant::now();
    let mut buf = [0u8; 256];
    loop {
        match stalled.read(&mut buf) {
            Ok(0) => break,    // daemon closed the half-open peer
            Ok(_) => continue, // the "stalled mid-frame" error reply
            Err(_) => break,   // reset also counts as reaped
        }
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "half-open peer was not reaped"
    );

    connect_addr(&daddr).shutdown().expect("shutdown");
    assert!(child.wait().expect("exit").success());
}

/// TCP chaos: an oversized length prefix is answered with an error and a
/// close of *that* connection only — other clients keep working.
#[test]
fn oversized_frame_rejected_without_tearing_down_other_clients() {
    let (mut child, addr) = spawn_admitd_tcp(&["--no-trace"]);

    let mut evil = TcpStream::connect(&addr).expect("connect evil peer");
    evil.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    // 2 MiB length prefix: double MAX_FRAME, no body needed.
    evil.write_all(&(2 * proto::MAX_FRAME).to_le_bytes())
        .expect("oversized prefix");
    evil.flush().expect("flush");

    // The daemon answers with a classified error reply, then closes.
    let frame = proto::read_frame(&mut evil)
        .expect("error reply frame")
        .expect("frame before close");
    let reply: Reply = serde_json::from_str(&frame).expect("reply parses");
    assert!(matches!(reply.status, Status::Error));
    assert!(
        reply.error.as_deref().unwrap_or("").contains("malformed"),
        "{:?}",
        reply.error
    );
    match proto::read_frame(&mut evil) {
        Ok(None) | Err(_) => {} // closed
        Ok(Some(f)) => panic!("connection should be closed, got frame {f}"),
    }

    // Other clients are untouched.
    let daddr = DaemonAddr::Tcp(addr.clone());
    let mut healthy = connect_addr(&daddr);
    let r = healthy.join(1_000, 100_000).expect("join");
    assert!(matches!(r.status, Status::Admitted), "{:?}", r.error);

    healthy.shutdown().expect("shutdown");
    assert!(child.wait().expect("exit").success());
}

/// One lockstep run of interleaved two-set traffic over TCP; returns the
/// (default, alpha) per-set trace JSON dumped at shutdown.
fn deterministic_two_set_run(run: usize) -> (String, String) {
    let dir = std::env::temp_dir();
    let base = dir.join(format!("admitd-det{run}-{}.trace.json", std::process::id()));
    let (mut child, addr) =
        spawn_admitd_tcp(&["--cpus", "4", "--trace-out", base.to_str().unwrap()]);
    let daddr = DaemonAddr::Tcp(addr);

    let mut admin = connect_addr(&daddr);
    let r = admin.create_set("alpha").expect("create alpha");
    assert!(matches!(r.status, Status::SetCreated), "{:?}", r.error);

    let mut d = connect_addr(&daddr);
    let mut a = connect_addr(&daddr);
    a.set_scope(Some("alpha"));

    // Lockstep call/response so the request interleaving is identical
    // across runs: default gets 1/16-weight tasks, alpha 1/8 — the two
    // sets' logs must differ from each other but match across runs.
    for k in 0..24 {
        let rd = d.join(1_000, 16_000).expect("join default");
        assert!(matches!(rd.status, Status::Admitted), "{:?}", rd.error);
        let ra = a.join(2_000, 16_000).expect("join alpha");
        assert!(matches!(ra.status, Status::Admitted), "{:?}", ra.error);
        let last = (rd.task.unwrap(), ra.task.unwrap());
        if k % 3 == 2 {
            assert!(matches!(
                d.leave(last.0).expect("leave").status,
                Status::Left
            ));
            assert!(matches!(
                a.leave(last.1).expect("leave").status,
                Status::Left
            ));
        }
    }

    admin.shutdown().expect("shutdown");
    assert!(child.wait().expect("exit").success());

    let base_str = base.to_str().unwrap().to_string();
    let alpha_path = base_str.replace(".trace.json", ".trace.alpha.json");
    let default_json = std::fs::read_to_string(&base_str).expect("default trace");
    let alpha_json = std::fs::read_to_string(&alpha_path).expect("alpha trace");
    std::fs::remove_file(&base_str).ok();
    std::fs::remove_file(&alpha_path).ok();
    (default_json, alpha_json)
}

/// Two sets advancing under interleaved clients produce per-set decision
/// logs that are byte-identical across runs (and differ between sets).
#[test]
fn two_sets_have_byte_deterministic_decision_logs() {
    let (d0, a0) = deterministic_two_set_run(0);
    let (d1, a1) = deterministic_two_set_run(1);
    assert_eq!(d0, d1, "default set's decision log must be byte-stable");
    assert_eq!(a0, a1, "alpha set's decision log must be byte-stable");
    assert_ne!(
        d0, a0,
        "the two sets carry different workloads — identical logs would \
         mean they share one schedule"
    );
    // And they verify, of course.
    for json in [&d0, &a0] {
        ScheduleTrace::from_json(json)
            .expect("trace parses")
            .verify()
            .expect("trace window-verifies");
    }
}
