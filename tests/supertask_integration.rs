//! E7 — Fig. 5 as an integration test, plus broader supertasking checks
//! combining pfair-core's supertasks with the sched-sim engine.

use pfair_core::sched::SchedConfig;
use pfair_core::supertask::{run_with_supertask, Component, Supertask};
use pfair_model::{Rat, TaskSet};

fn fig5_supertask() -> Supertask {
    Supertask::new(vec![
        Component::new(1, 5).unwrap(),
        Component::new(1, 45).unwrap(),
    ])
}

fn fig5_normal() -> TaskSet {
    TaskSet::from_pairs([(1u64, 2u64), (1, 3), (1, 3), (2, 9)]).unwrap()
}

/// The exact figure: with the higher-id-first resolution of the arbitrary
/// S-vs-Y tie, S receives slots 1 and 4 and then nothing until slot 10, so
/// component T's job over [5, 10) starves and misses at t = 10.
#[test]
fn fig5_exact_reproduction() {
    let cfg = SchedConfig::pd2(2).with_higher_id_first(true);
    let run = run_with_supertask(&fig5_normal(), fig5_supertask(), cfg, 45, false);
    assert_eq!(run.pfair_misses, 0);

    let s = run.supertask_id;
    let s_slots: Vec<usize> = run
        .schedule
        .iter()
        .enumerate()
        .filter(|(_, slot)| slot.contains(&s))
        .map(|(t, _)| t)
        .take(3)
        .collect();
    // "No quantum is allocated to S in the interval [5, 10)" — S's first
    // two quanta land before slot 5 and its third at ≥ 10.
    assert!(s_slots[0] < 5 && s_slots[1] < 5, "S slots: {s_slots:?}");
    assert!(s_slots[2] >= 10, "S slots: {s_slots:?}");

    let miss = run.supertask.misses()[0];
    assert_eq!(miss.component, 0);
    assert_eq!(miss.deadline, 10);
    assert_eq!(miss.job, 1);
}

/// Reweighting by 1/p_min (Holman–Anderson) eliminates the miss over ten
/// full hyperperiods, for both tie orders.
#[test]
fn fig5_reweighting_is_sufficient() {
    for order in [false, true] {
        let cfg = SchedConfig::pd2(2).with_higher_id_first(order);
        let run = run_with_supertask(&fig5_normal(), fig5_supertask(), cfg, 450, true);
        assert_eq!(run.pfair_misses, 0);
        assert!(run.supertask.misses().is_empty(), "order {order}");
    }
}

/// A supertask whose components all share the supertask's period needs no
/// reweighting at all: the cumulative allocation pattern already matches
/// component demand. (Naive supertasking is not *always* broken — Fig. 5
/// needed a misaligned component.)
#[test]
fn aligned_components_need_no_reweighting() {
    let st = Supertask::new(vec![
        Component::new(1, 9).unwrap(),
        Component::new(1, 9).unwrap(),
    ]);
    assert_eq!(st.cumulative_weight(), Rat::new(2, 9));
    let cfg = SchedConfig::pd2(2);
    let run = run_with_supertask(&fig5_normal(), st, cfg, 9 * 45, false);
    assert_eq!(run.pfair_misses, 0);
    assert!(
        run.supertask.misses().is_empty(),
        "{:?}",
        run.supertask.misses()
    );
}

/// Reweighting inflates total utilization; verify the system stays
/// feasible and that the reweighted supertask's extra allocation equals
/// the weight delta over long horizons (no silent starvation elsewhere).
#[test]
fn reweighting_cost_is_bounded() {
    let st = fig5_supertask();
    let naive = st.cumulative_weight();
    let rew = st.reweighted_weight();
    assert_eq!(rew - naive, Rat::new(1, 5));
    // The paper's §5.5 caveat: the fix costs real capacity. For this set
    // 1/5 of a processor is the price of binding T and U.
    let total_with_rew: Rat = fig5_normal().total_utilization() + rew;
    assert!(total_with_rew <= Rat::from(2u64));
}
