//! Soak acceptance: 10⁵ join/leave requests through a real Unix socket
//! against an in-process daemon running **two live task-set shards**,
//! with a counting global allocator proving the admission fast path
//! (every `evaluate` pass, across every batch of every set) performs
//! **zero** heap allocations, and both resulting traces window-verified
//! offline.
//!
//! The daemon marks its fast path with a thread-local flag
//! ([`daemon::alloc_probe`]); the allocator installed here bumps
//! [`daemon::alloc_probe::FAST_PATH_ALLOCS`] whenever an allocation
//! lands inside that bracket. Running the server on a thread in *this*
//! process puts its evaluation passes under this allocator.

use daemon::client::DaemonClient;
use daemon::proto::{Reply, Request, Status};
use daemon::server::{self, ServerConfig};
use std::alloc::{GlobalAlloc, Layout, System};

struct CountingAlloc;

// SAFETY: delegates to `System`; the extra work is a thread-local flag
// read and a relaxed atomic increment, neither of which allocates.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if daemon::alloc_probe::is_active() {
            daemon::alloc_probe::record();
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if daemon::alloc_probe::is_active() {
            daemon::alloc_probe::record();
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if daemon::alloc_probe::is_active() {
            daemon::alloc_probe::record();
        }
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const REQUESTS: u64 = 100_000;
const WINDOW: usize = 64; // per connection; two connections in flight
const MAX_ACTIVE: usize = 200; // per set

#[test]
fn soak_100k_requests_alloc_free_fast_path_and_verified_trace() {
    let socket = std::env::temp_dir().join(format!("admitd-soak-{}.sock", std::process::id()));
    std::fs::remove_file(&socket).ok();

    let mut cfg = ServerConfig::new(socket.clone(), 16);
    cfg.core.params = overhead::OverheadParams::zero();
    cfg.core.record_trace = true;
    let server = std::thread::spawn(move || server::run(cfg).expect("server run"));

    let mut main = DaemonClient::connect_retry(&socket, std::time::Duration::from_secs(10))
        .expect("daemon socket");
    // Second live set: half the traffic targets `side`, so the
    // zero-alloc property is proven with ≥2 sets decided per loop.
    let created = main.create_set("side").expect("create side set");
    assert!(
        matches!(created.status, Status::SetCreated),
        "{:?}",
        created.error
    );
    let mut side = DaemonClient::connect_retry(&socket, std::time::Duration::from_secs(10))
        .expect("daemon socket");
    side.set_scope(Some("side"));

    // Deterministic join/leave mix, pipelined WINDOW deep per
    // connection. A small LCG keeps the stream seeded without pulling
    // rand into this test.
    let mut state = 0x2545_F491_4F6C_DD1D_u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut active: [Vec<u32>; 2] = [Vec::new(), Vec::new()];
    let mut inflight = [0usize; 2];
    let (mut admitted, mut rejected, mut left, mut errors) = (0u64, 0u64, 0u64, 0u64);

    let mut drain =
        |client: &mut DaemonClient, inflight: &mut usize, active: &mut Vec<u32>, down_to: usize| {
            while *inflight > down_to {
                let reply: Reply = client.recv().expect("daemon reply");
                *inflight -= 1;
                match reply.status {
                    Status::Admitted => {
                        admitted += 1;
                        active.push(reply.task.expect("admitted id"));
                    }
                    Status::Rejected => rejected += 1,
                    // Victims are pulled out of `active` at *send* time (so
                    // the pipeline never targets one twice); the reply only
                    // counts.
                    Status::Left => left += 1,
                    _ => errors += 1,
                }
            }
        };

    for k in 0..REQUESTS {
        // Alternate sets request-by-request: both shards stay hot in
        // every quantum of the soak.
        let which = (k % 2) as usize;
        let client = if which == 0 { &mut main } else { &mut side };
        drain(client, &mut inflight[which], &mut active[which], WINDOW - 1);
        let nonce = client.take_nonce();
        let active = &mut active[which];
        // Leave when crowded (or by coin toss with someone active);
        // otherwise join at a quantized weight between 1/100 and ~1/8.
        let mut req = if !active.is_empty() && (active.len() >= MAX_ACTIVE || rng() % 100 < 45) {
            let victim = active.swap_remove((rng() % active.len() as u64) as usize);
            Request::leave(nonce, victim)
        } else {
            let period_quanta = 8 + rng() % 93; // 8..=100 quanta of 1ms
            let exec_quanta = 1 + rng() % (period_quanta / 8).max(1);
            Request::join(nonce, exec_quanta * 1_000, period_quanta * 1_000)
        };
        if which == 1 {
            req = req.with_set("side");
        }
        client.send(&req).expect("send");
        inflight[which] += 1;
    }
    drain(&mut main, &mut inflight[0], &mut active[0], 0);
    drain(&mut side, &mut inflight[1], &mut active[1], 0);

    assert_eq!(admitted + rejected + left + errors, REQUESTS);
    // Leaves target live ids from *our* replies, so none may error; the
    // only admissible errors would be duplicate-victim races, which one
    // connection per set never creates.
    assert_eq!(
        errors, 0,
        "per-set single-connection soak must not see errors"
    );
    assert!(admitted > 10_000, "soak actually admitted work: {admitted}");
    assert!(left > 10_000, "soak actually departed work: {left}");

    let bye = main.shutdown().expect("shutdown");
    assert!(matches!(bye.status, Status::ShuttingDown));
    let report = server.join().expect("server thread");

    // Acceptance #1: zero allocations anywhere inside the fast path —
    // with two sets live the whole soak.
    assert_eq!(
        daemon::alloc_probe::take(),
        0,
        "admission fast path allocated"
    );

    // Acceptance #2: *each* set window-verifies — both full dynamic
    // schedules replay clean offline, independently.
    assert_eq!(report.sets.len(), 2, "default + side live at shutdown");
    for name in ["default", "side"] {
        let set = report
            .sets
            .iter()
            .find(|s| s.name == name && !s.dropped)
            .unwrap_or_else(|| panic!("set {name} in the shutdown report"));
        let trace = set
            .trace
            .as_ref()
            .unwrap_or_else(|| panic!("set {name} records a trace"));
        assert!(!trace.slots.is_empty(), "set {name} advanced the schedule");
        trace
            .verify()
            .unwrap_or_else(|e| panic!("set {name} window-verifies: {e:?}"));
    }

    std::fs::remove_file(&socket).ok();
}
