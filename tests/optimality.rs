//! E12 — optimality and the tie-break ablation, across crates.
//!
//! PD², PD, and PF are optimal: zero misses on any feasible set. EPDF
//! (earliest-pseudo-deadline-first with *no* tie-breaks) is not optimal for
//! M > 2 — the tie-breaks are load-bearing. This test hunts for an EPDF
//! counterexample over seeded random heavy task sets at full utilization
//! and requires (a) that one exists and (b) that PD² schedules every one of
//! the same sets.

use pfair_core::sched::SchedConfig;
use pfair_core::Policy;
use pfair_model::TaskSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sched_sim::MultiSim;

/// Random fully-utilizing task sets built from heavy tasks plus a filler:
/// the regime where EPDF's missing tie-breaks bite.
fn full_util_heavy_set(rng: &mut StdRng, m: u32) -> TaskSet {
    let mut budget_num = (m as u64) * 60; // utilization in 60ths
    let mut pairs: Vec<(u64, u64)> = Vec::new();
    while budget_num > 30 {
        // Heavy weights from {1/2, 3/5, 2/3, 3/4, 5/6}: in 60ths:
        let (e, p, cost) = match rng.gen_range(0..5) {
            0 => (1u64, 2u64, 30u64),
            1 => (3, 5, 36),
            2 => (2, 3, 40),
            3 => (3, 4, 45),
            _ => (5, 6, 50),
        };
        if cost <= budget_num {
            pairs.push((e, p));
            budget_num -= cost;
        } else {
            break;
        }
    }
    if budget_num > 0 {
        pairs.push((budget_num, 60)); // exact filler
    }
    TaskSet::from_pairs(pairs).unwrap()
}

#[test]
fn epdf_misses_somewhere_pd2_never_does() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut epdf_missed_once = false;
    for trial in 0..60 {
        let m = rng.gen_range(3..=6);
        let set = full_util_heavy_set(&mut rng, m);
        assert!(set.feasible_on(m), "trial {trial}");
        let horizon = (4 * set.hyperperiod()).min(20_000);

        let mut pd2 = MultiSim::new(&set, SchedConfig::pd2(m));
        assert_eq!(
            pd2.run(horizon).misses,
            0,
            "PD2 must never miss (trial {trial}, M={m})"
        );

        let mut epdf = MultiSim::new(&set, SchedConfig::pd2(m).with_policy(Policy::Epdf));
        if epdf.run(horizon).misses > 0 {
            epdf_missed_once = true;
        }
    }
    assert!(
        epdf_missed_once,
        "expected at least one EPDF counterexample across 60 full-utilization sets"
    );
}

/// On one or two processors EPDF *is* optimal (Anderson & Srinivasan);
/// verify no misses there.
#[test]
fn epdf_is_optimal_on_two_processors() {
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..40 {
        let set = full_util_heavy_set(&mut rng, 2);
        let horizon = (4 * set.hyperperiod()).min(20_000);
        let mut epdf = MultiSim::new(&set, SchedConfig::pd2(2).with_policy(Policy::Epdf));
        assert_eq!(epdf.run(horizon).misses, 0, "set {set:?}");
    }
}

/// All four policies agree on total allocation volume over hyperperiods
/// (fairness of volume), even where EPDF misses windows.
#[test]
fn allocation_volume_is_policy_independent() {
    let set = TaskSet::from_pairs([(2u64, 3u64), (3, 4), (5, 6), (1, 12), (2, 3), (1, 2)]).unwrap();
    let m = set.min_processors();
    let h = set.hyperperiod();
    let mut volumes = Vec::new();
    for pol in Policy::ALL {
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(m).with_policy(pol));
        let metrics = sim.run(2 * h);
        volumes.push(metrics.allocated_quanta);
    }
    assert!(
        volumes.windows(2).all(|w| w[0] == w[1]),
        "volumes {volumes:?}"
    );
}

/// PF and PD² can order subtasks differently, but both remain miss-free;
/// sanity-check on a heavy mixed set.
#[test]
fn pf_pd_pd2_all_optimal_on_mixed_set() {
    let set = TaskSet::from_pairs([
        (8u64, 11u64),
        (5, 7),
        (3, 4),
        (2, 3),
        (1, 2),
        (5, 6),
        (7, 12),
    ])
    .unwrap();
    let m = set.min_processors();
    for pol in [Policy::Pf, Policy::Pd, Policy::Pd2] {
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(m).with_policy(pol));
        let metrics = sim.run(4 * set.hyperperiod().min(25_000));
        assert_eq!(metrics.misses, 0, "{}", pol.name());
    }
}
