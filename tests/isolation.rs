//! §5.3 — temporal isolation: "each task's processor share is guaranteed
//! even if other tasks 'misbehave' by attempting to execute for more than
//! their prescribed shares."
//!
//! Contrast experiment: one task overruns its declared cost. Under global
//! EDF the overrun executes at deadline priority and pushes *other* tasks
//! into misses; under PD² the scheduler allocates by weight, so the
//! victims' allocations are structurally untouched — the misbehaver's
//! excess demand is simply never served.

use pfair_core::sched::SchedConfig;
use pfair_model::{TaskId, TaskSet};
use sched_sim::{GlobalEdfSim, MultiSim};

fn workload() -> TaskSet {
    // M = 2. Declared: misbehaver (2,8) + victims filling most of the rest.
    TaskSet::from_pairs([
        (2u64, 8u64), // task 0: will overrun ×4
        (1, 2),
        (1, 2),
        (1, 4),
        (1, 4),
    ])
    .unwrap()
}

#[test]
fn global_edf_lets_overrun_harm_victims() {
    let set = workload();
    // Well-behaved baseline: everyone meets deadlines on 2 processors.
    let mut honest = GlobalEdfSim::new(&set, 2);
    let h = honest.run(4_000);
    assert_eq!(h.deadline_misses, 0, "baseline must be schedulable");

    // Task 0 misbehaves: demands 8 quanta per 8-quantum period instead
    // of 2 (declared utilization 1/4, actual 1).
    let mut rogue = GlobalEdfSim::new(&set, 2);
    rogue.set_actual_exec(0, 8);
    rogue.run(4_000);
    let victim_misses: u64 = rogue.misses_by_task()[1..].iter().sum();
    assert!(
        victim_misses > 0,
        "global EDF must leak the overrun onto victims: {:?}",
        rogue.misses_by_task()
    );
}

#[test]
fn pd2_isolates_victims_structurally() {
    let set = workload();
    // Under PD², the misbehaver *cannot* execute beyond its weight: the
    // scheduler hands out quanta by subtask, so its "overrun" manifests as
    // its own jobs never finishing, never as extra allocation. Victims'
    // shares are exact.
    let mut sim = MultiSim::new(&set, SchedConfig::pd2(2));
    let horizon = 4_000u64;
    let metrics = sim.run(horizon);
    assert_eq!(metrics.misses, 0);
    for (id, task) in set.iter() {
        let got = sim.scheduler().allocations(id);
        let expected = horizon / task.period * task.exec;
        assert_eq!(got, expected, "{id} received its exact share");
    }
    // In particular the would-be misbehaver got exactly 2/8 of a
    // processor and no more — isolation by construction.
    assert_eq!(sim.scheduler().allocations(TaskId(0)), horizon / 8 * 2);
}

/// The §5.3 triangle, closed: vanilla EDF leaks an overrun onto victims;
/// a constant-bandwidth server confines it at the cost of extra scheduler
/// bookkeeping; PD² confines it with none — isolation is structural.
#[test]
fn cbs_fixes_edf_at_a_bookkeeping_cost_pd2_needs_nothing() {
    use uniproc::cbs::{edf_without_server, CbsSim, Request};
    // One processor: hard tasks at U = 0.65 + a bursty stream demanding
    // 2× its 0.2 reservation.
    let hard = [(2u64, 5u64), (1, 4)];
    let stream: Vec<Request> = (0..1_000)
        .map(|k| Request {
            arrival: k * 10,
            demand: 4,
        })
        .collect();
    let horizon = 10_000;

    let naked = edf_without_server(&hard, 10, &stream, horizon);
    assert!(naked.hard_misses > 0, "vanilla EDF leaks");

    let mut cbs = CbsSim::new(&hard, 2, 10, stream);
    let guarded = cbs.run(horizon);
    assert_eq!(guarded.hard_misses, 0, "CBS confines");
    assert!(
        guarded.server_rule_invocations > 0,
        "…at a bookkeeping cost (the paper's 'increases scheduling overhead')"
    );
}

#[test]
fn reweighting_not_overrun_is_the_sanctioned_path() {
    // If the "misbehaver" legitimately needs more capacity it must
    // re-join at a higher weight (§5.2), which admission control checks:
    // 1/4 → 1 does NOT fit next to 1.5 of victims on M = 2…
    let set = workload();
    let mut sched = pfair_core::PfairScheduler::new(&set, SchedConfig::pd2(2));
    let free_at = sched.leave(TaskId(0), 0).unwrap();
    assert_eq!(free_at, 0, "never-scheduled task leaves immediately");
    assert!(sched
        .join(pfair_model::Task::new(8, 8).unwrap(), 0)
        .is_err());
    // …but a truthful 2/8 → 3/8 upgrade fits.
    assert!(sched.join(pfair_model::Task::new(3, 8).unwrap(), 0).is_ok());
}
