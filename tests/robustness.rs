//! Robustness property tests: the optimality and feasibility claims of
//! Sections 2 and 5, under randomized stress — early releases, IS delays,
//! and join/leave churn.

use pfair_core::sched::{DelayModel, EarlyRelease, JoinError, PfairScheduler, SchedConfig};
use pfair_core::subtask::SubtaskIndex;
use pfair_model::{Task, TaskId, TaskSet};
use proptest::prelude::*;
use sched_sim::MultiSim;

fn arb_taskset(max_tasks: usize) -> impl Strategy<Value = TaskSet> {
    prop::collection::vec((1u64..8, 2u64..16), 1..max_tasks)
        .prop_map(|raw| TaskSet::from_pairs(raw.into_iter().map(|(e, p)| (e.min(p), p))).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ERfair never introduces misses: early releases only consume slack.
    #[test]
    fn erfair_preserves_deadlines(set in arb_taskset(7), er in prop::sample::select(vec![
        EarlyRelease::IntraJob,
        EarlyRelease::Unrestricted,
    ])) {
        let m = set.min_processors();
        let horizon = (2 * set.hyperperiod()).min(4_000);
        let cfg = SchedConfig::pd2(m).with_early_release(er);
        let mut sim = MultiSim::new(&set, cfg);
        prop_assert_eq!(sim.run(horizon).misses, 0);
    }

    /// IS delays never cause misses (feasibility is unaffected by late
    /// releases: windows shift right together).
    #[test]
    fn is_delays_preserve_deadlines(
        set in arb_taskset(6),
        seed in 0u64..1_000,
        p_late_pct in 0u32..40,
    ) {
        struct RandomDelays {
            rng: rand::rngs::StdRng,
            p_pct: u32,
        }
        impl DelayModel for RandomDelays {
            fn delay(&mut self, _: TaskId, _: SubtaskIndex) -> u64 {
                use rand::Rng as _;
                if self.rng.gen_range(0..100) < self.p_pct {
                    self.rng.gen_range(1..4)
                } else {
                    0
                }
            }
        }
        use rand::SeedableRng as _;
        let m = set.min_processors();
        let horizon = (2 * set.hyperperiod()).min(4_000);
        let delays = RandomDelays {
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            p_pct: p_late_pct,
        };
        let mut sched = PfairScheduler::with_delays(&set, SchedConfig::pd2(m), delays);
        sched.run(horizon);
        prop_assert!(sched.misses().is_empty(), "{:?}", sched.misses());
    }

    /// Join/leave churn never causes misses, and the admission guard plus
    /// the deferred weight release keep Σw ≤ M at all times.
    #[test]
    fn join_leave_churn_preserves_deadlines(
        base in arb_taskset(4),
        churn in prop::collection::vec((1u64..6, 2u64..12, 1u64..200), 0..12),
    ) {
        let m = base.min_processors() + 1; // headroom for joiners
        let mut sched = PfairScheduler::new(&base, SchedConfig::pd2(m));
        let horizon = 2_000u64;
        let mut joined: Vec<TaskId> = Vec::new();
        let mut events: Vec<(u64, Task)> = churn
            .into_iter()
            .map(|(e, p, at)| (at * 7 % horizon, Task::new(e.min(p), p).unwrap()))
            .collect();
        events.sort_by_key(|&(at, _)| at);
        let mut out = Vec::new();
        let mut next = 0usize;
        for t in 0..horizon {
            // Alternate: at event times, either join a new task or remove
            // the oldest joiner.
            while next < events.len() && events[next].0 == t {
                let (_, task) = events[next];
                next += 1;
                if next % 2 == 0 {
                    match sched.join(task, t) {
                        Ok(id) => joined.push(id),
                        Err(JoinError::Overload) => {} // correctly rejected
                        Err(JoinError::WrongSlot) => {
                            unreachable!("joins happen at the current slot")
                        }
                    }
                } else if let Some(id) = joined.pop() {
                    let _ = sched.leave(id, t);
                }
            }
            prop_assert!(sched.total_weight().to_f64() <= m as f64 + 1e-6);
            out.clear();
            sched.tick(t, &mut out);
            prop_assert!(out.len() <= m as usize);
        }
        prop_assert!(sched.misses().is_empty(), "{:?}", sched.misses());
    }

    /// The dispatch engine's invariants hold under any feasible workload:
    /// allocation bookkeeping is exact and the per-job preemption bound of
    /// Section 4 is respected in aggregate.
    #[test]
    fn engine_accounting_invariants(set in arb_taskset(7), extra in 0u32..2) {
        let m = set.min_processors() + extra;
        let horizon = (2 * set.hyperperiod()).min(4_000);
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(m));
        let metrics = sim.run(horizon);
        prop_assert_eq!(metrics.allocated_quanta + metrics.idle_quanta,
            horizon * m as u64);
        let mut bound = 0u64;
        for (_, t) in set.iter() {
            let jobs = horizon / t.period + 1;
            bound += jobs * (t.exec - 1).min(t.period - t.exec);
        }
        prop_assert!(metrics.preemptions <= bound);
        prop_assert!(metrics.context_switches >= metrics.migrations);
        prop_assert_eq!(metrics.misses, 0);
    }
}
