//! Tournament + slack sweep gate (CI): the scorecard must be
//! byte-identical at any `--threads`/`--procs` combination, its CSV must
//! carry the documented schema, and a slack-reservation run traced under
//! a fault storm must re-verify offline through `verify_trace`.
//!
//! Exercises the full binary surface via `CARGO_BIN_EXE_*`: set
//! generation from `(seed, set index)`, the exact global-EDF test inside
//! the scoring path, SweepDriver sharding, and the schema-v2 trace
//! round-trip.

use std::path::PathBuf;
use std::process::{Command, Output};

/// Small but full-roster: 8 U/M steps × 8 schemes = 64 points, 3 sets
/// each, one 720-quantum hyperperiod per exact-test simulation.
const TOURNAMENT: [&str; 11] = [
    "--cpus",
    "2",
    "--tasks",
    "6",
    "--sets",
    "3",
    "--horizon",
    "720",
    "--seed",
    "3",
    "--csv",
];

const SLACK: [&str; 11] = [
    "--tasks",
    "5",
    "--util",
    "1.25",
    "--sets",
    "2",
    "--horizon",
    "400",
    "--seed",
    "3",
    "--csv",
];

fn run(bin: &str, args: &[&str], extra: &[&str]) -> Output {
    let exe = match bin {
        "tournament" => env!("CARGO_BIN_EXE_tournament"),
        "slack" => env!("CARGO_BIN_EXE_slack"),
        "verify_trace" => env!("CARGO_BIN_EXE_verify_trace"),
        other => panic!("unknown binary {other}"),
    };
    Command::new(exe)
        .args(args)
        .args(extra)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"))
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).unwrap()
}

fn temp_path(tag: &str) -> (PathBuf, String) {
    let p = std::env::temp_dir().join(format!("pfair-tourn-{}-{tag}", std::process::id()));
    let s = p.to_str().unwrap().to_string();
    (p, s)
}

#[test]
fn tournament_is_byte_identical_across_threads_and_procs() {
    let expected = stdout_of(&run("tournament", &TOURNAMENT, &["--threads", "1"]));
    assert!(expected.lines().count() > 64, "scorecard missing rows");

    let t4 = stdout_of(&run("tournament", &TOURNAMENT, &["--threads", "4"]));
    assert_eq!(t4, expected, "--threads 4 must match --threads 1");

    let (ck, ck_str) = temp_path("procs.json");
    let _ = std::fs::remove_file(&ck);
    let _ = std::fs::remove_dir_all(experiments::checkpoint::shard_dir(&ck));
    let mp = stdout_of(&run(
        "tournament",
        &TOURNAMENT,
        &["--procs", "2", "--threads", "1", "--checkpoint", &ck_str],
    ));
    assert_eq!(mp, expected, "--procs 2 must match --threads 1");
    let _ = std::fs::remove_file(&ck);
    let _ = std::fs::remove_dir_all(experiments::checkpoint::shard_dir(&ck));
}

#[test]
fn tournament_csv_schema_and_scorecard_sanity() {
    let csv = stdout_of(&run("tournament", &TOURNAMENT, &["--threads", "2"]));
    let mut lines = csv.lines();
    assert_eq!(
        lines.next().unwrap(),
        "U/M,scheme,sched,rm_ll,rm_exact,gfb,preempt/kj,migr/kj,infl_util"
    );
    let rows: Vec<&str> = lines.collect();
    // 8 U/M steps × the full 8-scheme roster.
    assert_eq!(rows.len(), 64, "one row per (step, scheme)");
    let mut gedf_rows = 0;
    for row in rows {
        let cols: Vec<&str> = row.split(',').collect();
        assert_eq!(cols.len(), 9, "row {row}");
        let sched: f64 = cols[2].parse().expect("sched ratio parses");
        assert!((0.0..=1.0).contains(&sched), "row {row}");
        if cols[1] == "G-EDF" {
            gedf_rows += 1;
            // The GFB bound is sufficient-only: it can never accept a set
            // the exact test rejects, so per point gfb ≤ sched.
            let gfb: f64 = cols[5].parse().expect("gfb ratio parses");
            assert!(gfb <= sched + 1e-9, "bound beat the exact test: {row}");
            // Global schemes have no per-processor RM columns.
            assert_eq!(cols[3], "-", "row {row}");
        }
        if ["FF", "BF", "WF", "NF", "FFD", "BFD"].contains(&cols[1]) {
            // Partitioned EDF never migrates; the column is 0.0 or "-"
            // (no set accepted at this utilization).
            assert!(cols[7] == "0.0" || cols[7] == "-", "row {row}");
        }
    }
    assert_eq!(gedf_rows, 8);
}

#[test]
fn slack_is_byte_identical_across_threads() {
    let t1 = stdout_of(&run("slack", &SLACK, &["--threads", "1"]));
    let t4 = stdout_of(&run("slack", &SLACK, &["--threads", "4"]));
    assert_eq!(t4, t1);
    let mut lines = t1.lines();
    assert_eq!(
        lines.next().unwrap(),
        "fault,strategy,procs,degraded,recover,worst,stuck,miss,viol"
    );
    // 3 fault kinds × 4 reservation strategies; violations always 0 —
    // every run is verified against the declared set's windows.
    let rows: Vec<&str> = lines.collect();
    assert_eq!(rows.len(), 12);
    for row in &rows {
        assert_eq!(row.split(',').next_back().unwrap(), "0", "row {row}");
    }
}

#[test]
fn slack_faulted_trace_reverifies_offline() {
    let (tr, tr_str) = temp_path("trace.json");
    let _ = std::fs::remove_file(&tr);
    let out = run(
        "slack",
        &SLACK,
        &[
            "--threads",
            "1",
            "--trace",
            &tr_str,
            "--trace-kind",
            "mixed",
            "--trace-strategy",
            "margin25",
        ],
    );
    stdout_of(&out);
    assert!(tr.exists(), "trace file must be written");

    let verified = run("verify_trace", &["--input", &tr_str], &[]);
    assert!(
        verified.status.success(),
        "faulted slack trace failed offline verification: {}",
        String::from_utf8_lossy(&verified.stderr)
    );
    let _ = std::fs::remove_file(&tr);
}

#[test]
fn bad_flags_exit_two() {
    let out = run("slack", &["--recovery", "bogus"], &[]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(
        "slack",
        &["--trace", "/tmp/x.json", "--trace-kind", "bogus"],
        &[],
    );
    assert_eq!(out.status.code(), Some(2));
    let out = run(
        "slack",
        &["--trace", "/tmp/x.json", "--trace-strategy", "bogus"],
        &[],
    );
    assert_eq!(out.status.code(), Some(2));
}
