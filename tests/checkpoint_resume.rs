//! Crash-tolerance smoke test (CI gate): a checkpointed `fig3` sweep that
//! is killed after its first point must, on rerun, produce output
//! byte-identical to an uninterrupted run — and a checkpoint written under
//! one configuration must be refused by another.
//!
//! Exercises the full binary surface via `CARGO_BIN_EXE_fig3`: exit code 3
//! on the simulated crash, "restored from checkpoint" progress lines on
//! resume, exit code 2 on config mismatch. Also covers the v3 sharded
//! format at scale (a 10⁴-point synthetic sweep must write O(n)
//! checkpoint bytes) and the transparent v1→v3 migration.

use experiments::{CheckpointState, SweepDriver};
use std::path::PathBuf;
use std::process::{Command, Output};

const ARGS: [&str; 9] = [
    "--tasks", "8", "--sets", "2", "--points", "3", "--seed", "3", "--csv",
];

fn fig3(extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fig3"))
        .args(ARGS)
        .args(extra)
        .output()
        .expect("failed to spawn fig3")
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pfair-resume-{}-{tag}.json", std::process::id()))
}

/// Removes the checkpoint header file and its v3 shard directory.
fn cleanup(ck: &PathBuf) {
    let _ = std::fs::remove_file(ck);
    let _ = std::fs::remove_dir_all(experiments::checkpoint::shard_dir(ck));
}

#[test]
fn killed_sweep_resumes_to_identical_output() {
    let ck = temp_path("smoke");
    cleanup(&ck);
    let ck_str = ck.to_str().unwrap();

    // Reference: the same sweep, uninterrupted and uncheckpointed.
    let reference = fig3(&[]);
    assert!(reference.status.success(), "uninterrupted run failed");
    let expected = String::from_utf8(reference.stdout).unwrap();
    assert_eq!(
        expected.lines().count(),
        1 + 3,
        "header + one row per point"
    );

    // Crash after the first fresh point: exit code 3, checkpoint on disk.
    let crashed = fig3(&["--checkpoint", ck_str, "--fail-after", "1"]);
    assert_eq!(
        crashed.status.code(),
        Some(3),
        "stderr: {}",
        String::from_utf8_lossy(&crashed.stderr)
    );
    assert!(ck.exists(), "crash must leave a checkpoint behind");

    // Resume: completed points replay from the checkpoint, the rest run
    // fresh, and stdout matches the uninterrupted run byte for byte.
    let resumed = fig3(&["--checkpoint", ck_str]);
    assert!(
        resumed.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("restored from checkpoint"),
        "resume must replay the completed point: {stderr}"
    );
    assert_eq!(String::from_utf8(resumed.stdout).unwrap(), expected);

    // A checkpoint written under one configuration is refused by another.
    let mismatched = Command::new(env!("CARGO_BIN_EXE_fig3"))
        .args([
            "--tasks", "9", "--sets", "2", "--points", "3", "--seed", "3",
        ])
        .args(["--checkpoint", ck_str])
        .output()
        .expect("failed to spawn fig3");
    assert_eq!(
        mismatched.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&mismatched.stderr)
    );

    cleanup(&ck);
}

#[test]
fn parallel_sweep_is_deterministic_and_resumes_across_thread_counts() {
    let ck = temp_path("parallel");
    cleanup(&ck);
    let ck_str = ck.to_str().unwrap();

    // The determinism guarantee at the binary surface: stdout is
    // byte-identical for any thread count.
    let serial = fig3(&["--threads", "1"]);
    assert!(serial.status.success());
    let expected = String::from_utf8(serial.stdout).unwrap();
    let parallel = fig3(&["--threads", "4"]);
    assert!(parallel.status.success());
    assert_eq!(
        String::from_utf8(parallel.stdout).unwrap(),
        expected,
        "--threads 4 must reproduce --threads 1 byte for byte"
    );

    // Crash a 4-thread checkpointed run after its first committed batch…
    let crashed = fig3(&[
        "--threads",
        "4",
        "--checkpoint",
        ck_str,
        "--batch",
        "1",
        "--fail-after",
        "1",
    ]);
    assert_eq!(
        crashed.status.code(),
        Some(3),
        "stderr: {}",
        String::from_utf8_lossy(&crashed.stderr)
    );
    assert!(ck.exists());

    // …and resume at a *different* thread count: which points the crash
    // left behind is scheduling-dependent, but the reassembled output
    // must still equal the uninterrupted run byte for byte.
    let resumed = fig3(&["--threads", "2", "--checkpoint", ck_str]);
    assert!(
        resumed.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("restored from checkpoint"),
        "resume must replay at least one completed point: {stderr}"
    );
    assert_eq!(String::from_utf8(resumed.stdout).unwrap(), expected);

    // Absurd thread counts are printed errors, not panics.
    for bad in ["0", "1000000"] {
        let rejected = fig3(&["--threads", bad]);
        assert_eq!(rejected.status.code(), Some(2), "--threads {bad}");
        let stderr = String::from_utf8_lossy(&rejected.stderr);
        assert!(stderr.contains("--threads"), "{stderr}");
        assert!(!stderr.contains("panicked"), "{stderr}");
    }

    cleanup(&ck);
}

/// The `binary`/`config` identity the `ARGS` invocation of fig3 writes
/// into its checkpoints (mirrors fig3's fingerprint format).
const FIG3_CONFIG: &str = "tasks=8 sets=2 points=3 seed=3";

#[test]
fn v1_checkpoint_resumes_transparently_and_migrates_to_v3() {
    let ck = temp_path("v1migrate");
    cleanup(&ck);
    let ck_str = ck.to_str().unwrap();

    // Reference: the same sweep, uninterrupted and uncheckpointed.
    let reference = fig3(&[]);
    assert!(reference.status.success());
    let expected = String::from_utf8(reference.stdout).unwrap();

    // Crash a checkpointed run, then rewrite its checkpoint in the
    // legacy v1 format — exactly the file a pre-v2 build left behind
    // (shard directory removed: a pre-v3 build had none).
    let crashed = fig3(&["--checkpoint", ck_str, "--fail-after", "1"]);
    assert_eq!(crashed.status.code(), Some(3));
    let snap = CheckpointState::open(Some(&ck), "fig3", FIG3_CONFIG)
        .expect("crashed checkpoint must be readable");
    assert!(!snap.completed.is_empty());
    snap.write_v1(&ck).unwrap();
    let _ = std::fs::remove_dir_all(experiments::checkpoint::shard_dir(&ck));
    assert!(
        std::fs::read_to_string(&ck).unwrap().starts_with("{\n"),
        "precondition: the checkpoint is now a v1 pretty-JSON document"
    );

    // Resume on the v1 file: no manual intervention, byte-identical
    // output, and the checkpoint is rewritten as a v3 shard set by the
    // first save.
    let resumed = fig3(&["--checkpoint", ck_str]);
    assert!(
        resumed.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(String::from_utf8(resumed.stdout).unwrap(), expected);
    let migrated = std::fs::read_to_string(&ck).unwrap();
    assert!(
        migrated.starts_with("{\"v\":3,"),
        "resume must migrate the checkpoint to the v3 shard set: {migrated}"
    );

    // A second resume serves every point from the migrated shard set.
    let replayed = fig3(&["--checkpoint", ck_str]);
    assert!(replayed.status.success());
    assert_eq!(String::from_utf8(replayed.stdout).unwrap(), expected);
    let stderr = String::from_utf8_lossy(&replayed.stderr);
    assert!(
        stderr.contains("restored 3/3 points from checkpoint"),
        "{stderr}"
    );

    cleanup(&ck);
}

/// A ≥10⁴-point sweep through the driver API: resume must still be
/// byte-identical, and total checkpoint I/O must stay O(n) — each point's
/// record persisted a bounded number of times, never the v1 behaviour of
/// rewriting all n rows at every batch (O(n²) bytes).
#[test]
fn large_sweep_writes_linear_checkpoint_bytes_and_resumes_identically() {
    const N: usize = 10_000;
    let ck = temp_path("large");
    cleanup(&ck);
    let keys: Vec<String> = (0..N).map(|i| format!("K={i:05}")).collect();
    let row_for = |i: usize| -> Vec<String> {
        vec![
            format!("K={i:05}"),
            format!("{:.4}", (i as f64 + 1.0).sqrt()),
        ]
    };
    let driver = |path: Option<PathBuf>| {
        SweepDriver::with_parts(path, "synthetic", format!("n={N}"), 4, 64, 0, 0).unwrap()
    };

    // The uninterrupted run, uncheckpointed: the reference rows.
    let mut reference = driver(None);
    let expected = reference.run(&keys, &obs::Recorder::disabled(), |i, _| row_for(i));

    // "Crash" halfway: the first run only covers the first N/2 keys.
    let mut first = driver(Some(ck.clone()));
    let half = first.run(&keys[..N / 2], &obs::Recorder::disabled(), |i, _| {
        row_for(i)
    });
    assert_eq!(half.len(), N / 2);
    assert_eq!(first.fresh_points(), (N / 2) as u64);
    let first_bytes = first.checkpoint_bytes_written();

    // Resume over the full sweep: the first half replays from the log
    // (never recomputed), the second half runs fresh, and the assembled
    // rows equal the uninterrupted run's exactly.
    let mut second = driver(Some(ck.clone()));
    let resumed = second.run(&keys, &obs::Recorder::disabled(), |i, _| {
        assert!(i >= N / 2, "point {i} must be served from the checkpoint");
        row_for(i)
    });
    assert_eq!(resumed, expected);
    assert_eq!(second.cached_points(), (N / 2) as u64);
    assert_eq!(second.fresh_points(), (N / 2) as u64);

    // O(n) save I/O, asserted on bytes (not timing): every record is
    // ~45 bytes, so a generous linear bound is 200 B/point. The v1
    // whole-file rewrite would have written ~N²/(2·batch) records
    // (~3.5 GB here); the log writes each record once (~450 KB).
    let total_bytes = first_bytes + second.checkpoint_bytes_written();
    assert!(
        total_bytes < (N as u64) * 200,
        "checkpoint I/O must be O(n): wrote {total_bytes} bytes for {N} points"
    );
    let disk_len: u64 = std::fs::read_dir(experiments::checkpoint::shard_dir(&ck))
        .unwrap()
        .flatten()
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum();
    assert!(
        disk_len < (N as u64) * 200,
        "checkpoint set must be O(n): {disk_len} bytes for {N} points"
    );

    // A full replay appends nothing: all points are already live.
    let mut third = driver(Some(ck.clone()));
    let replayed = third.run(&keys, &obs::Recorder::disabled(), |_, _| {
        unreachable!("every point must be served from the checkpoint")
    });
    assert_eq!(replayed, expected);
    assert_eq!(third.checkpoint_bytes_written(), 0);

    cleanup(&ck);
}
