//! Crash-tolerance smoke test (CI gate): a checkpointed `fig3` sweep that
//! is killed after its first point must, on rerun, produce output
//! byte-identical to an uninterrupted run — and a checkpoint written under
//! one configuration must be refused by another.
//!
//! Exercises the full binary surface via `CARGO_BIN_EXE_fig3`: exit code 3
//! on the simulated crash, "restored from checkpoint" progress lines on
//! resume, exit code 2 on config mismatch.

use std::path::PathBuf;
use std::process::{Command, Output};

const ARGS: [&str; 9] = [
    "--tasks", "8", "--sets", "2", "--points", "3", "--seed", "3", "--csv",
];

fn fig3(extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fig3"))
        .args(ARGS)
        .args(extra)
        .output()
        .expect("failed to spawn fig3")
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pfair-resume-{}-{tag}.json", std::process::id()))
}

#[test]
fn killed_sweep_resumes_to_identical_output() {
    let ck = temp_path("smoke");
    let _ = std::fs::remove_file(&ck);
    let ck_str = ck.to_str().unwrap();

    // Reference: the same sweep, uninterrupted and uncheckpointed.
    let reference = fig3(&[]);
    assert!(reference.status.success(), "uninterrupted run failed");
    let expected = String::from_utf8(reference.stdout).unwrap();
    assert_eq!(
        expected.lines().count(),
        1 + 3,
        "header + one row per point"
    );

    // Crash after the first fresh point: exit code 3, checkpoint on disk.
    let crashed = fig3(&["--checkpoint", ck_str, "--fail-after", "1"]);
    assert_eq!(
        crashed.status.code(),
        Some(3),
        "stderr: {}",
        String::from_utf8_lossy(&crashed.stderr)
    );
    assert!(ck.exists(), "crash must leave a checkpoint behind");

    // Resume: completed points replay from the checkpoint, the rest run
    // fresh, and stdout matches the uninterrupted run byte for byte.
    let resumed = fig3(&["--checkpoint", ck_str]);
    assert!(
        resumed.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("restored from checkpoint"),
        "resume must replay the completed point: {stderr}"
    );
    assert_eq!(String::from_utf8(resumed.stdout).unwrap(), expected);

    // A checkpoint written under one configuration is refused by another.
    let mismatched = Command::new(env!("CARGO_BIN_EXE_fig3"))
        .args([
            "--tasks", "9", "--sets", "2", "--points", "3", "--seed", "3",
        ])
        .args(["--checkpoint", ck_str])
        .output()
        .expect("failed to spawn fig3");
    assert_eq!(
        mismatched.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&mismatched.stderr)
    );

    let _ = std::fs::remove_file(&ck);
}

#[test]
fn parallel_sweep_is_deterministic_and_resumes_across_thread_counts() {
    let ck = temp_path("parallel");
    let _ = std::fs::remove_file(&ck);
    let ck_str = ck.to_str().unwrap();

    // The determinism guarantee at the binary surface: stdout is
    // byte-identical for any thread count.
    let serial = fig3(&["--threads", "1"]);
    assert!(serial.status.success());
    let expected = String::from_utf8(serial.stdout).unwrap();
    let parallel = fig3(&["--threads", "4"]);
    assert!(parallel.status.success());
    assert_eq!(
        String::from_utf8(parallel.stdout).unwrap(),
        expected,
        "--threads 4 must reproduce --threads 1 byte for byte"
    );

    // Crash a 4-thread checkpointed run after its first committed batch…
    let crashed = fig3(&[
        "--threads",
        "4",
        "--checkpoint",
        ck_str,
        "--batch",
        "1",
        "--fail-after",
        "1",
    ]);
    assert_eq!(
        crashed.status.code(),
        Some(3),
        "stderr: {}",
        String::from_utf8_lossy(&crashed.stderr)
    );
    assert!(ck.exists());

    // …and resume at a *different* thread count: which points the crash
    // left behind is scheduling-dependent, but the reassembled output
    // must still equal the uninterrupted run byte for byte.
    let resumed = fig3(&["--threads", "2", "--checkpoint", ck_str]);
    assert!(
        resumed.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("restored from checkpoint"),
        "resume must replay at least one completed point: {stderr}"
    );
    assert_eq!(String::from_utf8(resumed.stdout).unwrap(), expected);

    // Absurd thread counts are printed errors, not panics.
    for bad in ["0", "1000000"] {
        let rejected = fig3(&["--threads", bad]);
        assert_eq!(rejected.status.code(), Some(2), "--threads {bad}");
        let stderr = String::from_utf8_lossy(&rejected.stderr);
        assert!(stderr.contains("--threads"), "{stderr}");
        assert!(!stderr.contains("panicked"), "{stderr}");
    }

    let _ = std::fs::remove_file(&ck);
}
