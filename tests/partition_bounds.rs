//! E8 — Section 3's analytic claims about partitioning, checked against
//! the actual heuristics and against PD².

use partition::{
    lopez_schedulable, partition, partition_unbounded, EdfUtilization, Heuristic, SortOrder,
};
use pfair_core::sched::SchedConfig;
use pfair_model::TaskSet;
use sched_sim::MultiSim;

fn keys_for(tasks: &[(u64, u64)]) -> impl Fn(usize) -> (f64, u64) + '_ {
    move |i| {
        let (e, p) = tasks[i];
        (e as f64 / p as f64, p)
    }
}

/// "M + 1 tasks, each with utilization (1 + ε)/2, cannot be partitioned on
/// M processors, regardless of the partitioning heuristic" — while PD²
/// schedules them on ⌈U⌉ ≈ (M+1)/2 processors.
#[test]
fn half_plus_epsilon_witness() {
    for m in [2u32, 4, 8] {
        let tasks: Vec<(u64, u64)> = vec![(51, 100); m as usize + 1];
        let acc = EdfUtilization::new(&tasks);
        for h in Heuristic::ALL {
            for ord in [SortOrder::None, SortOrder::DecreasingUtilization] {
                assert!(
                    partition(tasks.len(), &acc, h, ord, m, keys_for(&tasks)).is_none(),
                    "M={m} {}",
                    h.name()
                );
            }
        }
        // PD² schedules the same set on ⌈(M+1)·0.51⌉ processors.
        let set = TaskSet::from_pairs(tasks.iter().copied()).unwrap();
        let pd2_m = set.min_processors();
        assert!(pd2_m < m + 1, "PD2 uses {pd2_m} < {} processors", m + 1);
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(pd2_m));
        assert_eq!(sim.run(3_000).misses, 0);
    }
}

/// The Lopez bound is tight from below: a set at the bound packs, one just
/// above it may not. We verify soundness across a β × M grid by filling
/// with u = 1/β tasks.
#[test]
fn lopez_soundness_grid() {
    for beta in 1u64..=6 {
        for m in 1u32..=8 {
            // Total utilization at the bound: (βm + 1)/(β + 1), built from
            // tasks of utilization exactly 1/β … keep within it.
            let bound_num = beta as u128 * m as u128 + 1;
            let bound_den = beta as u128 + 1;
            // count/β ≤ bound ⇒ count ≤ β·bound.
            let count = (beta as u128 * bound_num / bound_den) as usize;
            let tasks: Vec<(u64, u64)> = vec![(1, beta); count];
            if !lopez_schedulable(&tasks, m) {
                continue; // floor artifacts: the grid point overshoots
            }
            let acc = EdfUtilization::new(&tasks);
            let r = partition(
                tasks.len(),
                &acc,
                Heuristic::FirstFit,
                SortOrder::None,
                m,
                keys_for(&tasks),
            );
            assert!(r.is_some(), "β={beta} m={m} count={count} must pack");
        }
    }
}

/// The paper's Section-1 example: 3 × (2, 3) needs 3 processors
/// partitioned but only 2 under PD² — the headline gap.
#[test]
fn section1_example_gap() {
    let tasks = [(2u64, 3u64), (2, 3), (2, 3)];
    let acc = EdfUtilization::new(&tasks);
    let part = partition_unbounded(
        3,
        &acc,
        Heuristic::FirstFit,
        SortOrder::None,
        keys_for(&tasks),
    )
    .unwrap();
    assert_eq!(part.processors, 3);

    let set = TaskSet::from_pairs(tasks.iter().copied()).unwrap();
    assert_eq!(set.min_processors(), 2);
    let mut sim = MultiSim::new(&set, SchedConfig::pd2(2));
    let metrics = sim.run(3_000);
    assert_eq!(metrics.misses, 0);
    assert_eq!(metrics.idle_quanta, 0);
}

/// FFD dominates plain FF on the classic adversarial layout, and both
/// agree with the exact-fit optimum there.
#[test]
fn ffd_beats_ff_on_adversarial_layout() {
    // utilizations 0.4, 0.4, 0.6, 0.6 (see heuristics unit tests).
    let tasks = [(2u64, 5u64), (2, 5), (3, 5), (3, 5)];
    let acc = EdfUtilization::new(&tasks);
    let ff = partition_unbounded(
        4,
        &acc,
        Heuristic::FirstFit,
        SortOrder::None,
        keys_for(&tasks),
    )
    .unwrap();
    let ffd = partition_unbounded(
        4,
        &acc,
        Heuristic::FirstFit,
        SortOrder::DecreasingUtilization,
        keys_for(&tasks),
    )
    .unwrap();
    assert_eq!(ff.processors, 3);
    assert_eq!(ffd.processors, 2);
}
