//! Cross-crate integration tests for the obs layer: the counters exported
//! by an instrumented run must agree with the engine's own `RunMetrics`
//! accounting, survive a JSON round trip, and cost nothing when disabled.

use pfair_core::sched::{PfairScheduler, SchedConfig};
use pfair_model::TaskSet;
use sched_sim::MultiSim;

fn ts(pairs: &[(u64, u64)]) -> TaskSet {
    TaskSet::from_pairs(pairs.iter().copied()).unwrap()
}

#[test]
fn multisim_obs_counters_agree_with_run_metrics() {
    let set = ts(&[(8, 11), (1, 3), (2, 5), (5, 7)]);
    let m_procs = set.min_processors();
    let rec = obs::Recorder::enabled();
    let mut sim = MultiSim::new(&set, SchedConfig::pd2(m_procs));
    sim.set_recorder(&rec);
    let horizon = 2 * set.hyperperiod();
    let metrics = sim.run(horizon);

    let snap = rec.snapshot();
    assert_eq!(snap.counter("sim.steps"), Some(metrics.slots));
    assert_eq!(
        snap.counter("sim.allocated_quanta"),
        Some(metrics.allocated_quanta)
    );
    assert_eq!(snap.counter("sim.idle_quanta"), Some(metrics.idle_quanta));
    assert_eq!(snap.counter("sim.preemptions"), Some(metrics.preemptions));
    assert_eq!(snap.counter("sim.migrations"), Some(metrics.migrations));
    assert_eq!(
        snap.counter("sim.context_switches"),
        Some(metrics.context_switches)
    );
    // The scheduler ticks exactly once per simulated slot, and both span
    // timers record one observation per slot.
    assert_eq!(snap.counter("sched.ticks"), Some(metrics.slots));
    assert_eq!(
        snap.histogram("sim.dispatch_ns").unwrap().count,
        metrics.slots
    );
    assert_eq!(
        snap.histogram("sched.tick_ns").unwrap().count,
        metrics.slots
    );
    // Each allocated quantum came off the ready heap (pops also cover
    // stale entries, so pops ≥ allocations).
    assert!(snap.counter("sched.heap_pops").unwrap() >= metrics.allocated_quanta);
}

#[test]
fn scheduler_tick_counters_balance() {
    let set = ts(&[(2, 3), (2, 3), (2, 3)]);
    let rec = obs::Recorder::enabled();
    let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(2)).with_recorder(&rec);
    let schedule = sched.run(30);
    assert!(sched.misses().is_empty());

    let snap = rec.snapshot();
    assert_eq!(snap.counter("sched.ticks"), Some(30));
    let allocated: u64 = schedule.iter().map(|s| s.len() as u64).sum();
    // No joins/leaves here, so nothing ever goes stale: every drained
    // release is pushed, and every pop is a real allocation.
    assert_eq!(snap.counter("sched.stale_skipped"), Some(0));
    assert_eq!(snap.counter("sched.heap_pops"), Some(allocated));
    assert_eq!(
        snap.counter("sched.heap_pushes"),
        snap.counter("sched.releases_drained")
    );
}

#[test]
fn exported_snapshot_round_trips_through_json() {
    let set = ts(&[(1, 2), (1, 3), (2, 7)]);
    let rec = obs::Recorder::enabled();
    let mut sim = MultiSim::new(&set, SchedConfig::pd2(2));
    sim.set_recorder(&rec);
    sim.run(100);

    let snap = rec.snapshot();
    let back = obs::Snapshot::from_json(&snap.to_json()).expect("valid JSON");
    assert_eq!(back, snap);
    assert!(back.counter("sim.steps").is_some());
}

#[test]
fn disabled_recorder_changes_nothing_and_records_nothing() {
    let set = ts(&[(8, 11), (1, 3), (2, 5), (5, 7)]);
    let m_procs = set.min_processors();
    let horizon = set.hyperperiod();

    let mut plain = MultiSim::new(&set, SchedConfig::pd2(m_procs));
    let baseline = plain.run(horizon);

    let rec = obs::Recorder::disabled();
    let mut observed = MultiSim::new(&set, SchedConfig::pd2(m_procs));
    observed.set_recorder(&rec);
    let with_disabled = observed.run(horizon);

    assert_eq!(baseline, with_disabled, "probes must not affect behaviour");
    let snap = rec.snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.histograms.is_empty());
}
