//! Subtask priority orders: EPDF, PF, PD, and PD².
//!
//! All known optimal Pfair algorithms prioritize subtasks on an
//! earliest-pseudo-deadline-first basis and differ only in their tie-breaking
//! rules (paper, Section 2). This module implements the comparators as pure
//! functions over a compact per-subtask record, [`SubtaskTag`], so that the
//! generic scheduler in [`crate::sched`] and the ablation experiments can
//! swap policies freely.
//!
//! * [`Policy::Epdf`] — no tie-breaks (earliest pseudo-deadline first).
//!   *Not* optimal for `M > 2`; included as the ablation baseline.
//! * [`Policy::Pf`] — the original PF algorithm of Baruah et al. \[5\]:
//!   ties are broken by lexicographic comparison of the b-bit sequences of
//!   successor subtasks.
//! * [`Policy::Pd2`] — PD² \[2\]: ties broken by the b-bit, then by *later*
//!   group deadline.
//! * [`Policy::Pd`] — PD \[6\]: PD² plus further deterministic tie-breaks
//!   (see [`Policy::Pd`] docs).
//!
//! Within a policy all remaining ties are broken by task id, making every
//! comparator a **total order** — a requirement for using them as heap keys.
//! Because PD² with *arbitrary* residual tie-breaking is optimal
//! (Srinivasan & Anderson \[39\]), any such refinement preserves optimality.

use crate::subtask::{self, SubtaskIndex};
use pfair_model::{Slot, TaskId, Weight};
use std::cmp::Ordering;

/// Which Pfair priority order to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Policy {
    /// Earliest-pseudo-deadline-first with no tie-breaks (ablation baseline;
    /// optimal only for M ≤ 2).
    Epdf,
    /// EPDF plus the b-bit tie-break only — PD² without the group
    /// deadline. An ablation point isolating the two PD² rules: sufficient
    /// for light-only task systems, insufficient in general (the group
    /// deadline exists precisely for the length-2-window cascades of heavy
    /// tasks).
    BBitOnly,
    /// PF \[5\]: deadline, then lexicographic b-bit sequence comparison.
    Pf,
    /// PD \[6\]: deadline, b-bit, group deadline, then heavier-weight-first.
    ///
    /// The historical PD uses four tie-break parameters; PD² later proved
    /// two of them unnecessary. We model PD as PD² plus a
    /// heavier-weight-first rule standing in for the superfluous
    /// tie-breaks: any deterministic refinement of the PD² order is an
    /// optimal scheduler, so this preserves PD's correctness properties
    /// while exhibiting its larger tie-break state (which is what the
    /// paper's efficiency comparison is about).
    Pd,
    /// PD² \[2\]: deadline, b-bit, group deadline. The paper's main subject
    /// and the most efficient of the optimal algorithms.
    #[default]
    Pd2,
}

impl Policy {
    /// All policies, for sweep-style experiments.
    pub const ALL: [Policy; 5] = [
        Policy::Epdf,
        Policy::BBitOnly,
        Policy::Pf,
        Policy::Pd,
        Policy::Pd2,
    ];

    /// The optimal policies (every member schedules any feasible set).
    pub const OPTIMAL: [Policy; 3] = [Policy::Pf, Policy::Pd, Policy::Pd2];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Epdf => "EPDF",
            Policy::BBitOnly => "EPDF+b",
            Policy::Pf => "PF",
            Policy::Pd => "PD",
            Policy::Pd2 => "PD2",
        }
    }
}

/// Everything a policy needs to rank one subtask, precomputed at release.
///
/// For IS tasks, `deadline` and `group_deadline` already include the
/// subtask's offset `θ(Tᵢ)`; the b-bit is offset-invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubtaskTag {
    /// Owning task.
    pub task: TaskId,
    /// 1-based subtask index within the task.
    pub index: SubtaskIndex,
    /// Pseudo-deadline `d(Tᵢ)` (absolute slot).
    pub deadline: Slot,
    /// Overlap bit `b(Tᵢ)`.
    pub b: bool,
    /// Group deadline `D(Tᵢ)` (absolute slot; 0 for light tasks).
    pub group_deadline: Slot,
    /// Task weight (needed by PF's recursive comparison and PD's
    /// weight tie-break).
    pub weight: Weight,
}

impl SubtaskTag {
    /// Builds the tag for subtask `i` of a task with the given weight,
    /// shifting deadline and group deadline by `offset` (the IS offset
    /// `θ(Tᵢ)`; 0 for synchronous periodic tasks).
    pub fn new(task: TaskId, weight: Weight, i: SubtaskIndex, offset: Slot) -> Self {
        let gd = subtask::group_deadline(weight, i);
        SubtaskTag {
            task,
            index: i,
            deadline: subtask::deadline(weight, i) + offset,
            b: subtask::b_bit(weight, i),
            group_deadline: if gd == 0 { 0 } else { gd + offset },
            weight,
        }
    }
}

/// Compares two subtasks under `policy`. `Ordering::Less` means `a` has
/// **higher** priority than `b` (schedule `a` first), so sorting ascending
/// yields highest-priority-first order.
///
/// # Examples
///
/// ```
/// use pfair_core::priority::{compare, Policy, SubtaskTag};
/// use pfair_model::{TaskId, Weight};
///
/// // Equal deadlines; PD² favors the overlapping-window (b = 1) subtask.
/// let a = SubtaskTag::new(TaskId(0), Weight::new(8, 11).unwrap(), 1, 0);
/// let b = SubtaskTag::new(TaskId(1), Weight::new(1, 2).unwrap(), 1, 0);
/// assert_eq!(a.deadline, b.deadline);
/// assert!(compare(Policy::Pd2, &a, &b).is_lt());
/// // EPDF sees a pure tie and falls back to task ids.
/// assert!(compare(Policy::Epdf, &a, &b).is_lt());
/// ```
pub fn compare(policy: Policy, a: &SubtaskTag, b: &SubtaskTag) -> Ordering {
    let by_deadline = a.deadline.cmp(&b.deadline);
    if by_deadline != Ordering::Equal {
        return by_deadline;
    }
    let tie = match policy {
        Policy::Epdf => Ordering::Equal,
        Policy::BBitOnly => b.b.cmp(&a.b),
        Policy::Pd2 => pd2_ties(a, b),
        Policy::Pd => pd2_ties(a, b).then_with(|| {
            // Heavier weight first (stands in for PD's superfluous rules).
            b.weight.as_rat().cmp(&a.weight.as_rat())
        }),
        Policy::Pf => pf_ties(a, b),
    };
    // Total order: final residual tie-break by task id (deterministic and
    // documented; the Fig. 5 experiment flips it via `compare_with_id_order`).
    tie.then_with(|| a.task.cmp(&b.task))
}

/// PD²'s two tie-breaks: b-bit 1 beats 0; then *later* group deadline wins.
fn pd2_ties(a: &SubtaskTag, b: &SubtaskTag) -> Ordering {
    // b = 1 is favored ("it is better to execute Tᵢ early if its window
    // overlaps Tᵢ₊₁'s").
    let by_b = b.b.cmp(&a.b);
    if by_b != Ordering::Equal {
        return by_b;
    }
    if a.b {
        // Both b-bits are 1: later group deadline is favored (longer
        // potential cascade). For light tasks both are 0 ⇒ Equal.
        b.group_deadline.cmp(&a.group_deadline)
    } else {
        Ordering::Equal
    }
}

/// PF's tie-break: compare the b-bit *sequences* of the tied subtasks
/// lexicographically. If `b(Tᵢ) > b(U_j)`, `T` wins. If both are 1, compare
/// the successors `Tᵢ₊₁`, `U_{j+1}` by deadline, then recurse. A shared
/// b-bit of 0 is a genuine tie.
///
/// The recursion halts at the first subtask with a 0 b-bit; for a weight
/// `e/p` that happens within `e` steps, so this is O(e + f) per comparison —
/// acceptable because PF exists here for fidelity and ablation, not speed
/// (the paper's point is precisely that PD²'s O(1) tie-breaks are cheaper).
fn pf_ties(a: &SubtaskTag, b: &SubtaskTag) -> Ordering {
    let mut ai = a.index;
    let mut bi = b.index;
    // Offsets: reconstruct each subtask's absolute deadline by keeping the
    // delta between tag deadline and the synchronous formula.
    let a_off = a.deadline - subtask::deadline(a.weight, a.index);
    let b_off = b.deadline - subtask::deadline(b.weight, b.index);
    loop {
        let ab = subtask::b_bit(a.weight, ai);
        let bb = subtask::b_bit(b.weight, bi);
        match bb.cmp(&ab) {
            Ordering::Equal => {}
            other => return other,
        }
        if !ab {
            return Ordering::Equal; // both 0: true tie
        }
        ai += 1;
        bi += 1;
        let ad = subtask::deadline(a.weight, ai) + a_off;
        let bd = subtask::deadline(b.weight, bi) + b_off;
        match ad.cmp(&bd) {
            Ordering::Equal => {}
            other => return other,
        }
    }
}

/// Like [`compare`], but with the residual task-id tie-break *reversed*.
/// Used by the supertasking experiment (paper Fig. 5) to realize the
/// figure's specific resolution of genuinely arbitrary ties.
pub fn compare_with_id_order(
    policy: Policy,
    a: &SubtaskTag,
    b: &SubtaskTag,
    higher_id_first: bool,
) -> Ordering {
    let base = compare(policy, a, b);
    if !higher_id_first {
        return base;
    }
    // Strip the id tie-break and re-apply reversed.
    let without_id = match policy {
        Policy::Epdf => a.deadline.cmp(&b.deadline),
        Policy::BBitOnly => a.deadline.cmp(&b.deadline).then_with(|| b.b.cmp(&a.b)),
        Policy::Pd2 => a.deadline.cmp(&b.deadline).then_with(|| pd2_ties(a, b)),
        Policy::Pd => a
            .deadline
            .cmp(&b.deadline)
            .then_with(|| pd2_ties(a, b))
            .then_with(|| b.weight.as_rat().cmp(&a.weight.as_rat())),
        Policy::Pf => a.deadline.cmp(&b.deadline).then_with(|| pf_ties(a, b)),
    };
    without_id.then_with(|| b.task.cmp(&a.task))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tag(id: u32, e: u64, p: u64, i: SubtaskIndex) -> SubtaskTag {
        SubtaskTag::new(TaskId(id), Weight::new(e, p).unwrap(), i, 0)
    }

    #[test]
    fn earlier_deadline_always_wins() {
        let a = tag(0, 8, 11, 1); // d = 2
        let b = tag(1, 1, 3, 1); // d = 3
        for pol in Policy::ALL {
            assert_eq!(compare(pol, &a, &b), Ordering::Less, "{}", pol.name());
            assert_eq!(compare(pol, &b, &a), Ordering::Greater);
        }
    }

    #[test]
    fn pd2_b_bit_breaks_ties() {
        // Same deadline 2: T = 8/11 subtask 1 (d=2, b=1) vs U = 1/2
        // subtask 1 (d=2, b=0). PD2 favors the b=1 subtask.
        let a = tag(0, 8, 11, 1);
        let b = tag(1, 1, 2, 1);
        assert_eq!(a.deadline, b.deadline);
        assert!(a.b && !b.b);
        assert_eq!(compare(Policy::Pd2, &a, &b), Ordering::Less);
        assert_eq!(compare(Policy::Pd2, &b, &a), Ordering::Greater);
        // EPDF sees a pure tie → id order.
        assert_eq!(compare(Policy::Epdf, &a, &b), Ordering::Less);
        assert_eq!(compare(Policy::Epdf, &b, &a), Ordering::Greater);
    }

    #[test]
    fn pd2_later_group_deadline_wins() {
        // Two heavy tasks, same deadline & b-bit, different group deadlines.
        // w=8/11 T3: d=5, b=1, D=8.  w=5/7 U3: d=⌈21/5⌉=5, b=1 (21%5≠0).
        let a = tag(0, 8, 11, 3);
        let b = tag(1, 5, 7, 3);
        assert_eq!(a.deadline, 5);
        assert_eq!(b.deadline, 5);
        assert!(a.b && b.b);
        // w=5/7: holes=2, k*=⌈5·2/7⌉=2, D=⌈2·7/2⌉=7.
        assert_eq!(b.group_deadline, 7);
        assert_eq!(a.group_deadline, 8);
        // Later group deadline (a) is favored.
        assert_eq!(compare(Policy::Pd2, &a, &b), Ordering::Less);
        assert_eq!(compare(Policy::Pd2, &b, &a), Ordering::Greater);
    }

    #[test]
    fn pf_compares_successor_chains() {
        // Same first deadline and b-bit, but successors diverge.
        // w=3/4: d(T1)=2,b=1, d(T2)=3,b=1, d(T3)=4,b=0
        // w=8/11: d(U1)=2,b=1, d(U2)=3,b=1, d(U3)=5
        let a = tag(0, 3, 4, 1);
        let b = tag(1, 8, 11, 1);
        assert_eq!(a.deadline, b.deadline);
        // Chain: both b=1 → successors d 3 vs 3 tie → both b=1 → d(T3)=4 <
        // d(U3)=5 → a wins.
        assert_eq!(compare(Policy::Pf, &a, &b), Ordering::Less);
        assert_eq!(compare(Policy::Pf, &b, &a), Ordering::Greater);
    }

    #[test]
    fn pd_weight_tiebreak() {
        // Construct equal (d, b, D) but different weights. Two light tasks:
        // light ⇒ b can still be 1, D = 0 for both.
        // w=2/5: d(T1)=3, b=1 (5%2≠0), D=0. w=2/7 has d(T1)=4; try w=3/8:
        // d(T1)=⌈8/3⌉=3, b=1, light, D=0.
        let a = tag(0, 2, 5, 1); // weight 2/5
        let b = tag(1, 3, 8, 1); // weight 3/8
        assert_eq!(a.deadline, 3);
        assert_eq!(b.deadline, 3);
        assert!(a.b && b.b);
        assert_eq!(a.group_deadline, 0);
        assert_eq!(b.group_deadline, 0);
        // PD favors the heavier task: 2/5 > 3/8.
        assert_eq!(compare(Policy::Pd, &a, &b), Ordering::Less);
        assert_eq!(compare(Policy::Pd, &b, &a), Ordering::Greater);
        // PD2 falls through to id order.
        assert_eq!(compare(Policy::Pd2, &a, &b), Ordering::Less);
        assert_eq!(compare(Policy::Pd2, &b, &a), Ordering::Greater);
    }

    #[test]
    fn id_reversal_flips_pure_ties_only() {
        let a = tag(0, 2, 9, 1);
        let b = tag(1, 2, 9, 1); // identical parameters, different id
        assert_eq!(compare(Policy::Pd2, &a, &b), Ordering::Less);
        assert_eq!(
            compare_with_id_order(Policy::Pd2, &a, &b, true),
            Ordering::Greater
        );
        // A non-tie is unaffected by the id order.
        let c = tag(2, 8, 11, 1);
        let d = tag(3, 1, 3, 1);
        assert_eq!(
            compare_with_id_order(Policy::Pd2, &c, &d, true),
            compare(Policy::Pd2, &c, &d)
        );
    }

    #[test]
    fn is_offset_shifts_deadlines() {
        let sync = tag(0, 8, 11, 5);
        let late = SubtaskTag::new(TaskId(0), Weight::new(8, 11).unwrap(), 5, 3);
        assert_eq!(late.deadline, sync.deadline + 3);
        assert_eq!(late.b, sync.b);
        assert_eq!(late.group_deadline, sync.group_deadline + 3);
    }

    fn arb_tag(id: u32) -> impl Strategy<Value = SubtaskTag> {
        (1u64..30, 1u64..30, 1u64..60, 0u64..20).prop_filter_map("valid", move |(a, b, i, off)| {
            let (e, p) = if a <= b { (a, b) } else { (b, a) };
            Weight::new(e, p)
                .ok()
                .map(|w| SubtaskTag::new(TaskId(id), w, i, off))
        })
    }

    proptest! {
        /// Every policy induces a total order: antisymmetry and transitivity.
        #[test]
        fn prop_total_order(
            a in arb_tag(0), b in arb_tag(1), c in arb_tag(2),
            pol in prop::sample::select(Policy::ALL.to_vec()),
        ) {
            // Antisymmetry (distinct task ids ⇒ never Equal).
            let ab = compare(pol, &a, &b);
            prop_assert_eq!(ab, compare(pol, &b, &a).reverse());
            prop_assert_ne!(ab, Ordering::Equal);
            // Transitivity.
            let bc = compare(pol, &b, &c);
            let ac = compare(pol, &a, &c);
            if ab == bc {
                prop_assert_eq!(ac, ab);
            }
        }

        /// PD² never ranks a later-deadline subtask above an earlier one.
        #[test]
        fn prop_deadline_dominates(
            a in arb_tag(0), b in arb_tag(1),
            pol in prop::sample::select(Policy::ALL.to_vec()),
        ) {
            if a.deadline < b.deadline {
                prop_assert_eq!(compare(pol, &a, &b), Ordering::Less);
            }
        }

        /// Reflexive-ish sanity: a tag compares Equal to itself in the
        /// tie-break chain (id equal ⇒ full Equal).
        #[test]
        fn prop_self_equal(a in arb_tag(0), pol in prop::sample::select(Policy::ALL.to_vec())) {
            prop_assert_eq!(compare(pol, &a, &a), Ordering::Equal);
        }
    }
}
