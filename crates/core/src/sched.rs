//! The quantum-driven Pfair/ERfair/IS scheduler.
//!
//! [`PfairScheduler`] makes the global scheduling decision for each slot:
//! among all tasks with an *eligible* pending subtask, pick the `M`
//! highest-priority ones under the configured [`Policy`]. It mirrors the
//! implementation the paper measured: a binary heap holds the ready
//! subtasks, and an event queue ("an event timer is set for the release of
//! the task's next subtask", Section 4) holds future releases.
//!
//! The scheduler is deliberately *mechanism only*: it says **which** tasks
//! run in a slot. Processor assignment (affinity, preemption and migration
//! accounting) is layered on top by `sched-sim`, matching the paper's
//! separation between the scheduling decision and dispatching.
//!
//! # Release models
//!
//! * [`EarlyRelease::None`] — plain Pfair: subtask `Tᵢ` becomes eligible at
//!   its pseudo-release `r(Tᵢ)`. Not work-conserving.
//! * [`EarlyRelease::IntraJob`] — ERfair as described in the paper: "if two
//!   subtasks are part of the same job, then the second subtask becomes
//!   eligible for execution as soon as the first completes."
//! * [`EarlyRelease::Unrestricted`] — subtasks may release early across job
//!   boundaries as well (the fully work-conserving variant of \[4\]).
//!
//! # Intra-sporadic delays
//!
//! An IS task's subtask may be released *late*: its offset `θ(Tᵢ)` grows and
//! shifts the remainder of its windows (offsets are non-decreasing). The
//! scheduler consults a [`DelayModel`] every time it queues the next subtask
//! of a task; the default [`NoDelay`] yields the synchronous periodic
//! behaviour.
//!
//! # Dynamic task systems
//!
//! Tasks may [`join`](PfairScheduler::join) and
//! [`leave`](PfairScheduler::leave) at runtime under the conditions of
//! Srinivasan & Anderson \[38\] (paper, Sections 2 and 5.2): joins are
//! admitted while `Σ wt ≤ M`; a light task may leave at or after
//! `d(Tᵢ) + b(Tᵢ)` of its last-scheduled subtask, a heavy task after its
//! next group deadline.

use crate::priority::{compare_with_id_order, Policy, SubtaskTag};
use crate::queue::{MinQueue, QueueKind};
use crate::subtask::{self, SubtaskIndex};
use pfair_model::{Rat, Slot, Task, TaskId, TaskSet, Weight, WeightSum};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::fmt;

/// When subtasks become eligible relative to their Pfair releases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EarlyRelease {
    /// Plain Pfair: eligible exactly at the pseudo-release.
    #[default]
    None,
    /// ERfair: a subtask is eligible as soon as its predecessor *within the
    /// same job* completes (paper, Section 2).
    IntraJob,
    /// Fully work-conserving: eligible as soon as the predecessor completes,
    /// across job boundaries too.
    Unrestricted,
}

/// Source of intra-sporadic release delays.
///
/// `delay(task, i)` is the additional offset `θ(Tᵢ) − θ(Tᵢ₋₁) ≥ 0` applied
/// when subtask `i` is queued. Returning 0 for every subtask gives the
/// synchronous periodic model.
pub trait DelayModel {
    /// Extra delay (in slots) for subtask `i` of `task`.
    fn delay(&mut self, task: TaskId, i: SubtaskIndex) -> u64;
}

/// The synchronous periodic release process: never delays.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoDelay;

impl DelayModel for NoDelay {
    fn delay(&mut self, _: TaskId, _: SubtaskIndex) -> u64 {
        0
    }
}

/// Explicit per-subtask delays; useful for replaying traces such as the
/// paper's Fig. 1(b), where subtask `T₅` is released one slot late.
#[derive(Debug, Default, Clone)]
pub struct MapDelays {
    delays: std::collections::HashMap<(TaskId, SubtaskIndex), u64>,
}

impl MapDelays {
    /// No delays yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Delays subtask `i` of `task` by `by` slots (relative to the end of
    /// the previous window structure — i.e. adds `by` to the task's offset
    /// when this subtask is queued).
    pub fn insert(&mut self, task: TaskId, i: SubtaskIndex, by: u64) -> &mut Self {
        self.delays.insert((task, i), by);
        self
    }
}

impl DelayModel for MapDelays {
    fn delay(&mut self, task: TaskId, i: SubtaskIndex) -> u64 {
        self.delays.get(&(task, i)).copied().unwrap_or(0)
    }
}

/// The **sporadic** release process: whole jobs may arrive late (the
/// period is a *minimum* separation), but subtasks within a job stay
/// synchronous. A sporadic task is the special case of an IS task whose
/// offset grows only at job boundaries (paper, Section 2).
///
/// `delay(job)` of the inner model is consulted once per job, at its first
/// subtask.
#[derive(Debug, Default, Clone)]
pub struct SporadicDelays {
    /// Per-task unreduced execution cost (subtasks per job), indexed by
    /// task id.
    execs: Vec<u64>,
    /// Explicit per-job delays: `(task, 0-based job index) → slots`.
    delays: std::collections::HashMap<(TaskId, u64), u64>,
}

impl SporadicDelays {
    /// Creates the model for tasks with the given per-job execution costs
    /// (`execs[i]` = `T.e` of `TaskId(i)`, unreduced).
    pub fn new(execs: Vec<u64>) -> Self {
        assert!(execs.iter().all(|&e| e > 0), "job sizes must be positive");
        SporadicDelays {
            execs,
            delays: std::collections::HashMap::new(),
        }
    }

    /// Builds from a task set.
    pub fn for_tasks(tasks: &pfair_model::TaskSet) -> Self {
        Self::new(tasks.iter().map(|(_, t)| t.exec).collect())
    }

    /// Delays job `job` (0-based) of `task` by `by` slots beyond its
    /// minimum separation.
    pub fn delay_job(&mut self, task: TaskId, job: u64, by: u64) -> &mut Self {
        self.delays.insert((task, job), by);
        self
    }
}

impl DelayModel for SporadicDelays {
    fn delay(&mut self, task: TaskId, i: SubtaskIndex) -> u64 {
        let e = self.execs[task.index()];
        if (i - 1) % e != 0 {
            return 0; // not the first subtask of a job
        }
        let job = (i - 1) / e;
        self.delays.get(&(task, job)).copied().unwrap_or(0)
    }
}

/// A recorded deadline miss: subtask was scheduled in slot `scheduled_at`
/// although its window ended at `deadline` (`scheduled_at ≥ deadline`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Miss {
    /// The task that missed.
    pub task: TaskId,
    /// Which subtask missed.
    pub index: SubtaskIndex,
    /// The violated pseudo-deadline.
    pub deadline: Slot,
    /// The slot in which the subtask was actually scheduled.
    pub scheduled_at: Slot,
}

impl Miss {
    /// By how many slots the deadline was overrun (≥ 1).
    pub fn tardiness(&self) -> u64 {
        self.scheduled_at + 1 - self.deadline
    }
}

/// Errors from [`PfairScheduler::join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinError {
    /// Admitting the task would push `Σ wt` above the processor count
    /// (feasibility condition, Equation (2)).
    Overload,
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "join rejected: total weight would exceed processor count"
        )
    }
}

impl std::error::Error for JoinError {}

/// Errors from [`PfairScheduler::leave`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaveError {
    /// The task id does not name an active task.
    NoSuchTask,
}

impl fmt::Display for LeaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeaveError::NoSuchTask => write!(f, "no such active task"),
        }
    }
}

impl std::error::Error for LeaveError {}

/// Errors from [`PfairScheduler::reweight`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReweightError {
    /// The task id does not name an active task; nothing changed.
    NoSuchTask,
    /// The old task left, but the new weight does not fit yet (its old
    /// weight is still charged until the leave rule's safe point) — retry
    /// the join on a later slot.
    Overload,
}

impl fmt::Display for ReweightError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReweightError::NoSuchTask => write!(f, "no such active task"),
            ReweightError::Overload => {
                write!(f, "new weight does not fit until the old weight frees")
            }
        }
    }
}

impl std::error::Error for ReweightError {}

/// Per-task scheduler state.
#[derive(Debug, Clone)]
struct TaskState {
    weight: Weight,
    /// Unreduced per-job execution cost `T.e` — job boundaries depend on it
    /// (a task with e=2, p=4 has two subtasks per job even though its
    /// weight reduces to 1/2).
    exec: u64,
    /// 1-based index of the next subtask to schedule.
    next_index: SubtaskIndex,
    /// Accumulated IS offset θ for the pending subtask (includes the join
    /// time for dynamically joined tasks).
    theta: Slot,
    /// Slot from which the pending subtask is eligible.
    eligible: Slot,
    /// Total quanta allocated so far.
    allocations: u64,
    /// Time at which the task joined (0 for initial tasks).
    joined_at: Slot,
    /// Slot in which the task was last scheduled (`None` if never).
    last_scheduled: Option<Slot>,
    /// Tag of the last-scheduled subtask, for the leave rule.
    last_tag: Option<SubtaskTag>,
    active: bool,
}

/// Heap adapter: orders [`SubtaskTag`]s by policy priority (max-heap pops
/// highest priority first).
#[derive(Debug, Clone)]
struct Ranked {
    tag: SubtaskTag,
    policy: Policy,
    higher_id_first: bool,
}

impl PartialEq for Ranked {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Ranked {}
impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> Ordering {
        // MinQueue pops the smallest element; `compare` returns Less for
        // higher priority, so the orders align directly.
        compare_with_id_order(self.policy, &self.tag, &other.tag, self.higher_id_first)
    }
}

/// Configuration for a [`PfairScheduler`].
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// Number of processors `M`.
    pub processors: u32,
    /// Priority policy (default PD²).
    pub policy: Policy,
    /// Eligibility model (default plain Pfair).
    pub early_release: EarlyRelease,
    /// Residual tie order (default: lower task id first). The Fig. 5
    /// reproduction uses both orders.
    pub higher_id_first: bool,
    /// Ready-queue implementation (default: binary heap, as in the paper).
    pub queue: QueueKind,
}

impl SchedConfig {
    /// PD², plain Pfair releases, `m` processors.
    pub fn pd2(m: u32) -> Self {
        SchedConfig {
            processors: m,
            policy: Policy::Pd2,
            early_release: EarlyRelease::None,
            higher_id_first: false,
            queue: QueueKind::BinaryHeap,
        }
    }

    /// Same but with a different ready-queue implementation.
    pub fn with_queue(mut self, queue: QueueKind) -> Self {
        self.queue = queue;
        self
    }

    /// Same but with a different policy.
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Same but with an eligibility model.
    pub fn with_early_release(mut self, er: EarlyRelease) -> Self {
        self.early_release = er;
        self
    }

    /// Same but with the residual tie order flipped.
    pub fn with_higher_id_first(mut self, v: bool) -> Self {
        self.higher_id_first = v;
        self
    }
}

/// Instruments for the `tick` hot path, pre-registered so recording is a
/// branch plus a relaxed atomic op per event (and nothing at all when the
/// recorder is disabled — the default).
struct SchedObs {
    ticks: obs::Counter,
    tick_ns: obs::Timer,
    releases_drained: obs::Counter,
    heap_pushes: obs::Counter,
    heap_pops: obs::Counter,
    stale_skipped: obs::Counter,
}

impl SchedObs {
    fn new(rec: &obs::Recorder) -> Self {
        SchedObs {
            ticks: rec.counter("sched.ticks"),
            tick_ns: rec.timer("sched.tick_ns"),
            releases_drained: rec.counter("sched.releases_drained"),
            heap_pushes: rec.counter("sched.heap_pushes"),
            heap_pops: rec.counter("sched.heap_pops"),
            stale_skipped: rec.counter("sched.stale_skipped"),
        }
    }
}

impl Default for SchedObs {
    fn default() -> Self {
        Self::new(&obs::Recorder::disabled())
    }
}

/// The global Pfair scheduler (see module docs).
pub struct PfairScheduler<D: DelayModel = NoDelay> {
    cfg: SchedConfig,
    metrics: SchedObs,
    tasks: Vec<TaskState>,
    /// Future releases: min-heap of (eligible_slot, task, subtask index).
    releases: BinaryHeap<Reverse<(Slot, TaskId, SubtaskIndex)>>,
    /// Eligible subtasks ordered by policy priority.
    ready: MinQueue<Ranked>,
    delays: D,
    misses: Vec<Miss>,
    /// Total weight of active tasks *plus* departing tasks whose weight
    /// has not yet been freed (leave rule, Section 2). Exact while the
    /// denominators fit; see [`WeightSum`].
    total_weight: WeightSum,
    /// Deferred weight releases for departed tasks: (free_slot, task).
    departures: BinaryHeap<Reverse<(Slot, TaskId)>>,
    /// Next slot expected by `tick` (slots must be scheduled in order).
    now: Slot,
}

impl PfairScheduler<NoDelay> {
    /// Creates a scheduler for a synchronous periodic task set.
    pub fn new(tasks: &TaskSet, cfg: SchedConfig) -> Self {
        Self::with_delays(tasks, cfg, NoDelay)
    }

    /// Creates a scheduler for an **asynchronous** periodic task set:
    /// task `i`'s first job is released at `phases[i]` (its windows are
    /// shifted right by the phase). Feasibility is unchanged —
    /// `Σ wt ≤ M` — since an asynchronous system is an IS system with a
    /// constant initial offset (Anderson & Srinivasan \[4\]).
    pub fn with_phases(tasks: &TaskSet, phases: &[Slot], cfg: SchedConfig) -> Self {
        assert_eq!(tasks.len(), phases.len());
        let mut s = PfairScheduler {
            cfg,
            metrics: SchedObs::default(),
            tasks: Vec::with_capacity(tasks.len()),
            releases: BinaryHeap::with_capacity(tasks.len()),
            ready: MinQueue::new(cfg.queue),
            delays: NoDelay,
            misses: Vec::new(),
            total_weight: WeightSum::new(),
            departures: BinaryHeap::new(),
            now: 0,
        };
        for ((_, t), &phase) in tasks.iter().zip(phases) {
            s.admit(*t, phase)
                .expect("initial task set must be feasible");
        }
        s
    }
}

impl<D: DelayModel> PfairScheduler<D> {
    /// Creates a scheduler with an intra-sporadic delay model.
    pub fn with_delays(tasks: &TaskSet, cfg: SchedConfig, delays: D) -> Self {
        let mut s = PfairScheduler {
            cfg,
            metrics: SchedObs::default(),
            tasks: Vec::with_capacity(tasks.len()),
            releases: BinaryHeap::with_capacity(tasks.len()),
            ready: MinQueue::new(cfg.queue),
            delays,
            misses: Vec::new(),
            total_weight: WeightSum::new(),
            departures: BinaryHeap::new(),
            now: 0,
        };
        for (_, t) in tasks.iter() {
            s.admit(*t, 0).expect("initial task set must be feasible");
        }
        s
    }

    /// Routes tick instrumentation (tick count and wall time, releases
    /// drained, ready-heap pushes/pops, stale entries skipped) to `rec`.
    /// The default recorder is disabled, making every probe a no-op.
    pub fn set_recorder(&mut self, rec: &obs::Recorder) {
        self.metrics = SchedObs::new(rec);
    }

    /// Builder form of [`Self::set_recorder`].
    pub fn with_recorder(mut self, rec: &obs::Recorder) -> Self {
        self.set_recorder(rec);
        self
    }

    /// Number of processors.
    pub fn processors(&self) -> u32 {
        self.cfg.processors
    }

    /// The configured policy.
    pub fn policy(&self) -> Policy {
        self.cfg.policy
    }

    /// Changes the processor count `M` from the next slot on (fail-stop
    /// loss or repaired capacity). Shrinking below `Σ wt` puts the system
    /// in overload: the scheduler keeps picking the `M` highest-priority
    /// subtasks and records the resulting window violations in
    /// [`Self::misses`]; pair with load shedding (see
    /// [`crate::recovery::plan_shedding`]) to restore feasibility.
    pub fn set_processors(&mut self, m: u32) {
        self.cfg.processors = m;
    }

    /// Switches the eligibility model from the next queued subtask on.
    /// Subtasks already in the ready/release queues keep the eligibility
    /// they were queued with, so the switch takes full effect within one
    /// subtask per task. Used by recovery to enable ERfair catch-up after
    /// an overload and to drop back once lag re-converges.
    pub fn set_early_release(&mut self, er: EarlyRelease) {
        self.cfg.early_release = er;
    }

    /// The currently configured eligibility model.
    pub fn early_release(&self) -> EarlyRelease {
        self.cfg.early_release
    }

    /// Number of task slots ever admitted (active or departed); valid
    /// [`TaskId`]s are `0..task_count`.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Total weight of the currently active (and not-yet-freed departing)
    /// tasks.
    pub fn total_weight(&self) -> WeightSum {
        self.total_weight
    }

    /// All deadline misses recorded so far (empty for an optimal policy on
    /// a feasible task set).
    pub fn misses(&self) -> &[Miss] {
        &self.misses
    }

    /// Quanta allocated to `id` so far.
    pub fn allocations(&self, id: TaskId) -> u64 {
        self.tasks[id.index()].allocations
    }

    /// Weight of task `id`.
    pub fn weight_of(&self, id: TaskId) -> Weight {
        self.tasks[id.index()].weight
    }

    /// Whether `id` names an active task.
    pub fn is_active(&self, id: TaskId) -> bool {
        self.tasks
            .get(id.index())
            .map(|t| t.active)
            .unwrap_or(false)
    }

    /// The lag of task `id` at time `t` (beginning of slot `t`), **valid for
    /// tasks with no IS delays**: `lag(T, t) = wt(T)·(t − join) − allocated`.
    ///
    /// `t` must not exceed the next unscheduled slot (allocations past `t`
    /// would be double-counted).
    pub fn lag(&self, id: TaskId, t: Slot) -> Rat {
        assert!(t <= self.now, "lag({t}) queried beyond simulated time");
        let st = &self.tasks[id.index()];
        let elapsed = t.saturating_sub(st.joined_at);
        st.weight.as_rat() * Rat::from(elapsed) - Rat::from(st.allocations)
    }

    /// Admits a task (internal; shared by construction and `join`).
    fn admit(&mut self, task: Task, now: Slot) -> Result<TaskId, JoinError> {
        let w = task.weight();
        if !self.total_weight.fits_after_adding(w, self.cfg.processors) {
            return Err(JoinError::Overload);
        }
        self.total_weight.add(w);
        let id = TaskId(self.tasks.len() as u32);
        let mut st = TaskState {
            weight: w,
            exec: task.exec,
            next_index: 1,
            theta: now,
            eligible: 0,
            allocations: 0,
            joined_at: now,
            last_scheduled: None,
            last_tag: None,
            active: true,
        };
        // First subtask: release r(T₁) + θ = θ (r(T₁) = 0 always).
        st.eligible = now;
        self.tasks.push(st);
        self.releases.push(Reverse((now, id, 1)));
        Ok(id)
    }

    /// A task with the given parameters joins at time `now` (which must be
    /// the next slot to be scheduled). Fails if `Σ wt` would exceed `M`.
    pub fn join(&mut self, task: Task, now: Slot) -> Result<TaskId, JoinError> {
        assert_eq!(now, self.now, "join must happen at the current slot");
        self.admit(task, now)
    }

    /// Earliest slot at which task `id` may leave without endangering other
    /// tasks' deadlines (paper, Section 2): for a light task,
    /// `d(Tᵢ) + b(Tᵢ)` of its last-scheduled subtask `Tᵢ`; for a heavy
    /// task, its next group deadline after that subtask. A task that was
    /// never scheduled may leave immediately.
    pub fn earliest_leave(&self, id: TaskId) -> Option<Slot> {
        let st = self.tasks.get(id.index())?;
        if !st.active {
            return None;
        }
        let Some(tag) = st.last_tag else {
            return Some(st.joined_at);
        };
        if st.weight.is_light() {
            Some(tag.deadline + u64::from(tag.b))
        } else {
            // "After its next group deadline": strictly after D(Tᵢ).
            Some(tag.group_deadline + 1)
        }
    }

    /// Removes task `id` at time `now`. The task stops being scheduled
    /// immediately, but — per the leave rule of \[38\] — its *weight* only
    /// becomes available for admission at the returned slot: immediately if
    /// `now` is already at or past the safe point, otherwise at
    /// `earliest_leave(id)`. (Freeing the weight early would let a
    /// leave-and-rejoin cycle execute above its prescribed rate and cause
    /// other tasks to miss, as the paper notes in Section 2.)
    pub fn leave(&mut self, id: TaskId, now: Slot) -> Result<Slot, LeaveError> {
        assert_eq!(now, self.now, "leave must happen at the current slot");
        let earliest = self.earliest_leave(id).ok_or(LeaveError::NoSuchTask)?;
        let st = &mut self.tasks[id.index()];
        st.active = false;
        // Stale heap entries for this task are skipped lazily by `tick`.
        let free_at = earliest.max(now);
        if free_at <= now {
            self.total_weight.sub(st.weight);
        } else {
            self.departures.push(Reverse((free_at, id)));
        }
        Ok(free_at)
    }

    /// Reweights task `id` to `new_task` at time `now` — the paper's §5.2
    /// recipe: "task reweighting can be modeled as a leave-and-join
    /// problem." The old incarnation stops executing immediately; the new
    /// one is admitted against the capacity left after the departing
    /// weight frees (so an *increase* may fail with
    /// [`JoinError::Overload`] until the leave rule's safe point passes —
    /// retry on later slots). Returns the new task's id on success.
    ///
    /// On failure the old task has still left (its work was already
    /// conceptually replaced); callers wanting all-or-nothing semantics
    /// should check [`Self::earliest_leave`] and
    /// [`Self::total_weight`] first.
    pub fn reweight(
        &mut self,
        id: TaskId,
        new_task: Task,
        now: Slot,
    ) -> Result<TaskId, ReweightError> {
        self.leave(id, now).map_err(|_| ReweightError::NoSuchTask)?;
        self.join(new_task, now)
            .map_err(|_| ReweightError::Overload)
    }

    /// Schedules slot `now`, appending the chosen task ids to `out` (at most
    /// `M`). Slots must be scheduled consecutively starting from 0 (or from
    /// the construction slot).
    pub fn tick(&mut self, now: Slot, out: &mut Vec<TaskId>) {
        assert_eq!(now, self.now, "slots must be scheduled in order");
        self.now = now + 1;
        self.metrics.ticks.incr();
        let _tick_span = self.metrics.tick_ns.start();

        // 0. Free the weight of departed tasks whose safe point has passed.
        while let Some(&Reverse((at, id))) = self.departures.peek() {
            if at > now {
                break;
            }
            self.departures.pop();
            let w = self.tasks[id.index()].weight;
            self.total_weight.sub(w);
        }

        // 1. Move everything released by `now` into the ready heap.
        while let Some(&Reverse((rel, id, idx))) = self.releases.peek() {
            if rel > now {
                break;
            }
            self.releases.pop();
            self.metrics.releases_drained.incr();
            let st = &self.tasks[id.index()];
            if !st.active || st.next_index != idx {
                self.metrics.stale_skipped.incr();
                continue; // stale (task left, or duplicate entry)
            }
            let tag = SubtaskTag::new(id, st.weight, idx, st.theta);
            self.metrics.heap_pushes.incr();
            self.ready.push(Ranked {
                tag,
                policy: self.cfg.policy,
                higher_id_first: self.cfg.higher_id_first,
            });
        }

        // 2. Pop the M highest-priority eligible subtasks.
        let m = self.cfg.processors as usize;
        while out.len() < m {
            let Some(ranked) = self.ready.pop() else {
                break;
            };
            self.metrics.heap_pops.incr();
            let tag = ranked.tag;
            let st = &mut self.tasks[tag.task.index()];
            if !st.active || st.next_index != tag.index {
                self.metrics.stale_skipped.incr();
                continue; // stale
            }
            // Deadline-miss detection: scheduling in a slot at or past the
            // pseudo-deadline violates the window.
            if now >= tag.deadline {
                self.misses.push(Miss {
                    task: tag.task,
                    index: tag.index,
                    deadline: tag.deadline,
                    scheduled_at: now,
                });
            }
            st.allocations += 1;
            st.last_scheduled = Some(now);
            st.last_tag = Some(tag);
            out.push(tag.task);

            // 3. Queue the successor subtask.
            let next = tag.index + 1;
            st.next_index = next;
            let delay = self.delays.delay(tag.task, next);
            st.theta += delay;
            let pfair_release = subtask::release(st.weight, next) + st.theta;
            // Job boundaries use the *unreduced* execution cost.
            let same_job = (next - 1) / st.exec == (tag.index - 1) / st.exec;
            let eligible = match self.cfg.early_release {
                EarlyRelease::None => pfair_release,
                EarlyRelease::IntraJob if same_job => (now + 1).min(pfair_release),
                EarlyRelease::IntraJob => pfair_release,
                EarlyRelease::Unrestricted => (now + 1).min(pfair_release),
            };
            st.eligible = eligible;
            self.releases.push(Reverse((eligible, tag.task, next)));
        }
    }

    /// Convenience: run slots `0..horizon` and return the full schedule as
    /// one `Vec<Vec<TaskId>>` (slot → scheduled tasks).
    pub fn run(&mut self, horizon: Slot) -> Vec<Vec<TaskId>> {
        let mut schedule = Vec::with_capacity(horizon as usize);
        let mut slot = Vec::new();
        for t in self.now..horizon {
            slot.clear();
            self.tick(t, &mut slot);
            schedule.push(slot.clone());
        }
        schedule
    }
}

impl<D: DelayModel> fmt::Debug for PfairScheduler<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PfairScheduler")
            .field("cfg", &self.cfg)
            .field("tasks", &self.tasks.len())
            .field("now", &self.now)
            .field("misses", &self.misses.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_model::TaskSet;

    fn ts(pairs: &[(u64, u64)]) -> TaskSet {
        TaskSet::from_pairs(pairs.iter().copied()).unwrap()
    }

    /// The canonical partitioning counterexample (paper, Section 1): three
    /// tasks of weight 2/3 on two processors. Unschedulable by any
    /// partitioning; PD² schedules it with no misses.
    #[test]
    fn pd2_schedules_three_two_thirds_on_two_processors() {
        let set = ts(&[(2, 3), (2, 3), (2, 3)]);
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(2));
        let schedule = sched.run(30);
        assert!(sched.misses().is_empty(), "misses: {:?}", sched.misses());
        // Full utilization: every slot uses both processors.
        for (t, slot) in schedule.iter().enumerate() {
            assert_eq!(slot.len(), 2, "slot {t}");
        }
        // Each task gets exactly 2 quanta per 3 slots.
        for id in set.ids() {
            assert_eq!(sched.allocations(id), 20);
        }
    }

    /// Lag stays within (−1, 1) for every task at every instant — the Pfair
    /// defining property (Equation (1)).
    #[test]
    fn pd2_lag_bounds_hold() {
        let set = ts(&[(8, 11), (1, 3), (2, 5), (5, 7), (3, 4), (1, 2)]);
        // Σ = 8/11+1/3+2/5+5/7+3/4+1/2 ≈ 3.42 → 4 processors.
        let m = set.min_processors();
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(m));
        let horizon = 2 * set.hyperperiod();
        for t in 0..horizon {
            let mut slot = Vec::new();
            sched.tick(t, &mut slot);
            for id in set.ids() {
                let lag = sched.lag(id, t + 1);
                assert!(
                    lag > Rat::from(-1i64) && lag < Rat::ONE,
                    "lag({id}, {}) = {lag} out of bounds",
                    t + 1
                );
            }
        }
        assert!(sched.misses().is_empty());
    }

    /// Over each hyperperiod a periodic task receives exactly e·(H/p) quanta.
    #[test]
    fn proportionate_allocation_over_hyperperiod() {
        let set = ts(&[(1, 4), (3, 8), (1, 2), (5, 8)]);
        let m = set.min_processors();
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(m));
        let h = set.hyperperiod(); // 8
        sched.run(4 * h);
        for (id, task) in set.iter() {
            let expected = 4 * h / task.period * task.exec;
            assert_eq!(sched.allocations(id), expected, "{id}");
        }
    }

    /// Plain Pfair is not work conserving: a subtask that ran early leaves
    /// its processor idle until the next window. ERfair fills the idle slot.
    #[test]
    fn erfair_is_work_conserving_pfair_is_not() {
        // One task of weight 2/4 = 1/2 on one processor. Pfair windows:
        // T1 in [0,2), T2 in [2,4). Plain Pfair: T1 at 0, T2 at 2 → slot 1
        // idle. ERfair (intra-job): T2 runs at 1.
        let set = ts(&[(2, 4)]);
        let mut pfair = PfairScheduler::new(&set, SchedConfig::pd2(1));
        let pf_sched = pfair.run(4);
        assert_eq!(pf_sched[0].len(), 1);
        assert_eq!(pf_sched[1].len(), 0, "plain Pfair idles in slot 1");
        assert_eq!(pf_sched[2].len(), 1);

        let mut er = PfairScheduler::new(
            &set,
            SchedConfig::pd2(1).with_early_release(EarlyRelease::IntraJob),
        );
        let er_sched = er.run(4);
        assert_eq!(er_sched[0].len(), 1);
        assert_eq!(er_sched[1].len(), 1, "ERfair runs T2 early in slot 1");
        assert_eq!(er_sched[2].len(), 0);
        assert!(er.misses().is_empty());
    }

    /// Intra-job ERfair does not release across job boundaries; the
    /// unrestricted variant does.
    #[test]
    fn intra_job_vs_unrestricted_early_release() {
        // Weight 1/2, e=1: every subtask is its own job. Intra-job ER can
        // never release early; unrestricted can.
        let set = ts(&[(1, 2)]);
        let mut intra = PfairScheduler::new(
            &set,
            SchedConfig::pd2(1).with_early_release(EarlyRelease::IntraJob),
        );
        let s = intra.run(6);
        // Windows [0,2),[2,4),[4,6): exactly one allocation per window.
        assert_eq!(
            s.iter().map(|v| v.len()).collect::<Vec<_>>(),
            vec![1, 0, 1, 0, 1, 0]
        );

        let mut unres = PfairScheduler::new(
            &set,
            SchedConfig::pd2(1).with_early_release(EarlyRelease::Unrestricted),
        );
        let s = unres.run(6);
        // Fully work conserving: the single task runs in every slot.
        assert_eq!(s.iter().map(|v| v.len()).sum::<usize>(), 6);
        assert!(unres.misses().is_empty(), "ER never causes misses");
    }

    /// Asynchronous periodic systems: phases shift each task's windows;
    /// feasibility and optimality are unaffected.
    #[test]
    fn asynchronous_phases_schedule_cleanly() {
        let set = ts(&[(1, 2), (2, 3), (1, 6)]);
        // Σ = 1/2 + 2/3 + 1/6 = 4/3 → M = 2; staggered phases.
        let phases = [0u64, 1, 5];
        let mut sched = PfairScheduler::with_phases(&set, &phases, SchedConfig::pd2(2));
        let schedule = sched.run(60);
        assert!(sched.misses().is_empty());
        // No allocation before a task's phase.
        for (t, slot) in schedule.iter().enumerate() {
            for id in slot {
                assert!(
                    t as u64 >= phases[id.index()],
                    "{id} ran at {t} before phase {}",
                    phases[id.index()]
                );
            }
        }
        // Each task receives its proportional share measured from its
        // phase (horizon − phase is a multiple of the period for all).
        for (id, task) in set.iter() {
            let span = 60 - phases[id.index()];
            if span % task.period == 0 {
                assert_eq!(sched.allocations(id), span / task.period * task.exec);
            }
        }
        // The lag (measured from the phase) stays within bounds.
        for id in set.ids() {
            let lag = sched.lag(id, 60);
            assert!(lag > Rat::from(-1i64) && lag < Rat::ONE);
        }
    }

    #[test]
    fn phase_equal_to_zero_matches_synchronous() {
        let set = ts(&[(2, 3), (1, 2)]);
        let mut a = PfairScheduler::new(&set, SchedConfig::pd2(2));
        let mut b = PfairScheduler::with_phases(&set, &[0, 0], SchedConfig::pd2(2));
        assert_eq!(a.run(24), b.run(24));
    }

    /// Sporadic semantics: delaying a job shifts that job's subtasks (and
    /// everything after) together; earlier jobs are untouched.
    #[test]
    fn sporadic_job_delay_shifts_whole_job() {
        let set = ts(&[(2, 4)]);
        let mut delays = SporadicDelays::for_tasks(&set);
        delays.delay_job(TaskId(0), 1, 3); // job 1 arrives 3 slots late
        let mut sched = PfairScheduler::with_delays(&set, SchedConfig::pd2(1), delays);
        let schedule = sched.run(16);
        assert!(sched.misses().is_empty());
        let run_slots: Vec<usize> = schedule
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(t, _)| t)
            .collect();
        // Job 0: subtasks at releases 0 and 2. Job 1 (nominal releases 4
        // and 6) shifts to 7 and 9; job 2 (nominal 8, 10) to 11 and 13;
        // job 3's first subtask (nominal 12) to 15.
        assert_eq!(run_slots, vec![0, 2, 7, 9, 11, 13, 15]);
    }

    /// A job delay never splits a job: the second subtask cannot land
    /// before the (delayed) first.
    #[test]
    fn sporadic_delay_is_job_atomic() {
        let set = ts(&[(3, 6)]);
        let mut delays = SporadicDelays::for_tasks(&set);
        delays.delay_job(TaskId(0), 2, 5);
        let mut sched = PfairScheduler::with_delays(&set, SchedConfig::pd2(1), delays);
        sched.run(40);
        assert!(sched.misses().is_empty());
    }

    /// Fig. 1(b): an IS task whose subtask T₅ is released one slot late.
    #[test]
    fn is_delay_shifts_windows() {
        let set = ts(&[(8, 11)]);
        let mut delays = MapDelays::new();
        delays.insert(TaskId(0), 5, 1);
        let mut sched = PfairScheduler::with_delays(&set, SchedConfig::pd2(1), delays);
        sched.run(30);
        assert!(sched.misses().is_empty());
        // Alone on one processor, each subtask runs exactly at its
        // (θ-shifted) release. Releases of T₅, T₆, … all shift by one slot;
        // exactly the releases of T₁..T₂₂ fall in [0, 30) (r(T₂₂)+1 = 29,
        // r(T₂₃)+1 = 31).
        assert_eq!(sched.allocations(TaskId(0)), 22);
    }

    /// EPDF (no tie-breaks) misses deadlines on a task set PD² handles —
    /// the tie-breaks are load-bearing (ablation E12).
    #[test]
    fn epdf_misses_where_pd2_does_not() {
        // A known EPDF-hard pattern: many heavy tasks at full utilization
        // on ≥ 3 processors.
        let set = ts(&[
            (2, 3),
            (2, 3),
            (2, 3),
            (2, 3),
            (2, 3),
            (2, 3),
            (1, 1),
            (1, 1),
        ]);
        // Σ = 6·(2/3) + 2 = 6 on M = 6.
        assert_eq!(set.total_utilization(), Rat::from(6u64));
        let horizon = 3 * set.hyperperiod();

        let mut pd2 = PfairScheduler::new(&set, SchedConfig::pd2(6));
        pd2.run(horizon);
        assert!(pd2.misses().is_empty(), "PD2 is optimal");
        // (EPDF may or may not miss on this particular set; the stronger
        // ablation lives in the sim crate's optimality tests. Here we only
        // assert PD2's correctness and that EPDF produces a valid schedule
        // shape.)
        let mut epdf = PfairScheduler::new(&set, SchedConfig::pd2(6).with_policy(Policy::Epdf));
        let s = epdf.run(horizon);
        for slot in &s {
            assert!(slot.len() <= 6);
        }
    }

    /// All four policies produce miss-free schedules on a feasible set
    /// where ties are rare (policies differ only in tie-breaking).
    #[test]
    fn all_policies_schedule_feasible_light_set() {
        let set = ts(&[(1, 3), (1, 4), (1, 5), (2, 7), (1, 6)]);
        let m = set.min_processors();
        for pol in Policy::ALL {
            let mut s = PfairScheduler::new(&set, SchedConfig::pd2(m).with_policy(pol));
            s.run(2 * set.hyperperiod());
            assert!(
                s.misses().is_empty(),
                "{} missed: {:?}",
                pol.name(),
                s.misses()
            );
        }
    }

    /// §5.2 reweighting: decreases apply immediately; increases must wait
    /// for the departing weight's safe point.
    #[test]
    fn reweight_decrease_is_immediate() {
        // T1 is *light* (1/4 < 1/2), so its safe point is d(Tᵢ) + b(Tᵢ) of
        // its last subtask — already passed at the window boundary t = 8,
        // and the halved replacement joins immediately.
        let set = ts(&[(1, 2), (1, 4)]);
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(1));
        let mut out = Vec::new();
        for t in 0..8 {
            out.clear();
            sched.tick(t, &mut out);
        }
        assert_eq!(sched.earliest_leave(TaskId(1)), Some(8));
        let new_id = sched
            .reweight(TaskId(1), Task::new(1, 8).unwrap(), 8)
            .unwrap();
        assert!(sched.is_active(new_id));
        assert!(!sched.is_active(TaskId(1)));
        for t in 8..40 {
            out.clear();
            sched.tick(t, &mut out);
        }
        assert!(sched.misses().is_empty());
        assert_eq!(sched.allocations(new_id), 4); // 32 slots at 1/8
    }

    #[test]
    fn reweight_increase_waits_for_safe_point() {
        // A heavy task reweighting upward while capacity is tight: the
        // join side fails until the old weight frees.
        let set = ts(&[(1, 6), (2, 3)]); // Σ = 5/6 on one processor
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(1));
        let mut out = Vec::new();
        for t in 0..3 {
            out.clear();
            sched.tick(t, &mut out);
        }
        // 2/3 → 5/6: while the old 2/3 is still charged,
        // 1/6 + 2/3 + 5/6 > 1; once freed, 1/6 + 5/6 = 1 fits exactly.
        match sched.reweight(TaskId(1), Task::new(5, 6).unwrap(), 3) {
            Err(ReweightError::Overload) => {
                // Retry each slot until the departing weight frees.
                let mut t = 3;
                loop {
                    out.clear();
                    sched.tick(t, &mut out);
                    t += 1;
                    match sched.join(Task::new(5, 6).unwrap(), t) {
                        Ok(_) => break,
                        Err(JoinError::Overload) => assert!(t < 30, "must free eventually"),
                    }
                }
            }
            Ok(_) => {} // legal if the safe point already passed
            Err(e) => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn reweight_missing_task_fails_cleanly() {
        let set = ts(&[(1, 2)]);
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(1));
        assert_eq!(
            sched.reweight(TaskId(9), Task::new(1, 4).unwrap(), 0),
            Err(ReweightError::NoSuchTask)
        );
        assert!(ReweightError::Overload.to_string().contains("frees"));
    }

    /// The ready-queue implementation is behaviour-invariant: identical
    /// schedules under all three backings (the comparator is a total
    /// order, so pop order is fully determined).
    #[test]
    fn queue_kinds_produce_identical_schedules() {
        use crate::queue::QueueKind;
        let set = ts(&[(8, 11), (1, 3), (2, 5), (5, 7), (3, 4)]);
        let m = set.min_processors();
        let mut reference: Option<Vec<Vec<TaskId>>> = None;
        for kind in QueueKind::ALL {
            let cfg = SchedConfig::pd2(m).with_queue(kind);
            let mut sched = PfairScheduler::new(&set, cfg);
            let schedule = sched.run(500);
            assert!(sched.misses().is_empty(), "{}", kind.name());
            match &reference {
                None => reference = Some(schedule),
                Some(r) => assert_eq!(&schedule, r, "{} diverged", kind.name()),
            }
        }
    }

    #[test]
    fn join_respects_feasibility() {
        let set = ts(&[(1, 2), (1, 2), (1, 2)]);
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(2));
        // 3/2 used; a weight-1/2 task fits exactly…
        let id = sched.join(Task::new(1, 2).unwrap(), 0).unwrap();
        assert!(sched.is_active(id));
        // …but nothing more.
        assert_eq!(
            sched.join(Task::new(1, 100).unwrap(), 0),
            Err(JoinError::Overload)
        );
    }

    #[test]
    fn join_mid_schedule_meets_deadlines() {
        let set = ts(&[(1, 2)]);
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(1));
        let mut out = Vec::new();
        for t in 0..4 {
            out.clear();
            sched.tick(t, &mut out);
        }
        // Join a weight-1/2 task at t = 4; its windows start at 4.
        let id = sched.join(Task::new(1, 2).unwrap(), 4).unwrap();
        for t in 4..24 {
            out.clear();
            sched.tick(t, &mut out);
        }
        assert!(sched.misses().is_empty());
        // The joiner received ⌊(24−4)/2⌋ = 10 quanta.
        assert_eq!(sched.allocations(id), 10);
    }

    #[test]
    fn leave_defers_weight_release() {
        let set = ts(&[(1, 3), (2, 3)]);
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(1));
        let mut out = Vec::new();
        // Run a few slots so both tasks have been scheduled.
        for t in 0..3 {
            out.clear();
            sched.tick(t, &mut out);
        }
        let light = TaskId(0);
        let heavy = TaskId(1);
        assert!(sched.allocations(light) > 0);
        assert!(sched.allocations(heavy) > 0);
        // The heavy task leaves at t = 3; it stops executing immediately but
        // its weight stays charged until after its next group deadline.
        let earliest = sched.earliest_leave(heavy).unwrap();
        let free_at = sched.leave(heavy, 3).unwrap();
        assert_eq!(free_at, earliest.max(3));
        assert!(!sched.is_active(heavy));
        if free_at > 3 {
            // Weight still charged: a weight-2/3 joiner is rejected…
            assert_eq!(
                sched.join(Task::new(2, 3).unwrap(), 3),
                Err(JoinError::Overload)
            );
            // …until the safe slot passes.
            for t in 3..=free_at {
                out.clear();
                sched.tick(t, &mut out);
            }
        }
        assert_eq!(sched.total_weight().exact().unwrap(), Rat::new(1, 3));
        // The heavy task is no longer scheduled after leaving.
        out.clear();
        sched.tick(free_at.max(3) + 1, &mut out);
        assert!(!out.contains(&heavy));
    }

    #[test]
    fn leave_and_immediate_rejoin_cannot_overrun() {
        // The paper's motivating hazard: a task with negative lag leaving
        // and instantly re-joining would execute above its rate. Our
        // deferred weight release makes the immediate re-join fail while
        // the weight is still charged.
        let set = ts(&[(2, 3), (1, 3)]);
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(1));
        let mut out = Vec::new();
        for t in 0..2 {
            out.clear();
            sched.tick(t, &mut out);
        }
        let heavy = TaskId(0);
        let free_at = sched.leave(heavy, 2).unwrap();
        if free_at > 2 {
            assert_eq!(
                sched.join(Task::new(2, 3).unwrap(), 2),
                Err(JoinError::Overload)
            );
        }
    }

    #[test]
    fn never_scheduled_task_leaves_immediately() {
        // Weight sums to 1 on 1 processor; the weight-1 competitor wins
        // every slot? No — PD2 is fair. Use a 2-processor set where one
        // task is never scheduled because we leave before its release.
        let set = ts(&[(1, 100)]);
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(1));
        // T0's first window is [0,100): it is eligible but tick(0) hasn't
        // happened. earliest_leave = join time (never scheduled).
        assert_eq!(sched.earliest_leave(TaskId(0)), Some(0));
        sched.leave(TaskId(0), 0).unwrap();
        assert!(!sched.is_active(TaskId(0)));
        assert_eq!(sched.earliest_leave(TaskId(0)), None);
    }

    #[test]
    fn miss_records_tardiness() {
        // Overload EPDF deliberately: infeasible on purpose is impossible
        // via admission, so construct a miss through EPDF ties instead.
        // Simplest deterministic miss: M=1, two weight-1/2 tasks with
        // synchronized windows — feasible, no miss. Force a miss with an
        // adversarial IS delay is also impossible (delays only relax).
        // So test the Miss struct directly.
        let m = Miss {
            task: TaskId(0),
            index: 3,
            deadline: 10,
            scheduled_at: 12,
        };
        assert_eq!(m.tardiness(), 3);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_tick_panics() {
        let set = ts(&[(1, 2)]);
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(1));
        let mut out = Vec::new();
        sched.tick(1, &mut out);
    }

    #[test]
    #[should_panic(expected = "feasible")]
    fn infeasible_initial_set_panics() {
        let set = ts(&[(1, 1), (1, 1)]);
        let _ = PfairScheduler::new(&set, SchedConfig::pd2(1));
    }
}
