//! The quantum-driven Pfair/ERfair/IS scheduler.
//!
//! [`PfairScheduler`] makes the global scheduling decision for each slot:
//! among all tasks with an *eligible* pending subtask, pick the `M`
//! highest-priority ones under the configured [`Policy`]. It mirrors the
//! implementation the paper measured: a priority queue holds the ready
//! subtasks, and an event calendar ("an event timer is set for the release
//! of the task's next subtask", Section 4) holds future releases.
//!
//! Two cores implement that contract (selected by [`CoreKind`]):
//!
//! * **event-driven** (default) — a slot only touches tasks whose state
//!   actually changes: releases live in a timer wheel indexed by slot, the
//!   ready queue orders entries by a precomputed packed integer key
//!   ([`crate::key`]), and per-subtask window parameters (release,
//!   deadline, b-bit) advance by incremental integer recurrences instead
//!   of divisions;
//! * **reference** — the straightforward oracle: every slot, scan all
//!   tasks, rebuild exact [`SubtaskTag`]s with the rational-arithmetic
//!   formulas of [`crate::subtask`], and fully sort with the exact
//!   comparator. Gated behind the `slow-reference` feature (always on in
//!   tests); CI diffs its schedules against the fast core byte for byte.
//!
//! The scheduler is deliberately *mechanism only*: it says **which** tasks
//! run in a slot. Processor assignment (affinity, preemption and migration
//! accounting) is layered on top by `sched-sim`, matching the paper's
//! separation between the scheduling decision and dispatching.
//!
//! # Release models
//!
//! * [`EarlyRelease::None`] — plain Pfair: subtask `Tᵢ` becomes eligible at
//!   its pseudo-release `r(Tᵢ)`. Not work-conserving.
//! * [`EarlyRelease::IntraJob`] — ERfair as described in the paper: "if two
//!   subtasks are part of the same job, then the second subtask becomes
//!   eligible for execution as soon as the first completes."
//! * [`EarlyRelease::Unrestricted`] — subtasks may release early across job
//!   boundaries as well (the fully work-conserving variant of \[4\]).
//!
//! # Intra-sporadic delays
//!
//! An IS task's subtask may be released *late*: its offset `θ(Tᵢ)` grows and
//! shifts the remainder of its windows (offsets are non-decreasing). The
//! scheduler consults a [`DelayModel`] every time it queues the next subtask
//! of a task; the default [`NoDelay`] yields the synchronous periodic
//! behaviour.
//!
//! # Dynamic task systems
//!
//! Tasks may [`join`](PfairScheduler::join) and
//! [`leave`](PfairScheduler::leave) at runtime under the conditions of
//! Srinivasan & Anderson \[38\] (paper, Sections 2 and 5.2): joins are
//! admitted while `Σ wt ≤ M`; a light task may leave at or after
//! `d(Tᵢ) + b(Tᵢ)` of its last-scheduled subtask, a heavy task after its
//! next group deadline. Departed tasks may linger in the release calendar
//! and ready queue; every queued entry carries the task *generation* it was
//! created under and is discarded lazily if the generation (or the active
//! flag) no longer matches — so a leave (and, with
//! [`SchedConfig::with_reuse_ids`], even a rejoin under the same id) can
//! never dispatch a stale subtask.

use crate::key;
use crate::priority::{compare_with_id_order, Policy, SubtaskTag};
use crate::queue::{MinQueue, QueueKind};
use crate::subtask::{self, SubtaskIndex};
use pfair_model::{Rat, Slot, Task, TaskId, TaskSet, Weight, WeightSum};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// When subtasks become eligible relative to their Pfair releases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EarlyRelease {
    /// Plain Pfair: eligible exactly at the pseudo-release.
    #[default]
    None,
    /// ERfair: a subtask is eligible as soon as its predecessor *within the
    /// same job* completes (paper, Section 2).
    IntraJob,
    /// Fully work-conserving: eligible as soon as the predecessor completes,
    /// across job boundaries too.
    Unrestricted,
}

/// Which implementation drives [`PfairScheduler::tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CoreKind {
    /// The event-driven fast path: timer-wheel releases, packed-key ready
    /// queue, incremental window arithmetic.
    #[default]
    EventDriven,
    /// The slow oracle: per-slot scan of all tasks with exact rational
    /// tags and the exact comparator. Only available in tests or with the
    /// `slow-reference` feature enabled; `tick` panics otherwise.
    Reference,
}

/// Source of intra-sporadic release delays.
///
/// `delay(task, i)` is the additional offset `θ(Tᵢ) − θ(Tᵢ₋₁) ≥ 0` applied
/// when subtask `i` is queued. Returning 0 for every subtask gives the
/// synchronous periodic model.
pub trait DelayModel {
    /// Extra delay (in slots) for subtask `i` of `task`.
    fn delay(&mut self, task: TaskId, i: SubtaskIndex) -> u64;
}

/// The synchronous periodic release process: never delays.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoDelay;

impl DelayModel for NoDelay {
    fn delay(&mut self, _: TaskId, _: SubtaskIndex) -> u64 {
        0
    }
}

/// Explicit per-subtask delays; useful for replaying traces such as the
/// paper's Fig. 1(b), where subtask `T₅` is released one slot late.
#[derive(Debug, Default, Clone)]
pub struct MapDelays {
    delays: std::collections::HashMap<(TaskId, SubtaskIndex), u64>,
}

impl MapDelays {
    /// No delays yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Delays subtask `i` of `task` by `by` slots (relative to the end of
    /// the previous window structure — i.e. adds `by` to the task's offset
    /// when this subtask is queued).
    pub fn insert(&mut self, task: TaskId, i: SubtaskIndex, by: u64) -> &mut Self {
        self.delays.insert((task, i), by);
        self
    }
}

impl DelayModel for MapDelays {
    fn delay(&mut self, task: TaskId, i: SubtaskIndex) -> u64 {
        self.delays.get(&(task, i)).copied().unwrap_or(0)
    }
}

/// The **sporadic** release process: whole jobs may arrive late (the
/// period is a *minimum* separation), but subtasks within a job stay
/// synchronous. A sporadic task is the special case of an IS task whose
/// offset grows only at job boundaries (paper, Section 2).
///
/// `delay(job)` of the inner model is consulted once per job, at its first
/// subtask.
#[derive(Debug, Default, Clone)]
pub struct SporadicDelays {
    /// Per-task unreduced execution cost (subtasks per job), indexed by
    /// task id.
    execs: Vec<u64>,
    /// Explicit per-job delays: `(task, 0-based job index) → slots`.
    delays: std::collections::HashMap<(TaskId, u64), u64>,
}

impl SporadicDelays {
    /// Creates the model for tasks with the given per-job execution costs
    /// (`execs[i]` = `T.e` of `TaskId(i)`, unreduced).
    pub fn new(execs: Vec<u64>) -> Self {
        assert!(execs.iter().all(|&e| e > 0), "job sizes must be positive");
        SporadicDelays {
            execs,
            delays: std::collections::HashMap::new(),
        }
    }

    /// Builds from a task set.
    pub fn for_tasks(tasks: &pfair_model::TaskSet) -> Self {
        Self::new(tasks.iter().map(|(_, t)| t.exec).collect())
    }

    /// Delays job `job` (0-based) of `task` by `by` slots beyond its
    /// minimum separation.
    pub fn delay_job(&mut self, task: TaskId, job: u64, by: u64) -> &mut Self {
        self.delays.insert((task, job), by);
        self
    }
}

impl DelayModel for SporadicDelays {
    fn delay(&mut self, task: TaskId, i: SubtaskIndex) -> u64 {
        let e = self.execs[task.index()];
        if (i - 1) % e != 0 {
            return 0; // not the first subtask of a job
        }
        let job = (i - 1) / e;
        self.delays.get(&(task, job)).copied().unwrap_or(0)
    }
}

/// A recorded deadline miss: subtask was scheduled in slot `scheduled_at`
/// although its window ended at `deadline` (`scheduled_at ≥ deadline`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Miss {
    /// The task that missed.
    pub task: TaskId,
    /// Which subtask missed.
    pub index: SubtaskIndex,
    /// The violated pseudo-deadline.
    pub deadline: Slot,
    /// The slot in which the subtask was actually scheduled.
    pub scheduled_at: Slot,
}

impl Miss {
    /// By how many slots the deadline was overrun (≥ 1).
    pub fn tardiness(&self) -> u64 {
        self.scheduled_at + 1 - self.deadline
    }
}

/// Errors from [`PfairScheduler::join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinError {
    /// Admitting the task would push `Σ wt` above the processor count
    /// (feasibility condition, Equation (2)).
    Overload,
    /// `now` is not the scheduler's current slot; joins are only legal at
    /// the next slot to be scheduled. Nothing changed — retry with the
    /// current slot.
    WrongSlot,
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinError::Overload => write!(
                f,
                "join rejected: total weight would exceed processor count"
            ),
            JoinError::WrongSlot => {
                write!(f, "join rejected: not the scheduler's current slot")
            }
        }
    }
}

impl std::error::Error for JoinError {}

/// Errors from [`PfairScheduler::leave`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaveError {
    /// The task id does not name an active task.
    NoSuchTask,
    /// `now` is not the scheduler's current slot; leaves are only legal at
    /// the next slot to be scheduled. Nothing changed — retry with the
    /// current slot.
    WrongSlot,
}

impl fmt::Display for LeaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeaveError::NoSuchTask => write!(f, "no such active task"),
            LeaveError::WrongSlot => {
                write!(f, "leave rejected: not the scheduler's current slot")
            }
        }
    }
}

impl std::error::Error for LeaveError {}

/// Errors from [`PfairScheduler::reweight`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReweightError {
    /// The task id does not name an active task; nothing changed.
    NoSuchTask,
    /// The old task left, but the new weight does not fit yet (its old
    /// weight is still charged until the leave rule's safe point) — retry
    /// the join on a later slot.
    Overload,
    /// `now` is not the scheduler's current slot. Nothing changed — the
    /// old task has **not** left.
    WrongSlot,
}

impl fmt::Display for ReweightError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReweightError::NoSuchTask => write!(f, "no such active task"),
            ReweightError::Overload => {
                write!(f, "new weight does not fit until the old weight frees")
            }
            ReweightError::WrongSlot => {
                write!(f, "reweight rejected: not the scheduler's current slot")
            }
        }
    }
}

impl std::error::Error for ReweightError {}

/// Per-task scheduler state.
///
/// Besides the bookkeeping the API exposes, this carries the *incremental
/// window state* of the pending subtask `i = next_index`: with the reduced
/// weight `num/den` and accumulated offset `θ`,
///
/// ```text
/// dfloor  = ⌊i·den/num⌋ + θ        mod_acc = (i·den) mod num
/// ```
///
/// give the pending deadline `d(Tᵢ) = dfloor + (mod_acc ≠ 0)`, the b-bit
/// `b(Tᵢ) = (mod_acc ≠ 0)`, and — via the identity
/// `r(Tᵢ₊₁) = ⌊i·den/num⌋` — the successor's release, all without a single
/// division. Advancing `i → i+1` adds `den = step_q·num + step_r`:
/// `dfloor += step_q`, `mod_acc += step_r`, plus one conditional carry.
#[derive(Debug, Clone)]
/// Per-task **hot** state: everything the tick path (release drain, key
/// pack, pop, commit) reads or writes, and nothing else — 96 bytes, two
/// cache lines, so a 500-task system's hot state fits comfortably in L2.
/// Bookkeeping that only cold paths touch lives in the parallel
/// [`TaskCold`] array.
struct TaskState {
    /// Reduced weight (`numer`/`denom` double as the cached `num`/`den`).
    weight: Weight,
    /// Unreduced per-job execution cost `T.e` — job boundaries depend on it
    /// (a task with e=2, p=4 has two subtasks per job even though its
    /// weight reduces to 1/2).
    exec: u64,
    /// 1-based index of the next subtask to schedule.
    next_index: SubtaskIndex,
    /// Accumulated IS offset θ for the pending subtask (includes the join
    /// time for dynamically joined tasks).
    theta: Slot,
    /// Slot from which the pending subtask is eligible.
    eligible: Slot,
    active: bool,
    /// Cached `weight.is_light()` (hot path: group-deadline skip).
    light: bool,
    /// Incarnation counter for this id slot; queued calendar/ready entries
    /// carry the generation they were created under and are stale if it no
    /// longer matches (bumped when an id is recycled under
    /// [`SchedConfig::with_reuse_ids`]).
    generation: u32,
    /// `den / num`.
    step_q: u64,
    /// `den % num`.
    step_r: u64,
    /// `(next_index · den) mod num`.
    mod_acc: u64,
    /// `⌊next_index · den / num⌋ + θ`.
    dfloor: Slot,
    /// `(next_index − 1) mod exec` — position within the current job,
    /// replacing the division in the same-job test.
    job_pos: u64,
    /// Intrusive link to the next task in the same release-calendar
    /// bucket ([`NO_TASK`] = end of chain).
    cal_next: u32,
    /// Bucket slot this task is queued under, or [`NOT_BUCKETED`].
    cal_slot: Slot,
}

/// Per-task **cold** bookkeeping, parallel to [`TaskState`]: read only by
/// accessors and the join/leave path, written once per commit (a single
/// cache line that the enqueue/pop path never touches).
#[derive(Debug, Clone, Copy)]
struct TaskCold {
    /// Total quanta allocated so far.
    allocations: u64,
    /// Time at which the task joined (0 for initial tasks).
    joined_at: Slot,
    /// Earliest slot at which the task may leave under the rules of \[38\]
    /// (see [`PfairScheduler::earliest_leave`]): `d(Tᵢ) + b(Tᵢ)` of the
    /// last-scheduled subtask for a light task, `D(Tᵢ) + 1` for a heavy
    /// one — maintained incrementally at commit; `joined_at` while the
    /// task has never been scheduled.
    leave_safe: Slot,
}

impl TaskState {
    fn admit(task: Task, now: Slot, generation: u32) -> Self {
        let w = task.weight();
        let (num, den) = (w.numer(), w.denom());
        let (step_q, step_r) = (den / num, den % num);
        TaskState {
            weight: w,
            exec: task.exec,
            next_index: 1,
            theta: now,
            eligible: now,
            active: true,
            light: w.is_light(),
            generation,
            step_q,
            step_r,
            // i = 1: (1·den) mod num and ⌊1·den/num⌋ + θ.
            mod_acc: step_r,
            dfloor: step_q + now,
            job_pos: 0,
            cal_next: NO_TASK,
            cal_slot: NOT_BUCKETED,
        }
    }
}

/// `⌈a·b/c⌉` with a checked 64-bit fast path and a `u128` fallback.
#[inline]
fn mul_div_ceil(a: u64, b: u64, c: u64) -> u64 {
    match a.checked_mul(b) {
        Some(p) => p.div_ceil(c),
        None => {
            let p = a as u128 * b as u128;
            u64::try_from(p.div_ceil(c as u128))
                .expect("group deadline overflows the 64-bit slot range")
        }
    }
}

/// Synchronous group deadline from the reduced weight and the synchronous
/// deadline `d_sync` of the pending subtask (heavy tasks only):
/// `D = ⌈k·p/(p−e)⌉` with `k = ⌈d_sync·(p−e)/p⌉`; a unit-weight task has
/// `D = d_sync` (see [`crate::subtask::group_deadline`]).
#[inline]
fn group_deadline_sync(num: u64, den: u64, d_sync: Slot) -> Slot {
    if num == den {
        return d_sync;
    }
    let holes = den - num;
    let k = mul_div_ceil(d_sync, holes, den);
    mul_div_ceil(k, den, holes)
}

/// Ready-queue entry: 16 bytes — the packed priority key plus the owning
/// task id and generation (for lazy staleness detection). The exact tag is
/// **not** stored; it is rebuilt from the task's incremental window state
/// when the entry is committed. Heap comparisons are plain integer tuple
/// compares; the rare cases the packed key cannot decide — an equal-key
/// tie under PF/PD, or a field too large to pack at all — are resolved at
/// *pop* time with the exact rational comparator (see `tick_event`), never
/// inside the heap.
///
/// The derived order is `(key, id, gen)`. For the policies whose key packs
/// a total order (EPDF, EPDF+b, PD²) the id/gen components never matter
/// (distinct live tasks have distinct keys); for PF/PD they only fix the
/// heap's internal placement of ties, which the pop path re-sorts exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct ReadyEntry {
    /// Packed priority ([`crate::key`]); never [`key::SENTINEL`] (entries
    /// that cannot be packed go to the exact side list instead).
    key: u64,
    id: u32,
    gen: u32,
}

/// Timer wheel for future pseudo-releases.
///
/// `WHEEL_SLOTS` (a power of two) buckets cover the slots
/// `[horizon, horizon + WHEEL_SLOTS)`; releases further out sit in an
/// overflow heap and are drained directly once due. Pushes clamp the slot
/// to the horizon (an already-due release — possible under overload — is
/// processed at the next tick, exactly as the old release heap did).
///
/// Buckets are **intrusive singly-linked lists**: a bucket is a head task
/// id in a flat 2 KiB array and each queued task stores the next link in
/// its own [`TaskState::cal_next`] — a hot line the drain and commit paths
/// touch anyway, so a push costs one flat-array write instead of a
/// heap-allocated `Vec` push. A live incarnation has at most one calendar
/// entry (one in-flight subtask), so the link cell is never contended; a
/// departed task stays harmlessly linked (skipped on drain via `active`)
/// and is explicitly unlinked only if its id slot is recycled (see
/// [`PfairScheduler::admit`]). Overflow entries carry `(slot, id, gen,
/// idx)` tuples and are generation-checked on drain like before.
///
/// Invariant: when slot `t` is drained, bucket `t mod WHEEL_SLOTS` holds
/// only entries for slot `t` — an entry for `t + WHEEL_SLOTS` can only be
/// pushed once the horizon has passed `t`, i.e. after the bucket's head
/// was taken and reset.
#[derive(Debug)]
struct ReleaseCalendar {
    /// Head task id per bucket; [`NO_TASK`] when empty.
    heads: Vec<u32>,
    overflow: BinaryHeap<Reverse<(Slot, u32, u32, SubtaskIndex)>>,
    /// The next slot to be drained (= the scheduler's `now`).
    horizon: Slot,
}

/// Bucket count of the release timer wheel.
const WHEEL_SLOTS: u64 = 512;

/// Null link for the intrusive bucket chains.
const NO_TASK: u32 = u32::MAX;

/// `TaskState::cal_slot` value meaning "not linked in any bucket"
/// (never queued, already drained, or waiting in the overflow heap).
const NOT_BUCKETED: Slot = Slot::MAX;

impl ReleaseCalendar {
    fn new() -> Self {
        ReleaseCalendar {
            heads: vec![NO_TASK; WHEEL_SLOTS as usize],
            overflow: BinaryHeap::new(),
            horizon: 0,
        }
    }
}

/// Queues task `id`'s pending subtask `idx` for `slot` (free function so
/// the borrow of the task table stays disjoint from the calendar's).
#[inline]
fn calendar_push(
    cal: &mut ReleaseCalendar,
    tasks: &mut [TaskState],
    slot: Slot,
    id: u32,
    gen: u32,
    idx: SubtaskIndex,
) {
    let s = slot.max(cal.horizon);
    if s - cal.horizon < WHEEL_SLOTS {
        let b = (s % WHEEL_SLOTS) as usize;
        let st = &mut tasks[id as usize];
        debug_assert_eq!(st.generation, gen, "only the live incarnation links itself");
        st.cal_next = cal.heads[b];
        st.cal_slot = s;
        cal.heads[b] = id;
    } else {
        cal.overflow.push(Reverse((s, id, gen, idx)));
    }
}

/// Configuration for a [`PfairScheduler`].
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// Number of processors `M`.
    pub processors: u32,
    /// Priority policy (default PD²).
    pub policy: Policy,
    /// Eligibility model (default plain Pfair).
    pub early_release: EarlyRelease,
    /// Residual tie order (default: lower task id first). The Fig. 5
    /// reproduction uses both orders.
    pub higher_id_first: bool,
    /// Ready-queue implementation (default: binary heap, as in the paper).
    pub queue: QueueKind,
    /// Which scheduling core drives `tick` (default: event-driven).
    pub core: CoreKind,
    /// Recycle the ids of departed tasks on `join` (default `false`:
    /// every join gets a fresh sequential id, which is what the simulator
    /// and the fault layer assume). Queued entries of the departed
    /// incarnation are invalidated by the generation check either way.
    pub reuse_ids: bool,
}

impl SchedConfig {
    /// PD², plain Pfair releases, `m` processors.
    pub fn pd2(m: u32) -> Self {
        SchedConfig {
            processors: m,
            policy: Policy::Pd2,
            early_release: EarlyRelease::None,
            higher_id_first: false,
            queue: QueueKind::BinaryHeap,
            core: CoreKind::EventDriven,
            reuse_ids: false,
        }
    }

    /// Same but with a different ready-queue implementation.
    pub fn with_queue(mut self, queue: QueueKind) -> Self {
        self.queue = queue;
        self
    }

    /// Same but with a different policy.
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Same but with an eligibility model.
    pub fn with_early_release(mut self, er: EarlyRelease) -> Self {
        self.early_release = er;
        self
    }

    /// Same but with the residual tie order flipped.
    pub fn with_higher_id_first(mut self, v: bool) -> Self {
        self.higher_id_first = v;
        self
    }

    /// Same but with a different scheduling core.
    pub fn with_core(mut self, core: CoreKind) -> Self {
        self.core = core;
        self
    }

    /// Same but recycling departed task ids on join.
    pub fn with_reuse_ids(mut self, v: bool) -> Self {
        self.reuse_ids = v;
        self
    }
}

/// Instruments for the `tick` hot path, pre-registered so recording is a
/// branch plus a relaxed atomic op per event (and nothing at all when the
/// recorder is disabled — the default). Per-event counts are accumulated in
/// locals during a tick and published in one `add` per counter.
struct SchedObs {
    ticks: obs::Counter,
    tick_ns: obs::Timer,
    releases_drained: obs::Counter,
    heap_pushes: obs::Counter,
    heap_pops: obs::Counter,
    stale_skipped: obs::Counter,
}

impl SchedObs {
    fn new(rec: &obs::Recorder) -> Self {
        SchedObs {
            ticks: rec.counter("sched.ticks"),
            tick_ns: rec.timer("sched.tick_ns"),
            releases_drained: rec.counter("sched.releases_drained"),
            heap_pushes: rec.counter("sched.heap_pushes"),
            heap_pops: rec.counter("sched.heap_pops"),
            stale_skipped: rec.counter("sched.stale_skipped"),
        }
    }
}

impl Default for SchedObs {
    fn default() -> Self {
        Self::new(&obs::Recorder::disabled())
    }
}

/// Per-tick event tallies, flushed to [`SchedObs`] in one batch.
#[derive(Default)]
struct TickCounts {
    drained: u64,
    pushes: u64,
    pops: u64,
    stale: u64,
}

/// The global Pfair scheduler (see module docs).
pub struct PfairScheduler<D: DelayModel = NoDelay> {
    cfg: SchedConfig,
    metrics: SchedObs,
    tasks: Vec<TaskState>,
    /// Cold per-task bookkeeping, parallel to `tasks`.
    cold: Vec<TaskCold>,
    /// Future releases, indexed by slot (event-driven core only).
    calendar: ReleaseCalendar,
    /// Eligible subtasks ordered by packed priority key (event-driven core
    /// only).
    ready: MinQueue<ReadyEntry>,
    /// Eligible subtasks whose priority fields do not fit the packed key
    /// (`(id, gen)` pairs): kept out of the heap and merged in with the
    /// exact comparator at pop time. Empty in any realistically-sized
    /// system (it needs ids > 4095 or deadlines ≥ 2⁴⁰).
    exact_ready: Vec<(u32, u32)>,
    /// Scratch for resolving equal-key ties and exact merges at pop time.
    tie_scratch: Vec<ReadyEntry>,
    /// Departed ids available for recycling (`cfg.reuse_ids` only).
    free_ids: Vec<u32>,
    delays: D,
    misses: Vec<Miss>,
    /// Total weight of active tasks *plus* departing tasks whose weight
    /// has not yet been freed (leave rule, Section 2). Exact while the
    /// denominators fit; see [`WeightSum`].
    total_weight: WeightSum,
    /// Deferred weight releases for departed tasks:
    /// (free_slot, task id, weight numerator, weight denominator). The
    /// weight rides along so recycling the id slot cannot corrupt the
    /// deferred release.
    departures: BinaryHeap<Reverse<(Slot, u32, u64, u64)>>,
    /// Next slot expected by `tick` (slots must be scheduled in order).
    now: Slot,
}

impl PfairScheduler<NoDelay> {
    /// Creates a scheduler for a synchronous periodic task set.
    pub fn new(tasks: &TaskSet, cfg: SchedConfig) -> Self {
        Self::with_delays(tasks, cfg, NoDelay)
    }

    /// Creates a scheduler for an **asynchronous** periodic task set:
    /// task `i`'s first job is released at `phases[i]` (its windows are
    /// shifted right by the phase). Feasibility is unchanged —
    /// `Σ wt ≤ M` — since an asynchronous system is an IS system with a
    /// constant initial offset (Anderson & Srinivasan \[4\]).
    pub fn with_phases(tasks: &TaskSet, phases: &[Slot], cfg: SchedConfig) -> Self {
        assert_eq!(tasks.len(), phases.len());
        let mut s = Self::empty(cfg, NoDelay, tasks.len());
        for ((_, t), &phase) in tasks.iter().zip(phases) {
            s.admit(*t, phase)
                .expect("initial task set must be feasible");
        }
        s
    }
}

impl<D: DelayModel> PfairScheduler<D> {
    fn empty(cfg: SchedConfig, delays: D, capacity: usize) -> Self {
        PfairScheduler {
            cfg,
            metrics: SchedObs::default(),
            tasks: Vec::with_capacity(capacity),
            cold: Vec::with_capacity(capacity),
            calendar: ReleaseCalendar::new(),
            ready: MinQueue::new(cfg.queue),
            exact_ready: Vec::new(),
            tie_scratch: Vec::new(),
            free_ids: Vec::new(),
            delays,
            misses: Vec::new(),
            total_weight: WeightSum::new(),
            departures: BinaryHeap::new(),
            now: 0,
        }
    }

    /// Creates a scheduler with an intra-sporadic delay model.
    pub fn with_delays(tasks: &TaskSet, cfg: SchedConfig, delays: D) -> Self {
        let mut s = Self::empty(cfg, delays, tasks.len());
        for (_, t) in tasks.iter() {
            s.admit(*t, 0).expect("initial task set must be feasible");
        }
        s
    }

    /// Routes tick instrumentation (tick count and wall time, releases
    /// drained, ready-heap pushes/pops, stale entries skipped) to `rec`.
    /// The default recorder is disabled, making every probe a no-op.
    pub fn set_recorder(&mut self, rec: &obs::Recorder) {
        self.metrics = SchedObs::new(rec);
    }

    /// Builder form of [`Self::set_recorder`].
    pub fn with_recorder(mut self, rec: &obs::Recorder) -> Self {
        self.set_recorder(rec);
        self
    }

    /// Number of processors.
    pub fn processors(&self) -> u32 {
        self.cfg.processors
    }

    /// The configured policy.
    pub fn policy(&self) -> Policy {
        self.cfg.policy
    }

    /// Changes the processor count `M` from the next slot on (fail-stop
    /// loss or repaired capacity). Shrinking below `Σ wt` puts the system
    /// in overload: the scheduler keeps picking the `M` highest-priority
    /// subtasks and records the resulting window violations in
    /// [`Self::misses`]; pair with load shedding (see
    /// [`crate::recovery::plan_shedding`]) to restore feasibility.
    pub fn set_processors(&mut self, m: u32) {
        self.cfg.processors = m;
    }

    /// Switches the eligibility model from the next queued subtask on.
    /// Subtasks already in the ready/release queues keep the eligibility
    /// they were queued with, so the switch takes full effect within one
    /// subtask per task. Used by recovery to enable ERfair catch-up after
    /// an overload and to drop back once lag re-converges.
    pub fn set_early_release(&mut self, er: EarlyRelease) {
        self.cfg.early_release = er;
    }

    /// The currently configured eligibility model.
    pub fn early_release(&self) -> EarlyRelease {
        self.cfg.early_release
    }

    /// Number of task id slots in use (active or departed); valid
    /// [`TaskId`]s are `0..task_count`. With
    /// [`SchedConfig::with_reuse_ids`], departed ids may be re-assigned to
    /// later joiners, so this counts *id slots*, not tasks ever admitted.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Total weight of the currently active (and not-yet-freed departing)
    /// tasks.
    pub fn total_weight(&self) -> WeightSum {
        self.total_weight
    }

    /// All deadline misses recorded so far (empty for an optimal policy on
    /// a feasible task set).
    pub fn misses(&self) -> &[Miss] {
        &self.misses
    }

    /// Quanta allocated to `id` so far.
    pub fn allocations(&self, id: TaskId) -> u64 {
        self.cold[id.index()].allocations
    }

    /// Weight of task `id`.
    pub fn weight_of(&self, id: TaskId) -> Weight {
        self.tasks[id.index()].weight
    }

    /// Whether `id` names an active task.
    pub fn is_active(&self, id: TaskId) -> bool {
        self.tasks
            .get(id.index())
            .map(|t| t.active)
            .unwrap_or(false)
    }

    /// The lag of task `id` at time `t` (beginning of slot `t`), **valid for
    /// tasks with no IS delays**: `lag(T, t) = wt(T)·(t − join) − allocated`.
    ///
    /// `t` must not exceed the next unscheduled slot (allocations past `t`
    /// would be double-counted).
    pub fn lag(&self, id: TaskId, t: Slot) -> Rat {
        assert!(t <= self.now, "lag({t}) queried beyond simulated time");
        let st = &self.tasks[id.index()];
        let cold = &self.cold[id.index()];
        let elapsed = t.saturating_sub(cold.joined_at);
        st.weight.as_rat() * Rat::from(elapsed) - Rat::from(cold.allocations)
    }

    /// Admits a task (internal; shared by construction and `join`).
    fn admit(&mut self, task: Task, now: Slot) -> Result<TaskId, JoinError> {
        let w = task.weight();
        if !self.total_weight.fits_after_adding(w, self.cfg.processors) {
            return Err(JoinError::Overload);
        }
        self.total_weight.add(w);
        let recycled = if self.cfg.reuse_ids {
            self.free_ids.pop()
        } else {
            None
        };
        let id = match recycled {
            Some(i) => TaskId(i),
            None => TaskId(self.tasks.len() as u32),
        };
        let generation = match self.tasks.get(id.index()) {
            Some(old) => {
                // A recycled id slot may still be linked in a calendar
                // bucket by its departed incarnation; unlink it so the new
                // incarnation's link cell starts clean (ready-heap and
                // overflow entries are generation-checked instead).
                let (cal_slot, old_gen) = (old.cal_slot, old.generation);
                if cal_slot != NOT_BUCKETED && cal_slot >= self.calendar.horizon {
                    self.unlink_from_bucket(id.0, cal_slot);
                }
                old_gen.wrapping_add(1)
            }
            None => 0,
        };
        let st = TaskState::admit(task, now, generation);
        let cold = TaskCold {
            allocations: 0,
            joined_at: now,
            leave_safe: now,
        };
        if id.index() < self.tasks.len() {
            self.tasks[id.index()] = st;
            self.cold[id.index()] = cold;
        } else {
            self.tasks.push(st);
            self.cold.push(cold);
        }
        // First subtask: release r(T₁) + θ = θ (r(T₁) = 0 always).
        if self.cfg.core == CoreKind::EventDriven {
            calendar_push(
                &mut self.calendar,
                &mut self.tasks,
                now,
                id.0,
                generation,
                1,
            );
        }
        Ok(id)
    }

    /// Removes `id` from the intrusive chain of the bucket holding `slot`
    /// (id-recycle path only; bounded by that bucket's chain length).
    fn unlink_from_bucket(&mut self, id: u32, slot: Slot) {
        let b = (slot % WHEEL_SLOTS) as usize;
        let mut cur = self.calendar.heads[b];
        let mut prev = NO_TASK;
        while cur != NO_TASK {
            let next = self.tasks[cur as usize].cal_next;
            if cur == id {
                if prev == NO_TASK {
                    self.calendar.heads[b] = next;
                } else {
                    self.tasks[prev as usize].cal_next = next;
                }
                self.tasks[id as usize].cal_slot = NOT_BUCKETED;
                return;
            }
            prev = cur;
            cur = next;
        }
        debug_assert!(false, "task {id} not linked in the bucket for slot {slot}");
    }

    /// A task with the given parameters joins at time `now` (which must be
    /// the next slot to be scheduled, else [`JoinError::WrongSlot`]).
    /// Fails with [`JoinError::Overload`] if `Σ wt` would exceed `M`.
    pub fn join(&mut self, task: Task, now: Slot) -> Result<TaskId, JoinError> {
        if now != self.now {
            return Err(JoinError::WrongSlot);
        }
        self.admit(task, now)
    }

    /// Earliest slot at which task `id` may leave without endangering other
    /// tasks' deadlines (paper, Section 2): for a light task,
    /// `d(Tᵢ) + b(Tᵢ)` of its last-scheduled subtask `Tᵢ`; for a heavy
    /// task, its next group deadline. A task that was
    /// never scheduled may leave immediately.
    pub fn earliest_leave(&self, id: TaskId) -> Option<Slot> {
        let st = self.tasks.get(id.index())?;
        if !st.active {
            return None;
        }
        // `leave_safe` is maintained incrementally at commit: the light
        // rule `d(Tᵢ) + b(Tᵢ)` / heavy rule `D(Tᵢ) + 1` ("after its next
        // group deadline") of the last-scheduled subtask, or `joined_at`
        // while the task has never been scheduled.
        Some(self.cold[id.index()].leave_safe)
    }

    /// Removes task `id` at time `now` (which must be the scheduler's
    /// current slot, else [`LeaveError::WrongSlot`]). The task stops being
    /// scheduled immediately, but — per the leave rule of \[38\] — its
    /// *weight* only becomes available for admission at the returned slot:
    /// immediately if `now` is already at or past the safe point, otherwise
    /// at `earliest_leave(id)`. (Freeing the weight early would let a
    /// leave-and-rejoin cycle execute above its prescribed rate and cause
    /// other tasks to miss, as the paper notes in Section 2.)
    pub fn leave(&mut self, id: TaskId, now: Slot) -> Result<Slot, LeaveError> {
        if now != self.now {
            return Err(LeaveError::WrongSlot);
        }
        let earliest = self.earliest_leave(id).ok_or(LeaveError::NoSuchTask)?;
        let st = &mut self.tasks[id.index()];
        st.active = false;
        // Stale calendar/ready entries for this incarnation are skipped
        // lazily (active flag now; generation check if the id is recycled).
        let free_at = earliest.max(now);
        if free_at <= now {
            self.total_weight.sub(st.weight);
        } else {
            self.departures.push(Reverse((
                free_at,
                id.0,
                st.weight.numer(),
                st.weight.denom(),
            )));
        }
        if self.cfg.reuse_ids {
            self.free_ids.push(id.0);
        }
        Ok(free_at)
    }

    /// Reweights task `id` to `new_task` at time `now` — the paper's §5.2
    /// recipe: "task reweighting can be modeled as a leave-and-join
    /// problem." The old incarnation stops executing immediately; the new
    /// one is admitted against the capacity left after the departing
    /// weight frees (so an *increase* may fail with
    /// [`ReweightError::Overload`] until the leave rule's safe point passes —
    /// retry on later slots). Returns the new task's id on success.
    ///
    /// On [`ReweightError::Overload`] the old task has still left (its work
    /// was already conceptually replaced); callers wanting all-or-nothing
    /// semantics should check [`Self::earliest_leave`] and
    /// [`Self::total_weight`] first. A [`ReweightError::WrongSlot`] is
    /// atomic: nothing changed.
    pub fn reweight(
        &mut self,
        id: TaskId,
        new_task: Task,
        now: Slot,
    ) -> Result<TaskId, ReweightError> {
        if now != self.now {
            return Err(ReweightError::WrongSlot);
        }
        self.leave(id, now).map_err(|e| match e {
            LeaveError::NoSuchTask => ReweightError::NoSuchTask,
            LeaveError::WrongSlot => ReweightError::WrongSlot,
        })?;
        self.join(new_task, now).map_err(|e| match e {
            JoinError::Overload => ReweightError::Overload,
            JoinError::WrongSlot => ReweightError::WrongSlot,
        })
    }

    /// Schedules slot `now`, appending the chosen task ids to `out` (at most
    /// `M`). Slots must be scheduled consecutively starting from 0 (or from
    /// the construction slot).
    pub fn tick(&mut self, now: Slot, out: &mut Vec<TaskId>) {
        assert_eq!(now, self.now, "slots must be scheduled in order");
        self.now = now + 1;
        self.metrics.ticks.incr();
        let _tick_span = self.metrics.tick_ns.start();

        // Free the weight of departed tasks whose safe point has passed.
        while let Some(&Reverse((at, _, num, den))) = self.departures.peek() {
            if at > now {
                break;
            }
            self.departures.pop();
            let w = Weight::new(num, den).expect("departure stores a valid weight");
            self.total_weight.sub(w);
        }

        match self.cfg.core {
            CoreKind::EventDriven => self.tick_event(now, out),
            CoreKind::Reference => {
                #[cfg(any(test, feature = "slow-reference"))]
                self.tick_reference(now, out);
                #[cfg(not(any(test, feature = "slow-reference")))]
                panic!("CoreKind::Reference requires the `slow-reference` feature");
            }
        }
    }

    /// The event-driven fast path: drain this slot's releases from the
    /// timer wheel into the packed-key ready queue, then pop the `M` best.
    fn tick_event(&mut self, now: Slot, out: &mut Vec<TaskId>) {
        let mut counts = TickCounts::default();
        self.calendar.horizon = now + 1;

        // 1. Drain releases due at `now`: the wheel bucket (which, by the
        // calendar invariant, holds only slot-`now` entries) plus any due
        // overflow entries. The bucket head is reset before walking so a
        // re-push for `now + WHEEL_SLOTS` starts a fresh chain.
        let b = (now % WHEEL_SLOTS) as usize;
        let mut link = std::mem::replace(&mut self.calendar.heads[b], NO_TASK);
        while link != NO_TASK {
            let st = &mut self.tasks[link as usize];
            let next = st.cal_next;
            st.cal_slot = NOT_BUCKETED;
            let (gen, idx) = (st.generation, st.next_index);
            self.enqueue_ready(link, gen, idx, &mut counts);
            link = next;
        }
        while let Some(&Reverse((slot, id, gen, idx))) = self.calendar.overflow.peek() {
            if slot > now {
                break;
            }
            self.calendar.overflow.pop();
            self.enqueue_ready(id, gen, idx, &mut counts);
        }

        // 2. Pop the M highest-priority eligible subtasks. One integer
        // key compare decides the winner on the hot path; the exact
        // comparator is consulted only for equal-key PF/PD ties or when
        // unpackable entries sit in the side list.
        let m = self.cfg.processors as usize;
        let residual_ties = matches!(self.cfg.policy, Policy::Pf | Policy::Pd);
        while out.len() < m {
            if !self.exact_ready.is_empty() {
                // Rare: an unpackable entry might outrank everything in
                // the heap; do a full exact selection for this pick.
                if !self.pop_exact_merge(now, out, &mut counts) {
                    break;
                }
                continue;
            }
            let Some(entry) = self.ready.pop() else {
                break;
            };
            counts.pops += 1;
            let st = &self.tasks[entry.id as usize];
            if !st.active || st.generation != entry.gen {
                counts.stale += 1;
                continue; // departed (and possibly recycled) incarnation
            }
            if residual_ties && self.ready.peek().is_some_and(|e| e.key == entry.key) {
                self.commit_tie_batch(entry, now, out, &mut counts);
                continue;
            }
            // Within one generation a task has exactly one in-flight
            // entry, so a live entry always matches the pending subtask.
            let tag = self.pending_tag(entry.id);
            self.commit(tag, now, out);
        }

        if counts.drained > 0 {
            self.metrics.releases_drained.add(counts.drained);
        }
        if counts.pushes > 0 {
            self.metrics.heap_pushes.add(counts.pushes);
        }
        if counts.pops > 0 {
            self.metrics.heap_pops.add(counts.pops);
        }
        if counts.stale > 0 {
            self.metrics.stale_skipped.add(counts.stale);
        }
    }

    /// Rebuilds the pending subtask's exact tag from the task's
    /// incremental window state — no divisions except the group deadline
    /// of a heavy task.
    #[inline]
    fn pending_tag(&self, id: u32) -> SubtaskTag {
        let st = &self.tasks[id as usize];
        let b = st.mod_acc != 0;
        let deadline = st.dfloor + u64::from(b);
        let group_deadline = if st.light {
            0
        } else {
            group_deadline_sync(st.weight.numer(), st.weight.denom(), deadline - st.theta)
                + st.theta
        };
        let tag = SubtaskTag {
            task: TaskId(id),
            index: st.next_index,
            deadline,
            b,
            group_deadline,
            weight: st.weight,
        };
        // Verifier cross-check: the incremental state reproduces the exact
        // rational formulas.
        debug_assert_eq!(
            tag,
            SubtaskTag::new(TaskId(id), st.weight, st.next_index, st.theta)
        );
        tag
    }

    /// Moves one drained release into the ready queue (unless stale),
    /// computing its packed priority key from the task's incremental
    /// window state. Entries whose fields do not fit the key go to the
    /// exact side list.
    #[inline]
    fn enqueue_ready(&mut self, id: u32, gen: u32, idx: SubtaskIndex, counts: &mut TickCounts) {
        counts.drained += 1;
        let st = &self.tasks[id as usize];
        if !st.active || st.generation != gen {
            counts.stale += 1;
            return;
        }
        // Within one generation a task has exactly one in-flight entry,
        // so a live entry always matches the pending subtask.
        debug_assert_eq!(st.next_index, idx);
        let tag = self.pending_tag(id);
        let key = key::pack(self.cfg.policy, &tag, self.cfg.higher_id_first);
        counts.pushes += 1;
        if key == key::SENTINEL {
            self.exact_ready.push((id, gen));
        } else {
            self.ready.push(ReadyEntry { key, id, gen });
        }
    }

    /// Resolves an equal-key tie under PF/PD: pops every entry sharing
    /// `first`'s key, re-sorts the batch with the exact comparator,
    /// commits as many as still fit in the slot, and pushes the rest back.
    fn commit_tie_batch(
        &mut self,
        first: ReadyEntry,
        now: Slot,
        out: &mut Vec<TaskId>,
        counts: &mut TickCounts,
    ) {
        let mut batch = std::mem::take(&mut self.tie_scratch);
        batch.clear();
        batch.push(first);
        while let Some(e) = self.ready.peek() {
            if e.key != first.key {
                break;
            }
            batch.push(self.ready.pop().expect("peeked entry exists"));
            counts.pops += 1;
        }
        // Prune stale entries, then order the live ones exactly.
        batch.retain(|e| {
            let st = &self.tasks[e.id as usize];
            let live = st.active && st.generation == e.gen;
            if !live {
                counts.stale += 1;
            }
            live
        });
        let mut tags: Vec<(SubtaskTag, ReadyEntry)> =
            batch.iter().map(|&e| (self.pending_tag(e.id), e)).collect();
        let (pol, hif) = (self.cfg.policy, self.cfg.higher_id_first);
        tags.sort_unstable_by(|a, b| compare_with_id_order(pol, &a.0, &b.0, hif));
        let m = self.cfg.processors as usize;
        for (tag, entry) in tags {
            if out.len() < m {
                self.commit(tag, now, out);
            } else {
                self.ready.push(entry);
                counts.pushes += 1;
            }
        }
        batch.clear();
        self.tie_scratch = batch;
    }

    /// Exact selection when unpackable entries exist (the cold path): the
    /// side list might outrank the heap top, so compare everything with
    /// the exact comparator and commit the single best candidate. Returns
    /// `false` when nothing is left to schedule.
    fn pop_exact_merge(
        &mut self,
        now: Slot,
        out: &mut Vec<TaskId>,
        counts: &mut TickCounts,
    ) -> bool {
        let (pol, hif) = (self.cfg.policy, self.cfg.higher_id_first);
        // Prune stale side-list entries.
        let tasks = &self.tasks;
        let stale_before = self.exact_ready.len();
        self.exact_ready.retain(|&(id, gen)| {
            let st = &tasks[id as usize];
            st.active && st.generation == gen
        });
        counts.stale += (stale_before - self.exact_ready.len()) as u64;
        // Best side-list candidate by exact order.
        let mut best: Option<(usize, SubtaskTag)> = None;
        for (i, &(id, _)) in self.exact_ready.iter().enumerate() {
            let tag = self.pending_tag(id);
            match &best {
                Some((_, b)) if compare_with_id_order(pol, &tag, b, hif).is_lt() => {
                    best = Some((i, tag));
                }
                None => best = Some((i, tag)),
                _ => {}
            }
        }
        // Best heap candidate: pop the top (skipping stale entries) plus —
        // under PF/PD, whose keys can tie — every entry sharing its key,
        // and take the exact-best of that batch. The batch is held in
        // `tie_scratch` so the losers can be pushed back afterwards.
        let residual_ties = matches!(pol, Policy::Pf | Policy::Pd);
        let mut batch = std::mem::take(&mut self.tie_scratch);
        batch.clear();
        while let Some(&entry) = self.ready.peek() {
            let st = &self.tasks[entry.id as usize];
            if !st.active || st.generation != entry.gen {
                self.ready.pop();
                counts.pops += 1;
                counts.stale += 1;
                continue;
            }
            if let Some(first) = batch.first() {
                if !(residual_ties && entry.key == first.key) {
                    break;
                }
            }
            batch.push(self.ready.pop().expect("peeked entry exists"));
        }
        let mut heap_best: Option<(usize, SubtaskTag)> = None;
        for (i, e) in batch.iter().enumerate() {
            let tag = self.pending_tag(e.id);
            match &heap_best {
                Some((_, b)) if compare_with_id_order(pol, &tag, b, hif).is_ge() => {}
                _ => heap_best = Some((i, tag)),
            }
        }
        // Decide between the side list's best and the heap batch's best,
        // then push every unchosen batch entry back into the heap.
        let side_wins = match (&best, &heap_best) {
            (None, None) => {
                self.tie_scratch = batch;
                return false;
            }
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some((_, s)), Some((_, h))) => compare_with_id_order(pol, s, h, hif).is_lt(),
        };
        counts.pops += 1;
        if side_wins {
            for e in batch.drain(..) {
                self.ready.push(e);
            }
            let (i, tag) = best.expect("side_wins implies a side candidate");
            self.exact_ready.swap_remove(i);
            self.commit(tag, now, out);
        } else {
            let (keep, tag) = heap_best.expect("heap side non-empty");
            for (i, e) in batch.drain(..).enumerate() {
                if i != keep {
                    self.ready.push(e);
                }
            }
            self.commit(tag, now, out);
        }
        self.tie_scratch = batch;
        true
    }

    /// The reference oracle: scan every task, rebuild exact tags, sort
    /// with the exact comparator, take the `M` best. Byte-identical to the
    /// event-driven core (CI enforces this); kept as the ground truth.
    #[cfg(any(test, feature = "slow-reference"))]
    fn tick_reference(&mut self, now: Slot, out: &mut Vec<TaskId>) {
        let mut candidates: Vec<SubtaskTag> = Vec::new();
        for (i, st) in self.tasks.iter().enumerate() {
            if st.active && st.eligible <= now {
                candidates.push(SubtaskTag::new(
                    TaskId(i as u32),
                    st.weight,
                    st.next_index,
                    st.theta,
                ));
            }
        }
        let (pol, hif) = (self.cfg.policy, self.cfg.higher_id_first);
        candidates.sort_unstable_by(|a, b| compare_with_id_order(pol, a, b, hif));
        candidates.truncate(self.cfg.processors as usize);
        for tag in candidates {
            self.commit(tag, now, out);
        }
    }

    /// Records the allocation of `tag` in slot `now` and advances the
    /// task's incremental window state to the successor subtask. Shared by
    /// both cores; only the event-driven core queues the successor in the
    /// release calendar (the reference core re-scans `eligible` instead).
    fn commit(&mut self, tag: SubtaskTag, now: Slot, out: &mut Vec<TaskId>) {
        // Deadline-miss detection: scheduling in a slot at or past the
        // pseudo-deadline violates the window.
        if now >= tag.deadline {
            self.misses.push(Miss {
                task: tag.task,
                index: tag.index,
                deadline: tag.deadline,
                scheduled_at: now,
            });
        }
        let id = tag.task;
        let next = tag.index + 1;
        let delay = self.delays.delay(id, next);
        let cold = &mut self.cold[id.index()];
        cold.allocations += 1;
        cold.leave_safe = if tag.weight.is_light() {
            tag.deadline + u64::from(tag.b)
        } else {
            tag.group_deadline + 1
        };
        let st = &mut self.tasks[id.index()];
        out.push(id);

        st.next_index = next;
        st.theta += delay;
        st.dfloor += delay;
        // r(Tᵢ₊₁) + θ = ⌊i·den/num⌋ + θ — the pending dfloor, now that θ
        // includes the successor's delay.
        let pfair_release = st.dfloor;
        debug_assert_eq!(pfair_release, subtask::release(st.weight, next) + st.theta);
        // Advance the incremental window state i → i+1 (see [`TaskState`]).
        st.mod_acc += st.step_r;
        st.dfloor += st.step_q;
        if st.mod_acc >= st.weight.numer() {
            st.mod_acc -= st.weight.numer();
            st.dfloor += 1;
        }
        // Job boundaries use the *unreduced* execution cost.
        let same_job = st.job_pos + 1 != st.exec;
        st.job_pos = if same_job { st.job_pos + 1 } else { 0 };
        let eligible = match self.cfg.early_release {
            EarlyRelease::None => pfair_release,
            EarlyRelease::IntraJob if same_job => (now + 1).min(pfair_release),
            EarlyRelease::IntraJob => pfair_release,
            EarlyRelease::Unrestricted => (now + 1).min(pfair_release),
        };
        st.eligible = eligible;
        let gen = st.generation;
        if self.cfg.core == CoreKind::EventDriven {
            calendar_push(
                &mut self.calendar,
                &mut self.tasks,
                eligible,
                id.0,
                gen,
                next,
            );
        }
    }

    /// Convenience: run slots `0..horizon` and return the full schedule as
    /// one `Vec<Vec<TaskId>>` (slot → scheduled tasks).
    pub fn run(&mut self, horizon: Slot) -> Vec<Vec<TaskId>> {
        let mut schedule = Vec::with_capacity(horizon as usize);
        let mut slot = Vec::new();
        for t in self.now..horizon {
            slot.clear();
            self.tick(t, &mut slot);
            schedule.push(slot.clone());
        }
        schedule
    }
}

impl<D: DelayModel> fmt::Debug for PfairScheduler<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PfairScheduler")
            .field("cfg", &self.cfg)
            .field("tasks", &self.tasks.len())
            .field("now", &self.now)
            .field("misses", &self.misses.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_model::TaskSet;

    fn ts(pairs: &[(u64, u64)]) -> TaskSet {
        TaskSet::from_pairs(pairs.iter().copied()).unwrap()
    }

    /// The canonical partitioning counterexample (paper, Section 1): three
    /// tasks of weight 2/3 on two processors. Unschedulable by any
    /// partitioning; PD² schedules it with no misses.
    #[test]
    fn pd2_schedules_three_two_thirds_on_two_processors() {
        let set = ts(&[(2, 3), (2, 3), (2, 3)]);
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(2));
        let schedule = sched.run(30);
        assert!(sched.misses().is_empty(), "misses: {:?}", sched.misses());
        // Full utilization: every slot uses both processors.
        for (t, slot) in schedule.iter().enumerate() {
            assert_eq!(slot.len(), 2, "slot {t}");
        }
        // Each task gets exactly 2 quanta per 3 slots.
        for id in set.ids() {
            assert_eq!(sched.allocations(id), 20);
        }
    }

    /// Lag stays within (−1, 1) for every task at every instant — the Pfair
    /// defining property (Equation (1)).
    #[test]
    fn pd2_lag_bounds_hold() {
        let set = ts(&[(8, 11), (1, 3), (2, 5), (5, 7), (3, 4), (1, 2)]);
        // Σ = 8/11+1/3+2/5+5/7+3/4+1/2 ≈ 3.42 → 4 processors.
        let m = set.min_processors();
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(m));
        let horizon = 2 * set.hyperperiod();
        for t in 0..horizon {
            let mut slot = Vec::new();
            sched.tick(t, &mut slot);
            for id in set.ids() {
                let lag = sched.lag(id, t + 1);
                assert!(
                    lag > Rat::from(-1i64) && lag < Rat::ONE,
                    "lag({id}, {}) = {lag} out of bounds",
                    t + 1
                );
            }
        }
        assert!(sched.misses().is_empty());
    }

    /// Over each hyperperiod a periodic task receives exactly e·(H/p) quanta.
    #[test]
    fn proportionate_allocation_over_hyperperiod() {
        let set = ts(&[(1, 4), (3, 8), (1, 2), (5, 8)]);
        let m = set.min_processors();
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(m));
        let h = set.hyperperiod(); // 8
        sched.run(4 * h);
        for (id, task) in set.iter() {
            let expected = 4 * h / task.period * task.exec;
            assert_eq!(sched.allocations(id), expected, "{id}");
        }
    }

    /// Plain Pfair is not work conserving: a subtask that ran early leaves
    /// its processor idle until the next window. ERfair fills the idle slot.
    #[test]
    fn erfair_is_work_conserving_pfair_is_not() {
        // One task of weight 2/4 = 1/2 on one processor. Pfair windows:
        // T1 in [0,2), T2 in [2,4). Plain Pfair: T1 at 0, T2 at 2 → slot 1
        // idle. ERfair (intra-job): T2 runs at 1.
        let set = ts(&[(2, 4)]);
        let mut pfair = PfairScheduler::new(&set, SchedConfig::pd2(1));
        let pf_sched = pfair.run(4);
        assert_eq!(pf_sched[0].len(), 1);
        assert_eq!(pf_sched[1].len(), 0, "plain Pfair idles in slot 1");
        assert_eq!(pf_sched[2].len(), 1);

        let mut er = PfairScheduler::new(
            &set,
            SchedConfig::pd2(1).with_early_release(EarlyRelease::IntraJob),
        );
        let er_sched = er.run(4);
        assert_eq!(er_sched[0].len(), 1);
        assert_eq!(er_sched[1].len(), 1, "ERfair runs T2 early in slot 1");
        assert_eq!(er_sched[2].len(), 0);
        assert!(er.misses().is_empty());
    }

    /// Intra-job ERfair does not release across job boundaries; the
    /// unrestricted variant does.
    #[test]
    fn intra_job_vs_unrestricted_early_release() {
        // Weight 1/2, e=1: every subtask is its own job. Intra-job ER can
        // never release early; unrestricted can.
        let set = ts(&[(1, 2)]);
        let mut intra = PfairScheduler::new(
            &set,
            SchedConfig::pd2(1).with_early_release(EarlyRelease::IntraJob),
        );
        let s = intra.run(6);
        // Windows [0,2),[2,4),[4,6): exactly one allocation per window.
        assert_eq!(
            s.iter().map(|v| v.len()).collect::<Vec<_>>(),
            vec![1, 0, 1, 0, 1, 0]
        );

        let mut unres = PfairScheduler::new(
            &set,
            SchedConfig::pd2(1).with_early_release(EarlyRelease::Unrestricted),
        );
        let s = unres.run(6);
        // Fully work conserving: the single task runs in every slot.
        assert_eq!(s.iter().map(|v| v.len()).sum::<usize>(), 6);
        assert!(unres.misses().is_empty(), "ER never causes misses");
    }

    /// Asynchronous periodic systems: phases shift each task's windows;
    /// feasibility and optimality are unaffected.
    #[test]
    fn asynchronous_phases_schedule_cleanly() {
        let set = ts(&[(1, 2), (2, 3), (1, 6)]);
        // Σ = 1/2 + 2/3 + 1/6 = 4/3 → M = 2; staggered phases.
        let phases = [0u64, 1, 5];
        let mut sched = PfairScheduler::with_phases(&set, &phases, SchedConfig::pd2(2));
        let schedule = sched.run(60);
        assert!(sched.misses().is_empty());
        // No allocation before a task's phase.
        for (t, slot) in schedule.iter().enumerate() {
            for id in slot {
                assert!(
                    t as u64 >= phases[id.index()],
                    "{id} ran at {t} before phase {}",
                    phases[id.index()]
                );
            }
        }
        // Each task receives its proportional share measured from its
        // phase (horizon − phase is a multiple of the period for all).
        for (id, task) in set.iter() {
            let span = 60 - phases[id.index()];
            if span % task.period == 0 {
                assert_eq!(sched.allocations(id), span / task.period * task.exec);
            }
        }
        // The lag (measured from the phase) stays within bounds.
        for id in set.ids() {
            let lag = sched.lag(id, 60);
            assert!(lag > Rat::from(-1i64) && lag < Rat::ONE);
        }
    }

    #[test]
    fn phase_equal_to_zero_matches_synchronous() {
        let set = ts(&[(2, 3), (1, 2)]);
        let mut a = PfairScheduler::new(&set, SchedConfig::pd2(2));
        let mut b = PfairScheduler::with_phases(&set, &[0, 0], SchedConfig::pd2(2));
        assert_eq!(a.run(24), b.run(24));
    }

    /// Sporadic semantics: delaying a job shifts that job's subtasks (and
    /// everything after) together; earlier jobs are untouched.
    #[test]
    fn sporadic_job_delay_shifts_whole_job() {
        let set = ts(&[(2, 4)]);
        let mut delays = SporadicDelays::for_tasks(&set);
        delays.delay_job(TaskId(0), 1, 3); // job 1 arrives 3 slots late
        let mut sched = PfairScheduler::with_delays(&set, SchedConfig::pd2(1), delays);
        let schedule = sched.run(16);
        assert!(sched.misses().is_empty());
        let run_slots: Vec<usize> = schedule
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(t, _)| t)
            .collect();
        // Job 0: subtasks at releases 0 and 2. Job 1 (nominal releases 4
        // and 6) shifts to 7 and 9; job 2 (nominal 8, 10) to 11 and 13;
        // job 3's first subtask (nominal 12) to 15.
        assert_eq!(run_slots, vec![0, 2, 7, 9, 11, 13, 15]);
    }

    /// A job delay never splits a job: the second subtask cannot land
    /// before the (delayed) first.
    #[test]
    fn sporadic_delay_is_job_atomic() {
        let set = ts(&[(3, 6)]);
        let mut delays = SporadicDelays::for_tasks(&set);
        delays.delay_job(TaskId(0), 2, 5);
        let mut sched = PfairScheduler::with_delays(&set, SchedConfig::pd2(1), delays);
        sched.run(40);
        assert!(sched.misses().is_empty());
    }

    /// Fig. 1(b): an IS task whose subtask T₅ is released one slot late.
    #[test]
    fn is_delay_shifts_windows() {
        let set = ts(&[(8, 11)]);
        let mut delays = MapDelays::new();
        delays.insert(TaskId(0), 5, 1);
        let mut sched = PfairScheduler::with_delays(&set, SchedConfig::pd2(1), delays);
        sched.run(30);
        assert!(sched.misses().is_empty());
        // Alone on one processor, each subtask runs exactly at its
        // (θ-shifted) release. Releases of T₅, T₆, … all shift by one slot;
        // exactly the releases of T₁..T₂₂ fall in [0, 30) (r(T₂₂)+1 = 29,
        // r(T₂₃)+1 = 31).
        assert_eq!(sched.allocations(TaskId(0)), 22);
    }

    /// EPDF (no tie-breaks) misses deadlines on a task set PD² handles —
    /// the tie-breaks are load-bearing (ablation E12).
    #[test]
    fn epdf_misses_where_pd2_does_not() {
        // A known EPDF-hard pattern: many heavy tasks at full utilization
        // on ≥ 3 processors.
        let set = ts(&[
            (2, 3),
            (2, 3),
            (2, 3),
            (2, 3),
            (2, 3),
            (2, 3),
            (1, 1),
            (1, 1),
        ]);
        // Σ = 6·(2/3) + 2 = 6 on M = 6.
        assert_eq!(set.total_utilization(), Rat::from(6u64));
        let horizon = 3 * set.hyperperiod();

        let mut pd2 = PfairScheduler::new(&set, SchedConfig::pd2(6));
        pd2.run(horizon);
        assert!(pd2.misses().is_empty(), "PD2 is optimal");
        // (EPDF may or may not miss on this particular set; the stronger
        // ablation lives in the sim crate's optimality tests. Here we only
        // assert PD2's correctness and that EPDF produces a valid schedule
        // shape.)
        let mut epdf = PfairScheduler::new(&set, SchedConfig::pd2(6).with_policy(Policy::Epdf));
        let s = epdf.run(horizon);
        for slot in &s {
            assert!(slot.len() <= 6);
        }
    }

    /// All four policies produce miss-free schedules on a feasible set
    /// where ties are rare (policies differ only in tie-breaking).
    #[test]
    fn all_policies_schedule_feasible_light_set() {
        let set = ts(&[(1, 3), (1, 4), (1, 5), (2, 7), (1, 6)]);
        let m = set.min_processors();
        for pol in Policy::ALL {
            let mut s = PfairScheduler::new(&set, SchedConfig::pd2(m).with_policy(pol));
            s.run(2 * set.hyperperiod());
            assert!(
                s.misses().is_empty(),
                "{} missed: {:?}",
                pol.name(),
                s.misses()
            );
        }
    }

    /// §5.2 reweighting: decreases apply immediately; increases must wait
    /// for the departing weight's safe point.
    #[test]
    fn reweight_decrease_is_immediate() {
        // T1 is *light* (1/4 < 1/2), so its safe point is d(Tᵢ) + b(Tᵢ) of
        // its last subtask — already passed at the window boundary t = 8,
        // and the halved replacement joins immediately.
        let set = ts(&[(1, 2), (1, 4)]);
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(1));
        let mut out = Vec::new();
        for t in 0..8 {
            out.clear();
            sched.tick(t, &mut out);
        }
        assert_eq!(sched.earliest_leave(TaskId(1)), Some(8));
        let new_id = sched
            .reweight(TaskId(1), Task::new(1, 8).unwrap(), 8)
            .unwrap();
        assert!(sched.is_active(new_id));
        assert!(!sched.is_active(TaskId(1)));
        for t in 8..40 {
            out.clear();
            sched.tick(t, &mut out);
        }
        assert!(sched.misses().is_empty());
        assert_eq!(sched.allocations(new_id), 4); // 32 slots at 1/8
    }

    #[test]
    fn reweight_increase_waits_for_safe_point() {
        // A heavy task reweighting upward while capacity is tight: the
        // join side fails until the old weight frees.
        let set = ts(&[(1, 6), (2, 3)]); // Σ = 5/6 on one processor
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(1));
        let mut out = Vec::new();
        for t in 0..3 {
            out.clear();
            sched.tick(t, &mut out);
        }
        // 2/3 → 5/6: while the old 2/3 is still charged,
        // 1/6 + 2/3 + 5/6 > 1; once freed, 1/6 + 5/6 = 1 fits exactly.
        match sched.reweight(TaskId(1), Task::new(5, 6).unwrap(), 3) {
            Err(ReweightError::Overload) => {
                // Retry each slot until the departing weight frees.
                let mut t = 3;
                loop {
                    out.clear();
                    sched.tick(t, &mut out);
                    t += 1;
                    match sched.join(Task::new(5, 6).unwrap(), t) {
                        Ok(_) => break,
                        Err(JoinError::Overload) => assert!(t < 30, "must free eventually"),
                        Err(JoinError::WrongSlot) => {
                            unreachable!("join retries track the current slot")
                        }
                    }
                }
            }
            Ok(_) => {} // legal if the safe point already passed
            Err(e) => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn reweight_missing_task_fails_cleanly() {
        let set = ts(&[(1, 2)]);
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(1));
        assert_eq!(
            sched.reweight(TaskId(9), Task::new(1, 4).unwrap(), 0),
            Err(ReweightError::NoSuchTask)
        );
        assert!(ReweightError::Overload.to_string().contains("frees"));
    }

    /// Stale-slot preconditions surface as errors, not panics — and they
    /// change nothing.
    #[test]
    fn join_leave_reweight_reject_wrong_slot() {
        let set = ts(&[(1, 2), (1, 4)]);
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(2));
        let mut out = Vec::new();
        for t in 0..4 {
            out.clear();
            sched.tick(t, &mut out);
        }
        // The current slot is 4; both stale and future slots are rejected.
        for wrong in [3, 5] {
            assert_eq!(
                sched.join(Task::new(1, 8).unwrap(), wrong),
                Err(JoinError::WrongSlot)
            );
            assert_eq!(sched.leave(TaskId(0), wrong), Err(LeaveError::WrongSlot));
            assert_eq!(
                sched.reweight(TaskId(0), Task::new(1, 8).unwrap(), wrong),
                Err(ReweightError::WrongSlot)
            );
        }
        // A wrong-slot reweight is atomic: the old task never left.
        assert!(sched.is_active(TaskId(0)));
        assert_eq!(sched.task_count(), 2);
        // The same calls succeed at the current slot.
        assert!(sched.join(Task::new(1, 8).unwrap(), 4).is_ok());
        assert!(sched.leave(TaskId(0), 4).is_ok());
        assert!(LeaveError::WrongSlot.to_string().contains("current slot"));
        assert!(JoinError::WrongSlot.to_string().contains("current slot"));
        assert!(ReweightError::WrongSlot
            .to_string()
            .contains("current slot"));
    }

    /// The ready-queue implementation is behaviour-invariant: identical
    /// schedules under all three backings (the comparator is a total
    /// order, so pop order is fully determined).
    #[test]
    fn queue_kinds_produce_identical_schedules() {
        use crate::queue::QueueKind;
        let set = ts(&[(8, 11), (1, 3), (2, 5), (5, 7), (3, 4)]);
        let m = set.min_processors();
        let mut reference: Option<Vec<Vec<TaskId>>> = None;
        for kind in QueueKind::ALL {
            let cfg = SchedConfig::pd2(m).with_queue(kind);
            let mut sched = PfairScheduler::new(&set, cfg);
            let schedule = sched.run(500);
            assert!(sched.misses().is_empty(), "{}", kind.name());
            match &reference {
                None => reference = Some(schedule),
                Some(r) => assert_eq!(&schedule, r, "{} diverged", kind.name()),
            }
        }
    }

    /// The slow reference core and the event-driven core produce identical
    /// schedules and misses under every policy and eligibility model.
    #[test]
    fn reference_core_matches_event_core() {
        let set = ts(&[(8, 11), (1, 3), (2, 5), (5, 7), (3, 4), (1, 2)]);
        let m = set.min_processors();
        for pol in Policy::ALL {
            for er in [
                EarlyRelease::None,
                EarlyRelease::IntraJob,
                EarlyRelease::Unrestricted,
            ] {
                for hif in [false, true] {
                    let cfg = SchedConfig::pd2(m)
                        .with_policy(pol)
                        .with_early_release(er)
                        .with_higher_id_first(hif);
                    let mut fast = PfairScheduler::new(&set, cfg);
                    let mut slow = PfairScheduler::new(&set, cfg.with_core(CoreKind::Reference));
                    assert_eq!(
                        fast.run(300),
                        slow.run(300),
                        "{} {er:?} hif={hif} diverged",
                        pol.name()
                    );
                    assert_eq!(fast.misses(), slow.misses());
                }
            }
        }
    }

    /// Regression for the stale-pop bug: a queued release of a departed
    /// incarnation must never dispatch after its id is recycled.
    #[test]
    fn stale_entry_never_dispatches_after_id_reuse() {
        // M = 1, id recycling on. Task A (weight 1/2) runs at slot 0; its
        // successor T2 is queued for slot 2. A leaves at slot 1 and B
        // (weight 1/4) joins, recycling id 0. Without the generation check
        // the queued (slot 2, id 0) release would match B's pending T2
        // (next_index = 2) and dispatch it at slot 2 — three slots before
        // its true release at 5.
        let set = ts(&[(1, 2)]);
        let cfg = SchedConfig::pd2(1).with_reuse_ids(true);
        let mut sched = PfairScheduler::new(&set, cfg);
        let mut out = Vec::new();
        sched.tick(0, &mut out);
        assert_eq!(out, vec![TaskId(0)]);
        sched.leave(TaskId(0), 1).unwrap();
        let b = sched.join(Task::new(1, 4).unwrap(), 1).unwrap();
        assert_eq!(b, TaskId(0), "the id is recycled");
        let mut schedule = Vec::new();
        for t in 1..9 {
            out.clear();
            sched.tick(t, &mut out);
            schedule.push(out.clone());
        }
        assert!(sched.misses().is_empty());
        // B's windows (θ = 1): T1 ∈ [1, 5), T2 ∈ [5, 9). Plain Pfair runs
        // each subtask exactly at its release; slots 2–4 must stay idle.
        assert_eq!(schedule[0], vec![TaskId(0)], "B's T1 at slot 1");
        assert!(
            schedule[1..4].iter().all(|s| s.is_empty()),
            "stale dispatch: {schedule:?}"
        );
        assert_eq!(schedule[4], vec![TaskId(0)], "B's T2 at slot 5");
        assert_eq!(sched.allocations(TaskId(0)), 2);
    }

    /// Task ids beyond the packed key's 12-bit field produce sentinel keys;
    /// mixed sentinel/packed comparisons fall back to the exact order and
    /// the schedule stays correct.
    #[test]
    fn sentinel_keys_fall_back_to_exact_order() {
        let n = crate::key::ID_FIELD_MAX as u64 + 9; // ids 0..4104
        let set = TaskSet::from_pairs((0..n).map(|_| (1u64, 8192u64))).unwrap();
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(1));
        let mut out = Vec::new();
        // All windows are [0, 8192): every tick is decided purely by the
        // residual id tie-break, across the packed/sentinel boundary.
        for t in 0..4 {
            out.clear();
            sched.tick(t, &mut out);
            assert_eq!(out, vec![TaskId(t as u32)]);
        }
    }

    #[test]
    fn join_respects_feasibility() {
        let set = ts(&[(1, 2), (1, 2), (1, 2)]);
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(2));
        // 3/2 used; a weight-1/2 task fits exactly…
        let id = sched.join(Task::new(1, 2).unwrap(), 0).unwrap();
        assert!(sched.is_active(id));
        // …but nothing more.
        assert_eq!(
            sched.join(Task::new(1, 100).unwrap(), 0),
            Err(JoinError::Overload)
        );
    }

    #[test]
    fn join_mid_schedule_meets_deadlines() {
        let set = ts(&[(1, 2)]);
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(1));
        let mut out = Vec::new();
        for t in 0..4 {
            out.clear();
            sched.tick(t, &mut out);
        }
        // Join a weight-1/2 task at t = 4; its windows start at 4.
        let id = sched.join(Task::new(1, 2).unwrap(), 4).unwrap();
        for t in 4..24 {
            out.clear();
            sched.tick(t, &mut out);
        }
        assert!(sched.misses().is_empty());
        // The joiner received ⌊(24−4)/2⌋ = 10 quanta.
        assert_eq!(sched.allocations(id), 10);
    }

    #[test]
    fn leave_defers_weight_release() {
        let set = ts(&[(1, 3), (2, 3)]);
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(1));
        let mut out = Vec::new();
        // Run a few slots so both tasks have been scheduled.
        for t in 0..3 {
            out.clear();
            sched.tick(t, &mut out);
        }
        let light = TaskId(0);
        let heavy = TaskId(1);
        assert!(sched.allocations(light) > 0);
        assert!(sched.allocations(heavy) > 0);
        // The heavy task leaves at t = 3; it stops executing immediately but
        // its weight stays charged until after its next group deadline.
        let earliest = sched.earliest_leave(heavy).unwrap();
        let free_at = sched.leave(heavy, 3).unwrap();
        assert_eq!(free_at, earliest.max(3));
        assert!(!sched.is_active(heavy));
        if free_at > 3 {
            // Weight still charged: a weight-2/3 joiner is rejected…
            assert_eq!(
                sched.join(Task::new(2, 3).unwrap(), 3),
                Err(JoinError::Overload)
            );
            // …until the safe slot passes.
            for t in 3..=free_at {
                out.clear();
                sched.tick(t, &mut out);
            }
        }
        assert_eq!(sched.total_weight().exact().unwrap(), Rat::new(1, 3));
        // The heavy task is no longer scheduled after leaving.
        out.clear();
        sched.tick(free_at.max(3) + 1, &mut out);
        assert!(!out.contains(&heavy));
    }

    #[test]
    fn leave_and_immediate_rejoin_cannot_overrun() {
        // The paper's motivating hazard: a task with negative lag leaving
        // and instantly re-joining would execute above its rate. Our
        // deferred weight release makes the immediate re-join fail while
        // the weight is still charged.
        let set = ts(&[(2, 3), (1, 3)]);
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(1));
        let mut out = Vec::new();
        for t in 0..2 {
            out.clear();
            sched.tick(t, &mut out);
        }
        let heavy = TaskId(0);
        let free_at = sched.leave(heavy, 2).unwrap();
        if free_at > 2 {
            assert_eq!(
                sched.join(Task::new(2, 3).unwrap(), 2),
                Err(JoinError::Overload)
            );
        }
    }

    #[test]
    fn never_scheduled_task_leaves_immediately() {
        // Weight sums to 1 on 1 processor; the weight-1 competitor wins
        // every slot? No — PD2 is fair. Use a 2-processor set where one
        // task is never scheduled because we leave before its release.
        let set = ts(&[(1, 100)]);
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(1));
        // T0's first window is [0,100): it is eligible but tick(0) hasn't
        // happened. earliest_leave = join time (never scheduled).
        assert_eq!(sched.earliest_leave(TaskId(0)), Some(0));
        sched.leave(TaskId(0), 0).unwrap();
        assert!(!sched.is_active(TaskId(0)));
        assert_eq!(sched.earliest_leave(TaskId(0)), None);
    }

    #[test]
    fn miss_records_tardiness() {
        // Overload EPDF deliberately: infeasible on purpose is impossible
        // via admission, so construct a miss through EPDF ties instead.
        // Simplest deterministic miss: M=1, two weight-1/2 tasks with
        // synchronized windows — feasible, no miss. Force a miss with an
        // adversarial IS delay is also impossible (delays only relax).
        // So test the Miss struct directly.
        let m = Miss {
            task: TaskId(0),
            index: 3,
            deadline: 10,
            scheduled_at: 12,
        };
        assert_eq!(m.tardiness(), 3);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_tick_panics() {
        let set = ts(&[(1, 2)]);
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(1));
        let mut out = Vec::new();
        sched.tick(1, &mut out);
    }

    #[test]
    #[should_panic(expected = "feasible")]
    fn infeasible_initial_set_panics() {
        let set = ts(&[(1, 1), (1, 1)]);
        let _ = PfairScheduler::new(&set, SchedConfig::pd2(1));
    }

    /// Releases farther out than the timer wheel's span take the overflow
    /// path and still fire on the right slot.
    #[test]
    fn long_period_releases_cross_the_wheel_span() {
        // Period 600 > WHEEL_SLOTS = 512: T2's release at 600 overflows
        // the wheel when queued at slot 0.
        let set = ts(&[(1, 600), (1, 2)]);
        let mut sched = PfairScheduler::new(&set, SchedConfig::pd2(1));
        let schedule = sched.run(1300);
        assert!(sched.misses().is_empty());
        // One allocation per window [0,600), [600,1200), [1200,1800).
        assert_eq!(sched.allocations(TaskId(0)), 3);
        let t0_slots: Vec<usize> = schedule
            .iter()
            .enumerate()
            .filter(|(_, s)| s.contains(&TaskId(0)))
            .map(|(t, _)| t)
            .collect();
        assert_eq!(t0_slots.len(), 3);
        assert!(t0_slots[1] >= 600 && t0_slots[2] >= 1200, "{t0_slots:?}");
    }
}
