//! Supertasking (paper, Section 5.5).
//!
//! Moir and Ramamurthy \[29\] proposed binding non-migratory tasks to a
//! processor by bundling them into a *supertask* that competes under Pfair
//! scheduling with the cumulative weight of its *component tasks*; whenever
//! the supertask is scheduled, one of its components executes, selected by
//! an internal uniprocessor scheduler (EDF here, as in \[16\]).
//!
//! As the paper's Fig. 5 shows, naive supertasking is **unsound**: a
//! component task can miss its deadline even though the supertask receives
//! its full Pfair allocation, because the allocation may arrive at the
//! wrong times within the component's period. Holman and Anderson \[16\]
//! showed that deadlines can be guaranteed by *reweighting*: when EDF is
//! used internally, it suffices to inflate the supertask's weight by
//! `1/p_min`, where `p_min` is the smallest component period
//! ([`Supertask::reweighted_weight`]).
//!
//! [`Supertask`] tracks component jobs and performs the internal EDF
//! dispatch; [`run_with_supertask`] drives a [`PfairScheduler`] with one
//! supertask mixed into a set of ordinary tasks and reports component-level
//! deadline misses — the harness behind the Fig. 5 reproduction.

use crate::sched::{PfairScheduler, SchedConfig};
use pfair_model::{Rat, Slot, Task, TaskId, TaskSet, WeightError};
use std::fmt;

/// The uniprocessor scheduler used *inside* a supertask.
///
/// Holman & Anderson's reweighting bound of `1/p_min` is proven for EDF
/// \[16\]; RM is provided for hierarchical-scheduling experiments (an RM
/// interior needs the same or more inflation — RM is not optimal on the
/// supertask's virtual processor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InternalPolicy {
    /// Earliest deadline first (the \[16\] configuration).
    #[default]
    Edf,
    /// Rate monotonic: smallest component period wins.
    Rm,
}

/// A component task bound inside a supertask: synchronous periodic with
/// integer execution cost and period in quanta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Component {
    /// Execution cost per job, quanta.
    pub exec: u64,
    /// Period, quanta.
    pub period: u64,
}

impl Component {
    /// Creates a component; parameters validated like a [`Task`].
    pub fn new(exec: u64, period: u64) -> Result<Self, WeightError> {
        Task::new(exec, period)?;
        Ok(Component { exec, period })
    }

    /// Component utilization as an exact rational.
    pub fn utilization(&self) -> Rat {
        Rat::new(self.exec as i128, self.period as i128)
    }
}

/// A deadline miss by a component job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComponentMiss {
    /// Index of the component within the supertask.
    pub component: usize,
    /// 0-based job index.
    pub job: u64,
    /// The absolute deadline that was missed.
    pub deadline: Slot,
    /// Quanta still owed at the deadline.
    pub remaining: u64,
}

impl fmt::Display for ComponentMiss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "component {} job {} missed deadline {} ({} quanta short)",
            self.component, self.job, self.deadline, self.remaining
        )
    }
}

/// Per-component execution state.
#[derive(Debug, Clone)]
struct CompState {
    /// Quanta remaining for the current job.
    remaining: u64,
    /// 0-based index of the current job.
    job: u64,
    /// Whether the current job's miss has already been recorded.
    miss_recorded: bool,
}

/// A supertask: a bundle of component tasks scheduled internally by EDF.
#[derive(Debug, Clone)]
pub struct Supertask {
    components: Vec<Component>,
    state: Vec<CompState>,
    misses: Vec<ComponentMiss>,
    policy: InternalPolicy,
    /// Next slot `on_slot` expects.
    now: Slot,
}

impl Supertask {
    /// Creates a supertask over the given components.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty or the cumulative utilization
    /// exceeds 1 (a supertask occupies at most one processor).
    pub fn new(components: Vec<Component>) -> Self {
        assert!(!components.is_empty(), "supertask needs components");
        let total: Rat = components.iter().map(Component::utilization).sum();
        assert!(
            total <= Rat::ONE,
            "supertask utilization {total} exceeds one processor"
        );
        let state = components
            .iter()
            .map(|c| CompState {
                remaining: c.exec,
                job: 0,
                miss_recorded: false,
            })
            .collect();
        Supertask {
            components,
            state,
            misses: Vec::new(),
            policy: InternalPolicy::Edf,
            now: 0,
        }
    }

    /// Selects the internal scheduler (default EDF).
    pub fn with_internal_policy(mut self, policy: InternalPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Cumulative weight `Σ wt(component)` as an exact rational.
    pub fn cumulative_weight(&self) -> Rat {
        self.components.iter().map(Component::utilization).sum()
    }

    /// The competing [`Task`] with the *naive* cumulative weight — the
    /// configuration Fig. 5 shows to be unsound.
    pub fn naive_task(&self) -> Task {
        let w = self.cumulative_weight();
        Task::new(w.numer() as u64, w.denom() as u64).expect("0 < Σwt ≤ 1")
    }

    /// Smallest component period `p_min`.
    pub fn min_period(&self) -> u64 {
        self.components
            .iter()
            .map(|c| c.period)
            .min()
            .expect("nonempty")
    }

    /// The Holman–Anderson reweighted weight `Σ wt + 1/p_min`, sufficient
    /// for EDF-scheduled components \[16\]. Saturates at 1.
    pub fn reweighted_weight(&self) -> Rat {
        let w = self.cumulative_weight() + Rat::new(1, self.min_period() as i128);
        w.min(Rat::ONE)
    }

    /// The competing [`Task`] with the reweighted (safe) weight.
    pub fn reweighted_task(&self) -> Task {
        let w = self.reweighted_weight();
        Task::new(w.numer() as u64, w.denom() as u64).expect("0 < w ≤ 1")
    }

    /// Components in the bundle.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Component deadline misses recorded so far.
    pub fn misses(&self) -> &[ComponentMiss] {
        &self.misses
    }

    /// Advances the supertask through slot `t`. `granted` says whether the
    /// global scheduler allocated this slot to the supertask; if so, the
    /// earliest-deadline pending component job receives the quantum.
    ///
    /// Slots must be presented consecutively starting from 0.
    pub fn on_slot(&mut self, t: Slot, granted: bool) {
        assert_eq!(t, self.now, "supertask slots must advance in order");
        self.now = t + 1;

        // Release: a job of component c is current during
        // [job·p, (job+1)·p); roll jobs forward at period boundaries.
        for (idx, st) in self.state.iter_mut().enumerate() {
            let c = self.components[idx];
            while t >= (st.job + 1) * c.period {
                // Old job's deadline passed; misses were recorded at the
                // boundary check below. Account any unfinished work as
                // abandoned (the paper's model: misses are hard failures,
                // the demo only needs their detection).
                st.job += 1;
                st.remaining = c.exec;
                st.miss_recorded = false;
            }
        }

        // Dispatch under the internal policy.
        if granted {
            let pick = self
                .state
                .iter()
                .enumerate()
                .filter(|(_, st)| st.remaining > 0)
                .min_by_key(|(idx, st)| match self.policy {
                    // EDF: earliest absolute deadline.
                    InternalPolicy::Edf => ((st.job + 1) * self.components[*idx].period, *idx),
                    // RM: smallest period (static priority).
                    InternalPolicy::Rm => (self.components[*idx].period, *idx),
                })
                .map(|(idx, _)| idx);
            if let Some(idx) = pick {
                self.state[idx].remaining -= 1;
            }
        }

        // Miss detection at time t+1: any current job whose deadline is
        // ≤ t+1 with work remaining has missed.
        for (idx, st) in self.state.iter_mut().enumerate() {
            let c = self.components[idx];
            let deadline = (st.job + 1) * c.period;
            if st.remaining > 0 && deadline <= t + 1 && !st.miss_recorded {
                st.miss_recorded = true;
                self.misses.push(ComponentMiss {
                    component: idx,
                    job: st.job,
                    deadline,
                    remaining: st.remaining,
                });
            }
        }
    }
}

/// Result of [`run_with_supertask`].
#[derive(Debug)]
pub struct SupertaskRun {
    /// The slot-indexed schedule (which global tasks ran when).
    pub schedule: Vec<Vec<TaskId>>,
    /// The id under which the supertask competed.
    pub supertask_id: TaskId,
    /// The supertask, carrying component misses.
    pub supertask: Supertask,
    /// Pfair-level misses of the global scheduler (empty when feasible).
    pub pfair_misses: usize,
}

/// Schedules `normal` tasks plus one supertask on `cfg.processors`
/// processors for `horizon` slots. `reweighted` selects the safe
/// Holman–Anderson weight instead of the naive cumulative weight.
///
/// The supertask is appended *after* the normal tasks, so it has the
/// highest task id; `cfg.higher_id_first` then controls how genuinely
/// arbitrary priority ties between it and equal-parameter tasks resolve.
pub fn run_with_supertask(
    normal: &TaskSet,
    supertask: Supertask,
    cfg: SchedConfig,
    horizon: Slot,
    reweighted: bool,
) -> SupertaskRun {
    let mut all = normal.clone();
    let st_task = if reweighted {
        supertask.reweighted_task()
    } else {
        supertask.naive_task()
    };
    let supertask_id = all.push(st_task);
    let mut sched = PfairScheduler::new(&all, cfg);
    let mut supertask = supertask;
    let mut schedule = Vec::with_capacity(horizon as usize);
    let mut slot = Vec::new();
    for t in 0..horizon {
        slot.clear();
        sched.tick(t, &mut slot);
        supertask.on_slot(t, slot.contains(&supertask_id));
        schedule.push(slot.clone());
    }
    SupertaskRun {
        schedule,
        supertask_id,
        supertask,
        pfair_misses: sched.misses().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::Policy;

    fn fig5_supertask() -> Supertask {
        Supertask::new(vec![
            Component::new(1, 5).unwrap(),  // T, weight 1/5
            Component::new(1, 45).unwrap(), // U, weight 1/45
        ])
    }

    fn fig5_normal_tasks() -> TaskSet {
        TaskSet::from_pairs([(1u64, 2u64), (1, 3), (1, 3), (2, 9)]).unwrap()
    }

    #[test]
    fn cumulative_weight_matches_paper() {
        let s = fig5_supertask();
        // 1/5 + 1/45 = 2/9 (paper, Fig. 5 caption).
        assert_eq!(s.cumulative_weight(), Rat::new(2, 9));
        assert_eq!(s.naive_task(), Task::new(2, 9).unwrap());
    }

    #[test]
    fn reweighting_adds_one_over_min_period() {
        let s = fig5_supertask();
        // 2/9 + 1/5 = 19/45.
        assert_eq!(s.reweighted_weight(), Rat::new(19, 45));
        assert_eq!(s.reweighted_task(), Task::new(19, 45).unwrap());
    }

    #[test]
    fn reweight_saturates_at_one() {
        let s = Supertask::new(vec![Component::new(9, 10).unwrap()]);
        assert_eq!(s.reweighted_weight(), Rat::ONE);
    }

    /// Paper Fig. 5: under naive supertasking on two processors, component
    /// T (weight 1/5) misses a deadline at time 10 — for at least one
    /// resolution of the genuinely arbitrary priority ties.
    #[test]
    fn fig5_naive_supertask_misses() {
        // Both residual tie orders produce component misses; the
        // higher-id-first order realizes the paper's exact figure (T's
        // job over [5,10) starves because S's second subtask ran at slot 4).
        let mut exact_figure = false;
        for higher_id_first in [false, true] {
            let cfg = SchedConfig::pd2(2)
                .with_policy(Policy::Pd2)
                .with_higher_id_first(higher_id_first);
            let run = run_with_supertask(&fig5_normal_tasks(), fig5_supertask(), cfg, 45, false);
            assert_eq!(
                run.pfair_misses, 0,
                "the supertask itself is Pfair-feasible"
            );
            let misses = run.supertask.misses();
            assert!(
                !misses.is_empty(),
                "naive supertasking must miss (Fig. 5), order {higher_id_first}"
            );
            // Component 0 is T (weight 1/5) in every case.
            assert_eq!(misses[0].component, 0);
            if misses[0].deadline == 10 && misses[0].job == 1 {
                exact_figure = true;
            }
        }
        assert!(exact_figure, "one tie order reproduces the miss at t=10");
    }

    /// With Holman–Anderson reweighting the same system is miss-free.
    #[test]
    fn fig5_reweighted_supertask_is_safe() {
        // Reweighted S has weight 19/45; total = 1/2+1/3+1/3+2/9+19/45 =
        // 163/90 ≤ 2, still feasible.
        for higher_id_first in [false, true] {
            let cfg = SchedConfig::pd2(2).with_higher_id_first(higher_id_first);
            let run =
                run_with_supertask(&fig5_normal_tasks(), fig5_supertask(), cfg, 10 * 45, true);
            assert_eq!(run.pfair_misses, 0);
            assert!(
                run.supertask.misses().is_empty(),
                "reweighted run missed: {:?}",
                run.supertask.misses()
            );
        }
    }

    /// A lone supertask on one processor with full allocation never misses:
    /// internal EDF on a unit-capacity "processor" is optimal.
    #[test]
    fn dedicated_supertask_never_misses() {
        let mut s = Supertask::new(vec![
            Component::new(1, 2).unwrap(),
            Component::new(1, 3).unwrap(),
            Component::new(1, 7).unwrap(),
        ]);
        // 1/2 + 1/3 + 1/7 = 41/42 ≤ 1; grant every slot.
        for t in 0..84 {
            s.on_slot(t, true);
        }
        assert!(s.misses().is_empty(), "{:?}", s.misses());
    }

    /// Starving the supertask produces recorded misses with remaining work.
    #[test]
    fn starved_supertask_reports_misses() {
        let mut s = Supertask::new(vec![Component::new(1, 3).unwrap()]);
        for t in 0..9 {
            s.on_slot(t, false);
        }
        // Jobs 0, 1, 2 all miss.
        assert_eq!(s.misses().len(), 3);
        assert_eq!(s.misses()[0].deadline, 3);
        assert_eq!(s.misses()[0].remaining, 1);
        assert!(s.misses()[0].to_string().contains("missed"));
    }

    #[test]
    fn internal_rm_prefers_short_period() {
        let mut s = Supertask::new(vec![
            Component::new(2, 10).unwrap(),
            Component::new(1, 4).unwrap(),
        ])
        .with_internal_policy(InternalPolicy::Rm);
        // Slot 0: RM picks the period-4 component.
        s.on_slot(0, true);
        assert_eq!(s.state[1].remaining, 0);
        assert_eq!(s.state[0].remaining, 2);
    }

    /// On a dedicated processor, internal RM can miss where internal EDF
    /// cannot (RM is not optimal): the classic (2,5)+(4,7) pair.
    #[test]
    fn internal_rm_is_suboptimal() {
        let comps = || vec![Component::new(2, 5).unwrap(), Component::new(4, 7).unwrap()];
        let mut edf = Supertask::new(comps());
        let mut rm = Supertask::new(comps()).with_internal_policy(InternalPolicy::Rm);
        for t in 0..350 {
            edf.on_slot(t, true);
            rm.on_slot(t, true);
        }
        assert!(edf.misses().is_empty(), "EDF handles U = 34/35");
        assert!(!rm.misses().is_empty(), "RM misses the classic pair");
    }

    #[test]
    fn internal_edf_prefers_earliest_deadline() {
        let mut s = Supertask::new(vec![
            Component::new(1, 10).unwrap(), // deadline 10
            Component::new(1, 4).unwrap(),  // deadline 4 — must win slot 0
        ]);
        s.on_slot(0, true);
        assert_eq!(s.state[1].remaining, 0);
        assert_eq!(s.state[0].remaining, 1);
    }

    #[test]
    #[should_panic(expected = "exceeds one processor")]
    fn overfull_supertask_rejected() {
        let _ = Supertask::new(vec![
            Component::new(2, 3).unwrap(),
            Component::new(1, 2).unwrap(),
        ]);
    }
}
