//! # pfair-core
//!
//! The Pfair scheduling theory stack from *The Case for Fair Multiprocessor
//! Scheduling* (Srinivasan, Holman, Anderson, Baruah, 2003):
//!
//! * [`subtask`] — pseudo-releases, pseudo-deadlines, windows, b-bits, and
//!   group deadlines (paper, Section 2, Fig. 1).
//! * [`priority`] — the EPDF / PF / PD / PD² priority orders as pure,
//!   swappable comparators.
//! * [`sched`] — the quantum-driven global scheduler supporting plain
//!   Pfair, ERfair early releases, intra-sporadic delays, and dynamic task
//!   joins/leaves.
//! * [`lag`] — lag computation and full-schedule Pfair validation
//!   (Equation (1)).
//! * [`recovery`] — overload detection (lag watchdog) and weight-ordered
//!   load shedding for fault recovery, built on the join/leave rules.
//! * [`supertask`] — supertasking (Section 5.5): naive cumulative-weight
//!   bundling, the Fig. 5 unsoundness, and Holman–Anderson reweighting.
//!
//! The scheduler decides *which* tasks run each slot; processor assignment
//! with affinity and preemption/migration accounting lives in the
//! `sched-sim` crate.
//!
//! ## Quickstart
//!
//! ```
//! use pfair_core::sched::{PfairScheduler, SchedConfig};
//! use pfair_model::TaskSet;
//!
//! // Three tasks of weight 2/3 on two processors: unschedulable by any
//! // partitioning, trivially handled by PD².
//! let tasks = TaskSet::from_pairs([(2u64, 3u64), (2, 3), (2, 3)]).unwrap();
//! let mut sched = PfairScheduler::new(&tasks, SchedConfig::pd2(2));
//! let schedule = sched.run(30);
//! assert!(sched.misses().is_empty());
//! assert!(schedule.iter().all(|slot| slot.len() == 2));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod key;
pub mod lag;
pub mod priority;
pub mod queue;
pub mod recovery;
pub mod sched;
pub mod subtask;
pub mod supertask;

pub use priority::{Policy, SubtaskTag};
pub use queue::{MinQueue, QueueKind};
pub use recovery::{plan_shedding, LagWatchdog};
pub use sched::{
    CoreKind, DelayModel, EarlyRelease, JoinError, LeaveError, MapDelays, Miss, NoDelay,
    PfairScheduler, ReweightError, SchedConfig, SporadicDelays,
};
pub use supertask::{Component, ComponentMiss, InternalPolicy, Supertask};
