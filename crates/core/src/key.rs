//! Packed integer priority keys for the event-driven scheduler hot loop.
//!
//! The exact comparators in [`crate::priority`] walk rational weights,
//! b-bit chains, and group deadlines on every heap operation — fidelity
//! the verifier needs, overhead the hot loop cannot afford. This module
//! compresses the *decided prefix* of each policy's priority order into a
//! single `u64`, so the common heap comparison is one integer compare:
//!
//! ```text
//!   bit 63                                                        bit 0
//!   ┌────────────────────────────┬──────┬─────────────┬──────────────┐
//!   │ deadline (40 bits)         │ b̄ (1)│ gd-tie (11) │ task id (12) │
//!   └────────────────────────────┴──────┴─────────────┴──────────────┘
//! ```
//!
//! * **deadline** — the absolute pseudo-deadline `d(Tᵢ)` (every policy
//!   orders by deadline first).
//! * **b̄** — the *complemented* b-bit: `b = 1` is the favored tie-break,
//!   so it must sort smaller.
//! * **gd-tie** — the group-deadline tie-break, encoded so that a *later*
//!   group deadline sorts smaller (wins). The field stores
//!   `GD_FIELD_MAX − 1 − (D(Tᵢ) − d(Tᵢ))` for heavy tasks and
//!   `GD_FIELD_MAX` for light ones (`D = 0`, the weakest claim). Storing
//!   the *relative* value keeps the field period-scaled — and is sound
//!   because the exact order only consults `D` between subtasks whose
//!   deadlines are already equal. When `b = 0` the field is forced to 0
//!   on both sides (the exact order never consults `D` there).
//! * **task id** — the residual deterministic tie-break (bit-flipped when
//!   the scheduler runs with `higher_id_first`).
//!
//! Per policy, only the fields that the policy's *total order* actually
//! decides are packed; the rest are zeroed so equal keys fall back to the
//! exact comparator:
//!
//! | policy  | packed fields        | key ties resolved by            |
//! |---------|----------------------|---------------------------------|
//! | EPDF    | deadline, id         | — (total)                       |
//! | EPDF+b  | deadline, b̄, id      | — (total)                       |
//! | PF      | deadline, b̄          | exact b-bit chain walk          |
//! | PD      | deadline, b̄, gd      | exact weight compare, id        |
//! | PD²     | deadline, b̄, gd, id  | — (total)                       |
//!
//! Any value that does not fit its bit field collapses the whole key to
//! [`SENTINEL`]; the scheduler's heap entries treat a sentinel on either
//! side as "compare exactly". The invariant — enforced by the property
//! tests below — is therefore: **for two non-sentinel keys built under
//! the same policy and id order, `key(a) < key(b)` implies the exact
//! comparator orders `a` before `b`, and `key(a) == key(b)` implies the
//! exact comparator is the tie-break.**

use crate::priority::{Policy, SubtaskTag};

/// Key value meaning "does not fit: use the exact comparator".
pub const SENTINEL: u64 = u64::MAX;

/// Bit offset of the deadline field.
const DL_SHIFT: u32 = 24;
/// Bit offset of the complemented b-bit.
const B_SHIFT: u32 = 23;
/// Bit offset of the group-deadline tie field.
const GD_SHIFT: u32 = 12;
/// Deadlines must be strictly below this (40 bits, top value reserved so
/// a full key can never alias [`SENTINEL`]).
pub const DL_LIMIT: u64 = (1 << 40) - 1;
/// Largest encodable group-deadline tie field (11 bits).
pub const GD_FIELD_MAX: u64 = (1 << 11) - 1;
/// Largest encodable task id (12 bits).
pub const ID_FIELD_MAX: u32 = (1 << 12) - 1;

/// Packs `tag`'s priority under `policy` into a single `u64` such that
/// smaller keys mean higher priority. Returns [`SENTINEL`] when any
/// needed field does not fit its width (huge horizon, id ≥ 4096, or a
/// group deadline more than `GD_FIELD_MAX − 1` slots past its deadline);
/// the caller must then fall back to the exact comparator.
#[inline]
pub fn pack(policy: Policy, tag: &SubtaskTag, higher_id_first: bool) -> u64 {
    if tag.deadline >= DL_LIMIT {
        return SENTINEL;
    }
    let dl = tag.deadline << DL_SHIFT;
    let bbar = u64::from(!tag.b) << B_SHIFT;
    match policy {
        Policy::Epdf => match id_field(tag, higher_id_first) {
            Some(id) => dl | id,
            None => SENTINEL,
        },
        Policy::BBitOnly => match id_field(tag, higher_id_first) {
            Some(id) => dl | bbar | id,
            None => SENTINEL,
        },
        // PF's tie-break (the recursive b-bit chain) cannot be packed;
        // the key decides (deadline, b) and leaves the rest exact.
        Policy::Pf => dl | bbar,
        // PD's residual weight tie-break stays exact; id is left out of
        // the key so the exact fallback sees weight before id.
        Policy::Pd => match gd_field(tag) {
            Some(gd) => dl | bbar | (gd << GD_SHIFT),
            None => SENTINEL,
        },
        Policy::Pd2 => match (gd_field(tag), id_field(tag, higher_id_first)) {
            (Some(gd), Some(id)) => dl | bbar | (gd << GD_SHIFT) | id,
            _ => SENTINEL,
        },
    }
}

/// Residual id tie-break field (bit-flipped under `higher_id_first`).
#[inline]
fn id_field(tag: &SubtaskTag, higher_id_first: bool) -> Option<u64> {
    let id = tag.task.0;
    if id > ID_FIELD_MAX {
        return None;
    }
    Some(u64::from(if higher_id_first {
        ID_FIELD_MAX - id
    } else {
        id
    }))
}

/// Group-deadline tie field; see the module docs for the encoding. `None`
/// means the relative group deadline does not fit 11 bits.
#[inline]
fn gd_field(tag: &SubtaskTag) -> Option<u64> {
    if !tag.b {
        // The exact order never consults D when b = 0: force the field
        // to a constant so it cannot perturb the key comparison.
        return Some(0);
    }
    if tag.group_deadline == 0 {
        // Light task: D = 0 loses every group-deadline tie.
        return Some(GD_FIELD_MAX);
    }
    // Heavy task: D(Tᵢ) ≥ d(Tᵢ), later D wins ⇒ larger relative D maps
    // to a smaller field value.
    let rel = tag.group_deadline.checked_sub(tag.deadline)?;
    if rel >= GD_FIELD_MAX {
        return None;
    }
    Some(GD_FIELD_MAX - 1 - rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::compare_with_id_order;
    use pfair_model::{TaskId, Weight};
    use proptest::prelude::*;
    use std::cmp::Ordering;

    fn tag(id: u32, e: u64, p: u64, i: u64, off: u64) -> SubtaskTag {
        SubtaskTag::new(TaskId(id), Weight::new(e, p).unwrap(), i, off)
    }

    /// The key agrees with the exact order on a hand-picked set covering
    /// every tie-break: deadline, b-bit, group deadline, id.
    #[test]
    fn key_orders_known_cases() {
        let cases = [
            tag(0, 8, 11, 1, 0),
            tag(1, 1, 2, 1, 0),
            tag(2, 8, 11, 3, 0),
            tag(3, 5, 7, 3, 0),
            tag(4, 2, 5, 1, 0),
            tag(5, 3, 8, 1, 0),
            tag(6, 1, 1, 2, 0),
            tag(7, 3, 4, 1, 0),
            tag(8, 8, 11, 1, 2),
        ];
        for pol in Policy::ALL {
            for hif in [false, true] {
                for a in &cases {
                    for b in &cases {
                        assert_consistent(pol, a, b, hif);
                    }
                }
            }
        }
    }

    fn assert_consistent(pol: Policy, a: &SubtaskTag, b: &SubtaskTag, hif: bool) {
        let ka = pack(pol, a, hif);
        let kb = pack(pol, b, hif);
        if ka == SENTINEL || kb == SENTINEL {
            return; // sentinel ⇒ caller compares exactly; nothing to check
        }
        let exact = compare_with_id_order(pol, a, b, hif);
        match ka.cmp(&kb) {
            Ordering::Less => assert_eq!(
                exact,
                Ordering::Less,
                "{}: key says {a:?} < {b:?} but exact disagrees",
                pol.name()
            ),
            Ordering::Greater => assert_eq!(
                exact,
                Ordering::Greater,
                "{}: key says {a:?} > {b:?} but exact disagrees",
                pol.name()
            ),
            // Equal keys are legal: the exact comparator breaks the tie.
            Ordering::Equal => {}
        }
    }

    /// Overflowing any field must collapse the whole key to the sentinel
    /// (a partially saturated key could misorder against small keys).
    #[test]
    fn out_of_range_fields_yield_sentinel() {
        // Deadline beyond 40 bits.
        let far = tag(0, 1, 2, 1, DL_LIMIT + 5);
        assert!(far.deadline >= DL_LIMIT);
        for pol in Policy::ALL {
            assert_eq!(pack(pol, &far, false), SENTINEL, "{}", pol.name());
        }
        // Task id beyond 12 bits (policies that pack the id).
        let big_id = tag(ID_FIELD_MAX + 1, 1, 2, 1, 0);
        for pol in [Policy::Epdf, Policy::BBitOnly, Policy::Pd2] {
            assert_eq!(pack(pol, &big_id, false), SENTINEL, "{}", pol.name());
            assert_eq!(pack(pol, &big_id, true), SENTINEL, "{}", pol.name());
        }
        // PF and PD leave the id to the exact fallback: a big id packs.
        assert_ne!(pack(Policy::Pf, &big_id, false), SENTINEL);
        assert_ne!(pack(Policy::Pd, &big_id, false), SENTINEL);
        // Group deadline too far past the deadline for 11 bits: a heavy
        // task with b = 1 and an artificially huge D.
        let mut stretched = tag(1, 8, 11, 1, 0);
        assert!(stretched.b);
        stretched.group_deadline = stretched.deadline + GD_FIELD_MAX;
        for pol in [Policy::Pd, Policy::Pd2] {
            assert_eq!(pack(pol, &stretched, false), SENTINEL, "{}", pol.name());
        }
    }

    /// Highest packable values still produce a key below the sentinel.
    #[test]
    fn max_fields_do_not_alias_sentinel() {
        let mut t = tag(ID_FIELD_MAX, 1, 1, 1, DL_LIMIT - 2);
        t.deadline = DL_LIMIT - 1;
        t.group_deadline = t.deadline;
        for pol in Policy::ALL {
            let k = pack(pol, &t, false);
            assert_ne!(k, SENTINEL, "{}", pol.name());
        }
    }

    fn arb_tag(id: u32) -> impl Strategy<Value = SubtaskTag> {
        (1u64..30, 1u64..30, 1u64..80, 0u64..25).prop_filter_map(
            "valid weight",
            move |(a, b, i, off)| {
                let (e, p) = if a <= b { (a, b) } else { (b, a) };
                Weight::new(e, p)
                    .ok()
                    .map(|w| SubtaskTag::new(TaskId(id), w, i, off))
            },
        )
    }

    proptest! {
        /// For every policy and id order: non-sentinel key order implies
        /// the exact order, over random weights/indices/IS offsets.
        #[test]
        fn prop_key_agrees_with_exact(
            a in arb_tag(0),
            b in arb_tag(1),
            pol in prop::sample::select(Policy::ALL.to_vec()),
            hif_raw in 0u32..2,
        ) {
            let hif = hif_raw == 1;
            let ka = pack(pol, &a, hif);
            let kb = pack(pol, &b, hif);
            prop_assume!(ka != SENTINEL && kb != SENTINEL);
            let exact = compare_with_id_order(pol, &a, &b, hif);
            match ka.cmp(&kb) {
                Ordering::Less => prop_assert_eq!(exact, Ordering::Less),
                Ordering::Greater => prop_assert_eq!(exact, Ordering::Greater),
                Ordering::Equal => {}
            }
        }

        /// Policies whose key packs a total order (EPDF, EPDF+b, PD²)
        /// never produce equal keys for distinct tasks.
        #[test]
        fn prop_total_policies_never_tie(
            a in arb_tag(0),
            b in arb_tag(1),
            pol in prop::sample::select(vec![Policy::Epdf, Policy::BBitOnly, Policy::Pd2]),
            hif_raw in 0u32..2,
        ) {
            let hif = hif_raw == 1;
            let ka = pack(pol, &a, hif);
            let kb = pack(pol, &b, hif);
            prop_assume!(ka != SENTINEL && kb != SENTINEL);
            prop_assert_ne!(ka, kb);
        }
    }
}
