//! Lag computation and Pfair schedule validation.
//!
//! The lag of task `T` at time `t` measures deviation from the ideal fluid
//! schedule: `lag(T, t) = wt(T)·t − Σ_{u<t} S(T, u)` (paper, Section 2).
//! A schedule is Pfair iff every lag stays strictly inside `(−1, 1)`
//! (Equation (1)).
//!
//! The checker here operates on an explicit schedule — a slot-indexed list
//! of the tasks allocated in that slot — and is used by the property tests
//! and by `sched-sim`'s verification layer.

use pfair_model::{Rat, Slot, TaskId, TaskSet, Weight};
use std::fmt;

/// The fluid ("ideal") allocation `wt(T)·t` a task should have received by
/// time `t`.
pub fn ideal_allocation(w: Weight, t: Slot) -> Rat {
    w.as_rat() * Rat::from(t)
}

/// `lag(T, t)` given the actual allocation count through slot `t − 1`.
pub fn lag(w: Weight, t: Slot, allocated: u64) -> Rat {
    ideal_allocation(w, t) - Rat::from(allocated)
}

/// A violation found by [`check_pfair`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// More tasks scheduled in a slot than processors.
    TooManyInSlot {
        /// Offending slot.
        slot: Slot,
        /// Number of tasks scheduled there.
        count: usize,
    },
    /// The same task appears twice in one slot (parallelism is forbidden).
    DuplicateInSlot {
        /// Offending slot.
        slot: Slot,
        /// The duplicated task.
        task: TaskId,
    },
    /// A task's lag left `(−1, 1)`.
    LagOutOfBounds {
        /// The task whose lag broke the bound.
        task: TaskId,
        /// Time at which the bound broke.
        time: Slot,
        /// The offending lag value.
        lag: Rat,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::TooManyInSlot { slot, count } => {
                write!(f, "slot {slot}: {count} tasks exceed processor count")
            }
            Violation::DuplicateInSlot { slot, task } => {
                write!(f, "slot {slot}: task {task} scheduled twice")
            }
            Violation::LagOutOfBounds { task, time, lag } => {
                write!(f, "lag({task}, {time}) = {lag} outside (-1, 1)")
            }
        }
    }
}

/// Validates that `schedule` (slot → tasks allocated in that slot) is a
/// Pfair schedule of the **synchronous periodic** task set on `m`
/// processors: per-slot capacity, no intra-slot parallelism, and the lag
/// bound at every instant `1..=horizon`. Returns the first violation found.
pub fn check_pfair(tasks: &TaskSet, schedule: &[Vec<TaskId>], m: u32) -> Result<(), Violation> {
    let mut alloc = vec![0u64; tasks.len()];
    let mut seen: Vec<Option<Slot>> = vec![None; tasks.len()];
    for (t, slot_tasks) in schedule.iter().enumerate() {
        let t = t as Slot;
        if slot_tasks.len() > m as usize {
            return Err(Violation::TooManyInSlot {
                slot: t,
                count: slot_tasks.len(),
            });
        }
        for &id in slot_tasks {
            if seen[id.index()] == Some(t) {
                return Err(Violation::DuplicateInSlot { slot: t, task: id });
            }
            seen[id.index()] = Some(t);
            alloc[id.index()] += 1;
        }
        // Check lags at time t + 1.
        for (id, task) in tasks.iter() {
            let l = lag(task.weight(), t + 1, alloc[id.index()]);
            if l <= -Rat::ONE || l >= Rat::ONE {
                return Err(Violation::LagOutOfBounds {
                    task: id,
                    time: t + 1,
                    lag: l,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_model::Task;

    fn ts(pairs: &[(u64, u64)]) -> TaskSet {
        TaskSet::from_pairs(pairs.iter().copied()).unwrap()
    }

    #[test]
    fn ideal_and_lag_values() {
        let w = Weight::new(8, 11).unwrap();
        assert_eq!(ideal_allocation(w, 11), Rat::from(8u64));
        assert_eq!(lag(w, 11, 8), Rat::ZERO);
        assert_eq!(lag(w, 2, 1), Rat::new(16, 11) - Rat::ONE); // 5/11
        assert_eq!(lag(w, 2, 2), Rat::new(16 - 22, 11)); // -6/11
    }

    #[test]
    fn accepts_a_correct_schedule() {
        // Weight 1/2 on one processor, alternating slots.
        let tasks = ts(&[(1, 2)]);
        let schedule = vec![vec![TaskId(0)], vec![], vec![TaskId(0)], vec![]];
        assert_eq!(check_pfair(&tasks, &schedule, 1), Ok(()));
    }

    #[test]
    fn rejects_overcommitted_slot() {
        let tasks = ts(&[(1, 2), (1, 2)]);
        let schedule = vec![vec![TaskId(0), TaskId(1)]];
        assert!(matches!(
            check_pfair(&tasks, &schedule, 1),
            Err(Violation::TooManyInSlot { slot: 0, count: 2 })
        ));
    }

    #[test]
    fn rejects_parallelism() {
        let tasks = ts(&[(2, 2)]);
        let schedule = vec![vec![TaskId(0), TaskId(0)]];
        assert!(matches!(
            check_pfair(&tasks, &schedule, 2),
            Err(Violation::DuplicateInSlot { .. })
        ));
    }

    #[test]
    fn rejects_starvation_via_lag() {
        // Weight 1/2 never scheduled: lag reaches 1 at t = 2.
        let tasks = ts(&[(1, 2)]);
        let schedule = vec![vec![], vec![]];
        let err = check_pfair(&tasks, &schedule, 1).unwrap_err();
        assert!(matches!(
            err,
            Violation::LagOutOfBounds {
                task: TaskId(0),
                time: 2,
                ..
            }
        ));
        assert!(err.to_string().contains("lag"));
    }

    #[test]
    fn rejects_overallocation_via_lag() {
        // Weight 1/2 scheduled twice in a row: lag(2) = 1 − 2 = −1.
        let tasks = ts(&[(1, 2)]);
        let schedule = vec![vec![TaskId(0)], vec![TaskId(0)]];
        let err = check_pfair(&tasks, &schedule, 1).unwrap_err();
        assert!(matches!(err, Violation::LagOutOfBounds { time: 2, .. }));
    }

    #[test]
    fn weight_one_task_must_run_every_slot() {
        let mut tasks = TaskSet::new();
        tasks.push(Task::new(1, 1).unwrap());
        let good = vec![vec![TaskId(0)], vec![TaskId(0)]];
        assert_eq!(check_pfair(&tasks, &good, 1), Ok(()));
        let bad = vec![vec![TaskId(0)], vec![]];
        assert!(check_pfair(&tasks, &bad, 1).is_err());
    }
}
