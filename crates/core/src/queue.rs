//! Ready-queue implementations for the scheduler.
//!
//! The paper measured its schedulers with binary-heap ready queues ("We
//! used binary heaps to implement the priority queues of both schedulers",
//! §4) — which makes the reported overheads a property of that data
//! structure as much as of the algorithm. [`MinQueue`] makes the choice
//! explicit and swappable so the Fig. 2-style benches can ablate it:
//!
//! * [`QueueKind::BinaryHeap`] — `O(log n)` push/pop, the paper's choice
//!   and the default.
//! * [`QueueKind::SortedVec`] — `O(n)` insertion, `O(1)` pop; wins for the
//!   small queues of lightly-loaded systems.
//! * [`QueueKind::LinearScan`] — `O(1)` push, `O(n)` pop; the naive
//!   baseline.
//!
//! All three pop elements in exactly the same (total) order, asserted by
//! property tests.

/// Which ready-queue implementation the scheduler uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueKind {
    /// Binary min-heap (the paper's configuration).
    #[default]
    BinaryHeap,
    /// Vector kept sorted descending; pop takes from the tail.
    SortedVec,
    /// Unsorted vector; pop scans for the minimum.
    LinearScan,
}

impl QueueKind {
    /// All kinds, for ablation sweeps.
    pub const ALL: [QueueKind; 3] = [
        QueueKind::BinaryHeap,
        QueueKind::SortedVec,
        QueueKind::LinearScan,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            QueueKind::BinaryHeap => "binary-heap",
            QueueKind::SortedVec => "sorted-vec",
            QueueKind::LinearScan => "linear-scan",
        }
    }
}

/// A min-priority queue over `T: Ord` with a runtime-selected backing
/// structure. Pops the **smallest** element first.
#[derive(Debug, Clone)]
pub enum MinQueue<T: Ord> {
    /// Binary heap backing (stored as max-heap of `Reverse`).
    BinaryHeap(std::collections::BinaryHeap<std::cmp::Reverse<T>>),
    /// Descending sorted vector backing (minimum at the tail).
    SortedVec(Vec<T>),
    /// Unsorted vector backing.
    LinearScan(Vec<T>),
}

impl<T: Ord> MinQueue<T> {
    /// Creates an empty queue of the given kind.
    pub fn new(kind: QueueKind) -> Self {
        match kind {
            QueueKind::BinaryHeap => MinQueue::BinaryHeap(std::collections::BinaryHeap::new()),
            QueueKind::SortedVec => MinQueue::SortedVec(Vec::new()),
            QueueKind::LinearScan => MinQueue::LinearScan(Vec::new()),
        }
    }

    /// Inserts an element.
    pub fn push(&mut self, x: T) {
        match self {
            MinQueue::BinaryHeap(h) => h.push(std::cmp::Reverse(x)),
            MinQueue::SortedVec(v) => {
                // Keep descending order: find insertion point from the end
                // (new elements are usually late-deadline ⇒ near the front,
                // but binary search keeps the worst case O(log n) compares).
                let pos = v.partition_point(|e| *e > x);
                v.insert(pos, x);
            }
            MinQueue::LinearScan(v) => v.push(x),
        }
    }

    /// Removes and returns the smallest element.
    pub fn pop(&mut self) -> Option<T> {
        match self {
            MinQueue::BinaryHeap(h) => h.pop().map(|std::cmp::Reverse(x)| x),
            MinQueue::SortedVec(v) => v.pop(),
            MinQueue::LinearScan(v) => {
                let idx = v
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.cmp(b))
                    .map(|(i, _)| i)?;
                Some(v.swap_remove(idx))
            }
        }
    }

    /// A reference to the smallest element.
    pub fn peek(&self) -> Option<&T> {
        match self {
            MinQueue::BinaryHeap(h) => h.peek().map(|std::cmp::Reverse(x)| x),
            MinQueue::SortedVec(v) => v.last(),
            MinQueue::LinearScan(v) => v.iter().min(),
        }
    }

    /// Number of queued elements.
    pub fn len(&self) -> usize {
        match self {
            MinQueue::BinaryHeap(h) => h.len(),
            MinQueue::SortedVec(v) | MinQueue::LinearScan(v) => v.len(),
        }
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_ordering_all_kinds() {
        for kind in QueueKind::ALL {
            let mut q = MinQueue::new(kind);
            assert!(q.is_empty());
            for x in [5, 1, 4, 1, 3] {
                q.push(x);
            }
            assert_eq!(q.len(), 5);
            assert_eq!(q.peek(), Some(&1), "{}", kind.name());
            let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
            assert_eq!(drained, vec![1, 1, 3, 4, 5], "{}", kind.name());
            assert_eq!(q.pop(), None);
        }
    }

    proptest! {
        /// All three implementations drain any interleaved push/pop
        /// sequence identically.
        #[test]
        fn prop_kinds_agree(ops in prop::collection::vec(-1000i32..1000, 0..200)) {
            let mut queues: Vec<MinQueue<i32>> =
                QueueKind::ALL.iter().map(|&k| MinQueue::new(k)).collect();
            let mut outputs: Vec<Vec<Option<i32>>> = vec![Vec::new(); 3];
            for &op in &ops {
                for (q, out) in queues.iter_mut().zip(&mut outputs) {
                    if op % 3 == 0 {
                        out.push(q.pop());
                    } else {
                        q.push(op);
                    }
                }
            }
            prop_assert_eq!(&outputs[0], &outputs[1]);
            prop_assert_eq!(&outputs[0], &outputs[2]);
            prop_assert_eq!(queues[0].len(), queues[1].len());
            prop_assert_eq!(queues[0].len(), queues[2].len());
        }
    }
}
