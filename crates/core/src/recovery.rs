//! Overload detection and load-shedding primitives.
//!
//! The paper's dynamic-task theory (Section 5.2, after \[38\]) already
//! gives the *mechanism* for reacting to capacity changes: tasks may leave
//! at a safe point and rejoin under the `Σ wt ≤ M` admission test. This
//! module supplies the *policy* side used by the fault-recovery layer in
//! the `faults` crate:
//!
//! * [`LagWatchdog`] — detects sustained overload from the observed
//!   per-slot maximum application lag. A single noisy slot does not trip
//!   it; `trip_after` consecutive slots above the threshold do.
//! * [`plan_shedding`] — picks which tasks to drop, heaviest weight first,
//!   when the processor count falls below the active weight sum (fail-stop
//!   loss). Shedding the heaviest tasks restores feasibility with the
//!   fewest departures, protecting the largest number of remaining tasks.
//!
//! ERfair catch-up — the third recovery policy — needs no code here: it is
//! [`PfairScheduler::set_early_release`](crate::sched::PfairScheduler::set_early_release)
//! with [`EarlyRelease::Unrestricted`](crate::sched::EarlyRelease), which
//! lets backlogged tasks absorb idle slots until their lag re-converges.

use pfair_model::{Slot, TaskId};

/// Sustained-overload detector over a per-slot lag signal.
///
/// Feed it the maximum observed application lag each slot via
/// [`observe`](LagWatchdog::observe); it trips once the signal has stayed
/// at or above `threshold` for `trip_after` consecutive slots. Under
/// fault-free Pfair scheduling per-task lag stays in (−1, 1), so any
/// threshold ≥ 1 only fires on genuine fault-induced backlog.
#[derive(Debug, Clone)]
pub struct LagWatchdog {
    threshold: f64,
    trip_after: u64,
    above: u64,
    tripped_at: Option<Slot>,
    trips: u64,
}

impl LagWatchdog {
    /// A watchdog tripping after `trip_after` consecutive slots with lag
    /// ≥ `threshold`.
    pub fn new(threshold: f64, trip_after: u64) -> Self {
        assert!(trip_after > 0, "trip_after must be at least 1");
        LagWatchdog {
            threshold,
            trip_after,
            above: 0,
            tripped_at: None,
            trips: 0,
        }
    }

    /// Records the lag observed in slot `t`. Returns `true` exactly on the
    /// slot the watchdog newly trips (so callers can edge-trigger recovery
    /// actions).
    pub fn observe(&mut self, t: Slot, max_lag: f64) -> bool {
        if max_lag >= self.threshold {
            self.above += 1;
            if self.above == self.trip_after && self.tripped_at.is_none() {
                self.tripped_at = Some(t);
                self.trips += 1;
                return true;
            }
        } else {
            self.above = 0;
        }
        false
    }

    /// Whether the watchdog is currently tripped.
    pub fn is_tripped(&self) -> bool {
        self.tripped_at.is_some()
    }

    /// Slot at which the watchdog last tripped.
    pub fn tripped_at(&self) -> Option<Slot> {
        self.tripped_at
    }

    /// Total number of trips since construction (reset does not clear it).
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Re-arms a tripped watchdog (call once recovery has re-converged).
    pub fn reset(&mut self) {
        self.above = 0;
        self.tripped_at = None;
    }
}

/// Picks tasks to shed, heaviest first, until the remaining total weight
/// fits `capacity` processors.
///
/// `active` holds `(id, weight)` for every currently active task (weights
/// as `f64`, e.g. via `Weight::to_f64`). Returns the ids to drop, in
/// shedding order. Ties on weight break toward the higher id, so the
/// longest-lived tasks survive. A small epsilon absorbs the f64 rounding
/// of weights that sum exactly to the capacity.
pub fn plan_shedding(active: &[(TaskId, f64)], capacity: u32) -> Vec<TaskId> {
    const EPS: f64 = 1e-9;
    let mut remaining: f64 = active.iter().map(|(_, w)| w).sum();
    let mut by_weight: Vec<(TaskId, f64)> = active.to_vec();
    by_weight.sort_by(|a, b| b.1.total_cmp(&a.1).then(b.0.cmp(&a.0)));
    let mut shed = Vec::new();
    for (id, w) in by_weight {
        if remaining <= f64::from(capacity) + EPS {
            break;
        }
        remaining -= w;
        shed.push(id);
    }
    shed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_requires_consecutive_slots() {
        let mut wd = LagWatchdog::new(2.0, 3);
        assert!(!wd.observe(0, 5.0));
        assert!(!wd.observe(1, 5.0));
        assert!(!wd.observe(2, 0.5)); // dips below: streak resets
        assert!(!wd.observe(3, 5.0));
        assert!(!wd.observe(4, 5.0));
        assert!(wd.observe(5, 5.0)); // third consecutive slot trips
        assert!(wd.is_tripped());
        assert_eq!(wd.tripped_at(), Some(5));
        assert_eq!(wd.trips(), 1);
        // Already tripped: further observations do not re-trip.
        assert!(!wd.observe(6, 9.0));
        wd.reset();
        assert!(!wd.is_tripped());
        assert_eq!(wd.trips(), 1);
    }

    #[test]
    fn shedding_drops_heaviest_until_feasible() {
        let active = [
            (TaskId(0), 0.9),
            (TaskId(1), 0.5),
            (TaskId(2), 0.8),
            (TaskId(3), 0.3),
        ];
        // Σ = 2.5; on 2 processors shedding the single heaviest (0.9)
        // brings it to 1.6 ≤ 2.
        assert_eq!(plan_shedding(&active, 2), vec![TaskId(0)]);
        // On 1 processor: 0.9 and 0.8 must both go (1.6 → 0.8 ≤ 1).
        assert_eq!(plan_shedding(&active, 1), vec![TaskId(0), TaskId(2)]);
        // Already feasible: shed nothing.
        assert_eq!(plan_shedding(&active, 3), Vec::<TaskId>::new());
    }

    #[test]
    fn shedding_tolerates_exact_fit() {
        // Three tasks of weight 2/3 sum to exactly 2.0 in rationals but
        // not in f64; the epsilon keeps them all.
        let w = 2.0 / 3.0;
        let active = [(TaskId(0), w), (TaskId(1), w), (TaskId(2), w)];
        assert_eq!(plan_shedding(&active, 2), Vec::<TaskId>::new());
        // One processor: drop two (ties break toward the higher id).
        assert_eq!(plan_shedding(&active, 1), vec![TaskId(2), TaskId(1)]);
    }

    #[test]
    fn empty_system_sheds_nothing() {
        assert_eq!(plan_shedding(&[], 0), Vec::<TaskId>::new());
    }
}
