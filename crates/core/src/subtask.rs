//! Pfair subtask machinery: pseudo-releases, pseudo-deadlines, windows,
//! b-bits, and group deadlines.
//!
//! The lag bound `-1 < lag(T, t) < 1` (paper, Equation (1)) divides each
//! task `T` of weight `w = e/p` into an infinite sequence of quantum-length
//! *subtasks* `T₁, T₂, …`. Subtask `Tᵢ` must be scheduled inside its window
//!
//! ```text
//! w(Tᵢ) = [ r(Tᵢ), d(Tᵢ) )        r(Tᵢ) = ⌊(i−1)/w⌋     d(Tᵢ) = ⌈i/w⌉
//! ```
//!
//! All functions in this module are pure in `(w, i)` and use only integer
//! arithmetic: with `w = n/d` in lowest terms, `r(Tᵢ) = ⌊(i−1)·d/n⌋` and
//! `d(Tᵢ) = ⌈i·d/n⌉`.
//!
//! These are the *synchronous* formulas. Intra-sporadic (IS) tasks shift
//! every formula by the subtask's accumulated offset `θ(Tᵢ)`
//! (see [`crate::sched`]); because the shift is uniform, the b-bit and the
//! *relative* group deadline are unaffected.

use pfair_model::{Slot, SlotCount, Weight, Window};

/// Index of a subtask within its task, 1-based as in the paper (`T₁` is the
/// first subtask).
pub type SubtaskIndex = u64;

/// Pseudo-release `r(Tᵢ) = ⌊(i−1)/w⌋` of the `i`-th subtask of a task with
/// weight `w`, for a synchronous task (first job released at time 0).
///
/// # Examples
///
/// ```
/// use pfair_core::subtask;
/// use pfair_model::Weight;
///
/// // The paper's Fig. 1(a): weight 8/11, subtask T3 has window [2, 5).
/// let w = Weight::new(8, 11).unwrap();
/// assert_eq!(subtask::release(w, 3), 2);
/// assert_eq!(subtask::deadline(w, 3), 5);
/// assert!(subtask::b_bit(w, 3));
/// assert_eq!(subtask::group_deadline(w, 3), 8);
/// ```
///
/// # Panics
///
/// Panics if `i == 0` (subtask indices are 1-based).
pub fn release(w: Weight, i: SubtaskIndex) -> Slot {
    assert!(i >= 1, "subtask indices are 1-based");
    // ⌊(i−1)·den/num⌋
    let r = (i - 1) as u128 * w.denom() as u128 / w.numer() as u128;
    Slot::try_from(r).expect("pseudo-release overflows the 64-bit slot range")
}

/// Pseudo-deadline `d(Tᵢ) = ⌈i/w⌉`.
///
/// # Panics
///
/// Panics if `i == 0`.
pub fn deadline(w: Weight, i: SubtaskIndex) -> Slot {
    assert!(i >= 1, "subtask indices are 1-based");
    // ⌈i·den/num⌉
    let num = w.numer() as u128;
    let x = i as u128 * w.denom() as u128;
    Slot::try_from(x.div_ceil(num)).expect("pseudo-deadline overflows the 64-bit slot range")
}

/// The window `w(Tᵢ) = [r(Tᵢ), d(Tᵢ))`.
pub fn window(w: Weight, i: SubtaskIndex) -> Window {
    Window::new(release(w, i), deadline(w, i))
}

/// Window length `|w(Tᵢ)| = d(Tᵢ) − r(Tᵢ)`.
pub fn window_len(w: Weight, i: SubtaskIndex) -> SlotCount {
    deadline(w, i) - release(w, i)
}

/// The PD² *b-bit*: `b(Tᵢ) = 1` iff `Tᵢ`'s window overlaps `Tᵢ₊₁`'s
/// (equivalently, `r(Tᵢ₊₁) = d(Tᵢ) − 1`).
///
/// Closed form: the windows overlap iff `i/w` is not an integer, i.e. iff
/// `num ∤ i·den`.
pub fn b_bit(w: Weight, i: SubtaskIndex) -> bool {
    assert!(i >= 1, "subtask indices are 1-based");
    (i as u128 * w.denom() as u128) % w.numer() as u128 != 0
}

/// The PD² *group deadline* `D(Tᵢ)` of subtask `Tᵢ`, for a **synchronous**
/// task.
///
/// For a heavy task (`w ≥ 1/2`) this is the earliest time `t ≥ d(Tᵢ)` by
/// which a cascade of forced allocations must end: either some `d(T_k) = t`
/// with `b(T_k) = 0`, or some `d(T_k) = t + 1` with `|w(T_k)| = 3` (paper,
/// Section 2). For light tasks the group deadline plays no role; following
/// the PD² literature it is defined as `0`.
///
/// Closed form used here (validated against the defining cascade walk by
/// [`group_deadline_by_definition`] in property tests): the group deadlines
/// of a heavy task with weight `e/p` are exactly the values
/// `⌈k·p/(p−e)⌉, k = 1, 2, …`; hence
///
/// ```text
/// D(Tᵢ) = ⌈ k*·p/(p−e) ⌉   where   k* = ⌈ d(Tᵢ)·(p−e)/p ⌉ .
/// ```
///
/// A weight-1 task has every slot allocated; no cascade can be started by
/// scheduling "late", and we define `D(Tᵢ) = d(Tᵢ)` (its b-bit is always 0,
/// so PD² never consults the value).
pub fn group_deadline(w: Weight, i: SubtaskIndex) -> Slot {
    assert!(i >= 1, "subtask indices are 1-based");
    if w.is_light() {
        return 0;
    }
    let e = w.numer() as u128;
    let p = w.denom() as u128;
    if e == p {
        return deadline(w, i);
    }
    let holes = p - e; // p − e > 0
    let d = deadline(w, i) as u128;
    // k* = ⌈d·(p−e)/p⌉, then D = ⌈k*·p/(p−e)⌉.
    let k = (d * holes).div_ceil(p);
    Slot::try_from((k * p).div_ceil(holes)).expect("group deadline overflows the 64-bit slot range")
}

/// The group deadline computed directly from its definition, by walking the
/// cascade of successor subtasks. Exponentially slower than
/// [`group_deadline`] for weights near 1; used to validate the closed form.
pub fn group_deadline_by_definition(w: Weight, i: SubtaskIndex) -> Slot {
    assert!(i >= 1, "subtask indices are 1-based");
    if w.is_light() {
        return 0;
    }
    if w.is_unit() {
        return deadline(w, i);
    }
    let d_i = deadline(w, i);
    let mut best: Option<Slot> = None;
    // The defining condition quantifies over all subtasks T_k; candidates at
    // or after d(Tᵢ) can only come from k ≥ i − 1 (deadlines are
    // non-decreasing and differ by ≥ 1 between consecutive subtasks of a
    // heavy task). Walk forward until a candidate is found; for a heavy
    // non-unit weight a b-bit of 0 recurs within every window of `e`
    // consecutive subtasks, so this terminates.
    let mut k = i;
    loop {
        let d_k = deadline(w, k);
        if !b_bit(w, k) && d_k >= d_i {
            best = Some(match best {
                Some(b) => b.min(d_k),
                None => d_k,
            });
            break;
        }
        if window_len(w, k) == 3 && d_k > d_i {
            let cand = d_k - 1;
            best = Some(match best {
                Some(b) => b.min(cand),
                None => cand,
            });
            break;
        }
        k += 1;
    }
    best.expect("cascade always terminates for heavy tasks")
}

/// Index of the first subtask of job `j` (0-based job index): `j·e + 1`.
pub fn first_subtask_of_job(w: Weight, job: u64) -> SubtaskIndex {
    job * w.numer() + 1
}

/// The job (0-based) that subtask `Tᵢ` belongs to: `⌊(i−1)/e⌋`.
///
/// Subtasks `T_{je+1} … T_{(j+1)e}` constitute job `j`; the paper's
/// Fig. 1(a) shows subtasks `T₁…T₈` and `T₉…T₁₆` as the first two jobs of a
/// weight-8/11 task.
pub fn job_of_subtask(w: Weight, i: SubtaskIndex) -> u64 {
    assert!(i >= 1, "subtask indices are 1-based");
    (i - 1) / w.numer()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn w(e: u64, p: u64) -> Weight {
        Weight::new(e, p).unwrap()
    }

    /// Paper Fig. 1(a): windows of the first two jobs of a weight-8/11 task.
    #[test]
    fn fig1a_windows_weight_8_11() {
        let wt = w(8, 11);
        // Expected windows read off the figure (subtasks T1..T8, first job).
        let expected: [(Slot, Slot); 8] = [
            (0, 2),
            (1, 3),
            (2, 5),
            (4, 6),
            (5, 7),
            (6, 9),
            (8, 10),
            (9, 11),
        ];
        // Pair each expected window with its explicit u64 subtask index
        // rather than casting a usize loop counter.
        for (idx, &(r, d)) in (1u64..).zip(expected.iter()) {
            assert_eq!(release(wt, idx), r, "r(T{idx})");
            assert_eq!(deadline(wt, idx), d, "d(T{idx})");
        }
        // Second job = first job shifted by the period 11 (T9..T16).
        for i in 1..=8u64 {
            assert_eq!(release(wt, i + 8), release(wt, i) + 11);
            assert_eq!(deadline(wt, i + 8), deadline(wt, i) + 11);
        }
    }

    /// Paper Section 2: "b(Tᵢ) = 1 for 1 ≤ i ≤ 7 and b(T₈) = 0" for w = 8/11.
    #[test]
    fn fig1a_b_bits() {
        let wt = w(8, 11);
        for i in 1..=7 {
            assert!(b_bit(wt, i), "b(T{i}) should be 1");
        }
        assert!(!b_bit(wt, 8), "b(T8) should be 0");
        // And the pattern repeats per job.
        assert!(!b_bit(wt, 16));
        assert!(b_bit(wt, 9));
    }

    /// Paper Section 2: "subtask T₃ … has a group deadline at time 8 and
    /// subtask T₇ has a group deadline at time 11" for w = 8/11.
    #[test]
    fn fig1a_group_deadlines() {
        let wt = w(8, 11);
        assert_eq!(group_deadline(wt, 3), 8);
        assert_eq!(group_deadline(wt, 7), 11);
        // Cross-check the closed form against the definition on the whole
        // first two jobs.
        for i in 1..=16 {
            assert_eq!(
                group_deadline(wt, i),
                group_deadline_by_definition(wt, i),
                "D(T{i})"
            );
        }
    }

    #[test]
    fn light_tasks_have_zero_group_deadline() {
        for &(e, p) in &[(1u64, 3u64), (2, 5), (1, 45), (2, 9)] {
            let wt = w(e, p);
            assert!(wt.is_light());
            assert_eq!(group_deadline(wt, 1), 0);
            assert_eq!(group_deadline_by_definition(wt, 1), 0);
        }
    }

    #[test]
    fn unit_weight_task() {
        let wt = w(1, 1);
        for i in 1..=10 {
            assert_eq!(release(wt, i), i - 1);
            assert_eq!(deadline(wt, i), i);
            assert_eq!(window_len(wt, i), 1);
            assert!(!b_bit(wt, i));
            assert_eq!(group_deadline(wt, i), i);
        }
    }

    #[test]
    fn half_weight_task() {
        // w = 1/2: windows [0,2), [2,4), ... all disjoint, b = 0 always.
        let wt = w(1, 2);
        for i in 1..=10 {
            assert_eq!(release(wt, i), 2 * (i - 1));
            assert_eq!(deadline(wt, i), 2 * i);
            assert!(!b_bit(wt, i));
            // Group deadline = own deadline (cascade length 0): closed form
            // says ⌈k·2/1⌉ with k = ⌈2i/2⌉ = i, D = 2i.
            assert_eq!(group_deadline(wt, i), 2 * i);
            assert_eq!(group_deadline_by_definition(wt, i), 2 * i);
        }
    }

    #[test]
    fn consecutive_windows_overlap_or_are_disjoint_by_one() {
        // Paper: r(Tᵢ₊₁) is either d(Tᵢ) − 1 or d(Tᵢ).
        for &(e, p) in &[(8u64, 11u64), (2, 3), (3, 4), (5, 7), (1, 5), (7, 10)] {
            let wt = w(e, p);
            for i in 1..=3 * p {
                let r_next = release(wt, i + 1);
                let d_cur = deadline(wt, i);
                assert!(
                    r_next == d_cur || r_next + 1 == d_cur,
                    "w={wt} i={i}: r(T_i+1)={r_next}, d(T_i)={d_cur}"
                );
                assert_eq!(b_bit(wt, i), r_next + 1 == d_cur);
            }
        }
    }

    #[test]
    fn job_indexing() {
        let wt = w(8, 11);
        assert_eq!(job_of_subtask(wt, 1), 0);
        assert_eq!(job_of_subtask(wt, 8), 0);
        assert_eq!(job_of_subtask(wt, 9), 1);
        assert_eq!(first_subtask_of_job(wt, 0), 1);
        assert_eq!(first_subtask_of_job(wt, 1), 9);
        assert_eq!(first_subtask_of_job(wt, 2), 17);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_index_panics() {
        let _ = release(w(1, 2), 0);
    }

    /// Subtask indices near `u64::MAX` stay exact as long as the resulting
    /// slots fit 64 bits: the internal math is `u128`, and the final
    /// conversion is checked rather than a silent truncating cast.
    #[test]
    fn large_horizon_indices_are_exact() {
        // Unit weight: slot values equal the index, the largest case that
        // must still fit.
        let unit = w(1, 1);
        assert_eq!(release(unit, u64::MAX), u64::MAX - 1);
        assert_eq!(deadline(unit, u64::MAX), u64::MAX);
        // Weight 8/11: intermediate i·den exceeds u64 but the window is
        // exact in u128; check against the periodic shift from a small
        // index (i ≡ 8 (mod 8), 2^61 periods of 8 subtasks).
        let wt = w(8, 11);
        let jobs = 1u64 << 60;
        let i = jobs * 8; // ≡ T8 shifted by `jobs − 1` periods
        assert_eq!(release(wt, i), release(wt, 8) + (jobs - 1) * 11);
        assert_eq!(deadline(wt, i), deadline(wt, 8) + (jobs - 1) * 11);
        assert!(!b_bit(wt, i));
        assert_eq!(
            group_deadline(wt, i),
            group_deadline(wt, 8) + (jobs - 1) * 11
        );
    }

    /// A pseudo-deadline that cannot be represented in 64 bits panics
    /// instead of silently truncating.
    #[test]
    #[should_panic(expected = "overflows the 64-bit slot range")]
    fn deadline_past_u64_panics() {
        // d(Tᵢ) = ⌈i·3/1⌉ overflows once i > u64::MAX / 3.
        let _ = deadline(w(1, 3), u64::MAX / 3 + 1);
    }

    fn arb_weight() -> impl Strategy<Value = Weight> {
        (1u64..200, 1u64..200).prop_filter_map("e<=p", |(a, b)| {
            let (e, p) = if a <= b { (a, b) } else { (b, a) };
            Weight::new(e, p).ok()
        })
    }

    fn arb_heavy_weight() -> impl Strategy<Value = Weight> {
        arb_weight().prop_filter("heavy", |w| w.is_heavy())
    }

    proptest! {
        /// The per-period structure repeats: shifting a subtask index by e
        /// shifts release/deadline by p.
        #[test]
        fn prop_periodicity(wt in arb_weight(), i in 1u64..500) {
            let (e, p) = (wt.numer(), wt.denom());
            prop_assert_eq!(release(wt, i + e), release(wt, i) + p);
            prop_assert_eq!(deadline(wt, i + e), deadline(wt, i) + p);
            prop_assert_eq!(b_bit(wt, i + e), b_bit(wt, i));
            prop_assert_eq!(window_len(wt, i + e), window_len(wt, i));
        }

        /// Window lengths take at most the two values ⌈1/w⌉ and ⌈1/w⌉ + 1:
        /// from d(Tᵢ) − r(Tᵢ) ∈ (p/e, p/e + 2) and integrality.
        #[test]
        fn prop_window_length_bounds(wt in arb_weight(), i in 1u64..500) {
            let len = window_len(wt, i);
            let inv_ceil = wt.denom().div_ceil(wt.numer());
            prop_assert!(len >= inv_ceil, "len={len} < ceil(1/w)={inv_ceil}");
            prop_assert!(len <= inv_ceil + 1, "len={len} > ceil(1/w)+1");
        }

        /// Heavy tasks have windows of length 2 or 3 only (paper, Sec. 2).
        #[test]
        fn prop_heavy_window_lengths(wt in arb_heavy_weight(), i in 1u64..500) {
            prop_assume!(!wt.is_unit());
            let len = window_len(wt, i);
            prop_assert!(len == 2 || len == 3, "heavy window len {len}");
        }

        /// The closed-form group deadline equals the defining cascade walk.
        #[test]
        fn prop_group_deadline_closed_form(wt in arb_heavy_weight(), i in 1u64..300) {
            prop_assert_eq!(
                group_deadline(wt, i),
                group_deadline_by_definition(wt, i),
                "weight {}", wt
            );
        }

        /// Group deadlines are at or after the subtask deadline.
        #[test]
        fn prop_group_deadline_ge_deadline(wt in arb_heavy_weight(), i in 1u64..300) {
            prop_assert!(group_deadline(wt, i) >= deadline(wt, i));
        }

        /// Exactly e subtasks have deadlines within each period, and the
        /// j-th job's subtasks all fit inside [j·p, (j+1)·p].
        #[test]
        fn prop_job_confinement(wt in arb_weight(), job in 0u64..20) {
            let (e, p) = (wt.numer(), wt.denom());
            let first = first_subtask_of_job(wt, job);
            for i in first..first + e {
                prop_assert!(release(wt, i) >= job * p);
                prop_assert!(deadline(wt, i) <= (job + 1) * p);
            }
        }

        /// Releases are non-decreasing and deadlines strictly increasing in i.
        #[test]
        fn prop_monotonicity(wt in arb_weight(), i in 1u64..500) {
            prop_assert!(release(wt, i + 1) >= release(wt, i));
            // Deadlines are strictly increasing (p ≥ e ⇒ consecutive
            // deadlines differ by at least 1).
            prop_assert!(deadline(wt, i + 1) > deadline(wt, i));
            prop_assert!(deadline(wt, i + 1) > release(wt, i + 1));
        }
    }
}
