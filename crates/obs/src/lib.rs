//! # obs — lightweight workspace observability
//!
//! Monotonic counters, fixed-bucket histograms, and scoped span timers
//! behind a [`Recorder`] that is selected **at construction, not via
//! globals**: a disabled recorder hands out inert instruments whose
//! operations compile down to a null-pointer check and are safe to leave
//! in hot paths (`PfairScheduler::tick`, `MultiSim::step`, the
//! partitioning heuristics).
//!
//! ```
//! use obs::Recorder;
//!
//! let rec = Recorder::enabled();
//! let ticks = rec.counter("sched.ticks");
//! let tick_ns = rec.timer("sched.tick_ns");
//! for _ in 0..3 {
//!     let _span = tick_ns.start(); // records elapsed ns on drop
//!     ticks.incr();
//! }
//! let snap = rec.snapshot();
//! assert_eq!(snap.counter("sched.ticks"), Some(3));
//! let json = snap.to_json();
//! let back = obs::Snapshot::from_json(&json).unwrap();
//! assert_eq!(back.counter("sched.ticks"), Some(3));
//! ```
//!
//! Instruments are cheap handles (`Arc` + atomics) that can be cloned into
//! worker threads; all mutation is relaxed-atomic, so concurrent recording
//! is safe and snapshot reads are eventually consistent. Asking the same
//! recorder for the same name twice returns handles to the same
//! underlying instrument.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default histogram bucket upper bounds in nanoseconds: 1 µs … ~16 s in
/// ×4 steps. Good resolution for per-tick / per-point wall times.
pub const DEFAULT_NS_BUCKETS: [u64; 13] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_000_000,
    4_000_000,
    16_000_000,
    64_000_000,
    256_000_000,
    1_000_000_000,
    4_000_000_000,
    16_000_000_000,
];

#[derive(Default)]
struct RecorderInner {
    counters: Mutex<Vec<(String, Arc<AtomicU64>)>>,
    histograms: Mutex<Vec<(String, Arc<HistInner>)>>,
}

/// Hands out instruments. Cloning shares the underlying registry.
///
/// A disabled recorder ([`Recorder::disabled`], also the `Default`) hands
/// out inert instruments: no allocation, no atomics, no clock reads.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<RecorderInner>>,
}

impl Recorder {
    /// A recording recorder.
    pub fn enabled() -> Self {
        Recorder {
            inner: Some(Arc::new(RecorderInner::default())),
        }
    }

    /// A no-op recorder; every instrument it hands out does nothing.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// Constructs enabled or disabled in one call.
    pub fn new(enabled: bool) -> Self {
        if enabled {
            Self::enabled()
        } else {
            Self::disabled()
        }
    }

    /// Whether instruments from this recorder record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A monotonic counter named `name`. The same name returns a handle to
    /// the same underlying cell.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter { cell: None };
        };
        let mut counters = inner.counters.lock().expect("obs registry poisoned");
        let cell = match counters.iter().find(|(n, _)| n == name) {
            Some((_, c)) => Arc::clone(c),
            None => {
                let c = Arc::new(AtomicU64::new(0));
                counters.push((name.to_string(), Arc::clone(&c)));
                c
            }
        };
        Counter { cell: Some(cell) }
    }

    /// A histogram named `name` with the given bucket upper bounds
    /// (ascending; an implicit overflow bucket catches the rest).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram { cell: None };
        };
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let mut histograms = inner.histograms.lock().expect("obs registry poisoned");
        let cell = match histograms.iter().find(|(n, _)| n == name) {
            Some((_, h)) => Arc::clone(h),
            None => {
                let h = Arc::new(HistInner::new(bounds));
                histograms.push((name.to_string(), Arc::clone(&h)));
                h
            }
        };
        Histogram { cell: Some(cell) }
    }

    /// A nanosecond timer: a histogram over [`DEFAULT_NS_BUCKETS`] whose
    /// [`Timer::start`] spans record wall time on drop.
    pub fn timer(&self, name: &str) -> Timer {
        Timer {
            hist: self.histogram(name, &DEFAULT_NS_BUCKETS),
        }
    }

    /// A point-in-time copy of every instrument this recorder handed out.
    /// Disabled recorders produce an empty snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let counters = inner
            .counters
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(name, c)| CounterSnap {
                name: name.clone(),
                value: c.load(Ordering::Relaxed),
            })
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(name, h)| h.snap(name))
            .collect();
        Snapshot {
            counters,
            histograms,
        }
    }
}

/// A monotonic counter. Inert (all methods no-ops) when its recorder is
/// disabled.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 for inert counters).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

struct HistInner {
    bounds: Box<[u64]>,
    /// One count per bound plus the overflow bucket.
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistInner {
    fn new(bounds: &[u64]) -> Self {
        HistInner {
            bounds: bounds.into(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snap(&self, name: &str) -> HistogramSnap {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnap {
            name: name.to_string(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            bounds: self.bounds.to_vec(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A fixed-bucket histogram. Inert when its recorder is disabled.
#[derive(Clone, Default)]
pub struct Histogram {
    cell: Option<Arc<HistInner>>,
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(cell) = &self.cell {
            cell.record(v);
        }
    }

    /// Observations so far (0 for inert histograms).
    pub fn count(&self) -> u64 {
        self.cell
            .as_ref()
            .map(|c| c.count.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Sum of observations so far (0 for inert histograms).
    pub fn sum(&self) -> u64 {
        self.cell
            .as_ref()
            .map(|c| c.sum.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// A nanosecond wall-time histogram with scoped spans.
#[derive(Clone, Default)]
pub struct Timer {
    hist: Histogram,
}

impl Timer {
    /// Starts a span; the elapsed nanoseconds are recorded when the
    /// returned guard drops. For an inert timer no clock is read. The
    /// guard owns a handle to the histogram, so `rec.timer("x").start()`
    /// works without keeping the timer alive.
    #[inline]
    pub fn start(&self) -> Span {
        Span {
            cell: self
                .hist
                .cell
                .as_ref()
                .map(|c| (Arc::clone(c), Instant::now())),
        }
    }

    /// Records an externally measured duration.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.hist.record(ns);
    }

    /// Spans recorded so far.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// Total recorded nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.hist.sum()
    }
}

/// Guard from [`Timer::start`]; records the span's wall time on drop.
pub struct Span {
    cell: Option<(Arc<HistInner>, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((hist, t0)) = self.cell.take() {
            hist.record(t0.elapsed().as_nanos() as u64);
        }
    }
}

/// Serializable point-in-time copy of a counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnap {
    /// Instrument name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// Serializable point-in-time copy of a histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnap {
    /// Instrument name.
    pub name: String,
    /// Observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 if empty).
    pub min: u64,
    /// Largest observation (0 if empty).
    pub max: u64,
    /// Bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one longer than `bounds` (overflow bucket).
    pub counts: Vec<u64>,
}

impl HistogramSnap {
    /// Mean observation, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Serializable snapshot of every instrument a recorder handed out.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Snapshot {
    /// All counters, in registration order.
    pub counters: Vec<CounterSnap>,
    /// All histograms/timers, in registration order.
    pub histograms: Vec<HistogramSnap>,
}

impl Snapshot {
    /// Value of the named counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The named histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnap> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Pretty JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization cannot fail")
    }

    /// Parses a snapshot back from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_dedup_by_name() {
        let rec = Recorder::enabled();
        let a = rec.counter("x");
        let b = rec.counter("x");
        a.add(2);
        b.incr();
        assert_eq!(a.get(), 3);
        assert_eq!(rec.snapshot().counter("x"), Some(3));
        assert_eq!(rec.snapshot().counters.len(), 1);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let rec = Recorder::enabled();
        let h = rec.histogram("lat", &[10, 100, 1000]);
        for v in [5, 10, 11, 100, 5000] {
            h.record(v);
        }
        let snap = rec.snapshot();
        let hs = snap.histogram("lat").unwrap();
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 5126);
        assert_eq!(hs.min, 5);
        assert_eq!(hs.max, 5000);
        // Buckets: ≤10 → [5, 10], ≤100 → [11, 100], ≤1000 → [], over → [5000].
        assert_eq!(hs.counts, vec![2, 2, 0, 1]);
        assert!((hs.mean() - 1025.2).abs() < 1e-9);
    }

    #[test]
    fn timer_spans_record_on_drop() {
        let rec = Recorder::enabled();
        let t = rec.timer("span");
        {
            let _s = t.start();
            std::hint::black_box((0..1000).sum::<u64>());
        }
        t.record_ns(42);
        assert_eq!(t.count(), 2);
        assert!(t.total_ns() >= 42);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let c = rec.counter("c");
        let h = rec.histogram("h", &[1, 2]);
        let t = rec.timer("t");
        c.add(5);
        h.record(7);
        let _span = t.start();
        drop(_span);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(t.count(), 0);
        let snap = rec.snapshot();
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let rec = Recorder::enabled();
        rec.counter("a").add(7);
        let h = rec.histogram("b", &[100, 200]);
        h.record(150);
        h.record(999);
        let snap = rec.snapshot();
        let json = snap.to_json();
        let back = Snapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn instruments_are_shareable_across_threads() {
        let rec = Recorder::enabled();
        let c = rec.counter("shared");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_bounds_panic() {
        let rec = Recorder::enabled();
        let _ = rec.histogram("bad", &[10, 5]);
    }
}
