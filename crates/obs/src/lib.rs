//! # obs — lightweight workspace observability
//!
//! Monotonic counters, fixed-bucket histograms, and scoped span timers
//! behind a [`Recorder`] that is selected **at construction, not via
//! globals**: a disabled recorder hands out inert instruments whose
//! operations compile down to a null-pointer check and are safe to leave
//! in hot paths (`PfairScheduler::tick`, `MultiSim::step`, the
//! partitioning heuristics).
//!
//! ```
//! use obs::Recorder;
//!
//! let rec = Recorder::enabled();
//! let ticks = rec.counter("sched.ticks");
//! let tick_ns = rec.timer("sched.tick_ns");
//! for _ in 0..3 {
//!     let _span = tick_ns.start(); // records elapsed ns on drop
//!     ticks.incr();
//! }
//! let snap = rec.snapshot();
//! assert_eq!(snap.counter("sched.ticks"), Some(3));
//! let json = snap.to_json();
//! let back = obs::Snapshot::from_json(&json).unwrap();
//! assert_eq!(back.counter("sched.ticks"), Some(3));
//! ```
//!
//! Instruments are cheap handles (`Arc` + atomics) that can be cloned into
//! worker threads; all mutation is relaxed-atomic, so concurrent recording
//! is safe and snapshot reads are eventually consistent. Asking the same
//! recorder for the same name twice returns handles to the same
//! underlying instrument.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default histogram bucket upper bounds in nanoseconds: 1 µs … ~16 s in
/// ×4 steps. Good resolution for per-tick / per-point wall times.
pub const DEFAULT_NS_BUCKETS: [u64; 13] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_000_000,
    4_000_000,
    16_000_000,
    64_000_000,
    256_000_000,
    1_000_000_000,
    4_000_000_000,
    16_000_000_000,
];

/// Number of explicit log2 bucket upper bounds (`2^0 … 2^62`); one more
/// implicit overflow bucket catches `(2^62, u64::MAX]`.
const LOG2_BOUND_COUNT: usize = 63;

/// Upper bounds of the log2 mode: successive powers of two.
fn log2_bounds() -> Vec<u64> {
    (0..LOG2_BOUND_COUNT as u32).map(|i| 1u64 << i).collect()
}

/// Bucket index of `v` under log2 bounds: the smallest `i` with
/// `v ≤ 2^i`, or the overflow bucket. Pure bit math — no search.
#[inline]
fn log2_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        (64 - (v - 1).leading_zeros() as usize).min(LOG2_BOUND_COUNT)
    }
}

#[derive(Default)]
struct RecorderInner {
    counters: Mutex<Vec<(String, Arc<AtomicU64>)>>,
    histograms: Mutex<Vec<(String, Arc<HistInner>)>>,
}

/// Hands out instruments. Cloning shares the underlying registry.
///
/// A disabled recorder ([`Recorder::disabled`], also the `Default`) hands
/// out inert instruments: no allocation, no atomics, no clock reads.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<RecorderInner>>,
}

impl Recorder {
    /// A recording recorder.
    pub fn enabled() -> Self {
        Recorder {
            inner: Some(Arc::new(RecorderInner::default())),
        }
    }

    /// A no-op recorder; every instrument it hands out does nothing.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// Constructs enabled or disabled in one call.
    pub fn new(enabled: bool) -> Self {
        if enabled {
            Self::enabled()
        } else {
            Self::disabled()
        }
    }

    /// Whether instruments from this recorder record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A monotonic counter named `name`. The same name returns a handle to
    /// the same underlying cell.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter { cell: None };
        };
        let mut counters = inner.counters.lock().expect("obs registry poisoned");
        let cell = match counters.iter().find(|(n, _)| n == name) {
            Some((_, c)) => Arc::clone(c),
            None => {
                let c = Arc::new(AtomicU64::new(0));
                counters.push((name.to_string(), Arc::clone(&c)));
                c
            }
        };
        Counter { cell: Some(cell) }
    }

    /// A histogram named `name` with the given bucket upper bounds
    /// (ascending; an implicit overflow bucket catches the rest).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        self.hist_cell(name, || HistInner::new(bounds))
    }

    /// A histogram in the opt-in log2 mode: bucket upper bounds are the
    /// powers of two `2^0 … 2^62` plus an overflow bucket, so one
    /// instrument spans nanoseconds to whole seconds at a constant ≤2×
    /// relative error — tail percentiles without a thousand fixed buckets.
    /// Recording computes the bucket with bit math instead of a search.
    pub fn log2_histogram(&self, name: &str) -> Histogram {
        self.hist_cell(name, HistInner::new_log2)
    }

    fn hist_cell(&self, name: &str, make: impl FnOnce() -> HistInner) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram { cell: None };
        };
        let mut histograms = inner.histograms.lock().expect("obs registry poisoned");
        let cell = match histograms.iter().find(|(n, _)| n == name) {
            Some((_, h)) => Arc::clone(h),
            None => {
                let h = Arc::new(make());
                histograms.push((name.to_string(), Arc::clone(&h)));
                h
            }
        };
        Histogram { cell: Some(cell) }
    }

    /// Folds a snapshot from another recorder into this one: counters add,
    /// histograms merge bucket-wise (instruments are created on first
    /// sight). This is how per-worker recorder shards are combined after a
    /// parallel sweep — workers record into private shards with no
    /// cross-thread contention, and the driver absorbs them once at the
    /// end. A snapshot histogram whose bounds disagree with an existing
    /// same-named instrument is reported on stderr and skipped.
    pub fn absorb(&self, snap: &Snapshot) {
        if self.inner.is_none() {
            return;
        }
        for c in &snap.counters {
            self.counter(&c.name).add(c.value);
        }
        for h in &snap.histograms {
            let hist = self.hist_cell(&h.name, || HistInner {
                bounds: h.bounds.clone().into(),
                counts: (0..=h.bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
                log2: h.bounds == log2_bounds(),
            });
            let cell = hist
                .cell
                .as_ref()
                .expect("enabled recorder hands out live cells");
            if *cell.bounds != *h.bounds {
                eprintln!(
                    "obs: absorb skipped histogram `{}`: bucket bounds disagree",
                    h.name
                );
                continue;
            }
            cell.absorb_snap(h);
        }
    }

    /// A nanosecond timer: a histogram over [`DEFAULT_NS_BUCKETS`] whose
    /// [`Timer::start`] spans record wall time on drop.
    pub fn timer(&self, name: &str) -> Timer {
        Timer {
            hist: self.histogram(name, &DEFAULT_NS_BUCKETS),
        }
    }

    /// A point-in-time copy of every instrument this recorder handed out.
    /// Disabled recorders produce an empty snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let counters = inner
            .counters
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(name, c)| CounterSnap {
                name: name.clone(),
                value: c.load(Ordering::Relaxed),
            })
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(name, h)| h.snap(name))
            .collect();
        Snapshot {
            counters,
            histograms,
        }
    }
}

/// A monotonic counter. Inert (all methods no-ops) when its recorder is
/// disabled.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 for inert counters).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

struct HistInner {
    bounds: Box<[u64]>,
    /// One count per bound plus the overflow bucket.
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// Log2 mode: bucket lookup by bit math instead of binary search.
    log2: bool,
}

impl HistInner {
    fn new(bounds: &[u64]) -> Self {
        HistInner {
            bounds: bounds.into(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            log2: false,
        }
    }

    fn new_log2() -> Self {
        HistInner {
            log2: true,
            ..Self::new(&log2_bounds())
        }
    }

    fn record(&self, v: u64) {
        let idx = if self.log2 {
            log2_index(v)
        } else {
            self.bounds.partition_point(|&b| b < v)
        };
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds a same-bounds snapshot's accumulators into this instrument.
    fn absorb_snap(&self, snap: &HistogramSnap) {
        debug_assert_eq!(*self.bounds, *snap.bounds);
        if snap.count == 0 {
            return;
        }
        for (cell, &c) in self.counts.iter().zip(&snap.counts) {
            cell.fetch_add(c, Ordering::Relaxed);
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.min.fetch_min(snap.min, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }

    fn snap(&self, name: &str) -> HistogramSnap {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnap {
            name: name.to_string(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            bounds: self.bounds.to_vec(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A fixed-bucket histogram. Inert when its recorder is disabled.
#[derive(Clone, Default)]
pub struct Histogram {
    cell: Option<Arc<HistInner>>,
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(cell) = &self.cell {
            cell.record(v);
        }
    }

    /// Observations so far (0 for inert histograms).
    pub fn count(&self) -> u64 {
        self.cell
            .as_ref()
            .map(|c| c.count.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Sum of observations so far (0 for inert histograms).
    pub fn sum(&self) -> u64 {
        self.cell
            .as_ref()
            .map(|c| c.sum.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// A nanosecond wall-time histogram with scoped spans.
#[derive(Clone, Default)]
pub struct Timer {
    hist: Histogram,
}

impl Timer {
    /// Starts a span; the elapsed nanoseconds are recorded when the
    /// returned guard drops. For an inert timer no clock is read. The
    /// guard owns a handle to the histogram, so `rec.timer("x").start()`
    /// works without keeping the timer alive.
    #[inline]
    pub fn start(&self) -> Span {
        Span {
            cell: self
                .hist
                .cell
                .as_ref()
                .map(|c| (Arc::clone(c), Instant::now())),
        }
    }

    /// Records an externally measured duration.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.hist.record(ns);
    }

    /// Spans recorded so far.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// Total recorded nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.hist.sum()
    }
}

/// Guard from [`Timer::start`]; records the span's wall time on drop.
pub struct Span {
    cell: Option<(Arc<HistInner>, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((hist, t0)) = self.cell.take() {
            hist.record(t0.elapsed().as_nanos() as u64);
        }
    }
}

/// Serializable point-in-time copy of a counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnap {
    /// Instrument name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// Serializable point-in-time copy of a histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnap {
    /// Instrument name.
    pub name: String,
    /// Observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 if empty).
    pub min: u64,
    /// Largest observation (0 if empty).
    pub max: u64,
    /// Bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one longer than `bounds` (overflow bucket).
    pub counts: Vec<u64>,
}

impl HistogramSnap {
    /// Mean observation, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`q ∈ [0, 1]`), or `None`
    /// for an empty histogram: the upper bound of the first bucket whose
    /// cumulative count reaches `⌈q·count⌉`, clamped to the observed
    /// min/max. Under log2 buckets the estimate is within 2× of the true
    /// value — adequate for tail-latency reporting.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let hi = self.bounds.get(i).copied().unwrap_or(self.max);
                return Some(hi.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

/// Serializable snapshot of every instrument a recorder handed out.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Snapshot {
    /// All counters, in registration order.
    pub counters: Vec<CounterSnap>,
    /// All histograms/timers, in registration order.
    pub histograms: Vec<HistogramSnap>,
}

impl Snapshot {
    /// Value of the named counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The named histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnap> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Pretty JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization cannot fail")
    }

    /// Parses a snapshot back from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_dedup_by_name() {
        let rec = Recorder::enabled();
        let a = rec.counter("x");
        let b = rec.counter("x");
        a.add(2);
        b.incr();
        assert_eq!(a.get(), 3);
        assert_eq!(rec.snapshot().counter("x"), Some(3));
        assert_eq!(rec.snapshot().counters.len(), 1);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let rec = Recorder::enabled();
        let h = rec.histogram("lat", &[10, 100, 1000]);
        for v in [5, 10, 11, 100, 5000] {
            h.record(v);
        }
        let snap = rec.snapshot();
        let hs = snap.histogram("lat").unwrap();
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 5126);
        assert_eq!(hs.min, 5);
        assert_eq!(hs.max, 5000);
        // Buckets: ≤10 → [5, 10], ≤100 → [11, 100], ≤1000 → [], over → [5000].
        assert_eq!(hs.counts, vec![2, 2, 0, 1]);
        assert!((hs.mean() - 1025.2).abs() < 1e-9);
    }

    #[test]
    fn timer_spans_record_on_drop() {
        let rec = Recorder::enabled();
        let t = rec.timer("span");
        {
            let _s = t.start();
            std::hint::black_box((0..1000).sum::<u64>());
        }
        t.record_ns(42);
        assert_eq!(t.count(), 2);
        assert!(t.total_ns() >= 42);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let c = rec.counter("c");
        let h = rec.histogram("h", &[1, 2]);
        let t = rec.timer("t");
        c.add(5);
        h.record(7);
        let _span = t.start();
        drop(_span);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(t.count(), 0);
        let snap = rec.snapshot();
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let rec = Recorder::enabled();
        rec.counter("a").add(7);
        let h = rec.histogram("b", &[100, 200]);
        h.record(150);
        h.record(999);
        let snap = rec.snapshot();
        let json = snap.to_json();
        let back = Snapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn instruments_are_shareable_across_threads() {
        let rec = Recorder::enabled();
        let c = rec.counter("shared");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_bounds_panic() {
        let rec = Recorder::enabled();
        let _ = rec.histogram("bad", &[10, 5]);
    }

    #[test]
    fn log2_bucket_boundaries() {
        // Every value must land in the first power-of-two bucket that
        // covers it: bucket i has upper bound 2^i.
        assert_eq!(log2_index(0), 0);
        assert_eq!(log2_index(1), 0);
        assert_eq!(log2_index(2), 1);
        assert_eq!(log2_index(3), 2);
        assert_eq!(log2_index(4), 2);
        assert_eq!(log2_index(5), 3);
        assert_eq!(log2_index(1 << 20), 20);
        assert_eq!(log2_index((1 << 20) + 1), 21);
        assert_eq!(log2_index(1 << 62), 62);
        assert_eq!(log2_index((1 << 62) + 1), LOG2_BOUND_COUNT); // overflow
        assert_eq!(log2_index(u64::MAX), LOG2_BOUND_COUNT);

        // And the bit-math path must agree with a bounds search.
        let rec = Recorder::enabled();
        let h = rec.log2_histogram("l");
        for v in [0u64, 1, 2, 3, 7, 8, 9, 1_000_000, u64::MAX] {
            h.record(v);
        }
        let snap = rec.snapshot();
        let hs = snap.histogram("l").unwrap();
        assert_eq!(hs.bounds, log2_bounds());
        assert_eq!(hs.counts.len(), LOG2_BOUND_COUNT + 1);
        for (v, expect_idx) in [(0u64, 0usize), (3, 2), (9, 4), (u64::MAX, 63)] {
            assert!(
                hs.counts[expect_idx] > 0,
                "value {v} should have landed in bucket {expect_idx}"
            );
            // The search-based rule gives the same bucket.
            assert_eq!(hs.bounds.partition_point(|&b| b < v), log2_index(v));
        }
    }

    #[test]
    fn log2_histogram_quantiles() {
        let rec = Recorder::enabled();
        let h = rec.log2_histogram("lat");
        // 90 fast observations, 10 slow ones: p50 small, p99 large.
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let snap = rec.snapshot();
        let hs = snap.histogram("lat").unwrap();
        let p50 = hs.quantile(0.50).unwrap();
        let p99 = hs.quantile(0.99).unwrap();
        assert!((1_000..2_048).contains(&p50), "p50 = {p50}");
        assert!(p99 >= 1_000_000, "p99 = {p99}");
        assert!(p99 <= hs.max);
        let p0 = hs.quantile(0.0).unwrap();
        assert!((1_000..=1_024).contains(&p0), "p0 = {p0}");
        assert_eq!(hs.quantile(1.0).unwrap(), hs.max);
        assert_eq!(rec.histogram("empty", &[1]).count(), 0);
        assert_eq!(
            rec.snapshot().histogram("empty").unwrap().quantile(0.5),
            None
        );
    }

    #[test]
    fn absorb_merges_shards() {
        let main = Recorder::enabled();
        main.counter("points").add(2);
        main.histogram("h", &[10, 100]).record(5);

        let shard = Recorder::enabled();
        shard.counter("points").add(3);
        shard.counter("shard_only").incr();
        let sh = shard.histogram("h", &[10, 100]);
        sh.record(50);
        sh.record(500);
        shard.log2_histogram("l2").record(9);

        main.absorb(&shard.snapshot());
        let snap = main.snapshot();
        assert_eq!(snap.counter("points"), Some(5));
        assert_eq!(snap.counter("shard_only"), Some(1));
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 555);
        assert_eq!((h.min, h.max), (5, 500));
        assert_eq!(h.counts, vec![1, 1, 1]);
        // A log2 shard instrument materializes in the main recorder and
        // keeps bucketing consistently on later records.
        main.log2_histogram("l2").record(9);
        let l2 = main.snapshot();
        let l2 = l2.histogram("l2").unwrap();
        assert_eq!(l2.count, 2);
        assert_eq!(l2.counts[log2_index(9)], 2);

        // Disagreeing bounds are skipped, not merged.
        let bad = Recorder::enabled();
        bad.histogram("h", &[1, 2]).record(1);
        main.absorb(&bad.snapshot());
        assert_eq!(main.snapshot().histogram("h").unwrap().count, 3);

        // Absorbing into a disabled recorder is a no-op.
        let off = Recorder::disabled();
        off.absorb(&shard.snapshot());
        assert!(off.snapshot().counters.is_empty());
    }

    #[test]
    fn absorb_order_is_merge_invariant() {
        let shards: Vec<Recorder> = (0..3).map(|_| Recorder::enabled()).collect();
        for (i, s) in shards.iter().enumerate() {
            s.counter("c").add(i as u64 + 1);
            s.log2_histogram("h").record(10u64.pow(i as u32 + 1));
        }
        let fwd = Recorder::enabled();
        for s in &shards {
            fwd.absorb(&s.snapshot());
        }
        let rev = Recorder::enabled();
        for s in shards.iter().rev() {
            rev.absorb(&s.snapshot());
        }
        let (a, b) = (fwd.snapshot(), rev.snapshot());
        assert_eq!(a.counter("c"), b.counter("c"));
        assert_eq!(a.histogram("h"), b.histogram("h"));
    }
}
