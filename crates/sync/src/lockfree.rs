//! Lock-free object sharing under Pfair scheduling (Holman & Anderson \[18\]).
//!
//! Lock-free operations are "usually implemented using retry loops": read
//! the object, compute, attempt a compare-and-swap; a concurrent successful
//! operation on the same object forces a retry. On a general multiprocessor
//! "deducing bounds on retries due to interferences across processors is
//! difficult" — but the paper observes that Pfair's tight synchrony makes
//! it tractable: within one slot, only the `≤ M − 1` *other* tasks
//! scheduled in that slot can interfere, so an operation retries at most
//! `M − 1` times per attempt window (and in expectation far less).
//!
//! [`RetrySim`] simulates retry loops over a recorded Pfair schedule: each
//! scheduled quantum a task performs operations on a shared object; the
//! interference adversary (worst-case: every concurrent operation lands a
//! successful CAS just before ours) is simulated per slot. The tests pin
//! the `M − 1` bound and compare the measured retry distribution against
//! it.

use pfair_model::{Slot, TaskId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Retry statistics for a lock-free object.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Completed operations.
    pub operations: u64,
    /// Total retries across all operations.
    pub total_retries: u64,
    /// Worst retries suffered by a single operation.
    pub max_retries: u64,
}

impl RetryStats {
    /// Mean retries per operation.
    pub fn mean_retries(&self) -> f64 {
        if self.operations == 0 {
            0.0
        } else {
            self.total_retries as f64 / self.operations as f64
        }
    }
}

/// Interference model for concurrent operations in a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interference {
    /// Adversarial: every concurrent task's operation defeats ours once
    /// (the worst case that yields the `M − 1` analytical bound).
    Adversarial,
    /// Random: each concurrent operation defeats ours independently with
    /// the given probability (percent, 0–100).
    Random(u8),
}

/// Simulates retry loops on one shared lock-free object over a recorded
/// Pfair schedule (see module docs).
#[derive(Debug)]
pub struct RetrySim {
    interference: Interference,
    /// Probability (0–100) that a scheduled task operates on the object
    /// in a given quantum.
    op_prob_pct: u8,
    rng: StdRng,
    stats: RetryStats,
}

impl RetrySim {
    /// Creates a simulator.
    pub fn new(interference: Interference, op_prob_pct: u8, seed: u64) -> Self {
        assert!(op_prob_pct <= 100);
        RetrySim {
            interference,
            op_prob_pct,
            rng: StdRng::seed_from_u64(seed),
            stats: RetryStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// Processes one slot of a schedule.
    pub fn on_slot(&mut self, _t: Slot, scheduled: &[TaskId]) {
        // Which of the scheduled tasks operate on the object this quantum?
        let operators: Vec<usize> = (0..scheduled.len())
            .filter(|_| self.rng.gen_range(0..100) < self.op_prob_pct)
            .collect();
        let k = operators.len();
        if k == 0 {
            return;
        }
        // Each operator's retries: bounded by the number of *other*
        // concurrent operators (each can defeat our CAS at most once —
        // after a defeat it has completed and leaves the slot's contention
        // set).
        for i in 0..k {
            let others = (k - 1) as u64;
            let retries = match self.interference {
                Interference::Adversarial => others,
                Interference::Random(p) => {
                    let mut r = 0;
                    for _ in 0..others {
                        if self.rng.gen_range(0..100) < p {
                            r += 1;
                        }
                    }
                    r
                }
            };
            let _ = i;
            self.stats.operations += 1;
            self.stats.total_retries += retries;
            self.stats.max_retries = self.stats.max_retries.max(retries);
        }
    }

    /// Runs over a full recorded schedule.
    pub fn run_schedule(&mut self, schedule: &[Vec<TaskId>]) -> RetryStats {
        for (t, slot) in schedule.iter().enumerate() {
            self.on_slot(t as Slot, slot);
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::lockfree_retry_bound;
    use pfair_core::sched::SchedConfig;
    use pfair_model::TaskSet;
    use sched_sim::MultiSim;

    fn schedule(m: u32, horizon: u64) -> Vec<Vec<TaskId>> {
        // Fully loaded m processors with 3m/2 weight-2/3 tasks.
        let set = TaskSet::from_pairs(vec![(2u64, 3u64); (m as usize) * 3 / 2]).unwrap();
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(m));
        sim.record_schedule();
        sim.run(horizon);
        sim.schedule().unwrap().to_vec()
    }

    #[test]
    fn adversarial_retries_respect_bound() {
        for m in [2u32, 4, 8] {
            let sched = schedule(m, 3_000);
            let mut sim = RetrySim::new(Interference::Adversarial, 100, 1);
            let stats = sim.run_schedule(&sched);
            assert!(stats.operations > 0);
            assert!(
                stats.max_retries <= lockfree_retry_bound(m),
                "M={m}: {} > {}",
                stats.max_retries,
                lockfree_retry_bound(m)
            );
            // Fully loaded + always operating: the bound is tight.
            assert_eq!(stats.max_retries, lockfree_retry_bound(m));
        }
    }

    #[test]
    fn random_interference_is_below_adversarial() {
        let sched = schedule(4, 5_000);
        let mut adv = RetrySim::new(Interference::Adversarial, 100, 1);
        let a = adv.run_schedule(&sched);
        let mut rnd = RetrySim::new(Interference::Random(30), 100, 1);
        let r = rnd.run_schedule(&sched);
        assert!(r.mean_retries() < a.mean_retries());
        assert!(r.max_retries <= a.max_retries);
    }

    #[test]
    fn sparse_operations_rarely_conflict() {
        let sched = schedule(8, 5_000);
        let mut sim = RetrySim::new(Interference::Adversarial, 10, 2);
        let stats = sim.run_schedule(&sched);
        // With 10% operation probability, most operations see no
        // concurrent operator at all.
        assert!(stats.mean_retries() < 1.0, "mean {}", stats.mean_retries());
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(RetryStats::default().mean_retries(), 0.0);
        let s = RetryStats {
            operations: 4,
            total_retries: 6,
            max_retries: 3,
        };
        assert_eq!(s.mean_retries(), 1.5);
    }
}
