//! # pfair-sync
//!
//! Task synchronization under Pfair scheduling (paper, Section 5.1).
//!
//! The paper's claim: "the tight synchrony in Pfair scheduling can be
//! exploited to simplify task synchronization. Specifically, each subtask's
//! execution is effectively non-preemptive within its time slot. As a
//! result, problems stemming from the use of locks can be altogether
//! avoided by ensuring that all locks are released before each quantum
//! boundary … by delaying the start of critical sections that are not
//! guaranteed to complete by the quantum boundary. When critical-section
//! durations are short compared to the quantum length … this approach can
//! be used to provide synchronization with very little overhead."
//!
//! This crate implements and evaluates that protocol:
//!
//! * [`locksim`] — a sub-quantum simulator layering critical-section
//!   activity (lock requests at random offsets inside each scheduled
//!   quantum) over a recorded Pfair schedule, implementing **skip
//!   locking**: a critical section that cannot finish before the quantum
//!   boundary is deferred to the task's next quantum. Measures blocking,
//!   deferral counts, and end-to-end critical-section latency.
//! * [`lockfree`] — retry-loop simulation for lock-free objects
//!   (Holman & Anderson \[18\]): Pfair's tight synchrony bounds retries
//!   per operation by `M − 1`.
//! * [`analysis`] — analytic bounds: per-access blocking under
//!   quantum-boundary locking, the Holman–Anderson style retry bound for
//!   lock-free objects \[18\], the classical uniprocessor SRP/EDF blocking
//!   test for the partitioned comparison, and execution-cost inflation
//!   for lock-aware schedulability.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod lockfree;
pub mod locksim;

pub use analysis::{
    edf_srp_schedulable, lockfree_retry_bound, pfair_blocking_bound, pfair_lock_inflation,
};
pub use lockfree::{Interference, RetrySim, RetryStats};
pub use locksim::{CsConfig, LockSim, LockStats};
