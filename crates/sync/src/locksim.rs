//! Sub-quantum lock simulation over a Pfair schedule ("skip locking").
//!
//! The global Pfair scheduler fixes, per slot, which tasks run on the `M`
//! processors. Within a slot each task executes non-preemptively for one
//! quantum of `q` µs. This simulator adds critical sections: each scheduled
//! quantum, a task may request a lock on one of `R` shared resources at a
//! random offset, holding it for a random duration.
//!
//! Protocol (paper §5.1): **all locks are released by the quantum
//! boundary**. A request whose critical section cannot complete before the
//! boundary is *deferred*: the task does other work now and retries at
//! offset 0 of its next scheduled quantum (where a section of length ≤ q
//! always fits). A request for a busy resource spins until the holder
//! releases — which is always within the same quantum, so the wait is
//! bounded by one critical-section length.
//!
//! Spinning consumes the requester's own quantum (a real cost); deferral
//! costs latency but no processor time. Both are measured.

use pfair_model::{Slot, TaskId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Critical-section workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct CsConfig {
    /// Quantum length in µs.
    pub quantum_us: u64,
    /// Number of distinct shared resources.
    pub resources: usize,
    /// Probability that a scheduled quantum issues one lock request.
    pub request_prob: f64,
    /// Critical-section length range (µs), sampled uniformly.
    pub cs_len_us: (u64, u64),
    /// RNG seed.
    pub seed: u64,
}

impl CsConfig {
    /// A paper-flavoured default: 1 ms quantum, critical sections of
    /// "tens of microseconds" (§5.1 cites Ramamurthy's measurements).
    pub fn short_sections() -> Self {
        CsConfig {
            quantum_us: 1_000,
            resources: 4,
            request_prob: 0.5,
            cs_len_us: (5, 50),
            seed: 1,
        }
    }
}

/// Aggregate lock statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LockStats {
    /// Lock acquisitions that completed.
    pub completed: u64,
    /// Requests deferred to a later quantum (would have crossed the
    /// boundary).
    pub deferrals: u64,
    /// Total spin time waiting for busy resources (µs).
    pub total_spin_us: u64,
    /// Worst single spin (µs).
    pub max_spin_us: u64,
    /// Worst end-to-end latency from first request to critical-section
    /// completion, in slots (deferral cost).
    pub max_latency_slots: u64,
    /// Locks still held at any quantum boundary (must stay 0 — the
    /// protocol's invariant).
    pub boundary_violations: u64,
}

impl LockStats {
    /// Mean spin per completed acquisition (µs).
    pub fn mean_spin_us(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.total_spin_us as f64 / self.completed as f64
        }
    }
}

/// A deferred request carried to the task's next quantum.
#[derive(Debug, Clone, Copy)]
struct Pending {
    resource: usize,
    len_us: u64,
    requested_at: Slot,
}

/// Sub-quantum lock simulator (see module docs).
#[derive(Debug)]
pub struct LockSim {
    cfg: CsConfig,
    rng: StdRng,
    /// Deferred request per task, if any.
    pending: Vec<Option<Pending>>,
    stats: LockStats,
}

impl LockSim {
    /// Creates a simulator for `n_tasks` tasks.
    pub fn new(n_tasks: usize, cfg: CsConfig) -> Self {
        assert!(cfg.resources > 0);
        assert!(cfg.cs_len_us.0 <= cfg.cs_len_us.1);
        assert!(
            cfg.cs_len_us.1 <= cfg.quantum_us,
            "critical sections must fit inside one quantum"
        );
        LockSim {
            rng: StdRng::seed_from_u64(cfg.seed),
            pending: vec![None; n_tasks],
            cfg,
            stats: LockStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> LockStats {
        self.stats
    }

    /// Processes one slot of a recorded schedule: `scheduled` are the tasks
    /// running in this slot (each on its own processor).
    pub fn on_slot(&mut self, t: Slot, scheduled: &[TaskId]) {
        let q = self.cfg.quantum_us;
        // Collect this quantum's requests: deferred ones restart at offset
        // 0; fresh ones draw a random offset and length.
        struct Req {
            task: usize,
            resource: usize,
            offset: u64,
            len: u64,
            requested_at: Slot,
        }
        let mut requests: Vec<Req> = Vec::new();
        for &id in scheduled {
            let i = id.index();
            if let Some(p) = self.pending[i].take() {
                requests.push(Req {
                    task: i,
                    resource: p.resource,
                    offset: 0,
                    len: p.len_us,
                    requested_at: p.requested_at,
                });
            } else if self.rng.gen_bool(self.cfg.request_prob) {
                let len = self
                    .rng
                    .gen_range(self.cfg.cs_len_us.0..=self.cfg.cs_len_us.1);
                let offset = self.rng.gen_range(0..q);
                requests.push(Req {
                    task: i,
                    resource: self.rng.gen_range(0..self.cfg.resources),
                    offset,
                    len,
                    requested_at: t,
                });
            }
        }
        // Resolve in offset order; per-resource release time within the
        // quantum implements FIFO spinning. Equal offsets (deferred retries
        // all restart at 0) are ordered oldest-request-first — the ticket
        // discipline that keeps repeated deferral starvation-free.
        requests.sort_by_key(|r| (r.offset, r.requested_at, r.task));
        let mut busy_until = vec![0u64; self.cfg.resources];
        for r in requests {
            let start = r.offset.max(busy_until[r.resource]);
            if start + r.len > q {
                // Would cross the boundary (directly, or pushed past it by
                // spinning): defer to the task's next quantum.
                self.stats.deferrals += 1;
                self.pending[r.task] = Some(Pending {
                    resource: r.resource,
                    len_us: r.len,
                    requested_at: r.requested_at,
                });
                continue;
            }
            let spin = start - r.offset;
            self.stats.total_spin_us += spin;
            self.stats.max_spin_us = self.stats.max_spin_us.max(spin);
            busy_until[r.resource] = start + r.len;
            self.stats.completed += 1;
            let latency = t - r.requested_at;
            self.stats.max_latency_slots = self.stats.max_latency_slots.max(latency);
        }
        // Invariant: nothing spans the boundary (busy_until ≤ q always by
        // the check above).
        if busy_until.iter().any(|&b| b > q) {
            self.stats.boundary_violations += 1;
        }
    }

    /// Convenience: runs over a full recorded schedule.
    pub fn run_schedule(&mut self, schedule: &[Vec<TaskId>]) -> LockStats {
        for (t, slot) in schedule.iter().enumerate() {
            self.on_slot(t as Slot, slot);
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::sched::SchedConfig;
    use pfair_model::TaskSet;
    use sched_sim::MultiSim;

    fn schedule_for(pairs: &[(u64, u64)], horizon: u64) -> (TaskSet, Vec<Vec<TaskId>>) {
        let set = TaskSet::from_pairs(pairs.iter().copied()).unwrap();
        let m = set.min_processors();
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(m));
        sim.record_schedule();
        sim.run(horizon);
        let sched = sim.schedule().unwrap().to_vec();
        (set, sched)
    }

    #[test]
    fn no_boundary_violations_ever() {
        let (set, sched) = schedule_for(&[(2, 3), (2, 3), (2, 3), (1, 2)], 3_000);
        let mut sim = LockSim::new(set.len(), CsConfig::short_sections());
        let stats = sim.run_schedule(&sched);
        assert_eq!(stats.boundary_violations, 0);
        assert!(stats.completed > 0);
    }

    #[test]
    fn spin_bounded_by_contention() {
        // With R resources and M processors, a request can wait for at most
        // M−1 earlier sections in its quantum; with short sections this is
        // ≪ q. Check the empirical bound: max spin ≤ (M−1)·max_cs.
        let (set, sched) = schedule_for(&[(2, 3), (2, 3), (2, 3), (2, 3), (2, 3), (2, 3)], 6_000);
        let m = 4; // Σ = 4
        let cfg = CsConfig {
            resources: 1, // maximal contention
            request_prob: 1.0,
            ..CsConfig::short_sections()
        };
        let mut sim = LockSim::new(set.len(), cfg);
        let stats = sim.run_schedule(&sched);
        assert!(stats.completed > 0);
        assert!(
            stats.max_spin_us <= (m - 1) * cfg.cs_len_us.1,
            "max spin {} > bound {}",
            stats.max_spin_us,
            (m - 1) * cfg.cs_len_us.1
        );
    }

    #[test]
    fn deferrals_are_rare_for_short_sections() {
        // CS ≤ 50 µs in a 1000 µs quantum: only requests in the last 5% of
        // the quantum (or pushed there by spinning) defer.
        let (set, sched) = schedule_for(&[(1, 2), (1, 3), (1, 4), (1, 5)], 10_000);
        let mut sim = LockSim::new(set.len(), CsConfig::short_sections());
        let stats = sim.run_schedule(&sched);
        let defer_rate = stats.deferrals as f64 / (stats.completed + stats.deferrals) as f64;
        assert!(defer_rate < 0.10, "deferral rate {defer_rate}");
        assert_eq!(stats.boundary_violations, 0);
    }

    #[test]
    fn long_sections_defer_often() {
        let (set, sched) = schedule_for(&[(1, 2), (1, 2)], 5_000);
        let cfg = CsConfig {
            cs_len_us: (800, 1_000), // nearly a whole quantum
            request_prob: 1.0,
            ..CsConfig::short_sections()
        };
        let mut sim = LockSim::new(set.len(), cfg);
        let stats = sim.run_schedule(&sched);
        assert!(stats.deferrals > stats.completed / 2);
        assert_eq!(stats.boundary_violations, 0);
    }

    #[test]
    fn deferred_request_completes_next_quantum() {
        // A single task scheduled every other slot; force a deferral and
        // watch the latency: at most the gap to the next quantum.
        let (set, sched) = schedule_for(&[(1, 2)], 100);
        let cfg = CsConfig {
            cs_len_us: (1_000, 1_000), // always exactly one quantum
            request_prob: 1.0,
            resources: 1,
            quantum_us: 1_000,
            seed: 3,
        };
        let mut sim = LockSim::new(set.len(), cfg);
        let stats = sim.run_schedule(&sched);
        // A full-quantum section fits only when requested at offset 0 —
        // i.e. only as a deferred retry.
        assert!(stats.completed > 0);
        assert!(stats.max_latency_slots >= 1, "deferral must cost a window");
        assert!(
            stats.max_latency_slots <= 2,
            "retry lands in the next window"
        );
    }

    #[test]
    fn stats_helpers() {
        let s = LockStats {
            completed: 4,
            total_spin_us: 10,
            ..LockStats::default()
        };
        assert_eq!(s.mean_spin_us(), 2.5);
        assert_eq!(LockStats::default().mean_spin_us(), 0.0);
    }

    #[test]
    #[should_panic(expected = "fit inside one quantum")]
    fn oversized_sections_rejected() {
        let cfg = CsConfig {
            cs_len_us: (10, 2_000),
            ..CsConfig::short_sections()
        };
        let _ = LockSim::new(2, cfg);
    }
}
