//! Analytic synchronization bounds (paper §5.1).
//!
//! * **Quantum-boundary locking** (Pfair): because no lock is ever held
//!   across a quantum boundary and a spinning task waits only for sections
//!   started earlier *in the same slot*, per-access blocking is bounded by
//!   `(M − 1) · L_max` spin time, and a deferred section completes in the
//!   task's next scheduled quantum.
//! * **Lock-free objects** (Holman & Anderson \[18\]): a retry loop can be
//!   interfered with only by operations on the same object that execute
//!   concurrently in the same slot — at most `M − 1` per slot — so
//!   `M` bounds the retries per quantum.
//! * **Uniprocessor EDF + SRP** (for the partitioned comparison): the
//!   classical density test with a blocking term,
//!   `∀i: Σ_{j ≤ i} uⱼ + Bᵢ/pᵢ ≤ 1` with tasks indexed by period and `Bᵢ`
//!   the longest critical section of any longer-period task.

use pfair_model::Rat;

/// Worst-case spin (µs) for one lock access under quantum-boundary
/// locking on `m` processors, with `max_cs_us` the longest critical
/// section of any *other* task sharing the resource: everyone scheduled
/// concurrently can hold/queue ahead at most once.
///
/// # Examples
///
/// ```
/// use pfair_sync::pfair_blocking_bound;
///
/// // Four processors, 50 µs critical sections: wait for at most three.
/// assert_eq!(pfair_blocking_bound(4, 50), 150);
/// assert_eq!(pfair_blocking_bound(1, 50), 0); // nobody to wait for
/// ```
pub fn pfair_blocking_bound(m: u32, max_cs_us: u64) -> u64 {
    (m.saturating_sub(1)) as u64 * max_cs_us
}

/// Worst-case retries of a lock-free operation per quantum under Pfair
/// scheduling (Holman–Anderson style): at most `m − 1` interfering
/// operations can execute in the same slot, each causing one retry.
pub fn lockfree_retry_bound(m: u32) -> u64 {
    m.saturating_sub(1) as u64
}

/// Execution-cost inflation for lock-aware Pfair schedulability: each of
/// the `accesses_per_job` lock accesses may spin for the blocking bound
/// and may be deferred once, wasting at most the section length of
/// useful-time displacement inside the quantum.
pub fn pfair_lock_inflation(exec_us: u64, accesses_per_job: u64, m: u32, max_cs_us: u64) -> u64 {
    exec_us + accesses_per_job * (pfair_blocking_bound(m, max_cs_us) + max_cs_us)
}

/// Uniprocessor EDF + SRP schedulability with blocking: tasks are
/// `(exec, period)` pairs (implicit deadlines) and `cs_us[i]` is task
/// `i`'s longest critical section (0 if it takes no locks). All time
/// values share one unit.
///
/// Test (Baker's SRP density condition): order tasks by period; for each
/// `i`, `Σ_{pⱼ ≤ pᵢ} eⱼ/pⱼ + Bᵢ/pᵢ ≤ 1`, where
/// `Bᵢ = max { cs_j : pⱼ > pᵢ }`.
pub fn edf_srp_schedulable(tasks: &[(u64, u64)], cs_us: &[u64]) -> bool {
    assert_eq!(tasks.len(), cs_us.len());
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by_key(|&i| tasks[i].1);
    for (pos, &i) in order.iter().enumerate() {
        let p_i = tasks[i].1;
        let mut demand: Rat = order[..=pos]
            .iter()
            .map(|&j| Rat::new(tasks[j].0 as i128, tasks[j].1 as i128))
            .sum();
        let blocking = order[pos + 1..]
            .iter()
            .map(|&j| cs_us[j])
            .max()
            .unwrap_or(0);
        demand += Rat::new(blocking as i128, p_i as i128);
        if demand > Rat::ONE {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn blocking_bound_values() {
        assert_eq!(pfair_blocking_bound(1, 50), 0); // no one to wait for
        assert_eq!(pfair_blocking_bound(4, 50), 150);
        assert_eq!(pfair_blocking_bound(16, 10), 150);
    }

    #[test]
    fn retry_bound_values() {
        assert_eq!(lockfree_retry_bound(1), 0);
        assert_eq!(lockfree_retry_bound(8), 7);
    }

    #[test]
    fn inflation_composes() {
        // e = 10000 µs, 3 accesses/job, M = 4, CS ≤ 50 µs:
        // 10000 + 3·(150 + 50) = 10600.
        assert_eq!(pfair_lock_inflation(10_000, 3, 4, 50), 10_600);
        assert_eq!(pfair_lock_inflation(10_000, 0, 4, 50), 10_000);
    }

    #[test]
    fn srp_no_blocking_reduces_to_edf() {
        let tasks = [(1u64, 2u64), (1, 3), (1, 6)];
        assert!(edf_srp_schedulable(&tasks, &[0, 0, 0]));
        let over = [(1u64, 2u64), (1, 3), (1, 5)];
        assert!(!edf_srp_schedulable(&over, &[0, 0, 0]));
    }

    #[test]
    fn srp_blocking_can_break_schedulability() {
        // U = 1/2 + 1/3 = 5/6; the short-period task can absorb blocking of
        // up to p·(1 − 5/6)… here B₁ comes from the longer-period task.
        let tasks = [(5u64, 10u64), (10, 30)];
        assert!(edf_srp_schedulable(&tasks, &[0, 0]));
        // A 2-unit critical section in the long task is fine (demand at the
        // short task: 1/2 + 2/10 = 0.7 ≤ 1)…
        assert!(edf_srp_schedulable(&tasks, &[0, 2]));
        // …but a 6-unit one breaks it: 1/2 + 6/10 = 1.1 > 1.
        assert!(!edf_srp_schedulable(&tasks, &[0, 6]));
        // Blocking from *shorter*-period tasks does not count.
        assert!(edf_srp_schedulable(&tasks, &[9, 0]));
    }

    #[test]
    fn srp_ordering_is_by_period() {
        // Same test regardless of input order.
        let a = [(5u64, 10u64), (10, 30)];
        let b = [(10u64, 30u64), (5, 10)];
        assert_eq!(
            edf_srp_schedulable(&a, &[0, 6]),
            edf_srp_schedulable(&b, &[6, 0])
        );
    }

    proptest! {
        /// Blocking never helps: adding critical sections can only shrink
        /// the schedulable set.
        #[test]
        fn prop_blocking_monotone(
            raw in prop::collection::vec((1u64..5, 2u64..20), 1..6),
            cs in prop::collection::vec(0u64..10, 1..6),
        ) {
            let n = raw.len().min(cs.len());
            let tasks: Vec<(u64, u64)> = raw[..n].iter().map(|&(e, p)| (e.min(p), p)).collect();
            let with = edf_srp_schedulable(&tasks, &cs[..n]);
            let without = edf_srp_schedulable(&tasks, &vec![0; n]);
            if with {
                prop_assert!(without, "blocking cannot make a set schedulable");
            }
        }

        /// The Pfair inflation is linear and exact.
        #[test]
        fn prop_inflation_linear(e in 1u64..100_000, a in 0u64..10, m in 1u32..32, cs in 0u64..500) {
            let inf = pfair_lock_inflation(e, a, m, cs);
            prop_assert_eq!(inf - e, a * ((m as u64 - 1) * cs + cs));
        }
    }
}
