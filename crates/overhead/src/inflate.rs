//! Execution-cost inflation — the paper's Equation (3).

use crate::model::OverheadParams;
use pfair_model::{PhysTask, Rat};
use std::fmt;

/// Failure modes of the PD² inflation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InflateError {
    /// The inflated cost exceeds the period: the task alone cannot meet its
    /// deadline under this overhead model.
    Overload {
        /// Inflated cost at the point of failure (µs).
        inflated_us: f64,
    },
    /// The period is not a multiple of the quantum (PD² requires it).
    PeriodNotQuantumMultiple,
    /// The fixed-point iteration failed to settle (pathological inputs).
    NoConvergence,
}

impl fmt::Display for InflateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InflateError::Overload { inflated_us } => {
                write!(f, "inflated cost {inflated_us:.1}µs exceeds the period")
            }
            InflateError::PeriodNotQuantumMultiple => {
                write!(f, "period is not a multiple of the quantum")
            }
            InflateError::NoConvergence => write!(f, "inflation did not converge"),
        }
    }
}

impl std::error::Error for InflateError {}

/// Result of PD² inflation for one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InflatedPd2 {
    /// Inflated execution cost `e'` (µs).
    pub exec_us: f64,
    /// Quanta spanned: `E = ⌈e'/q⌉`.
    pub quanta: u64,
    /// Period in quanta: `P = p/q`.
    pub period_quanta: u64,
    /// The utilization PD² schedules with: `E / P` (includes quantum
    /// rounding — "one source of schedulability loss in PD²").
    pub weight: Rat,
    /// Fixed-point iterations used (paper: usually ≤ 5).
    pub iterations: u32,
}

/// Inflates `task` for EDF-FF (Equation (3), first case):
/// `e' = e + 2(S_EDF + C) + max_{U ∈ P_T} D(U)`, where `max_d_us` is the
/// largest cache-related preemption delay among the tasks already assigned
/// to the candidate processor with periods ≥ `task.period` (the paper
/// partitions in decreasing-period order precisely so this is known at
/// acceptance time).
///
/// `n` is the task count used for `S_EDF`. Returns the inflated cost in µs.
pub fn inflate_edf(task: PhysTask, params: &OverheadParams, n: usize, max_d_us: f64) -> f64 {
    task.wcet_us as f64 + 2.0 * (params.sched.edf_us(n) + params.ctx_switch_us) + max_d_us
}

/// Inflates `task` for PD² (Equation (3), second case), resolving the
/// self-reference by fixed-point iteration.
///
/// # Examples
///
/// ```
/// use overhead::{inflate_pd2, OverheadParams};
/// use pfair_model::PhysTask;
///
/// // The paper's ε-task: 1 µs of work per 10 ms still costs one whole
/// // 1 ms quantum under PD² — a 1000× utilization loss.
/// let t = PhysTask::new(1, 10_000);
/// let inf = inflate_pd2(t, &OverheadParams::paper2003(), 2, 50, 33.3).unwrap();
/// assert_eq!(inf.quanta, 1);
/// assert_eq!(inf.weight, pfair_model::Rat::new(1, 10));
/// ```
///
/// Formula:
///
/// `e' = e + ⌈e'/q⌉·S_PD² + C + min(⌈e'/q⌉ − 1, p/q − ⌈e'/q⌉)·(C + D(T))`
///
/// `m`/`n` parameterize `S_PD²`; `d_us` is this task's own cache-related
/// preemption delay `D(T)`.
pub fn inflate_pd2(
    task: PhysTask,
    params: &OverheadParams,
    m: u32,
    n: usize,
    d_us: f64,
) -> Result<InflatedPd2, InflateError> {
    let q = params.quantum_us;
    if q == 0 || task.period_us % q != 0 {
        return Err(InflateError::PeriodNotQuantumMultiple);
    }
    let p_quanta = task.period_us / q;
    let s = params.sched.pd2_us(m, n);
    let c = params.ctx_switch_us;
    let e = task.wcet_us as f64;

    let cost = |quanta: u64| -> f64 {
        // Preemption count: min(E − 1, P − E); E > P is overload, handled
        // by the caller via the quanta bound check.
        let preemptions = (quanta - 1).min(p_quanta.saturating_sub(quanta)) as f64;
        e + quanta as f64 * s + c + preemptions * (c + d_us)
    };

    // Fixed-point iteration on E = ⌈e'/q⌉. E only ever needs to grow or
    // stay: start from the uninflated span and increase while the implied
    // cost spans more quanta. (The paper iterates on e' directly; iterating
    // on the integer E is equivalent and cannot oscillate.)
    let mut quanta = (task.wcet_us).div_ceil(q).max(1);
    let mut iterations = 0u32;
    loop {
        iterations += 1;
        if quanta > p_quanta {
            return Err(InflateError::Overload {
                inflated_us: cost(p_quanta.max(1)),
            });
        }
        let e_prime = cost(quanta);
        let implied = (e_prime.ceil() as u64).div_ceil(q).max(1);
        if implied == quanta {
            return Ok(InflatedPd2 {
                exec_us: e_prime,
                quanta,
                period_quanta: p_quanta,
                weight: Rat::new(quanta as i128, p_quanta as i128),
                iterations,
            });
        }
        if implied < quanta {
            // cost() is non-monotone in E only through the preemption term,
            // which can *shrink* as E grows past P/2; accepting the larger
            // span is the conservative fixed point.
            return Ok(InflatedPd2 {
                exec_us: cost(quanta),
                quanta,
                period_quanta: p_quanta,
                weight: Rat::new(quanta as i128, p_quanta as i128),
                iterations,
            });
        }
        quanta = implied;
        if iterations > 10_000 {
            return Err(InflateError::NoConvergence);
        }
    }
}

/// Minimum processors PD² needs for a task set under Equation (3),
/// including the `M`-dependence of `S_PD²` (more processors → costlier
/// invocations → heavier inflation): the smallest `M` with
/// `Σ weight'(T; M) ≤ M`. `d_us[i]` is `D(Tᵢ)`.
///
/// Returns `Err` if any task is individually unschedulable or no
/// `M ≤ max_m` suffices.
pub fn pd2_processors_required(
    tasks: &[PhysTask],
    params: &OverheadParams,
    d_us: &[f64],
    max_m: u32,
) -> Result<u32, InflateError> {
    assert_eq!(tasks.len(), d_us.len());
    let n = tasks.len();
    if n == 0 {
        return Ok(0);
    }
    let raw: f64 = tasks.iter().map(PhysTask::utilization).sum();
    let mut m = (raw.ceil() as u32).max(1);
    while m <= max_m {
        // WeightSum degrades gracefully where an exact rational sum of many
        // unrelated-denominator weights would overflow.
        let mut total = pfair_model::WeightSum::new();
        let mut overloaded = false;
        for (t, &d) in tasks.iter().zip(d_us) {
            match inflate_pd2(*t, params, m, n, d) {
                Ok(inf) => total.add(
                    pfair_model::Weight::new(inf.quanta, inf.period_quanta)
                        .expect("0 < E ≤ P guaranteed by inflate_pd2"),
                ),
                Err(InflateError::Overload { .. }) => {
                    overloaded = true;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        if !overloaded && total.at_most(m) {
            return Ok(m);
        }
        m += 1;
    }
    Err(InflateError::Overload { inflated_us: 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SchedCostModel;
    use proptest::prelude::*;

    fn params() -> OverheadParams {
        OverheadParams::paper2003()
    }

    #[test]
    fn edf_inflation_formula() {
        let t = PhysTask::new(10_000, 100_000);
        let p = OverheadParams {
            ctx_switch_us: 5.0,
            quantum_us: 1_000,
            sched: SchedCostModel::Constant {
                edf_us: 2.0,
                pd2_us: 0.0,
            },
        };
        // e' = 10000 + 2(2+5) + 30 = 10044.
        assert_eq!(inflate_edf(t, &p, 100, 30.0), 10_044.0);
        // With zero overheads, identity.
        assert_eq!(inflate_edf(t, &OverheadParams::zero(), 100, 0.0), 10_000.0);
    }

    #[test]
    fn pd2_inflation_rounds_tiny_tasks_to_full_quantum() {
        // The paper's ε-task: 1 µs of work per 10 ms still costs one whole
        // quantum under PD².
        let t = PhysTask::new(1, 10_000);
        let inf = inflate_pd2(t, &params(), 2, 50, 33.3).unwrap();
        assert_eq!(inf.quanta, 1);
        assert_eq!(inf.period_quanta, 10);
        assert_eq!(inf.weight, Rat::new(1, 10));
        // Raw utilization was 1e-4; PD² sees 0.1 — a 1000× loss.
        assert!(inf.weight.to_f64() / t.utilization() > 900.0);
    }

    #[test]
    fn pd2_inflation_converges_quickly() {
        // A job spanning many quanta accrues per-quantum scheduling cost
        // that can push it into an extra quantum.
        let t = PhysTask::new(9_990, 20_000);
        let inf = inflate_pd2(t, &params(), 4, 250, 50.0).unwrap();
        assert!(inf.iterations <= 5, "iterations = {}", inf.iterations);
        assert!(inf.quanta >= 10);
        assert!(inf.exec_us > 9_990.0);
        // min(E−1, P−E) with E≈10, P=20 → 9 preemptions charged.
        let s = params().sched.pd2_us(4, 250);
        let expected = 9_990.0 + inf.quanta as f64 * s + 5.0 + {
            let pre = (inf.quanta - 1).min(20 - inf.quanta) as f64;
            pre * (5.0 + 50.0)
        };
        assert!((inf.exec_us - expected).abs() < 1e-9);
    }

    #[test]
    fn pd2_detects_overload() {
        // 990 µs of work per 1 ms period: one quantum of real work but the
        // inflation cannot fit.
        let t = PhysTask::new(999, 1_000);
        let r = inflate_pd2(t, &params(), 16, 1000, 90.0);
        // e' = 999 + 1·S + 5 > 1000 → needs 2 quanta > 1 period.
        assert!(matches!(r, Err(InflateError::Overload { .. })));
    }

    #[test]
    fn pd2_rejects_misaligned_period() {
        let t = PhysTask::new(100, 1_500);
        assert_eq!(
            inflate_pd2(t, &params(), 1, 1, 0.0),
            Err(InflateError::PeriodNotQuantumMultiple)
        );
    }

    #[test]
    fn processors_required_grows_with_utilization() {
        let p = params();
        let small: Vec<PhysTask> = (0..10).map(|_| PhysTask::new(2_000, 20_000)).collect();
        let ds = vec![33.3; 10];
        let m_small = pd2_processors_required(&small, &p, &ds, 64).unwrap();
        // Raw U = 1.0; with overheads slightly more → expect 2 (rounding to
        // 2/20 quanta leaves it at 1.0+ε… the inflation pushes ≥ 2 quanta).
        assert!(m_small >= 1);
        let big: Vec<PhysTask> = (0..40).map(|_| PhysTask::new(10_000, 20_000)).collect();
        let ds = vec![33.3; 40];
        let m_big = pd2_processors_required(&big, &p, &ds, 64).unwrap();
        assert!(m_big > m_small);
        // Raw U = 20; inflation adds a little.
        assert!((20..=24).contains(&m_big), "m_big = {m_big}");
    }

    #[test]
    fn zero_overhead_processors_match_raw_ceiling() {
        let p = OverheadParams {
            ctx_switch_us: 0.0,
            quantum_us: 1_000,
            sched: SchedCostModel::Constant {
                edf_us: 0.0,
                pd2_us: 0.0,
            },
        };
        let tasks: Vec<PhysTask> = (0..9).map(|_| PhysTask::new(1_000, 3_000)).collect();
        let ds = vec![0.0; 9];
        // U = 3 exactly, no rounding loss (1000 µs = 1 quantum).
        assert_eq!(pd2_processors_required(&tasks, &p, &ds, 64), Ok(3));
    }

    #[test]
    fn empty_set_needs_zero_processors() {
        assert_eq!(pd2_processors_required(&[], &params(), &[], 4), Ok(0));
    }

    proptest! {
        /// Inflation is monotone: never below the raw cost, and the weight
        /// never below the quantized raw weight.
        #[test]
        fn prop_inflation_monotone(
            wcet in 1u64..50_000,
            period_q in 2u64..100,
            d in 0.0f64..100.0,
        ) {
            let t = PhysTask::new(wcet, period_q * 1_000);
            if let Ok(inf) = inflate_pd2(t, &params(), 4, 100, d) {
                prop_assert!(inf.exec_us >= wcet as f64);
                prop_assert!(inf.quanta >= wcet.div_ceil(1_000));
                prop_assert!(inf.quanta <= inf.period_quanta);
            }
        }

        /// More processors ⇒ no smaller quantum span (S_PD² grows with M).
        /// Note the raw µs cost is *not* monotone: crossing into an extra
        /// quantum can shrink the `min(E−1, P−E)` preemption term, so only
        /// the schedulable weight (quanta/period) is asserted.
        #[test]
        fn prop_inflation_grows_with_m(
            wcet in 1u64..20_000,
            period_q in 2u64..60,
        ) {
            let t = PhysTask::new(wcet, period_q * 1_000);
            let a = inflate_pd2(t, &params(), 2, 100, 33.3);
            let b = inflate_pd2(t, &params(), 16, 100, 33.3);
            if let (Ok(a), Ok(b)) = (a, b) {
                prop_assert!(b.quanta >= a.quanta);
                prop_assert!(b.weight >= a.weight);
            }
        }
    }
}
