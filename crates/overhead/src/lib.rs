//! # overhead
//!
//! Preemption-related overhead accounting (paper, Section 4).
//!
//! The schedulability tests for both PD² and EDF-FF assume zero-cost
//! scheduling; in practice context switches, scheduler invocations, and
//! cache-related preemption delay must be charged against each task by
//! *inflating* its execution cost. This crate implements the paper's
//! Equation (3):
//!
//! ```text
//!         ⎧ e + 2(S_EDF + C) + max_{U ∈ P_T} D(U)                    under EDF
//! e' =    ⎨
//!         ⎩ e + ⌈e'/q⌉·S_PD² + C + min(⌈e'/q⌉−1, p/q−⌈e'/q⌉)·(C+D(T)) under PD²
//! ```
//!
//! The PD² form is self-referential (the number of quanta spanned depends
//! on the inflated cost); [`inflate_pd2`] resolves it by fixed-point
//! iteration, which the paper observed to converge within about five
//! rounds.
//!
//! The per-invocation scheduling costs `S_EDF(N)` and `S_PD²(M, N)` come
//! from a [`SchedCostModel`]: either the paper's 2002-era measurements
//! ([`SchedCostModel::paper2003`]) or a linear model calibrated from this
//! crate's own Fig. 2 benchmarks.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod inflate;
pub mod model;

pub use inflate::{inflate_edf, inflate_pd2, pd2_processors_required, InflateError, InflatedPd2};
pub use model::{OverheadParams, SchedCostModel};
