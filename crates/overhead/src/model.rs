//! Overhead parameter models.
//!
//! All costs are in microseconds. The paper's experiments fix the context
//! switch at `C = 5 µs` ("C is likely to be between 1 and 10 µs in modern
//! processors"), the quantum at `q = 1 ms`, and draw cache-related
//! preemption delays `D(T)` from a distribution with mean 33.3 µs on
//! \[0, 100\] µs.

/// Per-invocation scheduling cost `S_A` as a function of system size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedCostModel {
    /// Constant cost regardless of task/processor count.
    Constant {
        /// `S_EDF` (µs).
        edf_us: f64,
        /// `S_PD²` (µs).
        pd2_us: f64,
    },
    /// Linear-in-N model: `S_EDF(N) = a + b·N`,
    /// `S_PD²(M, N) = a' + (b' + c'·M)·N`.
    Linear {
        /// EDF base cost (µs).
        edf_base_us: f64,
        /// EDF per-task cost (µs).
        edf_per_task_us: f64,
        /// PD² base cost (µs).
        pd2_base_us: f64,
        /// PD² per-task cost (µs).
        pd2_per_task_us: f64,
        /// PD² per-task-per-processor cost (µs).
        pd2_per_task_proc_us: f64,
    },
}

impl SchedCostModel {
    /// A linear model fitted to the paper's Fig. 2: EDF ≈ 2.5 µs and PD² ≈
    /// 8 µs at N = 1000 on one processor; PD² ≈ 50 µs at N = 1000 on 16
    /// processors (933 MHz hardware).
    pub fn paper2003() -> Self {
        SchedCostModel::Linear {
            edf_base_us: 0.5,
            edf_per_task_us: 0.002,
            pd2_base_us: 1.0,
            pd2_per_task_us: 0.004,
            pd2_per_task_proc_us: 0.003,
        }
    }

    /// Calibrates a linear model from measurements — the bridge from this
    /// repository's own Fig. 2 runs to its Fig. 3/4 analysis.
    ///
    /// `edf` holds `(n, µs-per-invocation)` samples from one-processor EDF
    /// runs; `pd2` holds `(m, n, µs-per-slot)` samples. The EDF samples fit
    /// `a + b·n` by least squares; the PD² samples fit
    /// `a' + (b' + c'·m)·n` by least squares over the two derived
    /// regressors `n` and `m·n`.
    ///
    /// # Panics
    ///
    /// Panics with fewer than 2 EDF or 3 PD² samples (underdetermined).
    pub fn fit(edf: &[(usize, f64)], pd2: &[(u32, usize, f64)]) -> Self {
        assert!(edf.len() >= 2, "need ≥ 2 EDF samples");
        assert!(pd2.len() >= 3, "need ≥ 3 PD2 samples");
        let (edf_base_us, edf_per_task_us) = fit_line(edf.iter().map(|&(n, y)| (n as f64, y)));
        let (pd2_base_us, pd2_per_task_us, pd2_per_task_proc_us) = fit_plane(
            pd2.iter()
                .map(|&(m, n, y)| (n as f64, (m.min(16) as f64) * n as f64, y)),
        );
        SchedCostModel::Linear {
            edf_base_us,
            edf_per_task_us,
            pd2_base_us,
            pd2_per_task_us,
            pd2_per_task_proc_us,
        }
    }

    /// `S_EDF(n)` in µs for `n` tasks.
    pub fn edf_us(&self, n: usize) -> f64 {
        match *self {
            SchedCostModel::Constant { edf_us, .. } => edf_us,
            SchedCostModel::Linear {
                edf_base_us,
                edf_per_task_us,
                ..
            } => edf_base_us + edf_per_task_us * n as f64,
        }
    }

    /// `S_PD²(m, n)` in µs for `m` processors and `n` tasks.
    ///
    /// The processor term saturates at `m = 16` — the largest machine the
    /// paper measured (Fig. 2(b)). Extrapolating the per-processor slope to
    /// the 70–170-processor systems of Fig. 3(c–d) would ascribe PD² a
    /// per-quantum cost the measurements do not support (and creates a
    /// divergent inflation↔processor-count feedback); the paper itself
    /// plugged in measured values, which necessarily came from `m ≤ 16`.
    pub fn pd2_us(&self, m: u32, n: usize) -> f64 {
        match *self {
            SchedCostModel::Constant { pd2_us, .. } => pd2_us,
            SchedCostModel::Linear {
                pd2_base_us,
                pd2_per_task_us,
                pd2_per_task_proc_us,
                ..
            } => {
                let m_eff = m.min(16) as f64;
                pd2_base_us + (pd2_per_task_us + pd2_per_task_proc_us * m_eff) * n as f64
            }
        }
    }
}

/// Ordinary least squares for `y = a + b·x`.
fn fit_line(samples: impl Iterator<Item = (f64, f64)>) -> (f64, f64) {
    let pts: Vec<(f64, f64)> = samples.collect();
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return (sy / n, 0.0);
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    (a, b)
}

/// Ordinary least squares for `y = a + b·x₁ + c·x₂` via the 3×3 normal
/// equations (Cramer's rule — the system is tiny and well-conditioned for
/// the measurement grids used here).
fn fit_plane(samples: impl Iterator<Item = (f64, f64, f64)>) -> (f64, f64, f64) {
    let pts: Vec<(f64, f64, f64)> = samples.collect();
    let n = pts.len() as f64;
    let (mut s1, mut s2, mut sy) = (0.0, 0.0, 0.0);
    let (mut s11, mut s12, mut s22) = (0.0, 0.0, 0.0);
    let (mut s1y, mut s2y) = (0.0, 0.0);
    for &(x1, x2, y) in &pts {
        s1 += x1;
        s2 += x2;
        sy += y;
        s11 += x1 * x1;
        s12 += x1 * x2;
        s22 += x2 * x2;
        s1y += x1 * y;
        s2y += x2 * y;
    }
    // Normal equations: [n s1 s2; s1 s11 s12; s2 s12 s22]·[a b c] = [sy s1y s2y].
    let det3 = |m: [[f64; 3]; 3]| -> f64 {
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    };
    let a_mat = [[n, s1, s2], [s1, s11, s12], [s2, s12, s22]];
    let d = det3(a_mat);
    if d.abs() < 1e-9 {
        // Degenerate grid (e.g. single m): fall back to a line in x1.
        let (a, b) = fit_line(pts.iter().map(|&(x1, _, y)| (x1, y)));
        return (a, b, 0.0);
    }
    let col = |k: usize| {
        let mut m = a_mat;
        let rhs = [sy, s1y, s2y];
        for (row, &r) in rhs.iter().enumerate() {
            m[row][k] = r;
        }
        det3(m) / d
    };
    (col(0), col(1), col(2))
}

/// Full overhead parameterization for Equation (3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadParams {
    /// Context-switch cost `C` (µs).
    pub ctx_switch_us: f64,
    /// Quantum size `q` (µs). Periods must be multiples of it.
    pub quantum_us: u64,
    /// Scheduling-cost model `S_A`.
    pub sched: SchedCostModel,
}

impl OverheadParams {
    /// The paper's experimental configuration: `C = 5 µs`, `q = 1 ms`, and
    /// the Fig. 2-derived scheduling-cost model.
    pub fn paper2003() -> Self {
        OverheadParams {
            ctx_switch_us: 5.0,
            quantum_us: 1_000,
            sched: SchedCostModel::paper2003(),
        }
    }

    /// Zero overheads — turns Equation (3) into the identity, which the
    /// Fig. 4 "loss due to partitioning alone" series needs.
    pub fn zero() -> Self {
        OverheadParams {
            ctx_switch_us: 0.0,
            quantum_us: 1,
            sched: SchedCostModel::Constant {
                edf_us: 0.0,
                pd2_us: 0.0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_matches_fig2_anchors() {
        let m = SchedCostModel::paper2003();
        // One processor, N = 1000: EDF ≈ 2.5 µs, PD² ≈ 8 µs (< 8 µs in the
        // paper's words).
        assert!((m.edf_us(1000) - 2.5).abs() < 0.1);
        assert!((m.pd2_us(1, 1000) - 8.0).abs() < 0.5);
        // 16 processors, N = 1000: ≈ 50 µs.
        assert!((m.pd2_us(16, 1000) - 53.0).abs() < 5.0);
        // N ≤ 100 on one processor: PD² < 3 µs, "comparable to EDF".
        assert!(m.pd2_us(1, 100) < 3.0);
        // N ≤ 200, 16 processors: < 20 µs.
        assert!(m.pd2_us(16, 200) < 20.0);
    }

    #[test]
    fn costs_grow_with_size() {
        let m = SchedCostModel::paper2003();
        assert!(m.edf_us(500) < m.edf_us(1000));
        assert!(m.pd2_us(2, 500) < m.pd2_us(2, 1000));
        assert!(m.pd2_us(2, 500) < m.pd2_us(8, 500));
    }

    #[test]
    fn fit_recovers_exact_linear_data() {
        // Generate exact samples from a known model and refit.
        let truth = SchedCostModel::paper2003();
        let edf: Vec<(usize, f64)> = [15, 50, 250, 1000]
            .iter()
            .map(|&n| (n, truth.edf_us(n)))
            .collect();
        let pd2: Vec<(u32, usize, f64)> =
            [(1u32, 50usize), (2, 250), (4, 100), (8, 500), (16, 1000)]
                .iter()
                .map(|&(m, n)| (m, n, truth.pd2_us(m, n)))
                .collect();
        let fitted = SchedCostModel::fit(&edf, &pd2);
        for n in [30usize, 100, 750] {
            assert!((fitted.edf_us(n) - truth.edf_us(n)).abs() < 1e-9);
            for m in [1u32, 4, 16] {
                assert!(
                    (fitted.pd2_us(m, n) - truth.pd2_us(m, n)).abs() < 1e-6,
                    "m={m} n={n}: {} vs {}",
                    fitted.pd2_us(m, n),
                    truth.pd2_us(m, n)
                );
            }
        }
    }

    #[test]
    fn fit_tolerates_degenerate_grid() {
        // All PD2 samples at one m: the plane degenerates to a line.
        let pd2 = [(4u32, 100usize, 2.0), (4, 200, 3.0), (4, 300, 4.0)];
        let fitted = SchedCostModel::fit(&[(10, 1.0), (20, 2.0)], &pd2);
        assert!((fitted.pd2_us(4, 200) - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "EDF samples")]
    fn fit_rejects_underdetermined() {
        let _ = SchedCostModel::fit(&[(10, 1.0)], &[(1, 1, 1.0), (2, 2, 2.0), (3, 3, 3.0)]);
    }

    #[test]
    fn pd2_cost_saturates_beyond_measured_machines() {
        let m = SchedCostModel::paper2003();
        assert_eq!(m.pd2_us(16, 500), m.pd2_us(150, 500));
        assert!(m.pd2_us(8, 500) < m.pd2_us(16, 500));
    }

    #[test]
    fn constant_model_ignores_size() {
        let m = SchedCostModel::Constant {
            edf_us: 1.0,
            pd2_us: 2.0,
        };
        assert_eq!(m.edf_us(10), m.edf_us(10_000));
        assert_eq!(m.pd2_us(1, 10), m.pd2_us(64, 10_000));
    }

    #[test]
    fn zero_params_are_zero() {
        let p = OverheadParams::zero();
        assert_eq!(p.ctx_switch_us, 0.0);
        assert_eq!(p.sched.edf_us(100), 0.0);
        assert_eq!(p.sched.pd2_us(4, 100), 0.0);
    }
}
