//! Seeded, deterministic fault plans.
//!
//! A [`FaultPlan`] is a pure function from `(seed, query)` to fault
//! decisions: every draw hashes the seed together with the query
//! coordinates (processor and slot for slot faults, task and job for
//! overruns and bursts) through a SplitMix64 finalizer. That makes plans
//! *stateless* in the sense that matters for recovery: the
//! [`RecoveryController`](crate::RecoveryController) holds an independent
//! clone of the plan and computes the same fail-stop windows the simulator
//! sees, with no shared mutable state and no dependence on query order.

use pfair_core::sched::DelayModel;
use pfair_core::subtask::SubtaskIndex;
use pfair_model::{Slot, TaskId, TaskSet};
use sched_sim::{FaultHook, SlotFaults, TraceEvent};

/// Fault intensity knobs. All faults are off by default; rates are
/// probabilities in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for every random draw.
    pub seed: u64,
    /// Probability that a job overruns its declared WCET.
    pub overrun_rate: f64,
    /// Extra quanta per overrunning job: uniform in `1..=overrun_max`.
    pub overrun_max: u64,
    /// Per processor-slot probability that a dispatched quantum is wasted
    /// (quantum jitter / lost tick).
    pub loss_rate: f64,
    /// A processor fail-stop event starts every `fail_every` slots
    /// (0 disables fail-stop faults).
    pub fail_every: u64,
    /// How long each fail-stop event keeps its processor down.
    pub fail_duration: u64,
    /// At most this many processors down in any one slot.
    pub max_down: u32,
    /// Probability that a job's arrival is burst-delayed (IS model).
    pub burst_rate: f64,
    /// Extra delay per burst: uniform in `1..=burst_max` slots.
    pub burst_max: u64,
    /// Slot-keyed faults (loss, fail-stop) and overruns only fire inside
    /// `[window_start, window_end)`; used by re-convergence tests to stop
    /// injecting and watch lag recover. Bursts are job-keyed and ignore
    /// the window.
    pub window_start: Slot,
    /// Exclusive end of the fault window.
    pub window_end: Slot,
}

impl FaultConfig {
    /// The zero-fault plan: every rate 0, no fail-stop events.
    pub fn none(seed: u64) -> Self {
        FaultConfig {
            seed,
            overrun_rate: 0.0,
            overrun_max: 0,
            loss_rate: 0.0,
            fail_every: 0,
            fail_duration: 0,
            max_down: 0,
            burst_rate: 0.0,
            burst_max: 0,
            window_start: 0,
            window_end: Slot::MAX,
        }
    }
}

// Domain-separation constants for the hash draws (arbitrary odd values).
const K_OVERRUN: u64 = 0x9e37_79b9_7f4a_7c15;
const K_OVERRUN_MAG: u64 = 0xbf58_476d_1ce4_e5b9;
const K_LOSS: u64 = 0x94d0_49bb_1331_11eb;
const K_FAIL: u64 = 0xd6e8_feb8_6659_fd93;
const K_BURST: u64 = 0xa076_1d64_78bd_642f;
const K_BURST_MAG: u64 = 0xe703_7ed1_a0b4_28db;

/// SplitMix64 finalizer: avalanches every input bit across the output.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic fault plan (see module docs). Cheap to clone; clones
/// agree on every draw.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    /// Most recent slot seen by `slot_faults` — gates job-keyed overruns
    /// to the fault window without changing any draw.
    t_now: Slot,
}

impl FaultPlan {
    /// Builds a plan from its config.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan { cfg, t_now: 0 }
    }

    /// The config this plan draws from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    fn draw(&self, kind: u64, a: u64, b: u64) -> u64 {
        mix(self
            .cfg
            .seed
            .wrapping_add(kind)
            .wrapping_add(mix(a.wrapping_add(kind)))
            .wrapping_add(mix(b.wrapping_mul(0x2545_f491_4f6c_dd1d))))
    }

    /// Uniform draw in `[0, 1)`.
    fn unit(&self, kind: u64, a: u64, b: u64) -> f64 {
        (self.draw(kind, a, b) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn in_window(&self, t: Slot) -> bool {
        t >= self.cfg.window_start && t < self.cfg.window_end
    }

    /// Burst delay (slots) added to the arrival of `job` of `task`. Job 0
    /// always arrives synchronously (the scheduler releases a task's
    /// first subtask unconditionally at join time); bursts postpone the
    /// arrivals of subsequent jobs, as in the IS model.
    pub fn burst_delay(&self, task: TaskId, job: u64) -> u64 {
        if job == 0 || self.cfg.burst_rate <= 0.0 || self.cfg.burst_max == 0 {
            return 0;
        }
        if self.unit(K_BURST, u64::from(task.0), job) < self.cfg.burst_rate {
            1 + self.draw(K_BURST_MAG, u64::from(task.0), job) % self.cfg.burst_max
        } else {
            0
        }
    }

    /// Cumulative burst delay through `job` of `task` (the IS offset).
    pub fn cumulative_delay(&self, task: TaskId, job: u64) -> u64 {
        (0..=job).map(|j| self.burst_delay(task, j)).sum()
    }

    /// Appends the processors fail-stopped in slot `t` (at most
    /// `max_down`) to `out`. Event `k ≥ 1` starts at `k·fail_every`,
    /// lasts `fail_duration`, and takes down a hashed processor.
    pub fn downs_at(&self, t: Slot, m: u32, out: &mut Vec<u32>) {
        let every = self.cfg.fail_every;
        if every == 0 || m == 0 || self.cfg.max_down == 0 || !self.in_window(t) {
            return;
        }
        let dur = self.cfg.fail_duration.max(1);
        let k_hi = t / every;
        let k_lo = t.saturating_sub(dur - 1).div_ceil(every).max(1);
        for k in k_lo..=k_hi {
            let start = k * every;
            if start > t || t >= start + dur || !self.in_window(start) {
                continue;
            }
            let p = (self.draw(K_FAIL, k, 0) % u64::from(m)) as u32;
            if !out.contains(&p) && (out.len() as u32) < self.cfg.max_down {
                out.push(p);
            }
        }
    }

    /// Number of processors down in slot `t` — the recovery controller's
    /// view of capacity, identical to what the simulator experiences.
    pub fn down_count_at(&self, t: Slot, m: u32) -> u32 {
        let mut downs = Vec::new();
        self.downs_at(t, m, &mut downs);
        downs.len() as u32
    }

    /// Every non-zero burst draw that can matter within a `horizon`-slot
    /// run of `tasks`, as [`TraceEvent::Burst`] records for the trace /
    /// the event-aware window checker. The scheduler queues at most one
    /// subtask of a task per slot, so job `j` of a task with execution
    /// requirement `e` (first subtask index `j·e + 1`) cannot be reached
    /// before slot `j·e`; jobs beyond `horizon / e + 1` never surface.
    pub fn burst_events(&self, tasks: &TaskSet, horizon: Slot) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        if self.cfg.burst_rate <= 0.0 || self.cfg.burst_max == 0 {
            return out;
        }
        for (id, task) in tasks.iter() {
            for job in 1..=horizon / task.exec + 1 {
                let delay = self.burst_delay(id, job);
                if delay > 0 {
                    out.push(TraceEvent::Burst {
                        task: id.0,
                        job,
                        delay,
                    });
                }
            }
        }
        out
    }

    /// The arrival-burst side of the plan as a scheduler [`DelayModel`],
    /// for the given (initial) task set.
    pub fn delays(&self, tasks: &TaskSet) -> PlanDelays {
        PlanDelays {
            plan: FaultPlan::new(self.cfg),
            execs: tasks.iter().map(|(_, t)| t.exec).collect(),
        }
    }
}

impl FaultHook for FaultPlan {
    fn slot_faults(&mut self, t: Slot, m: u32, out: &mut SlotFaults) {
        self.t_now = t;
        self.downs_at(t, m, &mut out.down);
        if self.cfg.loss_rate > 0.0 && self.in_window(t) {
            for p in 0..m {
                if self.unit(K_LOSS, t, u64::from(p)) < self.cfg.loss_rate {
                    out.wasted.push(p);
                }
            }
        }
    }

    fn overrun(&mut self, task: TaskId, job: u64) -> u64 {
        if self.cfg.overrun_rate <= 0.0 || self.cfg.overrun_max == 0 || !self.in_window(self.t_now)
        {
            return 0;
        }
        if self.unit(K_OVERRUN, u64::from(task.0), job) < self.cfg.overrun_rate {
            1 + self.draw(K_OVERRUN_MAG, u64::from(task.0), job) % self.cfg.overrun_max
        } else {
            0
        }
    }

    fn release_delay(&mut self, task: TaskId, job: u64) -> u64 {
        self.cumulative_delay(task, job)
    }
}

/// The burst-arrival process of a [`FaultPlan`] as an intra-sporadic
/// [`DelayModel`]: job `j`'s first subtask is delayed by the plan's burst
/// draw for `(task, j)`, shifting the rest of the task's windows (offsets
/// are non-decreasing, as the IS model requires). Task ids beyond the
/// initial set are never delayed.
#[derive(Debug, Clone)]
pub struct PlanDelays {
    plan: FaultPlan,
    execs: Vec<u64>,
}

impl DelayModel for PlanDelays {
    fn delay(&mut self, task: TaskId, i: SubtaskIndex) -> u64 {
        let Some(&e) = self.execs.get(task.index()) else {
            return 0;
        };
        if (i - 1) % e != 0 {
            return 0; // not the first subtask of a job
        }
        self.plan.burst_delay(task, (i - 1) / e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_failstop() -> FaultConfig {
        FaultConfig {
            fail_every: 10,
            fail_duration: 3,
            max_down: 1,
            ..FaultConfig::none(7)
        }
    }

    #[test]
    fn zero_plan_never_faults() {
        let mut plan = FaultPlan::new(FaultConfig::none(123));
        let mut out = SlotFaults::default();
        for t in 0..500 {
            out.clear();
            plan.slot_faults(t, 8, &mut out);
            assert!(out.is_clean(), "slot {t}");
        }
        assert_eq!(plan.overrun(TaskId(0), 3), 0);
        assert_eq!(plan.release_delay(TaskId(2), 9), 0);
    }

    #[test]
    fn clones_agree_on_every_draw() {
        let cfg = FaultConfig {
            overrun_rate: 0.3,
            overrun_max: 4,
            loss_rate: 0.2,
            burst_rate: 0.25,
            burst_max: 5,
            ..cfg_failstop()
        };
        let mut a = FaultPlan::new(cfg);
        let mut b = a.clone();
        let mut oa = SlotFaults::default();
        let mut ob = SlotFaults::default();
        for t in 0..200 {
            oa.clear();
            ob.clear();
            a.slot_faults(t, 4, &mut oa);
            b.slot_faults(t, 4, &mut ob);
            assert_eq!(oa.down, ob.down);
            assert_eq!(oa.wasted, ob.wasted);
            assert_eq!(a.down_count_at(t, 4), oa.down.len() as u32);
        }
        for task in 0..4u32 {
            for job in 0..20 {
                assert_eq!(a.overrun(TaskId(task), job), b.overrun(TaskId(task), job));
                assert_eq!(
                    a.release_delay(TaskId(task), job),
                    b.release_delay(TaskId(task), job)
                );
            }
        }
    }

    #[test]
    fn failstop_windows_follow_the_schedule() {
        let plan = FaultPlan::new(cfg_failstop());
        let mut out = Vec::new();
        // Event 1 covers slots 10..13, event 2 covers 20..23, …
        for t in [10u64, 11, 12, 20, 21, 22] {
            out.clear();
            plan.downs_at(t, 4, &mut out);
            assert_eq!(out.len(), 1, "slot {t}");
        }
        for t in [0u64, 9, 13, 19, 23] {
            out.clear();
            plan.downs_at(t, 4, &mut out);
            assert!(out.is_empty(), "slot {t}");
        }
    }

    #[test]
    fn max_down_caps_concurrent_failures() {
        let cfg = FaultConfig {
            fail_every: 2,
            fail_duration: 10, // events overlap heavily
            max_down: 2,
            ..FaultConfig::none(3)
        };
        let plan = FaultPlan::new(cfg);
        let mut out = Vec::new();
        for t in 0..100 {
            out.clear();
            plan.downs_at(t, 8, &mut out);
            assert!(out.len() <= 2, "slot {t}: {out:?}");
        }
    }

    #[test]
    fn window_gates_slot_faults() {
        let cfg = FaultConfig {
            loss_rate: 1.0,
            window_start: 50,
            window_end: 60,
            ..FaultConfig::none(1)
        };
        let mut plan = FaultPlan::new(cfg);
        let mut out = SlotFaults::default();
        for t in 0..100 {
            out.clear();
            plan.slot_faults(t, 2, &mut out);
            if (50..60).contains(&t) {
                assert_eq!(out.wasted.len(), 2, "slot {t}");
            } else {
                assert!(out.wasted.is_empty(), "slot {t}");
            }
        }
    }

    #[test]
    fn cumulative_delay_is_monotone() {
        let cfg = FaultConfig {
            burst_rate: 0.5,
            burst_max: 3,
            ..FaultConfig::none(9)
        };
        let plan = FaultPlan::new(cfg);
        let mut prev = 0;
        let mut any = false;
        for job in 0..50 {
            let c = plan.cumulative_delay(TaskId(1), job);
            assert!(c >= prev);
            any |= c > prev;
            prev = c;
        }
        assert!(any, "a 0.5 burst rate must delay something in 50 jobs");
    }

    #[test]
    fn burst_events_enumerate_the_plan_draws() {
        let cfg = FaultConfig {
            burst_rate: 0.4,
            burst_max: 2,
            ..FaultConfig::none(11)
        };
        let plan = FaultPlan::new(cfg);
        let tasks = TaskSet::from_pairs([(2u64, 6u64), (1, 4)]).unwrap();
        let events = plan.burst_events(&tasks, 40);
        assert!(!events.is_empty(), "0.4 rate over 40 slots must burst");
        for ev in &events {
            let TraceEvent::Burst { task, job, delay } = *ev else {
                panic!("burst_events emitted {ev:?}");
            };
            assert!(delay > 0);
            assert_eq!(delay, plan.burst_delay(TaskId(task), job));
            let exec = tasks.iter().nth(task as usize).unwrap().1.exec;
            assert!(job <= 40 / exec + 1, "job {job} unreachable in 40 slots");
        }
        // A zero-rate plan has no burst record.
        let quiet = FaultPlan::new(FaultConfig::none(11));
        assert!(quiet.burst_events(&tasks, 40).is_empty());
    }

    #[test]
    fn delay_model_matches_cumulative_draws() {
        let cfg = FaultConfig {
            burst_rate: 0.4,
            burst_max: 2,
            ..FaultConfig::none(11)
        };
        let plan = FaultPlan::new(cfg);
        let tasks = TaskSet::from_pairs([(2u64, 6u64), (1, 4)]).unwrap();
        let mut delays = plan.delays(&tasks);
        // Task 0 has e=2: subtasks 1,3,5,… open jobs 0,1,2,…
        let mut cum = 0;
        for job in 0..10 {
            let i = job * 2 + 1; // first subtask of `job`
            let d = delays.delay(TaskId(0), i);
            assert_eq!(d, plan.burst_delay(TaskId(0), job));
            assert_eq!(delays.delay(TaskId(0), i + 1), 0, "second subtask");
            cum += d;
            assert_eq!(cum, plan.cumulative_delay(TaskId(0), job));
        }
        // Unknown (joined) ids are never delayed.
        assert_eq!(delays.delay(TaskId(9), 1), 0);
    }
}
