//! One-call degradation runners: a task set, a fault plan, a recovery
//! policy, a horizon — out come comparable PD² and partitioned-EDF
//! fault metrics for the experiments layer.
//!
//! Every PD² run is window-verified, whatever the policy: the runner
//! feeds the scheduler's per-slot decisions through an
//! [`IncrementalWindowCheck`] primed with the same fault/recovery events
//! the simulator records ([`FaultPlan::burst_events`] up front, the
//! [`RecoveryController`]'s shed/rejoin/catch-up events as they happen),
//! so the checker tracks the IS window shifts, departures, and ERfair
//! relaxations instead of going blind the moment a run is perturbed.
//! [`run_pd2_traced`] additionally captures a [`ScheduleTrace`] whose
//! `events` field lets `verify_trace` repeat the same check offline.

use pfair_core::{DelayModel, PfairScheduler, SchedConfig};
use pfair_model::{Slot, TaskSet};
use sched_sim::{
    FaultMetrics, IncrementalWindowCheck, MultiSim, RunMetrics, ScheduleTrace, TraceEvent,
    WindowViolation,
};

use crate::edf::QuantumEdfSim;
use crate::plan::{FaultConfig, FaultPlan};
use crate::recovery::{RecoveryController, RecoveryPolicy, RecoveryStats};

/// Everything one simulated degradation run produces.
#[derive(Debug, Clone)]
pub struct DegradationOutcome {
    /// Fault/miss metrics (finalized over the horizon).
    pub faults: FaultMetrics,
    /// The engine's dispatch metrics (preemptions, migrations, …).
    pub run: RunMetrics,
    /// Recovery interventions (`None` for [`RecoveryPolicy::None`]).
    pub recovery: Option<RecoveryStats>,
    /// First Pfair window violation. Every run is checked — faulted,
    /// recovered, and burst-delayed runs against their event-adjusted
    /// windows — so `None` always means "verified clean", never
    /// "not checkable".
    pub window_violation: Option<WindowViolation>,
}

/// Reservation strategy for the slack-reservation experiment (ROADMAP
/// open item 3): the degradation sweep showed WCET overruns are
/// *structural* for PD² — the scheduler serves exactly the declared
/// weight, so a lag watchdog sees no scheduler-level backlog to act on.
/// The remedy is to buy slack up front, either as whole spare processors
/// (run at `M + spare_procs`) or as a per-task weight margin (declare
/// `ceil(e·(1+margin))`, capped at the period, while jobs still demand
/// `e`), and measure how fast application lag re-converges once the
/// fault window closes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlackPlan {
    /// Spare processors beyond the inflated set's minimum.
    pub spare_procs: u32,
    /// Per-task weight-inflation margin (0.25 = +25 % declared cost).
    pub margin: f64,
    /// Application-lag level above which a slot counts as degraded.
    pub lag_threshold: f64,
}

impl SlackPlan {
    /// No reservation at all: schedule the set as declared on its minimum
    /// processor count — the degradation baseline.
    pub fn none(lag_threshold: f64) -> Self {
        SlackPlan {
            spare_procs: 0,
            margin: 0.0,
            lag_threshold,
        }
    }
}

/// Per-slot application-lag profile of a run: how long, how often, and
/// how late the maximum app lag sat above the [`SlackPlan`] threshold.
/// "Recovery time" is the episode length — a fault window pushes lag over
/// the threshold, the reserved slack works it back under.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryProfile {
    /// Slots with max application lag above the threshold.
    pub degraded_slots: u64,
    /// Maximal runs of consecutive degraded slots.
    pub episodes: u64,
    /// Length of the longest episode (the worst recovery time).
    pub longest_episode: u64,
    /// First slot that went degraded, if any.
    pub first_degraded: Option<Slot>,
    /// Slot at which lag last returned under the threshold, if it did.
    pub last_recovery: Option<Slot>,
    /// Whether the run *ended* degraded (never recovered).
    pub degraded_at_end: bool,
}

impl RecoveryProfile {
    /// Mean episode length (recovery time) in slots; 0 with no episodes.
    pub fn mean_episode(&self) -> f64 {
        if self.episodes == 0 {
            0.0
        } else {
            self.degraded_slots as f64 / self.episodes as f64
        }
    }
}

/// Everything a slack-reservation run produces.
#[derive(Debug, Clone)]
pub struct SlackOutcome {
    /// The underlying degradation run (metrics, recovery, verification).
    pub outcome: DegradationOutcome,
    /// Processors the strategy actually ran on.
    pub procs: u32,
    /// Total *declared* (inflated) utilization handed to the scheduler.
    pub declared_util: f64,
    /// The lag-threshold recovery profile.
    pub profile: RecoveryProfile,
}

/// What [`drive`] hands back before policy-independent packaging.
struct RawRun {
    faults: FaultMetrics,
    run: RunMetrics,
    stats: RecoveryStats,
    violation: Option<WindowViolation>,
    trace: Option<ScheduleTrace>,
    profile: RecoveryProfile,
}

fn drive<D: DelayModel>(
    tasks: &TaskSet,
    mut sim: MultiSim<D>,
    ctl: RecoveryController,
    bursts: Vec<TraceEvent>,
    horizon: Slot,
    want_trace: bool,
    lag_threshold: Option<f64>,
) -> RawRun {
    sim.record_events();
    if want_trace {
        sim.record_schedule();
        // The trace carries the job-keyed burst record so the offline
        // verifier can reconstruct the same shifted windows.
        for ev in &bursts {
            sim.push_event(*ev);
        }
    }
    let mut check = IncrementalWindowCheck::new(tasks);
    for ev in &bursts {
        check.apply_event(ev);
    }
    sim.set_recovery_hook(Box::new(ctl));
    let mut violation = None;
    let mut profile = RecoveryProfile::default();
    let mut in_episode = false;
    let mut episode_len = 0u64;
    // Events recorded so far (the bursts pushed above) are already
    // applied; only drain what each step appends.
    let mut seen = sim.events().len();
    for t in 0..horizon {
        sim.step();
        // Recovery events (shed / rejoin / catch-up) recorded during the
        // step's slot boundary must reach the checker before that slot's
        // picks are judged.
        for ev in &sim.events()[seen..] {
            check.apply_event(ev);
        }
        seen = sim.events().len();
        if let Err(v) = check.observe_slot(sim.last_chosen()) {
            violation.get_or_insert(v);
        }
        if let Some(thr) = lag_threshold {
            if sim.current_max_app_lag() > thr {
                profile.degraded_slots += 1;
                if !in_episode {
                    in_episode = true;
                    episode_len = 0;
                    profile.episodes += 1;
                    profile.first_degraded.get_or_insert(t);
                }
                episode_len += 1;
                profile.longest_episode = profile.longest_episode.max(episode_len);
            } else if in_episode {
                in_episode = false;
                profile.last_recovery = Some(t);
            }
        }
    }
    profile.degraded_at_end = in_episode;
    let faults = sim.finalize_faults();
    let run = sim.metrics();
    let trace = want_trace
        .then(|| ScheduleTrace::capture(tasks, &sim).expect("recording was enabled above"));
    let ctl = *sim
        .take_recovery_hook()
        .expect("the hook installed above is still in place")
        .into_any()
        .downcast::<RecoveryController>()
        .expect("the installed hook is a RecoveryController");
    RawRun {
        faults,
        run,
        stats: ctl.stats(),
        violation,
        trace,
        profile,
    }
}

fn run_pd2_inner(
    tasks: &TaskSet,
    m: u32,
    cfg: FaultConfig,
    policy: RecoveryPolicy,
    horizon: Slot,
    want_trace: bool,
) -> (DegradationOutcome, Option<ScheduleTrace>) {
    let plan = FaultPlan::new(cfg);
    let sched_cfg = SchedConfig::pd2(m);
    let bursts = plan.burst_events(tasks, horizon);
    let ctl = RecoveryController::new(plan.clone(), tasks, m, policy);
    let raw = if cfg.burst_rate > 0.0 {
        // Bursts reach the scheduler as IS delays *and* the application
        // layer as shifted arrivals/deadlines, from the same draws.
        let sched = PfairScheduler::with_delays(tasks, sched_cfg, plan.delays(tasks));
        let mut sim = MultiSim::with_scheduler(tasks, sched);
        sim.set_fault_hook(Box::new(plan));
        drive(tasks, sim, ctl, bursts, horizon, want_trace, None)
    } else {
        let mut sim = MultiSim::new(tasks, sched_cfg);
        sim.set_fault_hook(Box::new(plan));
        drive(tasks, sim, ctl, bursts, horizon, want_trace, None)
    };
    (
        DegradationOutcome {
            faults: raw.faults,
            run: raw.run,
            recovery: (policy != RecoveryPolicy::None).then_some(raw.stats),
            window_violation: raw.violation,
        },
        raw.trace,
    )
}

/// Runs PD² over `tasks` on `m` processors for `horizon` slots under the
/// plan drawn from `cfg`, with `policy` recovery.
///
/// Faults never corrupt the *scheduler* (they only steal useful work from
/// the dispatched quanta), so the recorded decisions are always fed
/// through an [`IncrementalWindowCheck`]. Runs that perturb the schedule
/// — arrival bursts (IS windows shift), shedding (departures), rejoins
/// (fresh shifted windows), ER catch-up (relaxed releases) — are checked
/// against their event-adjusted windows; any reported violation is a
/// simulator or recovery bug, not a fault effect.
pub fn run_pd2(
    tasks: &TaskSet,
    m: u32,
    cfg: FaultConfig,
    policy: RecoveryPolicy,
    horizon: Slot,
) -> DegradationOutcome {
    run_pd2_inner(tasks, m, cfg, policy, horizon, false).0
}

/// [`run_pd2`] that additionally captures a [`ScheduleTrace`] carrying
/// the run's fault/recovery events, so the same verification can be
/// repeated offline (`verify_trace`) or archived.
pub fn run_pd2_traced(
    tasks: &TaskSet,
    m: u32,
    cfg: FaultConfig,
    policy: RecoveryPolicy,
    horizon: Slot,
) -> (DegradationOutcome, ScheduleTrace) {
    let (out, trace) = run_pd2_inner(tasks, m, cfg, policy, horizon, true);
    (out, trace.expect("inner run records a trace when asked"))
}

/// The inflated *declared* task set a [`SlackPlan`] margin buys: each
/// cost becomes `ceil(e·(1+margin))`, capped at the period (weights stay
/// ≤ 1). `margin = 0` returns the set unchanged.
pub fn inflate_declared(tasks: &TaskSet, margin: f64) -> TaskSet {
    assert!(margin >= 0.0, "a negative margin is not a reservation");
    let pairs: Vec<(u64, u64)> = tasks
        .iter()
        .map(|(_, t)| {
            let inflated = (t.exec as f64 * (1.0 + margin)).ceil() as u64;
            (inflated.clamp(t.exec, t.period), t.period)
        })
        .collect();
    TaskSet::from_pairs(pairs).expect("inflation caps each cost at its period")
}

fn run_pd2_slack_inner(
    tasks: &TaskSet,
    cfg: FaultConfig,
    policy: RecoveryPolicy,
    horizon: Slot,
    slack: SlackPlan,
    want_trace: bool,
) -> (SlackOutcome, Option<ScheduleTrace>) {
    let declared = inflate_declared(tasks, slack.margin);
    let m = declared.min_processors() + slack.spare_procs;
    let plan = FaultPlan::new(cfg);
    let sched_cfg = SchedConfig::pd2(m);
    let bursts = plan.burst_events(&declared, horizon);
    let ctl = RecoveryController::new(plan.clone(), &declared, m, policy);
    let thr = Some(slack.lag_threshold);
    // The scheduler serves the *declared* (inflated) set — windows,
    // weights, and verification all follow the reservation — while the
    // app layer is pointed back at the true per-job demand, so the
    // surplus quanta are the slack the faults have to eat through.
    fn point_back<D: DelayModel>(sim: &mut MultiSim<D>, declared: &TaskSet, actual: &TaskSet) {
        for ((id, d), (_, a)) in declared.iter().zip(actual.iter()) {
            if d.exec != a.exec {
                sim.set_app_demand(id, a.exec);
            }
        }
    }
    let raw = if cfg.burst_rate > 0.0 {
        let sched = PfairScheduler::with_delays(&declared, sched_cfg, plan.delays(&declared));
        let mut sim = MultiSim::with_scheduler(&declared, sched);
        sim.set_fault_hook(Box::new(plan));
        point_back(&mut sim, &declared, tasks);
        drive(&declared, sim, ctl, bursts, horizon, want_trace, thr)
    } else {
        let mut sim = MultiSim::new(&declared, sched_cfg);
        sim.set_fault_hook(Box::new(plan));
        point_back(&mut sim, &declared, tasks);
        drive(&declared, sim, ctl, bursts, horizon, want_trace, thr)
    };
    let trace = raw.trace;
    (
        SlackOutcome {
            outcome: DegradationOutcome {
                faults: raw.faults,
                run: raw.run,
                recovery: (policy != RecoveryPolicy::None).then_some(raw.stats),
                window_violation: raw.violation,
            },
            procs: m,
            declared_util: declared.total_utilization().to_f64(),
            profile: raw.profile,
        },
        trace,
    )
}

/// Runs the slack-reservation experiment: PD² over the margin-inflated
/// (and/or spare-processor-backed) reservation of `tasks`, faults drawn
/// from `cfg`, while the application layer demands only the true costs.
/// The returned [`RecoveryProfile`] says how long application lag sat
/// above [`SlackPlan::lag_threshold`] — with a fault window
/// ([`FaultConfig::window_start`]/[`window_end`](FaultConfig::window_end))
/// that closes before the horizon, the profile measures post-fault
/// recovery time directly.
///
/// The run is window-verified against the *declared* set's Pfair windows
/// (the reservation is what the scheduler must serve fairly).
pub fn run_pd2_slack(
    tasks: &TaskSet,
    cfg: FaultConfig,
    policy: RecoveryPolicy,
    horizon: Slot,
    slack: SlackPlan,
) -> SlackOutcome {
    run_pd2_slack_inner(tasks, cfg, policy, horizon, slack, false).0
}

/// [`run_pd2_slack`] that additionally captures a [`ScheduleTrace`] of
/// the declared-set schedule (fault/recovery events included) for offline
/// re-verification via `verify_trace`.
pub fn run_pd2_slack_traced(
    tasks: &TaskSet,
    cfg: FaultConfig,
    policy: RecoveryPolicy,
    horizon: Slot,
    slack: SlackPlan,
) -> (SlackOutcome, ScheduleTrace) {
    let (out, trace) = run_pd2_slack_inner(tasks, cfg, policy, horizon, slack, true);
    (out, trace.expect("inner run records a trace when asked"))
}

/// Runs partitioned EDF (first-fit decreasing) under the same plan.
/// Returns `None` when the set does not partition onto `m` processors —
/// an admission loss the caller should report as such.
pub fn run_edf(tasks: &TaskSet, m: u32, cfg: FaultConfig, horizon: Slot) -> Option<FaultMetrics> {
    let plan = FaultPlan::new(cfg);
    let mut sim = QuantumEdfSim::new(tasks, m, plan).ok()?;
    Some(sim.run(horizon))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasks() -> TaskSet {
        TaskSet::from_pairs([(1u64, 2u64), (1, 3), (2, 5), (1, 4), (3, 7)]).unwrap()
    }

    #[test]
    fn fault_free_run_is_clean_and_verified() {
        let out = run_pd2(&tasks(), 2, FaultConfig::none(0), RecoveryPolicy::None, 420);
        assert_eq!(out.faults.job_misses, 0, "{:?}", out.faults);
        assert!(out.window_violation.is_none());
        assert!(out.recovery.is_none());
        assert!(out.faults.jobs_due > 0);
    }

    #[test]
    fn losses_degrade_pd2_but_schedule_stays_pfair() {
        let cfg = FaultConfig {
            loss_rate: 0.3,
            ..FaultConfig::none(42)
        };
        let out = run_pd2(&tasks(), 2, cfg, RecoveryPolicy::None, 420);
        assert!(out.faults.wasted_quanta > 0);
        assert!(out.faults.job_misses > 0, "{:?}", out.faults);
        // The *scheduler's* decisions remain a valid Pfair schedule.
        assert!(out.window_violation.is_none());
    }

    #[test]
    fn edf_runner_reports_admission_failure_as_none() {
        let heavy = TaskSet::from_pairs([(2u64, 3u64), (2, 3), (2, 3)]).unwrap();
        assert!(run_edf(&heavy, 2, FaultConfig::none(0), 100).is_none());
        // PD² schedules the same set (Σwt = 2 = M) without misses.
        let out = run_pd2(&heavy, 2, FaultConfig::none(0), RecoveryPolicy::None, 300);
        assert_eq!(out.faults.job_misses, 0, "{:?}", out.faults);
    }

    #[test]
    fn burst_runs_verify_against_shifted_is_windows() {
        let cfg = FaultConfig {
            burst_rate: 0.4,
            burst_max: 3,
            ..FaultConfig::none(17)
        };
        let out = run_pd2(&tasks(), 2, cfg, RecoveryPolicy::None, 420);
        // Bursts postpone deadlines as well as arrivals; a feasible set
        // stays feasible under the IS model (paper, Theorem 1).
        assert_eq!(out.faults.job_misses, 0, "{:?}", out.faults);
        // The checker followed the shifted IS windows — this is a real
        // verified verdict, not a skipped check.
        assert!(out.window_violation.is_none(), "{:?}", out.window_violation);
    }

    #[test]
    fn every_recovery_policy_is_window_checked_clean() {
        let cfg = FaultConfig {
            fail_every: 40,
            fail_duration: 6,
            max_down: 1,
            loss_rate: 0.05,
            ..FaultConfig::none(5)
        };
        for policy in [
            RecoveryPolicy::None,
            RecoveryPolicy::Shed,
            RecoveryPolicy::CatchUp,
            RecoveryPolicy::Full,
        ] {
            let out = run_pd2(&tasks(), 2, cfg, policy, 420);
            assert!(
                out.window_violation.is_none(),
                "{policy:?}: {:?}",
                out.window_violation
            );
            if policy != RecoveryPolicy::None {
                let stats = out.recovery.expect("recovery stats for active policy");
                if policy == RecoveryPolicy::Shed || policy == RecoveryPolicy::Full {
                    assert!(stats.capacity_changes > 0, "{policy:?}: {stats:?}");
                }
            }
        }
    }

    #[test]
    fn faulted_trace_reverifies_offline() {
        let cfg = FaultConfig {
            fail_every: 50,
            fail_duration: 5,
            max_down: 1,
            loss_rate: 0.1,
            burst_rate: 0.3,
            burst_max: 2,
            ..FaultConfig::none(23)
        };
        let (out, trace) = run_pd2_traced(&tasks(), 2, cfg, RecoveryPolicy::Full, 420);
        assert!(out.window_violation.is_none(), "{:?}", out.window_violation);
        assert!(trace.is_perturbed(), "bursts must appear in the events");
        let json = trace.to_json();
        let back = ScheduleTrace::from_json(&json).expect("trace JSON round-trips");
        assert_eq!(back, trace);
        back.verify().expect("archived faulted trace re-verifies");
    }

    #[test]
    fn inflate_declared_caps_and_rounds_up() {
        let set = TaskSet::from_pairs([(1u64, 2u64), (3, 5), (7, 7)]).unwrap();
        let inflated = inflate_declared(&set, 0.25);
        let pairs: Vec<(u64, u64)> = inflated.iter().map(|(_, t)| (t.exec, t.period)).collect();
        // ceil(1·1.25) = 2, ceil(3·1.25) = 4, ceil(7·1.25) = 9 capped at 7.
        assert_eq!(pairs, vec![(2, 2), (4, 5), (7, 7)]);
        let same = inflate_declared(&set, 0.0);
        assert_eq!(
            same.iter()
                .map(|(_, t)| (t.exec, t.period))
                .collect::<Vec<_>>(),
            vec![(1, 2), (3, 5), (7, 7)]
        );
    }

    /// A windowed fault storm — overruns plus a recurring one-processor
    /// outage — that stops at slot 200; the rest of the horizon shows
    /// whether (and how fast) the reservation works the lag back off.
    fn storm_window(seed: u64) -> FaultConfig {
        FaultConfig {
            overrun_rate: 0.5,
            overrun_max: 2,
            fail_every: 50,
            fail_duration: 25,
            max_down: 1,
            window_start: 0,
            window_end: 200,
            ..FaultConfig::none(seed)
        }
    }

    #[test]
    fn slack_baseline_matches_plain_run_shape() {
        // margin 0 + no spares = the plain degradation run on min procs.
        let set = tasks();
        let out = run_pd2_slack(
            &set,
            FaultConfig::none(3),
            RecoveryPolicy::None,
            420,
            SlackPlan::none(1.0),
        );
        assert_eq!(out.procs, set.min_processors());
        assert!(out.outcome.window_violation.is_none());
        assert_eq!(out.profile.degraded_slots, 0, "{:?}", out.profile);
        assert!(!out.profile.degraded_at_end);
    }

    #[test]
    fn margin_reservation_recovers_where_baseline_lags() {
        let set = tasks();
        let base = run_pd2_slack(
            &set,
            storm_window(11),
            RecoveryPolicy::None,
            600,
            SlackPlan::none(1.0),
        );
        let margin = run_pd2_slack(
            &set,
            storm_window(11),
            RecoveryPolicy::None,
            600,
            SlackPlan {
                spare_procs: 0,
                margin: 0.5,
                lag_threshold: 1.0,
            },
        );
        // The reservation must not be weaker than running bare, and the
        // schedule stays window-verified in both configurations.
        assert!(base.outcome.window_violation.is_none());
        assert!(margin.outcome.window_violation.is_none());
        assert!(margin.declared_util > base.declared_util);
        assert!(
            margin.profile.degraded_slots <= base.profile.degraded_slots,
            "margin {:?} vs base {:?}",
            margin.profile,
            base.profile
        );
        // Overruns are structural at full load: the unreserved run ends
        // degraded, the +50 % margin run works the lag back under the
        // threshold after the fault window closes at slot 200.
        assert!(base.profile.degraded_slots > 0, "{:?}", base.profile);
        assert!(!margin.profile.degraded_at_end, "{:?}", margin.profile);
    }

    #[test]
    fn spare_processor_needs_catchup_to_drain() {
        // A spare processor reduces how much lag the outage inflicts, but
        // plain PD² is not work-conserving: it keeps serving exactly the
        // declared weights, so whatever lag did accrue never drains.
        // ERfair catch-up is what turns the spare capacity into recovery.
        let set = tasks();
        let plan = SlackPlan {
            spare_procs: 1,
            margin: 0.0,
            lag_threshold: 1.0,
        };
        let passive = run_pd2_slack(&set, storm_window(11), RecoveryPolicy::None, 600, plan);
        assert_eq!(passive.procs, set.min_processors() + 1);
        assert!(passive.outcome.window_violation.is_none());
        let caught = run_pd2_slack(&set, storm_window(11), RecoveryPolicy::CatchUp, 600, plan);
        assert_eq!(caught.procs, set.min_processors() + 1);
        assert!(caught.outcome.window_violation.is_none());
        assert!(
            caught.profile.degraded_slots <= passive.profile.degraded_slots,
            "catch-up {:?} vs passive {:?}",
            caught.profile,
            passive.profile
        );
        assert!(!caught.profile.degraded_at_end, "{:?}", caught.profile);
    }

    #[test]
    fn slack_trace_reverifies_offline() {
        let (out, trace) = run_pd2_slack_traced(
            &tasks(),
            storm_window(7),
            RecoveryPolicy::None,
            300,
            SlackPlan {
                spare_procs: 0,
                margin: 0.25,
                lag_threshold: 1.0,
            },
        );
        assert!(out.outcome.window_violation.is_none());
        let back = ScheduleTrace::from_json(&trace.to_json()).expect("round-trip");
        back.verify().expect("slack trace re-verifies offline");
    }

    #[test]
    fn tampered_faulted_trace_is_rejected() {
        let cfg = FaultConfig {
            fail_every: 30,
            fail_duration: 10,
            max_down: 1,
            ..FaultConfig::none(9)
        };
        let (out, mut trace) = run_pd2_traced(&tasks(), 2, cfg, RecoveryPolicy::Shed, 200);
        assert!(out.window_violation.is_none(), "{:?}", out.window_violation);
        let shed_task = trace
            .events
            .iter()
            .find_map(|ev| match *ev {
                TraceEvent::Shed { task, .. } => Some(task),
                _ => None,
            })
            .expect("a 10-slot outage on a 1.9-weight set must shed");
        // Forge an allocation to the shed task after its departure: the
        // event-aware checker must flag the zombie pick.
        trace
            .slots
            .last_mut()
            .expect("non-empty schedule")
            .push(shed_task);
        assert!(trace.verify().is_err(), "tampered trace must be rejected");
    }
}
