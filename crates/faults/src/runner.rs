//! One-call degradation runners: a task set, a fault plan, a recovery
//! policy, a horizon — out come comparable PD² and partitioned-EDF
//! fault metrics for the experiments layer.

use pfair_core::{DelayModel, PfairScheduler, SchedConfig};
use pfair_model::{Slot, TaskSet};
use sched_sim::{FaultMetrics, IncrementalWindowCheck, MultiSim, RunMetrics, WindowViolation};

use crate::edf::QuantumEdfSim;
use crate::plan::{FaultConfig, FaultPlan};
use crate::recovery::{RecoveryController, RecoveryPolicy, RecoveryStats};

/// Everything one simulated degradation run produces.
#[derive(Debug, Clone)]
pub struct DegradationOutcome {
    /// Fault/miss metrics (finalized over the horizon).
    pub faults: FaultMetrics,
    /// The engine's dispatch metrics (preemptions, migrations, …).
    pub run: RunMetrics,
    /// Recovery interventions (`None` for [`RecoveryPolicy::None`]).
    pub recovery: Option<RecoveryStats>,
    /// First Pfair window violation, when the run was verifiable (see
    /// [`run_pd2`]); `None` means "clean" or "not checkable".
    pub window_violation: Option<WindowViolation>,
}

fn drive<D: DelayModel>(
    sim: &mut MultiSim<D>,
    ctl: &mut RecoveryController,
    horizon: Slot,
    check: Option<&mut IncrementalWindowCheck>,
) -> Option<WindowViolation> {
    let mut violation = None;
    let mut check = check;
    for t in 0..horizon {
        ctl.before_slot(sim, t);
        sim.step();
        if let Some(c) = check.as_deref_mut() {
            if let Err(v) = c.observe_slot(sim.last_chosen()) {
                violation.get_or_insert(v);
            }
        }
    }
    violation
}

/// Runs PD² over `tasks` on `m` processors for `horizon` slots under the
/// plan drawn from `cfg`, with `policy` recovery.
///
/// Faults never corrupt the *scheduler* (they only steal useful work from
/// the dispatched quanta), so whenever the scheduler itself runs
/// unmodified plain Pfair — policy [`RecoveryPolicy::None`] and no
/// arrival bursts — the recorded decisions are additionally fed through an
/// [`IncrementalWindowCheck`]: any reported violation is a simulator bug,
/// not a fault effect. Runs with bursts (IS windows shift) or an active
/// recovery policy (ER catch-up / joins change eligibility) are not
/// checkable and skip the verifier.
pub fn run_pd2(
    tasks: &TaskSet,
    m: u32,
    cfg: FaultConfig,
    policy: RecoveryPolicy,
    horizon: Slot,
) -> DegradationOutcome {
    let plan = FaultPlan::new(cfg);
    let sched_cfg = SchedConfig::pd2(m);
    let checkable = policy == RecoveryPolicy::None && cfg.burst_rate <= 0.0;
    let mut check = checkable.then(|| IncrementalWindowCheck::new(tasks));
    let mut ctl = RecoveryController::new(plan.clone(), tasks, m, policy);
    let (faults, run, violation) = if cfg.burst_rate > 0.0 {
        // Bursts reach the scheduler as IS delays *and* the application
        // layer as shifted arrivals/deadlines, from the same draws.
        let sched = PfairScheduler::with_delays(tasks, sched_cfg, plan.delays(tasks));
        let mut sim = MultiSim::with_scheduler(tasks, sched);
        sim.set_fault_hook(Box::new(plan));
        let violation = drive(&mut sim, &mut ctl, horizon, check.as_mut());
        (sim.finalize_faults(), sim.metrics(), violation)
    } else {
        let mut sim = MultiSim::new(tasks, sched_cfg);
        sim.set_fault_hook(Box::new(plan));
        let violation = drive(&mut sim, &mut ctl, horizon, check.as_mut());
        (sim.finalize_faults(), sim.metrics(), violation)
    };
    DegradationOutcome {
        faults,
        run,
        recovery: (policy != RecoveryPolicy::None).then(|| ctl.stats()),
        window_violation: violation,
    }
}

/// Runs partitioned EDF (first-fit decreasing) under the same plan.
/// Returns `None` when the set does not partition onto `m` processors —
/// an admission loss the caller should report as such.
pub fn run_edf(tasks: &TaskSet, m: u32, cfg: FaultConfig, horizon: Slot) -> Option<FaultMetrics> {
    let plan = FaultPlan::new(cfg);
    let mut sim = QuantumEdfSim::new(tasks, m, plan).ok()?;
    Some(sim.run(horizon))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasks() -> TaskSet {
        TaskSet::from_pairs([(1u64, 2u64), (1, 3), (2, 5), (1, 4), (3, 7)]).unwrap()
    }

    #[test]
    fn fault_free_run_is_clean_and_verified() {
        let out = run_pd2(&tasks(), 2, FaultConfig::none(0), RecoveryPolicy::None, 420);
        assert_eq!(out.faults.job_misses, 0, "{:?}", out.faults);
        assert!(out.window_violation.is_none());
        assert!(out.recovery.is_none());
        assert!(out.faults.jobs_due > 0);
    }

    #[test]
    fn losses_degrade_pd2_but_schedule_stays_pfair() {
        let cfg = FaultConfig {
            loss_rate: 0.3,
            ..FaultConfig::none(42)
        };
        let out = run_pd2(&tasks(), 2, cfg, RecoveryPolicy::None, 420);
        assert!(out.faults.wasted_quanta > 0);
        assert!(out.faults.job_misses > 0, "{:?}", out.faults);
        // The *scheduler's* decisions remain a valid Pfair schedule.
        assert!(out.window_violation.is_none());
    }

    #[test]
    fn edf_runner_reports_admission_failure_as_none() {
        let heavy = TaskSet::from_pairs([(2u64, 3u64), (2, 3), (2, 3)]).unwrap();
        assert!(run_edf(&heavy, 2, FaultConfig::none(0), 100).is_none());
        // PD² schedules the same set (Σwt = 2 = M) without misses.
        let out = run_pd2(&heavy, 2, FaultConfig::none(0), RecoveryPolicy::None, 300);
        assert_eq!(out.faults.job_misses, 0, "{:?}", out.faults);
    }

    #[test]
    fn burst_runs_use_is_delays_and_skip_the_checker() {
        let cfg = FaultConfig {
            burst_rate: 0.4,
            burst_max: 3,
            ..FaultConfig::none(17)
        };
        let out = run_pd2(&tasks(), 2, cfg, RecoveryPolicy::None, 420);
        // Bursts postpone deadlines as well as arrivals; a feasible set
        // stays feasible under the IS model (paper, Theorem 1).
        assert_eq!(out.faults.job_misses, 0, "{:?}", out.faults);
        assert!(out.window_violation.is_none());
    }
}
