//! One-call degradation runners: a task set, a fault plan, a recovery
//! policy, a horizon — out come comparable PD² and partitioned-EDF
//! fault metrics for the experiments layer.
//!
//! Every PD² run is window-verified, whatever the policy: the runner
//! feeds the scheduler's per-slot decisions through an
//! [`IncrementalWindowCheck`] primed with the same fault/recovery events
//! the simulator records ([`FaultPlan::burst_events`] up front, the
//! [`RecoveryController`]'s shed/rejoin/catch-up events as they happen),
//! so the checker tracks the IS window shifts, departures, and ERfair
//! relaxations instead of going blind the moment a run is perturbed.
//! [`run_pd2_traced`] additionally captures a [`ScheduleTrace`] whose
//! `events` field lets `verify_trace` repeat the same check offline.

use pfair_core::{DelayModel, PfairScheduler, SchedConfig};
use pfair_model::{Slot, TaskSet};
use sched_sim::{
    FaultMetrics, IncrementalWindowCheck, MultiSim, RunMetrics, ScheduleTrace, TraceEvent,
    WindowViolation,
};

use crate::edf::QuantumEdfSim;
use crate::plan::{FaultConfig, FaultPlan};
use crate::recovery::{RecoveryController, RecoveryPolicy, RecoveryStats};

/// Everything one simulated degradation run produces.
#[derive(Debug, Clone)]
pub struct DegradationOutcome {
    /// Fault/miss metrics (finalized over the horizon).
    pub faults: FaultMetrics,
    /// The engine's dispatch metrics (preemptions, migrations, …).
    pub run: RunMetrics,
    /// Recovery interventions (`None` for [`RecoveryPolicy::None`]).
    pub recovery: Option<RecoveryStats>,
    /// First Pfair window violation. Every run is checked — faulted,
    /// recovered, and burst-delayed runs against their event-adjusted
    /// windows — so `None` always means "verified clean", never
    /// "not checkable".
    pub window_violation: Option<WindowViolation>,
}

/// What [`drive`] hands back before policy-independent packaging.
struct RawRun {
    faults: FaultMetrics,
    run: RunMetrics,
    stats: RecoveryStats,
    violation: Option<WindowViolation>,
    trace: Option<ScheduleTrace>,
}

fn drive<D: DelayModel>(
    tasks: &TaskSet,
    mut sim: MultiSim<D>,
    ctl: RecoveryController,
    bursts: Vec<TraceEvent>,
    horizon: Slot,
    want_trace: bool,
) -> RawRun {
    sim.record_events();
    if want_trace {
        sim.record_schedule();
        // The trace carries the job-keyed burst record so the offline
        // verifier can reconstruct the same shifted windows.
        for ev in &bursts {
            sim.push_event(*ev);
        }
    }
    let mut check = IncrementalWindowCheck::new(tasks);
    for ev in &bursts {
        check.apply_event(ev);
    }
    sim.set_recovery_hook(Box::new(ctl));
    let mut violation = None;
    // Events recorded so far (the bursts pushed above) are already
    // applied; only drain what each step appends.
    let mut seen = sim.events().len();
    for _ in 0..horizon {
        sim.step();
        // Recovery events (shed / rejoin / catch-up) recorded during the
        // step's slot boundary must reach the checker before that slot's
        // picks are judged.
        for ev in &sim.events()[seen..] {
            check.apply_event(ev);
        }
        seen = sim.events().len();
        if let Err(v) = check.observe_slot(sim.last_chosen()) {
            violation.get_or_insert(v);
        }
    }
    let faults = sim.finalize_faults();
    let run = sim.metrics();
    let trace = want_trace
        .then(|| ScheduleTrace::capture(tasks, &sim).expect("recording was enabled above"));
    let ctl = *sim
        .take_recovery_hook()
        .expect("the hook installed above is still in place")
        .into_any()
        .downcast::<RecoveryController>()
        .expect("the installed hook is a RecoveryController");
    RawRun {
        faults,
        run,
        stats: ctl.stats(),
        violation,
        trace,
    }
}

fn run_pd2_inner(
    tasks: &TaskSet,
    m: u32,
    cfg: FaultConfig,
    policy: RecoveryPolicy,
    horizon: Slot,
    want_trace: bool,
) -> (DegradationOutcome, Option<ScheduleTrace>) {
    let plan = FaultPlan::new(cfg);
    let sched_cfg = SchedConfig::pd2(m);
    let bursts = plan.burst_events(tasks, horizon);
    let ctl = RecoveryController::new(plan.clone(), tasks, m, policy);
    let raw = if cfg.burst_rate > 0.0 {
        // Bursts reach the scheduler as IS delays *and* the application
        // layer as shifted arrivals/deadlines, from the same draws.
        let sched = PfairScheduler::with_delays(tasks, sched_cfg, plan.delays(tasks));
        let mut sim = MultiSim::with_scheduler(tasks, sched);
        sim.set_fault_hook(Box::new(plan));
        drive(tasks, sim, ctl, bursts, horizon, want_trace)
    } else {
        let mut sim = MultiSim::new(tasks, sched_cfg);
        sim.set_fault_hook(Box::new(plan));
        drive(tasks, sim, ctl, bursts, horizon, want_trace)
    };
    (
        DegradationOutcome {
            faults: raw.faults,
            run: raw.run,
            recovery: (policy != RecoveryPolicy::None).then_some(raw.stats),
            window_violation: raw.violation,
        },
        raw.trace,
    )
}

/// Runs PD² over `tasks` on `m` processors for `horizon` slots under the
/// plan drawn from `cfg`, with `policy` recovery.
///
/// Faults never corrupt the *scheduler* (they only steal useful work from
/// the dispatched quanta), so the recorded decisions are always fed
/// through an [`IncrementalWindowCheck`]. Runs that perturb the schedule
/// — arrival bursts (IS windows shift), shedding (departures), rejoins
/// (fresh shifted windows), ER catch-up (relaxed releases) — are checked
/// against their event-adjusted windows; any reported violation is a
/// simulator or recovery bug, not a fault effect.
pub fn run_pd2(
    tasks: &TaskSet,
    m: u32,
    cfg: FaultConfig,
    policy: RecoveryPolicy,
    horizon: Slot,
) -> DegradationOutcome {
    run_pd2_inner(tasks, m, cfg, policy, horizon, false).0
}

/// [`run_pd2`] that additionally captures a [`ScheduleTrace`] carrying
/// the run's fault/recovery events, so the same verification can be
/// repeated offline (`verify_trace`) or archived.
pub fn run_pd2_traced(
    tasks: &TaskSet,
    m: u32,
    cfg: FaultConfig,
    policy: RecoveryPolicy,
    horizon: Slot,
) -> (DegradationOutcome, ScheduleTrace) {
    let (out, trace) = run_pd2_inner(tasks, m, cfg, policy, horizon, true);
    (out, trace.expect("inner run records a trace when asked"))
}

/// Runs partitioned EDF (first-fit decreasing) under the same plan.
/// Returns `None` when the set does not partition onto `m` processors —
/// an admission loss the caller should report as such.
pub fn run_edf(tasks: &TaskSet, m: u32, cfg: FaultConfig, horizon: Slot) -> Option<FaultMetrics> {
    let plan = FaultPlan::new(cfg);
    let mut sim = QuantumEdfSim::new(tasks, m, plan).ok()?;
    Some(sim.run(horizon))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasks() -> TaskSet {
        TaskSet::from_pairs([(1u64, 2u64), (1, 3), (2, 5), (1, 4), (3, 7)]).unwrap()
    }

    #[test]
    fn fault_free_run_is_clean_and_verified() {
        let out = run_pd2(&tasks(), 2, FaultConfig::none(0), RecoveryPolicy::None, 420);
        assert_eq!(out.faults.job_misses, 0, "{:?}", out.faults);
        assert!(out.window_violation.is_none());
        assert!(out.recovery.is_none());
        assert!(out.faults.jobs_due > 0);
    }

    #[test]
    fn losses_degrade_pd2_but_schedule_stays_pfair() {
        let cfg = FaultConfig {
            loss_rate: 0.3,
            ..FaultConfig::none(42)
        };
        let out = run_pd2(&tasks(), 2, cfg, RecoveryPolicy::None, 420);
        assert!(out.faults.wasted_quanta > 0);
        assert!(out.faults.job_misses > 0, "{:?}", out.faults);
        // The *scheduler's* decisions remain a valid Pfair schedule.
        assert!(out.window_violation.is_none());
    }

    #[test]
    fn edf_runner_reports_admission_failure_as_none() {
        let heavy = TaskSet::from_pairs([(2u64, 3u64), (2, 3), (2, 3)]).unwrap();
        assert!(run_edf(&heavy, 2, FaultConfig::none(0), 100).is_none());
        // PD² schedules the same set (Σwt = 2 = M) without misses.
        let out = run_pd2(&heavy, 2, FaultConfig::none(0), RecoveryPolicy::None, 300);
        assert_eq!(out.faults.job_misses, 0, "{:?}", out.faults);
    }

    #[test]
    fn burst_runs_verify_against_shifted_is_windows() {
        let cfg = FaultConfig {
            burst_rate: 0.4,
            burst_max: 3,
            ..FaultConfig::none(17)
        };
        let out = run_pd2(&tasks(), 2, cfg, RecoveryPolicy::None, 420);
        // Bursts postpone deadlines as well as arrivals; a feasible set
        // stays feasible under the IS model (paper, Theorem 1).
        assert_eq!(out.faults.job_misses, 0, "{:?}", out.faults);
        // The checker followed the shifted IS windows — this is a real
        // verified verdict, not a skipped check.
        assert!(out.window_violation.is_none(), "{:?}", out.window_violation);
    }

    #[test]
    fn every_recovery_policy_is_window_checked_clean() {
        let cfg = FaultConfig {
            fail_every: 40,
            fail_duration: 6,
            max_down: 1,
            loss_rate: 0.05,
            ..FaultConfig::none(5)
        };
        for policy in [
            RecoveryPolicy::None,
            RecoveryPolicy::Shed,
            RecoveryPolicy::CatchUp,
            RecoveryPolicy::Full,
        ] {
            let out = run_pd2(&tasks(), 2, cfg, policy, 420);
            assert!(
                out.window_violation.is_none(),
                "{policy:?}: {:?}",
                out.window_violation
            );
            if policy != RecoveryPolicy::None {
                let stats = out.recovery.expect("recovery stats for active policy");
                if policy == RecoveryPolicy::Shed || policy == RecoveryPolicy::Full {
                    assert!(stats.capacity_changes > 0, "{policy:?}: {stats:?}");
                }
            }
        }
    }

    #[test]
    fn faulted_trace_reverifies_offline() {
        let cfg = FaultConfig {
            fail_every: 50,
            fail_duration: 5,
            max_down: 1,
            loss_rate: 0.1,
            burst_rate: 0.3,
            burst_max: 2,
            ..FaultConfig::none(23)
        };
        let (out, trace) = run_pd2_traced(&tasks(), 2, cfg, RecoveryPolicy::Full, 420);
        assert!(out.window_violation.is_none(), "{:?}", out.window_violation);
        assert!(trace.is_perturbed(), "bursts must appear in the events");
        let json = trace.to_json();
        let back = ScheduleTrace::from_json(&json).expect("trace JSON round-trips");
        assert_eq!(back, trace);
        back.verify().expect("archived faulted trace re-verifies");
    }

    #[test]
    fn tampered_faulted_trace_is_rejected() {
        let cfg = FaultConfig {
            fail_every: 30,
            fail_duration: 10,
            max_down: 1,
            ..FaultConfig::none(9)
        };
        let (out, mut trace) = run_pd2_traced(&tasks(), 2, cfg, RecoveryPolicy::Shed, 200);
        assert!(out.window_violation.is_none(), "{:?}", out.window_violation);
        let shed_task = trace
            .events
            .iter()
            .find_map(|ev| match *ev {
                TraceEvent::Shed { task, .. } => Some(task),
                _ => None,
            })
            .expect("a 10-slot outage on a 1.9-weight set must shed");
        // Forge an allocation to the shed task after its departure: the
        // event-aware checker must flag the zombie pick.
        trace
            .slots
            .last_mut()
            .expect("non-empty schedule")
            .push(shed_task);
        assert!(trace.verify().is_err(), "tampered trace must be rejected");
    }
}
