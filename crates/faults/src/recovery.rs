//! Overload recovery driven by a [`FaultPlan`].
//!
//! The [`RecoveryController`] is a [`RecoveryHook`]: installed via
//! [`MultiSim::set_recovery_hook`], it runs at the top of every
//! [`MultiSim::step`] — the slot boundary, where `join`/`leave`/capacity
//! changes are legal. Once per slot it recomputes the plan's fail-stop
//! capacity (clones of a plan agree on every draw, so its view matches
//! what the simulator will experience) and applies the configured
//! [`RecoveryPolicy`]:
//!
//! * **capacity tracking** —
//!   [`set_processors`](pfair_core::PfairScheduler::set_processors)
//!   follows the number of live processors, so the scheduler stops
//!   over-selecting tasks that the dead processors would silently drop;
//! * **load shedding** — when `Σ wt` exceeds live capacity,
//!   [`plan_shedding`] picks the heaviest tasks, which leave under the
//!   paper's safe leave rule and are queued for rejoin;
//! * **rejoin** — shed tasks retry
//!   [`join`](pfair_core::PfairScheduler::join) every slot; admission
//!   succeeds once the departed weight frees and capacity returns;
//! * **ERfair catch-up** — a [`LagWatchdog`] over the per-slot maximum
//!   application lag trips into [`EarlyRelease::Unrestricted`]; the
//!   backlog is *drained* once lag falls back under the low-water mark.
//!
//! Every intervention is recorded through [`MultiSim::push_event`] (a
//! no-op unless [`MultiSim::record_events`] is enabled), so traces of
//! recovered runs carry the shed/rejoin/catch-up/capacity record the
//! event-aware verifier needs.
//!
//! Catch-up is **sticky**: the eligibility rule is never restored to
//! plain Pfair. The scheduler is fault-oblivious — lost quanta advance
//! its subtask positions without doing application work, so after a fault
//! its positions permanently lead the application by exactly the lost
//! work. Under ERfair that lead is harmless (eligibility is immediate, so
//! tasks run whenever capacity is free), but reverting to plain Pfair
//! releases would starve every task until wall-clock time caught up with
//! its advanced positions, re-creating the very backlog that was just
//! drained. The watchdog therefore only ever widens eligibility.

use pfair_core::{plan_shedding, DelayModel, EarlyRelease, JoinError, LagWatchdog};
use pfair_model::{Slot, Task, TaskId};
use sched_sim::{MultiSim, RecoveryHook, TraceEvent};

use crate::plan::FaultPlan;

/// What the controller is allowed to do when faults bite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Observe only: no scheduler intervention (the baseline the
    /// degradation experiment compares against).
    #[default]
    None,
    /// Track capacity and shed/rejoin load on processor failure.
    Shed,
    /// ERfair catch-up on lag-watchdog trips (no shedding).
    CatchUp,
    /// Both shedding and catch-up.
    Full,
}

impl RecoveryPolicy {
    fn sheds(self) -> bool {
        matches!(self, RecoveryPolicy::Shed | RecoveryPolicy::Full)
    }

    fn catches_up(self) -> bool {
        matches!(self, RecoveryPolicy::CatchUp | RecoveryPolicy::Full)
    }
}

/// Counters describing the controller's interventions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Times the scheduler's processor count was adjusted.
    pub capacity_changes: u64,
    /// Shedding rounds that removed at least one task.
    pub shed_events: u64,
    /// Total tasks shed.
    pub tasks_shed: u64,
    /// Rejoin attempts (successful or not).
    pub rejoin_attempts: u64,
    /// Tasks successfully re-admitted.
    pub rejoins: u64,
    /// Lag-watchdog trips that engaged ERfair catch-up.
    pub catchup_trips: u64,
    /// Slots spent in catch-up mode.
    pub catchup_slots: u64,
}

/// Per-slot recovery driver; see the module docs for the policy actions.
#[derive(Debug)]
pub struct RecoveryController {
    plan: FaultPlan,
    /// Physical processor count (the simulator's dispatch width).
    m: u32,
    policy: RecoveryPolicy,
    watchdog: LagWatchdog,
    /// A drain completes when max application lag falls to this level.
    low_water: f64,
    /// ERfair eligibility has been engaged (sticky; see module docs).
    engaged: bool,
    /// Currently draining a backlog (engaged and lag above low water).
    draining: bool,
    /// Shed tasks (original parameters) waiting to be re-admitted.
    pending: Vec<Task>,
    /// Original task parameters by [`TaskId`] index, extended on rejoin —
    /// needed because [`weight_of`](pfair_core::PfairScheduler::weight_of)
    /// is in lowest terms.
    task_of: Vec<Task>,
    last_capacity: u32,
    stats: RecoveryStats,
}

impl RecoveryController {
    /// Default watchdog: trip after 3 consecutive slots of lag > 2.0,
    /// disengage at lag ≤ 1.0 (the fault-free Pfair bound).
    pub fn new(
        plan: FaultPlan,
        tasks: &pfair_model::TaskSet,
        m: u32,
        policy: RecoveryPolicy,
    ) -> Self {
        RecoveryController {
            plan,
            m,
            policy,
            watchdog: LagWatchdog::new(2.0, 3),
            low_water: 1.0,
            engaged: false,
            draining: false,
            pending: Vec::new(),
            task_of: tasks.iter().map(|(_, t)| *t).collect(),
            last_capacity: m,
            stats: RecoveryStats::default(),
        }
    }

    /// Overrides the watchdog trip threshold / streak and the low-water
    /// mark at which catch-up disengages.
    pub fn with_watchdog(mut self, threshold: f64, trip_after: u64, low_water: f64) -> Self {
        self.watchdog = LagWatchdog::new(threshold, trip_after);
        self.low_water = low_water;
        self
    }

    /// Intervention counters so far.
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// Tasks currently shed and awaiting re-admission.
    pub fn pending_rejoins(&self) -> usize {
        self.pending.len()
    }

    /// True while a backlog is actively being drained (tripped, and lag
    /// has not yet fallen back under the low-water mark).
    pub fn catching_up(&self) -> bool {
        self.draining
    }

    /// True once the watchdog has ever tripped: ERfair eligibility stays
    /// on for the rest of the run (see the module docs for why it is
    /// never reverted).
    pub fn erfair_engaged(&self) -> bool {
        self.engaged
    }

    /// Applies the policy for slot `t`. [`MultiSim::step`] calls this
    /// through the [`RecoveryHook`] impl once the controller is installed
    /// via [`MultiSim::set_recovery_hook`]; it can also be driven
    /// externally, *before* the `step` of each slot (`join`/`leave` are
    /// only legal at the scheduler's current slot).
    pub fn before_slot<D: DelayModel>(&mut self, sim: &mut MultiSim<D>, t: Slot) {
        if self.policy == RecoveryPolicy::None {
            return;
        }
        if self.policy.sheds() {
            let capacity = self.m - self.plan.down_count_at(t, self.m).min(self.m);
            if capacity != self.last_capacity {
                sim.scheduler_mut().set_processors(capacity);
                sim.push_event(TraceEvent::Capacity {
                    slot: t,
                    processors: capacity,
                });
                self.stats.capacity_changes += 1;
                self.last_capacity = capacity;
            }
            self.shed_overload(sim, t, capacity);
            self.try_rejoins(sim, t, capacity);
        }
        if self.policy.catches_up() {
            self.drive_catchup(sim, t);
        }
    }

    fn shed_overload<D: DelayModel>(&mut self, sim: &mut MultiSim<D>, t: Slot, capacity: u32) {
        let sched = sim.scheduler();
        if sched.total_weight().to_f64() <= f64::from(capacity) + 1e-9 {
            return;
        }
        let active: Vec<(TaskId, f64)> = (0..sched.task_count() as u32)
            .map(TaskId)
            .filter(|&id| sched.is_active(id))
            .map(|id| (id, sched.weight_of(id).to_f64()))
            .collect();
        let victims = plan_shedding(&active, capacity);
        if victims.is_empty() {
            return;
        }
        self.stats.shed_events += 1;
        for id in victims {
            let task = self.task_of[id.index()];
            sim.scheduler_mut()
                .leave(id, t)
                .expect("shedding only targets active tasks");
            sim.retire_task(id, t);
            sim.push_event(TraceEvent::Shed {
                slot: t,
                task: id.0,
            });
            self.pending.push(task);
            self.stats.tasks_shed += 1;
        }
    }

    fn try_rejoins<D: DelayModel>(&mut self, sim: &mut MultiSim<D>, t: Slot, capacity: u32) {
        if self.pending.is_empty() || capacity < self.m {
            return; // wait for full capacity before re-admitting load
        }
        let mut still_pending = Vec::new();
        for task in std::mem::take(&mut self.pending) {
            self.stats.rejoin_attempts += 1;
            match sim.scheduler_mut().join(task, t) {
                Ok(new_id) => {
                    sim.register_task(new_id, task);
                    sim.push_event(TraceEvent::Rejoin {
                        slot: t,
                        task: new_id.0,
                        exec: task.exec,
                        period: task.period,
                    });
                    debug_assert_eq!(new_id.index(), self.task_of.len());
                    self.task_of.push(task);
                    self.stats.rejoins += 1;
                }
                // Overload: departed weight not freed yet (safe leave
                // rule) — retry next slot. WrongSlot cannot happen here
                // (rejoins run at the slot boundary, before `tick`).
                Err(JoinError::Overload) => still_pending.push(task),
                Err(JoinError::WrongSlot) => {
                    unreachable!("rejoins run at the scheduler's current slot")
                }
            }
        }
        self.pending = still_pending;
    }

    fn drive_catchup<D: DelayModel>(&mut self, sim: &mut MultiSim<D>, t: Slot) {
        let lag = sim.current_max_app_lag();
        if self.watchdog.observe(t, lag) {
            self.stats.catchup_trips += 1;
            self.draining = true;
            if !self.engaged {
                self.engaged = true;
                sim.scheduler_mut()
                    .set_early_release(EarlyRelease::Unrestricted);
                sim.push_event(TraceEvent::CatchUp { slot: t });
            }
        }
        if self.draining {
            self.stats.catchup_slots += 1;
            if lag <= self.low_water {
                // Backlog drained; re-arm the watchdog for the next fault
                // (ERfair stays on — see module docs).
                self.draining = false;
                self.watchdog.reset();
            }
        }
    }
}

impl<D: DelayModel> RecoveryHook<D> for RecoveryController {
    fn before_slot(&mut self, sim: &mut MultiSim<D>, t: Slot) {
        RecoveryController::before_slot(self, sim, t);
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// Runs `sim` from slot 0 to `horizon` under `ctl` installed as the
/// simulator's [`RecoveryHook`], returning the finalized fault metrics and
/// the controller (with its accumulated [`RecoveryStats`]). The simulator
/// must be freshly constructed (slot 0) and already carry its fault hook.
pub fn run_with_recovery<D: DelayModel>(
    sim: &mut MultiSim<D>,
    ctl: RecoveryController,
    horizon: Slot,
) -> (sched_sim::FaultMetrics, RecoveryController) {
    sim.set_recovery_hook(Box::new(ctl));
    sim.run(horizon);
    let fin = sim.finalize_faults();
    let ctl = *sim
        .take_recovery_hook()
        .expect("the hook installed above is still in place")
        .into_any()
        .downcast::<RecoveryController>()
        .expect("the installed hook is a RecoveryController");
    (fin, ctl)
}
