//! # faults
//!
//! Seeded deterministic fault injection and overload recovery for the
//! Pfair stack — the robustness layer behind the degradation experiments.
//!
//! * [`plan`] — [`FaultPlan`]: a pure `(seed, coordinates) → fault`
//!   function covering WCET overruns, lost/jittered quanta, processor
//!   fail-stop/rejoin, and IS arrival bursts. Implements the simulator's
//!   [`FaultHook`](sched_sim::FaultHook); its burst process doubles as a
//!   scheduler [`DelayModel`](pfair_core::DelayModel) via
//!   [`PlanDelays`].
//! * [`recovery`] — [`RecoveryController`]: per-slot capacity tracking,
//!   weight-ordered load shedding with safe rejoin, and lag-watchdog
//!   ERfair catch-up, composed from `pfair-core`'s
//!   [`plan_shedding`](pfair_core::plan_shedding) and
//!   [`LagWatchdog`](pfair_core::LagWatchdog).
//! * [`edf`] — [`QuantumEdfSim`]: partitioned EDF (first-fit decreasing)
//!   under the *same* fault plan, for PD²-vs-EDF degradation tables.
//! * [`runner`] — [`run_pd2`] / [`run_pd2_traced`] / [`run_edf`]:
//!   one-call degradation runs returning comparable
//!   [`FaultMetrics`](sched_sim::FaultMetrics), every PD² run verified
//!   against its event-adjusted Pfair windows (and, traced, re-verifiable
//!   offline from the captured
//!   [`ScheduleTrace`](sched_sim::ScheduleTrace)). [`run_pd2_slack`]
//!   adds the slack-reservation experiment: spare processors or a weight
//!   margin ([`SlackPlan`]) buy headroom against structural overruns,
//!   and the [`RecoveryProfile`] reports how fast application lag
//!   re-converges once a fault window closes.
//!
//! Determinism contract: every fault decision is a hash of the seed and
//! the decision's coordinates, never of simulation history. Two
//! components holding clones of one plan (the simulator's hook and the
//! recovery controller) therefore agree on every draw, and an
//! all-rates-zero plan is *bit-for-bit* inert — the simulator produces
//! the identical schedule and metrics it would produce with no hook
//! installed (property-tested in `tests/`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod edf;
pub mod plan;
pub mod recovery;
pub mod runner;

pub use edf::{PartitionError, QuantumEdfSim};
pub use plan::{FaultConfig, FaultPlan, PlanDelays};
pub use recovery::{run_with_recovery, RecoveryController, RecoveryPolicy, RecoveryStats};
pub use runner::{
    inflate_declared, run_edf, run_pd2, run_pd2_slack, run_pd2_slack_traced, run_pd2_traced,
    DegradationOutcome, RecoveryProfile, SlackOutcome, SlackPlan,
};
