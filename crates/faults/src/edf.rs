//! Partitioned EDF under the same fault process, for degradation
//! comparisons.
//!
//! [`QuantumEdfSim`] is the paper's partitioned-EDF straw man (Section 1)
//! subjected to the *same* [`FaultPlan`] as the PD² simulator: tasks are
//! placed once by first-fit decreasing-utilization (via the `partition`
//! crate's [`EdfUtilization`] test), then each processor runs quantum-
//! granularity EDF over its own tasks. Fault draws are keyed identically —
//! overruns and bursts by `(task, job)`, lost quanta by `(slot,
//! processor)`, fail-stop events by the event counter — so both schedulers
//! face the same adversary; only their reactions differ. A fail-stopped
//! processor takes *all* of its partition's tasks down with it for the
//! duration, which is precisely the rigidity the comparison is meant to
//! expose (a global Pfair scheduler just loses one quantum's worth of
//! capacity).
//!
//! Metrics are reported as [`sched_sim::FaultMetrics`] with the same
//! finalization semantics (`jobs_due` counts deadlines up to the horizon),
//! so rows from both simulators land in one table.

use partition::{partition, EdfUtilization, Heuristic, SortOrder};
use pfair_model::{Slot, TaskId, TaskSet};
use sched_sim::{FaultHook, FaultMetrics, SlotFaults};

use crate::plan::FaultPlan;

/// The task set does not first-fit onto `m` processors — the Dhall-style
/// admission failure partitioned schemes hit before any fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionError {
    /// Processors that were available.
    pub processors: u32,
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "task set does not first-fit onto {} processors under the EDF utilization test",
            self.processors
        )
    }
}

impl std::error::Error for PartitionError {}

/// Per-task job-progress state (mirrors the PD² simulator's application
/// layer field-for-field, so the two report comparable numbers).
#[derive(Debug, Clone)]
struct EdfTask {
    exec: u64,
    period: u64,
    weight: f64,
    job: u64,
    done: u64,
    needed: u64,
    overrun_applied: bool,
    useful_total: u64,
    arrival: Slot,
}

/// Quantum-granularity partitioned EDF driven by a [`FaultPlan`].
#[derive(Debug)]
pub struct QuantumEdfSim {
    tasks: Vec<EdfTask>,
    /// Tasks of each processor (first-fit groups).
    groups: Vec<Vec<usize>>,
    m: u32,
    plan: FaultPlan,
    metrics: FaultMetrics,
    now: Slot,
    /// Scratch: the plan's directives for the current slot.
    scratch: SlotFaults,
}

impl QuantumEdfSim {
    /// Partitions `tasks` onto `m` processors (first-fit, decreasing
    /// utilization) and prepares the simulator. Fails if the set does not
    /// fit — callers should report that as an admission loss rather than
    /// a crash.
    pub fn new(tasks: &TaskSet, m: u32, plan: FaultPlan) -> Result<Self, PartitionError> {
        let pairs: Vec<(u64, u64)> = tasks.iter().map(|(_, t)| (t.exec, t.period)).collect();
        let acc = EdfUtilization::new(&pairs);
        let result = partition(
            pairs.len(),
            &acc,
            Heuristic::FirstFit,
            SortOrder::DecreasingUtilization,
            m,
            |i| {
                let (e, p) = pairs[i];
                (e as f64 / p as f64, p)
            },
        )
        .ok_or(PartitionError { processors: m })?;
        let mut groups = vec![Vec::new(); m as usize];
        for (task, &proc) in result.assignment.iter().enumerate() {
            groups[proc as usize].push(task);
        }
        let state = tasks
            .iter()
            .map(|(id, t)| EdfTask {
                exec: t.exec,
                period: t.period,
                weight: t.exec as f64 / t.period as f64,
                job: 0,
                done: 0,
                needed: t.exec,
                overrun_applied: false,
                useful_total: 0,
                arrival: plan.cumulative_delay(id, 0),
            })
            .collect();
        Ok(QuantumEdfSim {
            tasks: state,
            groups,
            m,
            plan,
            metrics: FaultMetrics::default(),
            now: 0,
            scratch: SlotFaults::default(),
        })
    }

    /// The first-fit assignment (processor → task indices).
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// Absolute deadline of `job` of task `i` under the plan's bursts.
    fn deadline(&self, i: usize, job: u64) -> Slot {
        let t = &self.tasks[i];
        (job + 1) * t.period + self.plan.cumulative_delay(TaskId(i as u32), job)
    }

    /// Simulates one slot across all processors.
    pub fn step(&mut self) {
        let t = self.now;
        self.now += 1;
        self.scratch.clear();
        self.plan.slot_faults(t, self.m, &mut self.scratch);
        for p in 0..self.m {
            if self.scratch.down.contains(&p) {
                self.metrics.dead_proc_quanta += 1;
                continue;
            }
            // EDF among this processor's ready tasks (arrived, work left).
            let pick = self.groups[p as usize]
                .iter()
                .copied()
                .filter(|&i| {
                    let st = &self.tasks[i];
                    st.arrival <= t && st.done < st.needed
                })
                .min_by_key(|&i| (self.deadline(i, self.tasks[i].job), i));
            let Some(i) = pick else {
                continue;
            };
            if self.scratch.wasted.contains(&p) {
                self.metrics.wasted_quanta += 1;
                continue;
            }
            self.advance(i, t);
        }
        // Per-slot maximum application lag, as in the PD² simulator.
        let mut max_lag: f64 = 0.0;
        for st in &self.tasks {
            let lag = st.weight * (t + 1) as f64 - st.useful_total as f64;
            max_lag = max_lag.max(lag);
        }
        self.metrics.max_app_lag = self.metrics.max_app_lag.max(max_lag);
    }

    /// One useful quantum for task `i` in slot `t`.
    fn advance(&mut self, i: usize, t: Slot) {
        let id = TaskId(i as u32);
        let (job, hit_exec) = {
            let st = &mut self.tasks[i];
            st.done += 1;
            st.useful_total += 1;
            (st.job, st.done == st.needed && !st.overrun_applied)
        };
        if hit_exec {
            let extra = self.plan.overrun(id, job);
            let st = &mut self.tasks[i];
            st.overrun_applied = true;
            if extra > 0 {
                st.needed += extra;
                self.metrics.overruns += 1;
                self.metrics.overrun_quanta += extra;
            }
        }
        let st = &self.tasks[i];
        if st.done >= st.needed {
            let deadline = self.deadline(i, job);
            self.metrics.jobs_completed += 1;
            if t + 1 > deadline {
                self.metrics.job_misses += 1;
                self.metrics.max_tardiness = self.metrics.max_tardiness.max(t + 1 - deadline);
            }
            let st = &mut self.tasks[i];
            st.job += 1;
            st.done = 0;
            st.needed = st.exec;
            st.overrun_applied = false;
            st.arrival = st.job * st.period + self.plan.cumulative_delay(id, st.job);
        }
    }

    /// Runs `horizon` slots and finalizes (counts every deadline at or
    /// before the horizon toward `jobs_due`, charging unfinished due jobs
    /// as misses — identical to the PD² simulator's finalization).
    pub fn run(&mut self, horizon: Slot) -> FaultMetrics {
        while self.now < horizon {
            self.step();
        }
        for (i, st) in self.tasks.iter().enumerate() {
            let mut due = 0u64;
            let mut j = 0u64;
            loop {
                let d = (j + 1) * st.period + self.plan.cumulative_delay(TaskId(i as u32), j);
                if d > horizon {
                    break;
                }
                due += 1;
                j += 1;
            }
            self.metrics.jobs_due += due;
            self.metrics.job_misses += due.saturating_sub(st.job);
        }
        self.metrics
    }

    /// Metrics so far (not finalized).
    pub fn metrics(&self) -> FaultMetrics {
        self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultConfig;

    #[test]
    fn fault_free_full_utilization_meets_every_deadline() {
        // Two processors, each packed to utilization 1 by first-fit
        // decreasing: {1/2, 1/2} and {1/3, 1/3, 1/3}.
        let tasks = TaskSet::from_pairs([(1u64, 2u64), (1, 2), (1, 3), (1, 3), (1, 3)]).unwrap();
        let plan = FaultPlan::new(FaultConfig::none(0));
        let mut sim = QuantumEdfSim::new(&tasks, 2, plan).unwrap();
        let fin = sim.run(60);
        assert_eq!(fin.job_misses, 0, "{fin:?}");
        assert_eq!(fin.jobs_due, 30 + 30 + 20 + 20 + 20);
        assert!(fin.jobs_completed >= fin.jobs_due);
        assert!(fin.max_app_lag <= 1.0 + 1e-9);
    }

    #[test]
    fn overloaded_set_is_rejected_at_admission() {
        let tasks = TaskSet::from_pairs([(2u64, 3u64), (2, 3), (2, 3)]).unwrap();
        let err = QuantumEdfSim::new(&tasks, 2, FaultPlan::new(FaultConfig::none(0))).unwrap_err();
        assert_eq!(err.processors, 2);
    }

    #[test]
    fn failstop_starves_the_dead_partition() {
        let tasks = TaskSet::from_pairs([(1u64, 2u64), (1, 2)]).unwrap();
        let cfg = FaultConfig {
            fail_every: 4,
            fail_duration: 4, // one processor permanently down from slot 4
            max_down: 1,
            ..FaultConfig::none(5)
        };
        let mut sim = QuantumEdfSim::new(&tasks, 2, FaultPlan::new(cfg)).unwrap();
        let fin = sim.run(40);
        // The victim partition misses roughly every job after slot 4; the
        // survivor is untouched.
        assert!(fin.job_misses >= 10, "{fin:?}");
        assert!(fin.dead_proc_quanta >= 30, "{fin:?}");
        assert!(
            fin.jobs_completed >= 18,
            "survivor keeps meeting deadlines: {fin:?}"
        );
    }

    #[test]
    fn same_plan_draws_match_pd2_hook_draws() {
        // The EDF sim must see the identical adversary: spot-check that
        // its internal plan clone agrees with a fresh hook on overruns.
        let cfg = FaultConfig {
            overrun_rate: 0.5,
            overrun_max: 3,
            ..FaultConfig::none(21)
        };
        let mut a = FaultPlan::new(cfg);
        let mut b = FaultPlan::new(cfg);
        let mut sf = SlotFaults::default();
        a.slot_faults(0, 2, &mut sf);
        b.slot_faults(0, 2, &mut sf);
        for task in 0..3u32 {
            for job in 0..10 {
                assert_eq!(a.overrun(TaskId(task), job), b.overrun(TaskId(task), job));
            }
        }
    }
}
