//! Cross-crate robustness properties: the zero-fault plan is bit-for-bit
//! inert, and processor fail + rejoin leaves application lag bounded.

use faults::{run_with_recovery, FaultConfig, FaultPlan, RecoveryController, RecoveryPolicy};
use pfair_core::SchedConfig;
use pfair_model::TaskSet;
use proptest::prelude::*;
use sched_sim::MultiSim;

fn ts(pairs: &[(u64, u64)]) -> TaskSet {
    TaskSet::from_pairs(pairs.iter().copied()).unwrap()
}

proptest! {
    /// An all-rates-zero [`FaultPlan`] must reproduce the fault-free run
    /// *exactly*: identical schedule, identical dispatch metrics, zero
    /// fault counters — over arbitrary feasible task sets and seeds.
    #[test]
    fn prop_empty_plan_is_bit_for_bit_inert(
        raw in prop::collection::vec((1u64..8, 2u64..14), 2..7),
        seed in 0u64..u64::MAX,
        m_extra in 0u32..2,
    ) {
        let pairs: Vec<(u64, u64)> = raw.iter().map(|&(e, p)| (e.min(p), p)).collect();
        let set = ts(&pairs);
        let m = set.min_processors() + m_extra;
        let horizon = (2 * set.hyperperiod()).min(2_000);

        let mut bare = MultiSim::new(&set, SchedConfig::pd2(m));
        bare.record_schedule();
        let bare_metrics = bare.run(horizon);

        let mut hooked = MultiSim::new(&set, SchedConfig::pd2(m));
        hooked.record_schedule();
        hooked.set_fault_hook(Box::new(FaultPlan::new(FaultConfig::none(seed))));
        let hooked_metrics = hooked.run(horizon);

        prop_assert_eq!(bare_metrics, hooked_metrics);
        prop_assert_eq!(bare.schedule().unwrap(), hooked.schedule().unwrap());
        let fin = hooked.finalize_faults();
        prop_assert_eq!(fin.wasted_quanta, 0);
        prop_assert_eq!(fin.dropped_quanta, 0);
        prop_assert_eq!(fin.dead_proc_quanta, 0);
        prop_assert_eq!(fin.overruns, 0);
        // Every due job completes, and app lag obeys the Pfair bound.
        prop_assert_eq!(fin.job_misses, 0);
        prop_assert!(fin.jobs_completed >= fin.jobs_due);
        prop_assert!(fin.max_app_lag <= 1.0 + 1e-9);
    }
}

/// A processor outage under the full recovery policy: the heaviest task is
/// shed while capacity is reduced, re-admitted when the processor rejoins,
/// and the system re-converges — bounded lag at the end, no job misses
/// for any protected task (nor for the shed task's completed jobs).
#[test]
fn fail_and_rejoin_leaves_lag_bounded() {
    // Σwt = 1/2 + 1/3 + 1/4 ≈ 1.083 on 2 processors; one processor is
    // down over slots 20..30, so capacity 1 forces shedding the 1/2 task.
    let set = ts(&[(1, 2), (1, 3), (1, 4)]);
    let cfg = FaultConfig {
        fail_every: 20,
        fail_duration: 10,
        max_down: 1,
        window_end: 35, // exactly one fail-stop event
        ..FaultConfig::none(13)
    };
    let plan = FaultPlan::new(cfg);
    let mut sim = MultiSim::new(&set, SchedConfig::pd2(2));
    sim.set_fault_hook(Box::new(plan.clone()));
    let ctl = RecoveryController::new(plan, &set, 2, RecoveryPolicy::Full);
    let (fin, ctl) = run_with_recovery(&mut sim, ctl, 200);
    let stats = ctl.stats();

    assert_eq!(fin.dead_proc_quanta, 10, "{fin:?}");
    assert!(stats.tasks_shed >= 1, "{stats:?}");
    assert_eq!(stats.rejoins, stats.tasks_shed, "{stats:?}");
    assert_eq!(ctl.pending_rejoins(), 0);
    // Capacity tracking means the scheduler never over-selects: nothing
    // is dropped on the dead processor's account.
    assert_eq!(fin.dropped_quanta, 0, "{fin:?}");
    // Every job that came due — before the outage, during it (survivors),
    // and after rejoin — completed on time.
    assert_eq!(fin.job_misses, 0, "{fin:?}");
    assert!(fin.jobs_due > 0);
    // Lag re-converges after recovery: the final slot's maximum
    // application lag is back inside the fault-free Pfair bound.
    assert!(
        sim.current_max_app_lag() <= 1.0 + 1e-9,
        "lag did not re-converge: {}",
        sim.current_max_app_lag()
    );
}

/// Lag re-convergence under transient quantum loss with ERfair catch-up:
/// heavy jitter inside a window drives lag up; once the window closes the
/// watchdog's catch-up brings the system back under the bound.
#[test]
fn catchup_reconverges_after_loss_window() {
    let set = ts(&[(1, 2), (2, 5), (1, 3)]);
    let cfg = FaultConfig {
        loss_rate: 0.8,
        window_start: 10,
        window_end: 40,
        ..FaultConfig::none(99)
    };
    let plan = FaultPlan::new(cfg);
    let mut sim = MultiSim::new(&set, SchedConfig::pd2(2));
    sim.set_fault_hook(Box::new(plan.clone()));
    let ctl =
        RecoveryController::new(plan, &set, 2, RecoveryPolicy::CatchUp).with_watchdog(1.5, 2, 1.0);
    let (fin, ctl) = run_with_recovery(&mut sim, ctl, 400);
    let stats = ctl.stats();

    assert!(fin.wasted_quanta > 0, "{fin:?}");
    assert!(fin.max_app_lag > 1.5, "the loss window must hurt: {fin:?}");
    assert!(stats.catchup_trips >= 1, "{stats:?}");
    assert!(!ctl.catching_up(), "catch-up must have disengaged");
    assert!(
        sim.current_max_app_lag() <= 1.0 + 1e-9,
        "lag did not re-converge: {}",
        sim.current_max_app_lag()
    );
}
