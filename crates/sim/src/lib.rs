//! # sched-sim
//!
//! Discrete-time multiprocessor scheduling simulation for the Pfair stack:
//!
//! * [`engine`] — [`engine::MultiSim`] drives a
//!   [`PfairScheduler`](pfair_core::PfairScheduler) and *dispatches* the
//!   chosen tasks onto `M` concrete processors with affinity (a task
//!   scheduled in consecutive quanta keeps its processor, the assumption
//!   behind the paper's `min(E−1, P−E)` preemption bound), counting
//!   preemptions, migrations, and context switches.
//! * [`verify`] — full-schedule validation: per-slot processor limits,
//!   no intra-slot parallelism, exact lag bounds (Equation (1)), and
//!   per-subtask window containment.
//! * [`global_edf`] — job-level global EDF on `M` processors, exhibiting
//!   the Dhall effect \[13\] that motivates Pfair scheduling (Section 1).
//! * [`exact_gedf`] — the exact (Goossens–Yomsi) global-EDF
//!   schedulability test over one hyperperiod, plus the sufficient
//!   Goossens–Funk–Baruah utilization bound, for the scheduler
//!   tournament's acceptance columns.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod exact_gedf;
pub mod global_edf;
pub mod partitioned;
pub mod render;
pub mod trace;
pub mod verify;
pub mod wrr;

pub use engine::{FaultHook, FaultMetrics, MultiSim, RecoveryHook, RunMetrics, SlotFaults};
pub use exact_gedf::{
    exact_gedf_schedulable, gedf_utilization_bound_schedulable, hyperperiod,
    try_exact_gedf_schedulable, HyperperiodOverflow,
};
pub use global_edf::GlobalEdfSim;
pub use partitioned::{PartitionedSim, PartitionedStats};
pub use render::{render_schedule, render_task_windows};
pub use trace::{NotRecordingError, ScheduleTrace, TraceEvent};
pub use verify::{
    check_windows, check_windows_with_events, IncrementalWindowCheck, WindowViolation,
};
pub use wrr::{WrrSim, WrrStats};
