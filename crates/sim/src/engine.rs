//! Multiprocessor dispatch engine with affinity-aware processor assignment.
//!
//! [`pfair_core::PfairScheduler`] decides *which* ≤ M tasks execute in each
//! slot; this engine decides *where*, and accounts for the overheads the
//! paper analyzes in Section 4:
//!
//! * A task scheduled in consecutive quanta stays on its processor — "when
//!   a task is scheduled in two consecutive quanta, it can be allowed to
//!   continue executing on the same processor" — so it suffers no
//!   preemption.
//! * A **preemption** is charged when a task with an unfinished job stops
//!   executing at a quantum boundary.
//! * A **migration** is charged when a task resumes on a different
//!   processor than it last used.
//! * A **context switch** is charged whenever a processor starts a quantum
//!   with a different task than it ran in the previous quantum.
//!
//! The engine also validates the paper's per-job preemption bound
//! `min(E − 1, P − E)` in its tests.

use pfair_core::sched::{DelayModel, PfairScheduler};
use pfair_model::{Slot, TaskId, TaskSet};

/// Aggregate metrics from a dispatched run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Slots simulated.
    pub slots: u64,
    /// Total quanta of processor time allocated.
    pub allocated_quanta: u64,
    /// Quanta in which a processor idled.
    pub idle_quanta: u64,
    /// Preemptions: task descheduled with its current job unfinished.
    pub preemptions: u64,
    /// Migrations: task resumed on a different processor.
    pub migrations: u64,
    /// Context switches: processor switched to a different task.
    pub context_switches: u64,
    /// Pfair deadline misses reported by the scheduler.
    pub misses: u64,
}

/// Instruments for the `step` hot path. Mirrors the [`RunMetrics`]
/// accounting so exported snapshots can be cross-checked against the
/// engine's own totals; all probes are no-ops under the default disabled
/// recorder.
struct SimObs {
    steps: obs::Counter,
    dispatch_ns: obs::Timer,
    allocated_quanta: obs::Counter,
    idle_quanta: obs::Counter,
    preemptions: obs::Counter,
    migrations: obs::Counter,
    context_switches: obs::Counter,
}

impl SimObs {
    fn new(rec: &obs::Recorder) -> Self {
        SimObs {
            steps: rec.counter("sim.steps"),
            dispatch_ns: rec.timer("sim.dispatch_ns"),
            allocated_quanta: rec.counter("sim.allocated_quanta"),
            idle_quanta: rec.counter("sim.idle_quanta"),
            preemptions: rec.counter("sim.preemptions"),
            migrations: rec.counter("sim.migrations"),
            context_switches: rec.counter("sim.context_switches"),
        }
    }
}

impl Default for SimObs {
    fn default() -> Self {
        Self::new(&obs::Recorder::disabled())
    }
}

/// Per-task dispatch bookkeeping.
#[derive(Debug, Clone, Copy)]
struct DispatchState {
    /// Processor used in the previous slot, if scheduled there.
    prev_proc: Option<u32>,
    /// Processor used the last time the task ran (for migration counting).
    last_proc: Option<u32>,
    /// Quanta consumed within the current job (`allocations mod exec`).
    in_job: u64,
    /// Per-job execution cost (quanta).
    exec: u64,
    /// Period (quanta) — for synchronous job-release bookkeeping.
    period: u64,
    /// Jobs completed so far.
    completed_jobs: u64,
}

/// Drives a [`PfairScheduler`] and dispatches its decisions onto `M`
/// processors (see module docs).
///
/// # Examples
///
/// ```
/// use pfair_core::sched::SchedConfig;
/// use pfair_model::TaskSet;
/// use sched_sim::MultiSim;
///
/// let tasks = TaskSet::from_pairs([(2u64, 3u64), (2, 3), (2, 3)]).unwrap();
/// let mut sim = MultiSim::new(&tasks, SchedConfig::pd2(2));
/// let metrics = sim.run(300);
/// assert_eq!(metrics.misses, 0);
/// assert_eq!(metrics.idle_quanta, 0); // full utilization
/// ```
pub struct MultiSim<D: DelayModel = pfair_core::NoDelay> {
    sched: PfairScheduler<D>,
    dispatch: Vec<DispatchState>,
    /// Processor → task it ran in the previous slot.
    proc_owner: Vec<Option<TaskId>>,
    metrics: RunMetrics,
    obs: SimObs,
    /// Optional full schedule recording (slot → tasks), for verification.
    record: Option<Vec<Vec<TaskId>>>,
    /// Job response times (completion − synchronous release), in slots.
    /// Meaningful for synchronous periodic task sets without joins/leaves.
    responses: stats::Welford,
    /// Raw response samples, kept only when enabled (percentiles need the
    /// full distribution).
    response_samples: Option<stats::Samples>,
    now: Slot,
    /// Scratch buffers reused across slots.
    chosen: Vec<TaskId>,
    assignment: Vec<Option<TaskId>>,
}

impl MultiSim<pfair_core::NoDelay> {
    /// Creates an engine over a synchronous periodic task set.
    pub fn new(tasks: &TaskSet, cfg: pfair_core::SchedConfig) -> Self {
        Self::with_scheduler(tasks, PfairScheduler::new(tasks, cfg))
    }
}

impl<D: DelayModel> MultiSim<D> {
    /// Wraps an existing scheduler (e.g. one with an IS delay model).
    pub fn with_scheduler(tasks: &TaskSet, sched: PfairScheduler<D>) -> Self {
        let m = sched.processors() as usize;
        let dispatch = tasks
            .iter()
            .map(|(_, t)| DispatchState {
                prev_proc: None,
                last_proc: None,
                in_job: 0,
                exec: t.exec,
                period: t.period,
                completed_jobs: 0,
            })
            .collect();
        MultiSim {
            sched,
            dispatch,
            proc_owner: vec![None; m],
            metrics: RunMetrics::default(),
            obs: SimObs::default(),
            record: None,
            responses: stats::Welford::new(),
            response_samples: None,
            now: 0,
            chosen: Vec::with_capacity(m),
            assignment: vec![None; m],
        }
    }

    /// Routes dispatch instrumentation (step count, assignment wall time,
    /// and per-slot allocation/preemption/migration/context-switch deltas)
    /// to `rec`, and the underlying scheduler's tick instrumentation with
    /// it. The default recorder is disabled, making every probe a no-op.
    pub fn set_recorder(&mut self, rec: &obs::Recorder) -> &mut Self {
        self.obs = SimObs::new(rec);
        self.sched.set_recorder(rec);
        self
    }

    /// Enables full schedule recording (needed by [`crate::verify`]).
    pub fn record_schedule(&mut self) -> &mut Self {
        if self.record.is_none() {
            self.record = Some(Vec::new());
        }
        self
    }

    /// The recorded schedule, if recording was enabled.
    pub fn schedule(&self) -> Option<&[Vec<TaskId>]> {
        self.record.as_deref()
    }

    /// Job response-time statistics (slots between a job's synchronous
    /// release and its completion). Valid for synchronous periodic sets.
    pub fn response_times(&self) -> stats::Welford {
        self.responses
    }

    /// Enables raw response-sample collection (for percentiles).
    pub fn record_responses(&mut self) -> &mut Self {
        if self.response_samples.is_none() {
            self.response_samples = Some(stats::Samples::new());
        }
        self
    }

    /// The collected response samples, if recording was enabled.
    pub fn response_samples(&mut self) -> Option<&mut stats::Samples> {
        self.response_samples.as_mut()
    }

    /// Metrics so far.
    pub fn metrics(&self) -> RunMetrics {
        let mut m = self.metrics;
        m.misses = self.sched.misses().len() as u64;
        m
    }

    /// Immutable access to the underlying scheduler.
    pub fn scheduler(&self) -> &PfairScheduler<D> {
        &self.sched
    }

    /// Mutable access (for joins/leaves between slots).
    pub fn scheduler_mut(&mut self) -> &mut PfairScheduler<D> {
        &mut self.sched
    }

    /// Simulates one slot; returns the processor → task assignment.
    pub fn step(&mut self) -> &[Option<TaskId>] {
        let t = self.now;
        self.now += 1;
        let m = self.proc_owner.len();

        self.chosen.clear();
        self.sched.tick(t, &mut self.chosen);
        self.obs.steps.incr();

        // Dispatch with affinity: tasks that ran in slot t−1 and are chosen
        // again keep their processor.
        let dispatch_span = self.obs.dispatch_ns.start();
        self.assignment.iter_mut().for_each(|a| *a = None);
        let mut pending: Vec<TaskId> = Vec::with_capacity(self.chosen.len());
        for &id in &self.chosen {
            match self.dispatch[id.index()].prev_proc {
                Some(p) if self.assignment[p as usize].is_none() => {
                    self.assignment[p as usize] = Some(id);
                }
                _ => pending.push(id),
            }
        }
        // Remaining tasks take free processors, preferring their last-used
        // processor to avoid gratuitous migrations after gaps.
        for &id in &pending {
            let prefer = self.dispatch[id.index()].last_proc;
            let slot = match prefer {
                Some(p) if self.assignment[p as usize].is_none() => p as usize,
                _ => self
                    .assignment
                    .iter()
                    .position(Option::is_none)
                    .expect("scheduler never over-commits"),
            };
            self.assignment[slot] = Some(id);
        }
        drop(dispatch_span);

        // Accounting.
        let mut scheduled_mask = vec![false; self.dispatch.len()];
        for (proc, slot) in self.assignment.iter().enumerate() {
            match slot {
                None => {
                    self.metrics.idle_quanta += 1;
                    self.obs.idle_quanta.incr();
                }
                Some(id) => {
                    scheduled_mask[id.index()] = true;
                    let st = &mut self.dispatch[id.index()];
                    if let Some(last) = st.last_proc {
                        if last != proc as u32 {
                            self.metrics.migrations += 1;
                            self.obs.migrations.incr();
                        }
                    }
                    if self.proc_owner[proc] != Some(*id) {
                        self.metrics.context_switches += 1;
                        self.obs.context_switches.incr();
                    }
                    st.last_proc = Some(proc as u32);
                    st.in_job += 1;
                    if st.in_job == st.exec {
                        st.in_job = 0; // job boundary
                        let release = st.completed_jobs * st.period;
                        st.completed_jobs += 1;
                        let resp = (t + 1).saturating_sub(release) as f64;
                        self.responses.push(resp);
                        if let Some(samples) = &mut self.response_samples {
                            samples.push(resp);
                        }
                    }
                    self.metrics.allocated_quanta += 1;
                    self.obs.allocated_quanta.incr();
                }
            }
        }
        // Preemptions: ran in t−1, not running now, job unfinished.
        for (i, st) in self.dispatch.iter_mut().enumerate() {
            let ran_prev = st.prev_proc.is_some();
            let runs_now = scheduled_mask[i];
            if ran_prev && !runs_now && st.in_job != 0 {
                self.metrics.preemptions += 1;
                self.obs.preemptions.incr();
            }
            st.prev_proc = None;
        }
        for (proc, slot) in self.assignment.iter().enumerate() {
            if let Some(id) = slot {
                self.dispatch[id.index()].prev_proc = Some(proc as u32);
            }
            self.proc_owner[proc] = *slot;
        }

        self.metrics.slots += 1;
        debug_assert!(self.assignment.iter().flatten().count() == self.chosen.len());
        debug_assert!(self.chosen.len() <= m);

        if let Some(rec) = &mut self.record {
            rec.push(self.chosen.clone());
        }
        &self.assignment
    }

    /// Runs `horizon` slots and returns the metrics.
    pub fn run(&mut self, horizon: Slot) -> RunMetrics {
        while self.now < horizon {
            self.step();
        }
        self.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::lag::check_pfair;
    use pfair_core::sched::SchedConfig;
    use pfair_core::Policy;

    fn ts(pairs: &[(u64, u64)]) -> TaskSet {
        TaskSet::from_pairs(pairs.iter().copied()).unwrap()
    }

    #[test]
    fn full_utilization_run_is_valid_pfair() {
        let set = ts(&[(2, 3), (2, 3), (2, 3)]);
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(2));
        sim.record_schedule();
        let m = sim.run(60);
        assert_eq!(m.misses, 0);
        assert_eq!(m.idle_quanta, 0);
        assert_eq!(m.allocated_quanta, 120);
        let schedule = sim.schedule().unwrap();
        assert_eq!(check_pfair(&set, schedule, 2), Ok(()));
    }

    #[test]
    fn consecutive_quanta_keep_processor() {
        // A single weight-1 task must stay on one processor forever: zero
        // migrations, one initial context switch.
        let set = ts(&[(1, 1)]);
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(2));
        let m = sim.run(100);
        assert_eq!(m.migrations, 0);
        assert_eq!(m.context_switches, 1);
        assert_eq!(m.preemptions, 0);
    }

    /// The paper's per-job preemption bound: a job spanning E quanta of a
    /// task with period P suffers at most min(E−1, P−E) preemptions.
    #[test]
    fn per_job_preemption_bound() {
        // Task (5, 6): only one idle slot per period ⇒ ≤ 1 preemption/job.
        let set = ts(&[(5, 6), (2, 3), (1, 3), (1, 6), (1, 6), (1, 2), (1, 2)]);
        // Σ = 5/6+2/3+1/3+1/6+1/6+1/2+1/2 = 19/6 ≈ 3.17 → M = 4.
        let m_procs = set.min_processors();
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(m_procs));
        let horizon = 20 * set.hyperperiod();
        let metrics = sim.run(horizon);
        assert_eq!(metrics.misses, 0);
        // Aggregate check across all tasks: preemptions ≤ Σ_jobs min(E−1, P−E).
        let mut bound = 0u64;
        for (_, t) in set.iter() {
            let jobs = horizon / t.period;
            bound += jobs * (t.exec - 1).min(t.period - t.exec);
        }
        assert!(
            metrics.preemptions <= bound,
            "preemptions {} > bound {bound}",
            metrics.preemptions
        );
    }

    #[test]
    fn migrations_only_happen_between_processors() {
        // On one processor nothing can migrate.
        let set = ts(&[(1, 2), (1, 4), (1, 8)]);
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(1));
        let m = sim.run(200);
        assert_eq!(m.migrations, 0);
        assert_eq!(m.misses, 0);
    }

    #[test]
    fn metrics_accounting_is_consistent() {
        let set = ts(&[(8, 11), (1, 3), (2, 5), (5, 7)]);
        let m_procs = set.min_processors();
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(m_procs));
        let horizon = 2 * set.hyperperiod();
        let m = sim.run(horizon);
        assert_eq!(m.slots, horizon);
        assert_eq!(m.allocated_quanta + m.idle_quanta, horizon * m_procs as u64);
        // Context switches ≥ migrations (every migration lands on a
        // processor that was running something else or idle).
        assert!(m.context_switches >= m.migrations);
        assert_eq!(m.misses, 0);
    }

    #[test]
    fn epdf_vs_pd2_metrics_differ_only_in_dispatch() {
        let set = ts(&[(1, 2), (1, 3), (1, 5), (2, 7)]);
        for pol in Policy::ALL {
            let mut sim = MultiSim::new(&set, SchedConfig::pd2(2).with_policy(pol));
            let m = sim.run(2 * set.hyperperiod());
            assert_eq!(m.misses, 0, "{}", pol.name());
            // Work conservation of allocation volume: every policy grants
            // each task its exact proportional share over the hyperperiod.
            assert_eq!(
                m.allocated_quanta,
                2 * set
                    .iter()
                    .map(|(_, t)| set.hyperperiod() / t.period * t.exec)
                    .sum::<u64>()
            );
        }
    }

    #[test]
    fn recorded_schedule_matches_metrics() {
        let set = ts(&[(2, 3), (1, 2)]);
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(2));
        sim.record_schedule();
        let m = sim.run(12);
        let sched = sim.schedule().unwrap();
        let total: usize = sched.iter().map(Vec::len).sum();
        assert_eq!(total as u64, m.allocated_quanta);
    }
}
