//! Multiprocessor dispatch engine with affinity-aware processor assignment.
//!
//! [`pfair_core::PfairScheduler`] decides *which* ≤ M tasks execute in each
//! slot; this engine decides *where*, and accounts for the overheads the
//! paper analyzes in Section 4:
//!
//! * A task scheduled in consecutive quanta stays on its processor — "when
//!   a task is scheduled in two consecutive quanta, it can be allowed to
//!   continue executing on the same processor" — so it suffers no
//!   preemption.
//! * A **preemption** is charged when a task with an unfinished job stops
//!   executing at a quantum boundary.
//! * A **migration** is charged when a task resumes on a different
//!   processor than it last used.
//! * A **context switch** is charged whenever a processor starts a quantum
//!   with a different task than it ran in the previous quantum.
//!
//! The engine also validates the paper's per-job preemption bound
//! `min(E − 1, P − E)` in its tests.
//!
//! # Fault injection
//!
//! A [`FaultHook`] installed via [`MultiSim::set_fault_hook`] perturbs the
//! *execution* of the schedule without ever touching the scheduler's
//! bookkeeping: the scheduler still hands out idealized quanta, and the
//! hook decides which of them produce useful work. Per slot it can mark
//! processors fail-stopped (their quanta are lost and the lowest-priority
//! scheduled tasks are dropped) or mark a dispatched quantum wasted
//! (quantum jitter / a lost tick); per job it can demand extra quanta
//! beyond the declared WCET (an overrun). The engine then tracks
//! *application-level* job progress — a job completes only after `exec`
//! (plus any overrun) **useful** quanta — and reports job deadline misses,
//! observed application lag, and fault counters in a separate
//! [`FaultMetrics`] struct. With no hook (or a hook that injects nothing)
//! the engine's behaviour and [`RunMetrics`] are bit-for-bit identical to
//! a plain run.
//!
//! # Recovery
//!
//! A [`RecoveryHook`] installed via [`MultiSim::set_recovery_hook`] is the
//! counterpart on the *response* side: [`MultiSim::step`] invokes it at
//! the top of every slot, before the scheduler tick and dispatch, with
//! full mutable access to the simulator — the slot boundary is exactly
//! where `join`/`leave`/`set_processors`/`set_early_release` are legal.
//! Hoisting the hook into the engine (rather than having an experiment
//! loop drive it externally) means *every* consumer of the engine — and
//! every recorded trace — sees recovery actions.
//!
//! # Event recording
//!
//! With [`MultiSim::record_events`] enabled, the engine appends a
//! [`TraceEvent`] for each injected fault (processor down, wasted quantum,
//! WCET overrun), and hooks append their own (shed, rejoin, catch-up,
//! capacity) via [`MultiSim::push_event`].
//! [`ScheduleTrace::capture`](crate::trace::ScheduleTrace::capture)
//! archives the stream next to the schedule so the run can be re-verified
//! offline.

use crate::trace::TraceEvent;
use pfair_core::sched::{DelayModel, PfairScheduler};
use pfair_model::{Slot, Task, TaskId, TaskSet};

/// Aggregate metrics from a dispatched run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Slots simulated.
    pub slots: u64,
    /// Total quanta of processor time allocated.
    pub allocated_quanta: u64,
    /// Quanta in which a processor idled.
    pub idle_quanta: u64,
    /// Preemptions: task descheduled with its current job unfinished.
    pub preemptions: u64,
    /// Migrations: task resumed on a different processor.
    pub migrations: u64,
    /// Context switches: processor switched to a different task.
    pub context_switches: u64,
    /// Pfair deadline misses reported by the scheduler.
    pub misses: u64,
}

/// Faults applied to one slot, filled in by a [`FaultHook`].
#[derive(Debug, Clone, Default)]
pub struct SlotFaults {
    /// Processors that are fail-stopped this slot: they execute nothing,
    /// and scheduled tasks that no longer fit on the surviving processors
    /// are dropped (lowest priority first).
    pub down: Vec<u32>,
    /// Processors whose quantum is dispatched but produces no useful work
    /// (quantum jitter / a lost tick). Ignored for processors that are
    /// also down.
    pub wasted: Vec<u32>,
}

impl SlotFaults {
    /// Resets both lists (called by the engine before each slot).
    pub fn clear(&mut self) {
        self.down.clear();
        self.wasted.clear();
    }

    /// Whether this slot is fault-free.
    pub fn is_clean(&self) -> bool {
        self.down.is_empty() && self.wasted.is_empty()
    }
}

/// Injects faults into a [`MultiSim`] run (see the module docs).
///
/// Implementations must be deterministic functions of their own state and
/// the query arguments: the recovery layer holds an independent clone of
/// the plan and relies on both copies agreeing slot by slot.
pub trait FaultHook {
    /// Fills `out` with the faults for slot `t` on an `m`-processor
    /// system. `out` arrives cleared.
    fn slot_faults(&mut self, t: Slot, m: u32, out: &mut SlotFaults);

    /// Extra quanta of demand for `job` (0-based) of `task` beyond its
    /// declared WCET. Queried exactly once per job, when its declared work
    /// completes. The default never overruns.
    fn overrun(&mut self, task: TaskId, job: u64) -> u64 {
        let _ = (task, job);
        0
    }

    /// Total release delay (slots) accumulated through `job` of `task` —
    /// the cumulative IS offset from arrival bursts, which shifts the
    /// job's application deadline. The default is the synchronous periodic
    /// process (no delay).
    fn release_delay(&mut self, task: TaskId, job: u64) -> u64 {
        let _ = (task, job);
        0
    }
}

/// Responds to faults from *inside* the simulation loop (see the module
/// docs): [`MultiSim::step`] calls [`before_slot`](Self::before_slot) at
/// the top of every slot, before the scheduler tick, handing the hook full
/// mutable access to the simulator. Mirrors [`FaultHook`] on the recovery
/// side; `crates/faults`' `RecoveryController` is the canonical
/// implementation.
///
/// The hook is temporarily removed from the simulator while it runs (so it
/// can borrow the simulator mutably); [`MultiSim::has_recovery_hook`]
/// reports `false` during the call.
pub trait RecoveryHook<D: DelayModel> {
    /// Applies the recovery policy at the boundary of slot `t` — the only
    /// point where `join`/`leave`/`set_processors`/`set_early_release` are
    /// legal. Implementations that record their actions should do so via
    /// [`MultiSim::push_event`].
    fn before_slot(&mut self, sim: &mut MultiSim<D>, t: Slot);

    /// Recovers the concrete hook (and whatever statistics it carries)
    /// after a run, via [`MultiSim::take_recovery_hook`] and
    /// [`std::any::Any`] downcasting.
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

/// Fault-layer counters, kept apart from [`RunMetrics`] so the scheduler
/// and dispatch view is untouched by the fault machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultMetrics {
    /// Dispatched quanta that produced no useful work (jitter).
    pub wasted_quanta: u64,
    /// Scheduled quanta dropped because their processors were fail-stopped.
    pub dropped_quanta: u64,
    /// Processor-slots lost to fail-stop (one per down processor per slot).
    pub dead_proc_quanta: u64,
    /// Jobs that demanded quanta beyond their declared WCET.
    pub overruns: u64,
    /// Total extra quanta demanded by overrunning jobs.
    pub overrun_quanta: u64,
    /// Application-level jobs completed.
    pub jobs_completed: u64,
    /// Application-level jobs due by the end of the run (filled in by
    /// [`MultiSim::finalize_faults`]; 0 before that).
    pub jobs_due: u64,
    /// Application-level job deadline misses (late completions, plus —
    /// after [`MultiSim::finalize_faults`] — due jobs that never finished).
    pub job_misses: u64,
    /// Largest observed job tardiness (slots past the deadline).
    pub max_tardiness: u64,
    /// Largest observed application lag: `wt·elapsed − useful_quanta` over
    /// all live tasks and slots. Bounded near 1 in a fault-free run;
    /// grows with injected load.
    pub max_app_lag: f64,
}

impl FaultMetrics {
    /// Deadline-miss ratio over the jobs due in the run (call
    /// [`MultiSim::finalize_faults`] first so `jobs_due` is filled in).
    pub fn miss_ratio(&self) -> f64 {
        if self.jobs_due == 0 {
            0.0
        } else {
            self.job_misses as f64 / self.jobs_due as f64
        }
    }
}

/// Per-task application-level progress under fault injection.
#[derive(Debug, Clone, Copy)]
struct AppTask {
    exec: u64,
    period: u64,
    /// Slot from which this task's jobs are measured (join time).
    origin: Slot,
    /// Jobs completed so far (the current job's 0-based index).
    job: u64,
    /// Useful quanta into the current job.
    done: u64,
    /// Quanta the current job needs (`exec`, plus any overrun).
    needed: u64,
    /// Whether the current job's overrun draw already happened.
    overrun_applied: bool,
    /// Useful quanta over the task's lifetime.
    useful_total: u64,
    /// Task weight as f64, for the application-lag signal.
    weight_f: f64,
    /// Arrival of the current job (`origin + job·period + burst delay`):
    /// quanta granted before it carry no application work, so ERfair
    /// catch-up cannot run jobs that have not arrived.
    arrival: Slot,
    /// Slot at which the task was retired (shed), if any; retired tasks
    /// stop accruing lag and due jobs.
    retired_at: Option<Slot>,
}

impl AppTask {
    fn new(task: &Task, weight_f: f64, origin: Slot) -> Self {
        AppTask {
            exec: task.exec,
            period: task.period,
            origin,
            job: 0,
            done: 0,
            needed: task.exec,
            overrun_applied: false,
            useful_total: 0,
            weight_f,
            arrival: origin,
            retired_at: None,
        }
    }
}

/// Instruments for the `step` hot path. Mirrors the [`RunMetrics`]
/// accounting so exported snapshots can be cross-checked against the
/// engine's own totals; all probes are no-ops under the default disabled
/// recorder.
struct SimObs {
    steps: obs::Counter,
    dispatch_ns: obs::Timer,
    allocated_quanta: obs::Counter,
    idle_quanta: obs::Counter,
    preemptions: obs::Counter,
    migrations: obs::Counter,
    context_switches: obs::Counter,
    fault_wasted: obs::Counter,
    fault_dropped: obs::Counter,
    fault_dead: obs::Counter,
    fault_overruns: obs::Counter,
    fault_job_misses: obs::Counter,
}

impl SimObs {
    fn new(rec: &obs::Recorder) -> Self {
        SimObs {
            steps: rec.counter("sim.steps"),
            dispatch_ns: rec.timer("sim.dispatch_ns"),
            allocated_quanta: rec.counter("sim.allocated_quanta"),
            idle_quanta: rec.counter("sim.idle_quanta"),
            preemptions: rec.counter("sim.preemptions"),
            migrations: rec.counter("sim.migrations"),
            context_switches: rec.counter("sim.context_switches"),
            fault_wasted: rec.counter("sim.fault.wasted_quanta"),
            fault_dropped: rec.counter("sim.fault.dropped_quanta"),
            fault_dead: rec.counter("sim.fault.dead_proc_quanta"),
            fault_overruns: rec.counter("sim.fault.overruns"),
            fault_job_misses: rec.counter("sim.fault.job_misses"),
        }
    }
}

impl Default for SimObs {
    fn default() -> Self {
        Self::new(&obs::Recorder::disabled())
    }
}

/// Fixed-capacity bitset (64-bit words) reused across slots for the
/// dispatch hot path: the free-processor mask and the scheduled-task mask.
/// Replaces the per-slot `vec![false; n]` allocations.
#[derive(Debug, Default)]
struct BitMask {
    words: Vec<u64>,
}

impl BitMask {
    /// Clears the mask and sizes it for `n` bits.
    fn reset(&mut self, n: usize) {
        self.words.clear();
        self.words.resize(n.div_ceil(64), 0);
    }

    /// Resets to exactly the bits `0..n` set (the all-live processor mask).
    fn fill_first(&mut self, n: usize) {
        self.reset(n);
        for w in self.words.iter_mut().take(n / 64) {
            *w = !0;
        }
        let rem = n % 64;
        if rem > 0 {
            self.words[n / 64] = (1u64 << rem) - 1;
        }
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    #[inline]
    fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    #[inline]
    fn is_set(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 != 0
    }

    /// Index of the lowest set bit, if any (one `trailing_zeros` per word).
    #[inline]
    fn first_set(&self) -> Option<usize> {
        for (w_i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(w_i * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }
}

/// Per-task dispatch bookkeeping.
#[derive(Debug, Clone, Copy)]
struct DispatchState {
    /// Processor used in the previous slot, if scheduled there.
    prev_proc: Option<u32>,
    /// Processor used the last time the task ran (for migration counting).
    last_proc: Option<u32>,
    /// Quanta consumed within the current job (`allocations mod exec`).
    in_job: u64,
    /// Per-job execution cost (quanta).
    exec: u64,
    /// Period (quanta) — for synchronous job-release bookkeeping.
    period: u64,
    /// Jobs completed so far.
    completed_jobs: u64,
}

/// Drives a [`PfairScheduler`] and dispatches its decisions onto `M`
/// processors (see module docs).
///
/// # Examples
///
/// ```
/// use pfair_core::sched::SchedConfig;
/// use pfair_model::TaskSet;
/// use sched_sim::MultiSim;
///
/// let tasks = TaskSet::from_pairs([(2u64, 3u64), (2, 3), (2, 3)]).unwrap();
/// let mut sim = MultiSim::new(&tasks, SchedConfig::pd2(2));
/// let metrics = sim.run(300);
/// assert_eq!(metrics.misses, 0);
/// assert_eq!(metrics.idle_quanta, 0); // full utilization
/// ```
pub struct MultiSim<D: DelayModel = pfair_core::NoDelay> {
    sched: PfairScheduler<D>,
    dispatch: Vec<DispatchState>,
    /// Processor → task it ran in the previous slot.
    proc_owner: Vec<Option<TaskId>>,
    metrics: RunMetrics,
    obs: SimObs,
    /// Optional full schedule recording (slot → tasks), for verification.
    record: Option<Vec<Vec<TaskId>>>,
    /// Job response times (completion − synchronous release), in slots.
    /// Meaningful for synchronous periodic task sets without joins/leaves.
    responses: stats::Welford,
    /// Raw response samples, kept only when enabled (percentiles need the
    /// full distribution).
    response_samples: Option<stats::Samples>,
    now: Slot,
    /// Scratch buffers reused across slots.
    chosen: Vec<TaskId>,
    assignment: Vec<Option<TaskId>>,
    /// Scratch: chosen tasks not yet placed by the affinity pass.
    pending: Vec<TaskId>,
    /// Scratch: live processors still free during dispatch.
    free_procs: BitMask,
    /// Scratch: tasks scheduled this slot (bit per task id).
    sched_bits: BitMask,
    /// Tasks that held a processor in the previous slot — the only
    /// candidates for a preemption charge (replaces the all-task scan).
    prev_ran: Vec<TaskId>,
    /// Fault injection (None = the fault layer is entirely inert).
    hook: Option<Box<dyn FaultHook>>,
    /// Recovery policy hook, run at the top of every slot.
    recovery: Option<Box<dyn RecoveryHook<D>>>,
    /// Recorded fault/recovery events (empty unless enabled).
    events: Vec<TraceEvent>,
    /// Whether [`Self::push_event`] records or drops events.
    events_on: bool,
    /// Scratch: faults of the current slot.
    slot_faults: SlotFaults,
    /// Scratch: per-processor fail-stop flags for the current slot.
    proc_down: Vec<bool>,
    /// Application-level job progress, parallel to `dispatch` (empty while
    /// no hook is installed).
    app: Vec<AppTask>,
    fault_metrics: FaultMetrics,
    /// Maximum application lag observed in the most recent slot.
    last_max_lag: f64,
    faults_finalized: bool,
}

impl MultiSim<pfair_core::NoDelay> {
    /// Creates an engine over a synchronous periodic task set.
    pub fn new(tasks: &TaskSet, cfg: pfair_core::SchedConfig) -> Self {
        Self::with_scheduler(tasks, PfairScheduler::new(tasks, cfg))
    }
}

impl<D: DelayModel> MultiSim<D> {
    /// Wraps an existing scheduler (e.g. one with an IS delay model).
    pub fn with_scheduler(tasks: &TaskSet, sched: PfairScheduler<D>) -> Self {
        let m = sched.processors() as usize;
        let dispatch = tasks
            .iter()
            .map(|(_, t)| DispatchState {
                prev_proc: None,
                last_proc: None,
                in_job: 0,
                exec: t.exec,
                period: t.period,
                completed_jobs: 0,
            })
            .collect();
        MultiSim {
            sched,
            dispatch,
            proc_owner: vec![None; m],
            metrics: RunMetrics::default(),
            obs: SimObs::default(),
            record: None,
            responses: stats::Welford::new(),
            response_samples: None,
            now: 0,
            chosen: Vec::with_capacity(m),
            assignment: vec![None; m],
            pending: Vec::with_capacity(m),
            free_procs: BitMask::default(),
            sched_bits: BitMask::default(),
            prev_ran: Vec::with_capacity(m),
            hook: None,
            recovery: None,
            events: Vec::new(),
            events_on: false,
            slot_faults: SlotFaults::default(),
            proc_down: vec![false; m],
            app: Vec::new(),
            fault_metrics: FaultMetrics::default(),
            last_max_lag: 0.0,
            faults_finalized: false,
        }
    }

    /// Routes dispatch instrumentation (step count, assignment wall time,
    /// and per-slot allocation/preemption/migration/context-switch deltas)
    /// to `rec`, and the underlying scheduler's tick instrumentation with
    /// it. The default recorder is disabled, making every probe a no-op.
    pub fn set_recorder(&mut self, rec: &obs::Recorder) -> &mut Self {
        self.obs = SimObs::new(rec);
        self.sched.set_recorder(rec);
        self
    }

    /// Enables full schedule recording (needed by [`crate::verify`]).
    pub fn record_schedule(&mut self) -> &mut Self {
        if self.record.is_none() {
            self.record = Some(Vec::new());
        }
        self
    }

    /// The recorded schedule, if recording was enabled.
    pub fn schedule(&self) -> Option<&[Vec<TaskId>]> {
        self.record.as_deref()
    }

    /// Job response-time statistics (slots between a job's synchronous
    /// release and its completion). Valid for synchronous periodic sets.
    pub fn response_times(&self) -> stats::Welford {
        self.responses
    }

    /// Enables raw response-sample collection (for percentiles).
    pub fn record_responses(&mut self) -> &mut Self {
        if self.response_samples.is_none() {
            self.response_samples = Some(stats::Samples::new());
        }
        self
    }

    /// The collected response samples, if recording was enabled.
    pub fn response_samples(&mut self) -> Option<&mut stats::Samples> {
        self.response_samples.as_mut()
    }

    /// Metrics so far.
    pub fn metrics(&self) -> RunMetrics {
        let mut m = self.metrics;
        m.misses = self.sched.misses().len() as u64;
        m
    }

    /// Immutable access to the underlying scheduler.
    pub fn scheduler(&self) -> &PfairScheduler<D> {
        &self.sched
    }

    /// Mutable access (for joins/leaves between slots).
    pub fn scheduler_mut(&mut self) -> &mut PfairScheduler<D> {
        &mut self.sched
    }

    /// Installs a fault hook. Call before the first [`Self::step`]: the
    /// application-level job bookkeeping starts at the current slot.
    pub fn set_fault_hook(&mut self, hook: Box<dyn FaultHook>) -> &mut Self {
        self.hook = Some(hook);
        let hook = self.hook.as_mut().expect("just installed");
        self.app = (0..self.dispatch.len())
            .map(|i| {
                let id = TaskId(i as u32);
                let d = &self.dispatch[i];
                let task = Task::new(d.exec, d.period).expect("dispatch state holds valid tasks");
                let mut a = AppTask::new(&task, self.sched.weight_of(id).to_f64(), self.now);
                a.arrival = a.origin + hook.release_delay(id, 0);
                a
            })
            .collect();
        self
    }

    /// Whether a fault hook is installed.
    pub fn has_fault_hook(&self) -> bool {
        self.hook.is_some()
    }

    /// Installs a recovery hook, invoked at the top of every subsequent
    /// [`Self::step`] (see [`RecoveryHook`]). Replaces any previous hook.
    pub fn set_recovery_hook(&mut self, hook: Box<dyn RecoveryHook<D>>) -> &mut Self {
        self.recovery = Some(hook);
        self
    }

    /// Removes and returns the recovery hook, e.g. to read its statistics
    /// back out through [`RecoveryHook::into_any`] after a run.
    pub fn take_recovery_hook(&mut self) -> Option<Box<dyn RecoveryHook<D>>> {
        self.recovery.take()
    }

    /// Whether a recovery hook is installed (`false` while the hook itself
    /// is being invoked).
    pub fn has_recovery_hook(&self) -> bool {
        self.recovery.is_some()
    }

    /// Enables fault/recovery event recording: the engine records injected
    /// faults as they land, and recovery hooks record their actions via
    /// [`Self::push_event`]. Disabled by default (recording allocates).
    pub fn record_events(&mut self) -> &mut Self {
        self.events_on = true;
        self
    }

    /// The events recorded so far, in the order they occurred. Slot-keyed
    /// events are non-decreasing in slot; job-keyed burst events may be
    /// pushed up front by the run harness.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Appends an event to the recording; a no-op unless
    /// [`Self::record_events`] was enabled.
    pub fn push_event(&mut self, ev: TraceEvent) {
        if self.events_on {
            self.events.push(ev);
        }
    }

    /// Registers dispatch (and, with a hook installed, application)
    /// bookkeeping for a task joined through
    /// [`scheduler_mut`](Self::scheduler_mut) — the engine sizes its
    /// per-task state to the initial task set, so every successful
    /// `join()` must be paired with this call before the next `step()`.
    /// Job response-time statistics are not meaningful once tasks join
    /// dynamically (they assume synchronous releases from slot 0).
    pub fn register_task(&mut self, id: TaskId, task: Task) {
        assert_eq!(
            id.index(),
            self.dispatch.len(),
            "register_task must follow the scheduler's id assignment"
        );
        self.dispatch.push(DispatchState {
            prev_proc: None,
            last_proc: None,
            in_job: 0,
            exec: task.exec,
            period: task.period,
            completed_jobs: 0,
        });
        if let Some(hook) = &mut self.hook {
            let mut a = AppTask::new(&task, self.sched.weight_of(id).to_f64(), self.now);
            a.arrival = a.origin + hook.release_delay(id, 0);
            self.app.push(a);
        }
    }

    /// Marks a task as retired (shed by recovery) at slot `t`: it stops
    /// accruing application lag, and only jobs due by `t` count against it
    /// in [`Self::finalize_faults`]. A no-op without a fault hook.
    pub fn retire_task(&mut self, id: TaskId, t: Slot) {
        if let Some(a) = self.app.get_mut(id.index()) {
            if a.retired_at.is_none() {
                a.retired_at = Some(t);
            }
        }
    }

    /// Decouples the *application-level* demand of task `id` from its
    /// declared cost: each of its jobs consumes `actual_exec` useful
    /// quanta (plus any overrun draws) while the scheduler keeps serving
    /// the declared — possibly larger — reservation. The slack-reservation
    /// experiments (`crates/faults`) schedule a margin-inflated task set
    /// and point the app layer back at the true demand with this call.
    ///
    /// The app-lag signal is rebased to the actual utilization
    /// (`actual_exec / period`), so reserved-but-unneeded capacity does
    /// not read as accumulating lag. Call after
    /// [`set_fault_hook`](Self::set_fault_hook) (the application layer
    /// only exists with a hook installed) and before the first
    /// [`step`](Self::step), so job 0 sees the new demand.
    ///
    /// # Panics
    ///
    /// Panics if no fault hook is installed or `actual_exec` is zero.
    pub fn set_app_demand(&mut self, id: TaskId, actual_exec: u64) {
        assert!(actual_exec >= 1, "a job needs at least one quantum");
        assert!(
            id.index() < self.app.len(),
            "set_app_demand requires a fault hook (the app layer exists only with one)"
        );
        let a = &mut self.app[id.index()];
        a.exec = actual_exec;
        if a.job == 0 && a.done == 0 && !a.overrun_applied {
            a.needed = actual_exec;
        }
        a.weight_f = actual_exec as f64 / a.period as f64;
    }

    /// The scheduler's picks for the most recent slot, in descending
    /// priority order (before any fault-induced drops).
    pub fn last_chosen(&self) -> &[TaskId] {
        &self.chosen
    }

    /// Fault-layer counters so far (all zero without a hook).
    pub fn fault_metrics(&self) -> FaultMetrics {
        self.fault_metrics
    }

    /// Maximum application lag observed in the most recent slot (the
    /// overload signal for a lag watchdog). 0 without a hook.
    pub fn current_max_app_lag(&self) -> f64 {
        self.last_max_lag
    }

    /// Application lag of one task at the current time (with a hook).
    pub fn app_lag(&self, id: TaskId) -> f64 {
        let a = &self.app[id.index()];
        let elapsed = self.now.saturating_sub(a.origin) as f64;
        a.weight_f * elapsed - a.useful_total as f64
    }

    /// Closes out the fault accounting at the end of a run: counts every
    /// job that was due (deadline at or before the end of the run, or the
    /// task's retirement) but never completed as a miss, and fills in
    /// [`FaultMetrics::jobs_due`]. Idempotent; returns the final metrics.
    pub fn finalize_faults(&mut self) -> FaultMetrics {
        let horizon = self.now;
        if self.faults_finalized {
            return self.fault_metrics;
        }
        self.faults_finalized = true;
        if let Some(hook) = &mut self.hook {
            for (i, a) in self.app.iter().enumerate() {
                let id = TaskId(i as u32);
                let cutoff = a.retired_at.unwrap_or(horizon);
                let mut due = 0u64;
                let mut j = 0u64;
                loop {
                    let deadline = a.origin + (j + 1) * a.period + hook.release_delay(id, j);
                    if deadline > cutoff {
                        break;
                    }
                    due += 1;
                    j += 1;
                }
                // Jobs 0..a.job completed (late ones already counted as
                // misses); due jobs beyond that never will.
                self.fault_metrics.jobs_due += due;
                self.fault_metrics.job_misses += due.saturating_sub(a.job);
            }
        }
        self.fault_metrics
    }

    /// Simulates one slot; returns the processor → task assignment.
    pub fn step(&mut self) -> &[Option<TaskId>] {
        // Recovery first: the slot boundary is where joins/leaves/capacity
        // changes are legal. The hook is taken out for the call so it can
        // borrow the simulator mutably.
        if let Some(mut hook) = self.recovery.take() {
            hook.before_slot(self, self.now);
            self.recovery = Some(hook);
        }
        let t = self.now;
        self.now += 1;
        let m = self.proc_owner.len();

        // Fault directives for this slot.
        self.slot_faults.clear();
        let mut live = m;
        if let Some(hook) = &mut self.hook {
            hook.slot_faults(t, m as u32, &mut self.slot_faults);
            self.proc_down.iter_mut().for_each(|d| *d = false);
            for &p in &self.slot_faults.down {
                let p = p as usize;
                if p < m && !self.proc_down[p] {
                    self.proc_down[p] = true;
                    live -= 1;
                    self.fault_metrics.dead_proc_quanta += 1;
                    self.obs.fault_dead.incr();
                    if self.events_on {
                        self.events.push(TraceEvent::ProcDown {
                            slot: t,
                            proc: p as u32,
                        });
                    }
                }
            }
        }

        self.chosen.clear();
        self.sched.tick(t, &mut self.chosen);
        self.obs.steps.incr();

        // Fail-stopped processors can only honor the `live` highest-priority
        // picks; the tail of `chosen` (lowest priority) is dropped for this
        // slot. The recorded schedule keeps the scheduler's full decision.
        let dispatchable = self.chosen.len().min(live);
        let dropped = (self.chosen.len() - dispatchable) as u64;
        if dropped > 0 {
            self.fault_metrics.dropped_quanta += dropped;
            self.obs.fault_dropped.add(dropped);
        }

        // Dispatch with affinity: tasks that ran in slot t−1 and are chosen
        // again keep their processor. The free-processor set is a bitset so
        // "first free live processor" is one trailing_zeros scan, and the
        // pending scratch is reused across slots (no per-slot allocation).
        let dispatch_span = self.obs.dispatch_ns.start();
        self.assignment.iter_mut().for_each(|a| *a = None);
        self.free_procs.fill_first(m);
        if self.hook.is_some() {
            for p in 0..m {
                if self.proc_down[p] {
                    self.free_procs.clear(p);
                }
            }
        }
        self.pending.clear();
        for &id in &self.chosen[..dispatchable] {
            match self.dispatch[id.index()].prev_proc {
                Some(p) if self.free_procs.is_set(p as usize) => {
                    self.assignment[p as usize] = Some(id);
                    self.free_procs.clear(p as usize);
                }
                _ => self.pending.push(id),
            }
        }
        // Remaining tasks take free processors, preferring their last-used
        // processor to avoid gratuitous migrations after gaps.
        for i in 0..self.pending.len() {
            let id = self.pending[i];
            let prefer = self.dispatch[id.index()].last_proc;
            let slot = match prefer {
                Some(p) if self.free_procs.is_set(p as usize) => p as usize,
                _ => self
                    .free_procs
                    .first_set()
                    .expect("dispatchable never exceeds live processors"),
            };
            self.free_procs.clear(slot);
            self.assignment[slot] = Some(id);
        }
        drop(dispatch_span);

        // Accounting. Per-event counters are tallied in locals and flushed
        // to the recorder in one batch at the end of the slot.
        let mut allocated = 0u64;
        let mut idle = 0u64;
        let mut migrations = 0u64;
        let mut switches = 0u64;
        self.sched_bits.reset(self.dispatch.len());
        for (proc, slot) in self.assignment.iter().enumerate() {
            match slot {
                None => {
                    if self.hook.is_some() && self.proc_down[proc] {
                        // Fail-stopped: the quantum is lost, not idle; it
                        // was counted under dead_proc_quanta above.
                    } else {
                        idle += 1;
                    }
                }
                Some(id) => {
                    self.sched_bits.set(id.index());
                    let st = &mut self.dispatch[id.index()];
                    if let Some(last) = st.last_proc {
                        if last != proc as u32 {
                            migrations += 1;
                        }
                    }
                    if self.proc_owner[proc] != Some(*id) {
                        switches += 1;
                    }
                    st.last_proc = Some(proc as u32);
                    st.in_job += 1;
                    if st.in_job == st.exec {
                        st.in_job = 0; // job boundary
                        let release = st.completed_jobs * st.period;
                        st.completed_jobs += 1;
                        let resp = (t + 1).saturating_sub(release) as f64;
                        self.responses.push(resp);
                        if let Some(samples) = &mut self.response_samples {
                            samples.push(resp);
                        }
                    }
                    allocated += 1;
                }
            }
        }
        // Preemptions: ran in t−1, not running now, job unfinished. Only
        // the tasks that actually held a processor in t−1 are candidates,
        // so the scan is O(M), not O(tasks).
        let mut preemptions = 0u64;
        for i in 0..self.prev_ran.len() {
            let idx = self.prev_ran[i].index();
            let st = &mut self.dispatch[idx];
            if !self.sched_bits.is_set(idx) && st.in_job != 0 {
                preemptions += 1;
            }
            st.prev_proc = None;
        }
        self.prev_ran.clear();
        for (proc, slot) in self.assignment.iter().enumerate() {
            if let Some(id) = slot {
                self.dispatch[id.index()].prev_proc = Some(proc as u32);
                self.prev_ran.push(*id);
            }
            self.proc_owner[proc] = *slot;
        }
        self.metrics.allocated_quanta += allocated;
        self.metrics.idle_quanta += idle;
        self.metrics.migrations += migrations;
        self.metrics.context_switches += switches;
        self.metrics.preemptions += preemptions;
        if allocated > 0 {
            self.obs.allocated_quanta.add(allocated);
        }
        if idle > 0 {
            self.obs.idle_quanta.add(idle);
        }
        if migrations > 0 {
            self.obs.migrations.add(migrations);
        }
        if switches > 0 {
            self.obs.context_switches.add(switches);
        }
        if preemptions > 0 {
            self.obs.preemptions.add(preemptions);
        }

        // Fault layer: map dispatched quanta to useful application work.
        if let Some(hook) = &mut self.hook {
            for (proc, slot) in self.assignment.iter().enumerate() {
                let Some(id) = slot else { continue };
                if self.slot_faults.wasted.contains(&(proc as u32)) {
                    self.fault_metrics.wasted_quanta += 1;
                    self.obs.fault_wasted.incr();
                    if self.events_on {
                        self.events.push(TraceEvent::QuantumLoss {
                            slot: t,
                            proc: proc as u32,
                            task: id.0,
                        });
                    }
                    continue;
                }
                let a = &mut self.app[id.index()];
                if t < a.arrival {
                    // Current job not yet arrived (ERfair ran ahead): the
                    // quantum carries no application work.
                    continue;
                }
                a.useful_total += 1;
                a.done += 1;
                if a.done == a.needed && !a.overrun_applied {
                    a.overrun_applied = true;
                    let extra = hook.overrun(*id, a.job);
                    if extra > 0 {
                        a.needed += extra;
                        self.fault_metrics.overruns += 1;
                        self.fault_metrics.overrun_quanta += extra;
                        self.obs.fault_overruns.incr();
                        if self.events_on {
                            self.events.push(TraceEvent::Overrun {
                                slot: t,
                                task: id.0,
                                job: a.job,
                                extra,
                            });
                        }
                    }
                }
                if a.done >= a.needed {
                    // Job complete at time t+1; its application deadline is
                    // one period past its (possibly burst-delayed) arrival.
                    let deadline =
                        a.origin + (a.job + 1) * a.period + hook.release_delay(*id, a.job);
                    self.fault_metrics.jobs_completed += 1;
                    if t + 1 > deadline {
                        self.fault_metrics.job_misses += 1;
                        self.fault_metrics.max_tardiness =
                            self.fault_metrics.max_tardiness.max(t + 1 - deadline);
                        self.obs.fault_job_misses.incr();
                    }
                    a.job += 1;
                    a.done = 0;
                    a.needed = a.exec;
                    a.overrun_applied = false;
                    a.arrival = a.origin + a.job * a.period + hook.release_delay(*id, a.job);
                }
            }
            // Per-slot application lag and its running maximum (the
            // overload signal).
            let mut max_lag = f64::NEG_INFINITY;
            for (i, a) in self.app.iter().enumerate() {
                if a.retired_at.is_some() || !self.sched.is_active(TaskId(i as u32)) {
                    continue;
                }
                let elapsed = (t + 1).saturating_sub(a.origin) as f64;
                let lag = a.weight_f * elapsed - a.useful_total as f64;
                max_lag = max_lag.max(lag);
            }
            if max_lag == f64::NEG_INFINITY {
                max_lag = 0.0;
            }
            self.last_max_lag = max_lag;
            self.fault_metrics.max_app_lag = self.fault_metrics.max_app_lag.max(max_lag);
        }

        self.metrics.slots += 1;
        debug_assert!(self.assignment.iter().flatten().count() == dispatchable);
        debug_assert!(self.chosen.len() <= m);

        if let Some(rec) = &mut self.record {
            rec.push(self.chosen.clone());
        }
        &self.assignment
    }

    /// Runs `horizon` slots and returns the metrics.
    pub fn run(&mut self, horizon: Slot) -> RunMetrics {
        while self.now < horizon {
            self.step();
        }
        self.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::lag::check_pfair;
    use pfair_core::sched::SchedConfig;
    use pfair_core::Policy;

    fn ts(pairs: &[(u64, u64)]) -> TaskSet {
        TaskSet::from_pairs(pairs.iter().copied()).unwrap()
    }

    #[test]
    fn full_utilization_run_is_valid_pfair() {
        let set = ts(&[(2, 3), (2, 3), (2, 3)]);
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(2));
        sim.record_schedule();
        let m = sim.run(60);
        assert_eq!(m.misses, 0);
        assert_eq!(m.idle_quanta, 0);
        assert_eq!(m.allocated_quanta, 120);
        let schedule = sim.schedule().unwrap();
        assert_eq!(check_pfair(&set, schedule, 2), Ok(()));
    }

    #[test]
    fn consecutive_quanta_keep_processor() {
        // A single weight-1 task must stay on one processor forever: zero
        // migrations, one initial context switch.
        let set = ts(&[(1, 1)]);
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(2));
        let m = sim.run(100);
        assert_eq!(m.migrations, 0);
        assert_eq!(m.context_switches, 1);
        assert_eq!(m.preemptions, 0);
    }

    /// The paper's per-job preemption bound: a job spanning E quanta of a
    /// task with period P suffers at most min(E−1, P−E) preemptions.
    #[test]
    fn per_job_preemption_bound() {
        // Task (5, 6): only one idle slot per period ⇒ ≤ 1 preemption/job.
        let set = ts(&[(5, 6), (2, 3), (1, 3), (1, 6), (1, 6), (1, 2), (1, 2)]);
        // Σ = 5/6+2/3+1/3+1/6+1/6+1/2+1/2 = 19/6 ≈ 3.17 → M = 4.
        let m_procs = set.min_processors();
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(m_procs));
        let horizon = 20 * set.hyperperiod();
        let metrics = sim.run(horizon);
        assert_eq!(metrics.misses, 0);
        // Aggregate check across all tasks: preemptions ≤ Σ_jobs min(E−1, P−E).
        let mut bound = 0u64;
        for (_, t) in set.iter() {
            let jobs = horizon / t.period;
            bound += jobs * (t.exec - 1).min(t.period - t.exec);
        }
        assert!(
            metrics.preemptions <= bound,
            "preemptions {} > bound {bound}",
            metrics.preemptions
        );
    }

    #[test]
    fn migrations_only_happen_between_processors() {
        // On one processor nothing can migrate.
        let set = ts(&[(1, 2), (1, 4), (1, 8)]);
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(1));
        let m = sim.run(200);
        assert_eq!(m.migrations, 0);
        assert_eq!(m.misses, 0);
    }

    #[test]
    fn metrics_accounting_is_consistent() {
        let set = ts(&[(8, 11), (1, 3), (2, 5), (5, 7)]);
        let m_procs = set.min_processors();
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(m_procs));
        let horizon = 2 * set.hyperperiod();
        let m = sim.run(horizon);
        assert_eq!(m.slots, horizon);
        assert_eq!(m.allocated_quanta + m.idle_quanta, horizon * m_procs as u64);
        // Context switches ≥ migrations (every migration lands on a
        // processor that was running something else or idle).
        assert!(m.context_switches >= m.migrations);
        assert_eq!(m.misses, 0);
    }

    #[test]
    fn epdf_vs_pd2_metrics_differ_only_in_dispatch() {
        let set = ts(&[(1, 2), (1, 3), (1, 5), (2, 7)]);
        for pol in Policy::ALL {
            let mut sim = MultiSim::new(&set, SchedConfig::pd2(2).with_policy(pol));
            let m = sim.run(2 * set.hyperperiod());
            assert_eq!(m.misses, 0, "{}", pol.name());
            // Work conservation of allocation volume: every policy grants
            // each task its exact proportional share over the hyperperiod.
            assert_eq!(
                m.allocated_quanta,
                2 * set
                    .iter()
                    .map(|(_, t)| set.hyperperiod() / t.period * t.exec)
                    .sum::<u64>()
            );
        }
    }

    #[test]
    fn recorded_schedule_matches_metrics() {
        let set = ts(&[(2, 3), (1, 2)]);
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(2));
        sim.record_schedule();
        let m = sim.run(12);
        let sched = sim.schedule().unwrap();
        let total: usize = sched.iter().map(Vec::len).sum();
        assert_eq!(total as u64, m.allocated_quanta);
    }

    /// Scripted hook for the fault-layer tests.
    #[derive(Default)]
    struct ScriptHook {
        /// slot → processors down.
        down: std::collections::HashMap<Slot, Vec<u32>>,
        /// slot → processors wasted.
        wasted: std::collections::HashMap<Slot, Vec<u32>>,
        /// (task, job) → extra quanta.
        overruns: std::collections::HashMap<(TaskId, u64), u64>,
    }

    impl FaultHook for ScriptHook {
        fn slot_faults(&mut self, t: Slot, _m: u32, out: &mut SlotFaults) {
            if let Some(d) = self.down.get(&t) {
                out.down.extend_from_slice(d);
            }
            if let Some(w) = self.wasted.get(&t) {
                out.wasted.extend_from_slice(w);
            }
        }
        fn overrun(&mut self, task: TaskId, job: u64) -> u64 {
            self.overruns.get(&(task, job)).copied().unwrap_or(0)
        }
    }

    /// A hook that injects nothing leaves the run byte-identical to a
    /// hook-free run (the acceptance criterion; the exhaustive property
    /// test lives in the `faults` crate).
    #[test]
    fn inert_hook_changes_nothing() {
        let set = ts(&[(8, 11), (1, 3), (2, 5), (5, 7)]);
        let m = set.min_processors();
        let horizon = 2 * set.hyperperiod();

        let mut plain = MultiSim::new(&set, SchedConfig::pd2(m));
        plain.record_schedule();
        let pm = plain.run(horizon);

        let mut hooked = MultiSim::new(&set, SchedConfig::pd2(m));
        hooked.record_schedule();
        hooked.set_fault_hook(Box::new(ScriptHook::default()));
        let hm = hooked.run(horizon);

        assert_eq!(pm, hm);
        assert_eq!(plain.schedule().unwrap(), hooked.schedule().unwrap());
        let fm = hooked.fault_metrics();
        assert_eq!(
            fm.wasted_quanta + fm.dropped_quanta + fm.dead_proc_quanta,
            0
        );
        // Fault-free application lag respects the Pfair bound.
        assert!(fm.max_app_lag < 1.0 + 1e-9, "lag {}", fm.max_app_lag);
    }

    /// A wasted quantum produces no useful work: job completion slips and
    /// the job is eventually counted late.
    #[test]
    fn wasted_quantum_delays_job_completion() {
        // One weight-1 task alone on one processor: every slot is its.
        let set = ts(&[(1, 1)]);
        let mut hook = ScriptHook::default();
        hook.wasted.insert(0, vec![0]);
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(1));
        sim.set_fault_hook(Box::new(hook));
        sim.run(10);
        let fm = sim.finalize_faults();
        assert_eq!(fm.wasted_quanta, 1);
        // 10 slots, 1 wasted → 9 jobs done, 10 due, every completion late
        // by one slot after the fault.
        assert_eq!(fm.jobs_completed, 9);
        assert_eq!(fm.jobs_due, 10);
        assert_eq!(fm.job_misses, 10);
        assert_eq!(fm.max_tardiness, 1);
        // RunMetrics stay the scheduler's view: all 10 quanta allocated.
        assert_eq!(sim.metrics().allocated_quanta, 10);
    }

    /// Fail-stop: the dead processor's quantum is lost and the
    /// lowest-priority pick is dropped; the scheduler's view is unchanged.
    #[test]
    fn fail_stop_drops_lowest_priority_pick() {
        let set = ts(&[(2, 3), (2, 3), (2, 3)]);
        let mut hook = ScriptHook::default();
        hook.down.insert(4, vec![1]);
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(2));
        sim.record_schedule();
        sim.set_fault_hook(Box::new(hook));
        sim.run(30);
        let fm = sim.fault_metrics();
        assert_eq!(fm.dead_proc_quanta, 1);
        assert_eq!(fm.dropped_quanta, 1);
        // The recorded schedule still shows both picks in slot 4 (full
        // utilization: two tasks per slot).
        assert_eq!(sim.schedule().unwrap()[4].len(), 2);
        // One task is now one useful quantum behind for good: plain Pfair
        // gives it no spare slots, so its app lag reaches the lost quantum
        // (sched lag + 1) and every later job of the victim completes late.
        let fin = sim.finalize_faults();
        assert!(fin.max_app_lag >= 1.0 - 1e-9, "lag {}", fin.max_app_lag);
        assert!(fin.job_misses > 0);
    }

    /// An overrunning job demands extra useful quanta before completing.
    #[test]
    fn overrun_extends_job_demand() {
        let set = ts(&[(2, 4)]);
        let mut hook = ScriptHook::default();
        hook.overruns.insert((TaskId(0), 0), 2);
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(1));
        sim.scheduler_mut()
            .set_early_release(pfair_core::EarlyRelease::Unrestricted);
        sim.set_fault_hook(Box::new(hook));
        sim.run(40);
        let fm = sim.finalize_faults();
        assert_eq!(fm.overruns, 1);
        assert_eq!(fm.overrun_quanta, 2);
        // With unrestricted ER the task runs every slot, so job 0's four
        // quanta (2 + 2 overrun) finish at t+1 = 4 — exactly its deadline.
        // Later jobs arrive on their period and complete on time; the
        // arrival gate keeps the engine from running jobs early, so
        // exactly the 10 due jobs complete.
        assert_eq!(fm.job_misses, 0);
        assert_eq!(fm.jobs_due, 10);
        assert_eq!(fm.jobs_completed, 10);
    }

    /// Dynamic registration: a task joined mid-run is dispatched and
    /// tracked; retirement stops its due-job clock.
    #[test]
    fn register_and_retire_round_trip() {
        let set = ts(&[(1, 2)]);
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(1));
        sim.set_fault_hook(Box::new(ScriptHook::default()));
        for _ in 0..4 {
            sim.step();
        }
        let task = pfair_model::Task::new(1, 4).unwrap();
        let id = sim.scheduler_mut().join(task, 4).unwrap();
        sim.register_task(id, task);
        for _ in 4..12 {
            sim.step();
        }
        sim.scheduler_mut().leave(id, 12).unwrap();
        sim.retire_task(id, 12);
        for _ in 12..20 {
            sim.step();
        }
        let fm = sim.finalize_faults();
        // Joiner was live for slots 4..12: exactly 2 jobs due, both done.
        assert_eq!(fm.jobs_due, 10 + 2);
        assert_eq!(fm.job_misses, 0);
    }
}
