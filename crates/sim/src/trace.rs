//! Schedule trace export/import (JSON).
//!
//! A [`ScheduleTrace`] is a self-contained record of one simulation: the
//! task set, processor count, the per-slot allocation matrix, and the run
//! metrics. Traces round-trip through JSON so experiments can be archived,
//! diffed across revisions, and re-verified offline (`check_pfair` /
//! `check_windows` accept the deserialized schedule unchanged).

use crate::engine::{MultiSim, RunMetrics};
use pfair_model::{Task, TaskId, TaskSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error from [`ScheduleTrace::capture`]: the simulator was not recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotRecordingError;

impl fmt::Display for NotRecordingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace capture requires schedule recording: call MultiSim::record_schedule() \
             before running the simulation"
        )
    }
}

impl std::error::Error for NotRecordingError {}

/// A serializable record of one simulated schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleTrace {
    /// Processor count.
    pub processors: u32,
    /// The task set, as `(exec, period)` pairs in task-id order.
    pub tasks: Vec<(u64, u64)>,
    /// Slot → task ids scheduled in that slot.
    pub slots: Vec<Vec<u32>>,
    /// Run metrics snapshot.
    pub metrics: TraceMetrics,
}

/// The subset of [`RunMetrics`] worth archiving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TraceMetrics {
    /// Slots simulated.
    pub slots: u64,
    /// Quanta allocated.
    pub allocated_quanta: u64,
    /// Idle processor-quanta.
    pub idle_quanta: u64,
    /// Preemptions.
    pub preemptions: u64,
    /// Migrations.
    pub migrations: u64,
    /// Context switches.
    pub context_switches: u64,
    /// Deadline misses.
    pub misses: u64,
}

impl From<RunMetrics> for TraceMetrics {
    fn from(m: RunMetrics) -> Self {
        TraceMetrics {
            slots: m.slots,
            allocated_quanta: m.allocated_quanta,
            idle_quanta: m.idle_quanta,
            preemptions: m.preemptions,
            migrations: m.migrations,
            context_switches: m.context_switches,
            misses: m.misses,
        }
    }
}

impl ScheduleTrace {
    /// Captures a trace from a recording [`MultiSim`]. Fails with
    /// [`NotRecordingError`] if [`MultiSim::record_schedule`] was never
    /// enabled.
    pub fn capture<D: pfair_core::DelayModel>(
        tasks: &TaskSet,
        sim: &MultiSim<D>,
    ) -> Result<Self, NotRecordingError> {
        let schedule = sim.schedule().ok_or(NotRecordingError)?;
        Ok(ScheduleTrace {
            processors: sim.scheduler().processors(),
            tasks: tasks.iter().map(|(_, t)| (t.exec, t.period)).collect(),
            slots: schedule
                .iter()
                .map(|s| s.iter().map(|id| id.0).collect())
                .collect(),
            metrics: sim.metrics().into(),
        })
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serialization cannot fail")
    }

    /// Deserializes from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// The task set as a [`TaskSet`].
    pub fn task_set(&self) -> TaskSet {
        self.tasks
            .iter()
            .map(|&(e, p)| Task::new(e, p).expect("trace holds valid tasks"))
            .collect()
    }

    /// The schedule in the form the verifiers accept.
    pub fn schedule(&self) -> Vec<Vec<TaskId>> {
        self.slots
            .iter()
            .map(|s| s.iter().map(|&i| TaskId(i)).collect())
            .collect()
    }

    /// Re-verifies the archived schedule against the Pfair lag bound and
    /// window containment.
    pub fn verify(&self) -> Result<(), String> {
        let tasks = self.task_set();
        let schedule = self.schedule();
        pfair_core::lag::check_pfair(&tasks, &schedule, self.processors)
            .map_err(|v| v.to_string())?;
        crate::verify::check_windows(&tasks, &schedule).map_err(|v| v.to_string())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::sched::SchedConfig;

    fn traced_run() -> (TaskSet, ScheduleTrace) {
        let tasks = TaskSet::from_pairs([(2u64, 3u64), (2, 3), (2, 3)]).unwrap();
        let mut sim = MultiSim::new(&tasks, SchedConfig::pd2(2));
        sim.record_schedule();
        sim.run(30);
        let trace = ScheduleTrace::capture(&tasks, &sim).unwrap();
        (tasks, trace)
    }

    #[test]
    fn capture_without_recording_is_an_error() {
        let tasks = TaskSet::from_pairs([(1u64, 2u64)]).unwrap();
        let mut sim = MultiSim::new(&tasks, SchedConfig::pd2(1));
        sim.run(4);
        let err = ScheduleTrace::capture(&tasks, &sim).unwrap_err();
        assert!(err.to_string().contains("record_schedule"));
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let (_, trace) = traced_run();
        let json = trace.to_json();
        let back = ScheduleTrace::from_json(&json).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn captured_trace_verifies() {
        let (_, trace) = traced_run();
        assert_eq!(trace.verify(), Ok(()));
        assert_eq!(trace.metrics.misses, 0);
        assert_eq!(trace.metrics.allocated_quanta, 60);
    }

    #[test]
    fn tampered_trace_fails_verification() {
        let (_, mut trace) = traced_run();
        // Starve task 0 of a quantum.
        for slot in &mut trace.slots {
            if let Some(pos) = slot.iter().position(|&i| i == 0) {
                slot.remove(pos);
                break;
            }
        }
        assert!(trace.verify().is_err());
    }

    #[test]
    fn task_set_reconstruction() {
        let (tasks, trace) = traced_run();
        assert_eq!(trace.task_set(), tasks);
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(ScheduleTrace::from_json("{not json").is_err());
    }
}
