//! Schedule trace export/import (JSON).
//!
//! A [`ScheduleTrace`] is a self-contained record of one simulation: the
//! task set, processor count, the per-slot allocation matrix, the run
//! metrics, and — since schema v2 — the fault and recovery [`TraceEvent`]s
//! that perturbed the run. Traces round-trip through JSON so experiments
//! can be archived, diffed across revisions, and re-verified offline
//! ([`ScheduleTrace::verify`] picks the strict or the event-aware checker
//! depending on what the events say about the run).
//!
//! # Schema versions
//!
//! * **v1** — `processors`, `tasks`, `slots`, `metrics`. Written by
//!   revisions that predate event recording.
//! * **v2** — adds `events`, a list of [`TraceEvent`]s in slot order
//!   (burst events are job-keyed and may appear first). v1 traces still
//!   deserialize — the field defaults to empty — and verify exactly as
//!   before.

use crate::engine::{MultiSim, RunMetrics};
use pfair_model::{Slot, Task, TaskId, TaskSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error from [`ScheduleTrace::capture`]: the simulator was not recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotRecordingError;

impl fmt::Display for NotRecordingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace capture requires schedule recording: call MultiSim::record_schedule() \
             before running the simulation"
        )
    }
}

impl std::error::Error for NotRecordingError {}

/// One fault injection or recovery action, with enough context to replay
/// its effect on schedule verification (see
/// [`check_windows_with_events`](crate::verify::check_windows_with_events)).
///
/// Task ids are raw `u32`s (not [`TaskId`]) so events serialize flat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Processor `proc` was fail-stopped during `slot`.
    ProcDown {
        /// Slot of the outage.
        slot: Slot,
        /// The dead processor.
        proc: u32,
    },
    /// The quantum dispatched to `task` on `proc` produced no useful work
    /// (quantum jitter / lost tick).
    QuantumLoss {
        /// Slot of the loss.
        slot: Slot,
        /// Processor whose quantum was wasted.
        proc: u32,
        /// Task that was dispatched there.
        task: u32,
    },
    /// Job `job` of `task` demanded `extra` quanta beyond its WCET.
    Overrun {
        /// Slot in which the declared work completed and the overrun began.
        slot: Slot,
        /// The overrunning task.
        task: u32,
        /// 0-based job index.
        job: u64,
        /// Extra quanta demanded.
        extra: u64,
    },
    /// IS arrival burst: job `job` of `task` arrived `delay` slots late,
    /// shifting all subsequent windows of the task (job-keyed; the slot at
    /// which the scheduler consumes the delay depends on its progress).
    Burst {
        /// The delayed task.
        task: u32,
        /// 0-based job index whose arrival was delayed.
        job: u64,
        /// Delay in slots (adds to the task's cumulative IS offset θ).
        delay: u64,
    },
    /// Recovery shed `task` at `slot` (safe leave; the task is not
    /// scheduled from `slot` on).
    Shed {
        /// Slot of the shed.
        slot: Slot,
        /// The shed task's id.
        task: u32,
    },
    /// Recovery re-admitted a previously shed task under the fresh id
    /// `task` at `slot`; per the §5.2 join rule its windows are the
    /// synchronous windows shifted right by `slot`.
    Rejoin {
        /// Join slot (= the new incarnation's window origin).
        slot: Slot,
        /// The *new* task id assigned by the scheduler.
        task: u32,
        /// Per-job execution cost of the re-admitted task.
        exec: u64,
        /// Period of the re-admitted task.
        period: u64,
    },
    /// The lag watchdog engaged ERfair catch-up at `slot` (sticky: from
    /// here on subtasks may be scheduled before their Pfair releases, and
    /// only the deadline half of each window — the ERfair lag bound —
    /// remains checkable).
    CatchUp {
        /// Slot of the trip.
        slot: Slot,
    },
    /// Recovery set the scheduler's live-processor count to `processors`
    /// at `slot` (capacity tracking under fail-stop).
    Capacity {
        /// Slot of the capacity change.
        slot: Slot,
        /// New live-processor count.
        processors: u32,
    },
}

impl TraceEvent {
    /// The slot the event is keyed to, or `None` for job-keyed events
    /// (bursts), which apply from the start of the run.
    pub fn slot(&self) -> Option<Slot> {
        match *self {
            TraceEvent::ProcDown { slot, .. }
            | TraceEvent::QuantumLoss { slot, .. }
            | TraceEvent::Overrun { slot, .. }
            | TraceEvent::Shed { slot, .. }
            | TraceEvent::Rejoin { slot, .. }
            | TraceEvent::CatchUp { slot }
            | TraceEvent::Capacity { slot, .. } => Some(slot),
            TraceEvent::Burst { .. } => None,
        }
    }

    /// Whether the event changed the *scheduler's* decisions (as opposed
    /// to only stealing useful work from dispatched quanta). Runs with no
    /// perturbing events still satisfy the plain synchronous Pfair
    /// invariants; runs with any need the event-aware checker.
    pub fn perturbs_schedule(&self) -> bool {
        match self {
            TraceEvent::ProcDown { .. }
            | TraceEvent::QuantumLoss { .. }
            | TraceEvent::Overrun { .. } => false,
            TraceEvent::Burst { .. }
            | TraceEvent::Shed { .. }
            | TraceEvent::Rejoin { .. }
            | TraceEvent::CatchUp { .. }
            | TraceEvent::Capacity { .. } => true,
        }
    }

    fn tag(&self) -> &'static str {
        match self {
            TraceEvent::ProcDown { .. } => "proc_down",
            TraceEvent::QuantumLoss { .. } => "quantum_loss",
            TraceEvent::Overrun { .. } => "overrun",
            TraceEvent::Burst { .. } => "burst",
            TraceEvent::Shed { .. } => "shed",
            TraceEvent::Rejoin { .. } => "rejoin",
            TraceEvent::CatchUp { .. } => "catch_up",
            TraceEvent::Capacity { .. } => "capacity",
        }
    }
}

// The vendored serde derive cannot express data-carrying enum variants,
// so events serialize by hand as tagged objects: `{"event": "<tag>", …}`.
impl Serialize for TraceEvent {
    fn to_value(&self) -> serde::Value {
        let mut obj = vec![("event".to_string(), serde::Value::Str(self.tag().into()))];
        let mut put =
            |name: &str, v: u64| obj.push((name.to_string(), serde::Value::Int(v.into())));
        match *self {
            TraceEvent::ProcDown { slot, proc } => {
                put("slot", slot);
                put("proc", proc.into());
            }
            TraceEvent::QuantumLoss { slot, proc, task } => {
                put("slot", slot);
                put("proc", proc.into());
                put("task", task.into());
            }
            TraceEvent::Overrun {
                slot,
                task,
                job,
                extra,
            } => {
                put("slot", slot);
                put("task", task.into());
                put("job", job);
                put("extra", extra);
            }
            TraceEvent::Burst { task, job, delay } => {
                put("task", task.into());
                put("job", job);
                put("delay", delay);
            }
            TraceEvent::Shed { slot, task } => {
                put("slot", slot);
                put("task", task.into());
            }
            TraceEvent::Rejoin {
                slot,
                task,
                exec,
                period,
            } => {
                put("slot", slot);
                put("task", task.into());
                put("exec", exec);
                put("period", period);
            }
            TraceEvent::CatchUp { slot } => put("slot", slot),
            TraceEvent::Capacity { slot, processors } => {
                put("slot", slot);
                put("processors", processors.into());
            }
        }
        serde::Value::Obj(obj)
    }
}

impl Deserialize for TraceEvent {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let tag: String = serde::field(v, "event")?;
        Ok(match tag.as_str() {
            "proc_down" => TraceEvent::ProcDown {
                slot: serde::field(v, "slot")?,
                proc: serde::field(v, "proc")?,
            },
            "quantum_loss" => TraceEvent::QuantumLoss {
                slot: serde::field(v, "slot")?,
                proc: serde::field(v, "proc")?,
                task: serde::field(v, "task")?,
            },
            "overrun" => TraceEvent::Overrun {
                slot: serde::field(v, "slot")?,
                task: serde::field(v, "task")?,
                job: serde::field(v, "job")?,
                extra: serde::field(v, "extra")?,
            },
            "burst" => TraceEvent::Burst {
                task: serde::field(v, "task")?,
                job: serde::field(v, "job")?,
                delay: serde::field(v, "delay")?,
            },
            "shed" => TraceEvent::Shed {
                slot: serde::field(v, "slot")?,
                task: serde::field(v, "task")?,
            },
            "rejoin" => TraceEvent::Rejoin {
                slot: serde::field(v, "slot")?,
                task: serde::field(v, "task")?,
                exec: serde::field(v, "exec")?,
                period: serde::field(v, "period")?,
            },
            "catch_up" => TraceEvent::CatchUp {
                slot: serde::field(v, "slot")?,
            },
            "capacity" => TraceEvent::Capacity {
                slot: serde::field(v, "slot")?,
                processors: serde::field(v, "processors")?,
            },
            other => return Err(serde::DeError(format!("unknown trace event `{other}`"))),
        })
    }
}

/// A serializable record of one simulated schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ScheduleTrace {
    /// Processor count.
    pub processors: u32,
    /// The task set, as `(exec, period)` pairs in task-id order.
    pub tasks: Vec<(u64, u64)>,
    /// Slot → task ids scheduled in that slot.
    pub slots: Vec<Vec<u32>>,
    /// Run metrics snapshot.
    pub metrics: TraceMetrics,
    /// Fault injections and recovery actions (schema v2; empty for clean
    /// runs and for traces written before event recording existed).
    pub events: Vec<TraceEvent>,
}

// Hand-written so that v1 traces — no `events` field — still deserialize;
// the vendored serde derive has no `#[serde(default)]`.
impl Deserialize for ScheduleTrace {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(ScheduleTrace {
            processors: serde::field(v, "processors")?,
            tasks: serde::field(v, "tasks")?,
            slots: serde::field(v, "slots")?,
            metrics: serde::field(v, "metrics")?,
            events: match v.get("events") {
                Some(e) => Vec::<TraceEvent>::from_value(e)
                    .map_err(|serde::DeError(e)| serde::DeError(format!("field `events`: {e}")))?,
                None => Vec::new(),
            },
        })
    }
}

/// The subset of [`RunMetrics`] worth archiving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TraceMetrics {
    /// Slots simulated.
    pub slots: u64,
    /// Quanta allocated.
    pub allocated_quanta: u64,
    /// Idle processor-quanta.
    pub idle_quanta: u64,
    /// Preemptions.
    pub preemptions: u64,
    /// Migrations.
    pub migrations: u64,
    /// Context switches.
    pub context_switches: u64,
    /// Deadline misses.
    pub misses: u64,
}

impl From<RunMetrics> for TraceMetrics {
    fn from(m: RunMetrics) -> Self {
        TraceMetrics {
            slots: m.slots,
            allocated_quanta: m.allocated_quanta,
            idle_quanta: m.idle_quanta,
            preemptions: m.preemptions,
            migrations: m.migrations,
            context_switches: m.context_switches,
            misses: m.misses,
        }
    }
}

impl ScheduleTrace {
    /// Captures a trace from a recording [`MultiSim`] — including any
    /// events recorded via [`MultiSim::record_events`]. Fails with
    /// [`NotRecordingError`] if [`MultiSim::record_schedule`] was never
    /// enabled.
    pub fn capture<D: pfair_core::DelayModel>(
        tasks: &TaskSet,
        sim: &MultiSim<D>,
    ) -> Result<Self, NotRecordingError> {
        let schedule = sim.schedule().ok_or(NotRecordingError)?;
        Ok(ScheduleTrace {
            processors: sim.scheduler().processors(),
            tasks: tasks.iter().map(|(_, t)| (t.exec, t.period)).collect(),
            slots: schedule
                .iter()
                .map(|s| s.iter().map(|id| id.0).collect())
                .collect(),
            metrics: sim.metrics().into(),
            events: sim.events().to_vec(),
        })
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serialization cannot fail")
    }

    /// Deserializes from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// The task set as a [`TaskSet`]. Only the *initial* tasks: ids
    /// introduced by [`TraceEvent::Rejoin`] events are part of the event
    /// stream, not the set.
    pub fn task_set(&self) -> TaskSet {
        self.tasks
            .iter()
            .map(|&(e, p)| Task::new(e, p).expect("trace holds valid tasks"))
            .collect()
    }

    /// The schedule in the form the verifiers accept.
    pub fn schedule(&self) -> Vec<Vec<TaskId>> {
        self.slots
            .iter()
            .map(|s| s.iter().map(|&i| TaskId(i)).collect())
            .collect()
    }

    /// Whether any recorded event changed the scheduler's decisions (IS
    /// bursts, shed/rejoin, ER catch-up, capacity tracking). Such runs are
    /// verified by the event-aware window checker; runs without them
    /// satisfy the plain synchronous Pfair invariants.
    pub fn is_perturbed(&self) -> bool {
        self.events.iter().any(TraceEvent::perturbs_schedule)
    }

    /// Re-verifies the archived schedule.
    ///
    /// Unperturbed traces (v1 traces, clean runs, and runs whose faults
    /// only stole useful work) are checked against the exact Pfair lag
    /// bound *and* strict window containment. Perturbed traces are checked
    /// by [`check_windows_with_events`](crate::verify::check_windows_with_events),
    /// which replays the shed/rejoin/burst/catch-up record; the synchronous
    /// lag check does not apply to them.
    pub fn verify(&self) -> Result<(), String> {
        let tasks = self.task_set();
        let schedule = self.schedule();
        if self.is_perturbed() {
            crate::verify::check_windows_with_events(&tasks, &schedule, &self.events)
                .map_err(|v| v.to_string())
        } else {
            pfair_core::lag::check_pfair(&tasks, &schedule, self.processors)
                .map_err(|v| v.to_string())?;
            crate::verify::check_windows(&tasks, &schedule).map_err(|v| v.to_string())?;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_core::sched::SchedConfig;

    fn traced_run() -> (TaskSet, ScheduleTrace) {
        let tasks = TaskSet::from_pairs([(2u64, 3u64), (2, 3), (2, 3)]).unwrap();
        let mut sim = MultiSim::new(&tasks, SchedConfig::pd2(2));
        sim.record_schedule();
        sim.run(30);
        let trace = ScheduleTrace::capture(&tasks, &sim).unwrap();
        (tasks, trace)
    }

    fn all_event_kinds() -> Vec<TraceEvent> {
        vec![
            TraceEvent::ProcDown { slot: 3, proc: 1 },
            TraceEvent::QuantumLoss {
                slot: 4,
                proc: 0,
                task: 2,
            },
            TraceEvent::Overrun {
                slot: 5,
                task: 1,
                job: 2,
                extra: 3,
            },
            TraceEvent::Burst {
                task: 0,
                job: 1,
                delay: 2,
            },
            TraceEvent::Shed { slot: 6, task: 2 },
            TraceEvent::Rejoin {
                slot: 9,
                task: 3,
                exec: 2,
                period: 3,
            },
            TraceEvent::CatchUp { slot: 7 },
            TraceEvent::Capacity {
                slot: 6,
                processors: 1,
            },
        ]
    }

    #[test]
    fn capture_without_recording_is_an_error() {
        let tasks = TaskSet::from_pairs([(1u64, 2u64)]).unwrap();
        let mut sim = MultiSim::new(&tasks, SchedConfig::pd2(1));
        sim.run(4);
        let err = ScheduleTrace::capture(&tasks, &sim).unwrap_err();
        assert!(err.to_string().contains("record_schedule"));
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let (_, trace) = traced_run();
        let json = trace.to_json();
        let back = ScheduleTrace::from_json(&json).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn events_roundtrip_every_kind() {
        let (_, mut trace) = traced_run();
        trace.events = all_event_kinds();
        let back = ScheduleTrace::from_json(&trace.to_json()).unwrap();
        assert_eq!(trace, back);
    }

    /// A v1 trace — no `events` key at all — still deserializes, with an
    /// empty event list, and still verifies through the strict checkers.
    #[test]
    fn legacy_trace_without_events_field_loads() {
        let (_, trace) = traced_run();
        // Regenerate the v1 schema by dropping `events` from the tree.
        let mut v = trace.to_value();
        let serde::Value::Obj(pairs) = &mut v else {
            panic!("trace serializes as an object");
        };
        pairs.retain(|(k, _)| k != "events");
        let back = ScheduleTrace::from_value(&v).unwrap();
        assert!(back.events.is_empty());
        assert_eq!(back.slots, trace.slots);
        assert_eq!(back.verify(), Ok(()));

        // And at the JSON level: a hand-written v1 trace parses and
        // verifies end to end.
        let v1 = r#"{
            "processors": 1,
            "tasks": [[1, 2]],
            "slots": [[0], [], [0], []],
            "metrics": {"slots": 4, "allocated_quanta": 2, "idle_quanta": 2,
                        "preemptions": 0, "migrations": 0,
                        "context_switches": 2, "misses": 0}
        }"#;
        let legacy = ScheduleTrace::from_json(v1).unwrap();
        assert!(legacy.events.is_empty());
        assert_eq!(legacy.verify(), Ok(()));
    }

    #[test]
    fn unknown_event_tag_is_rejected() {
        let v = serde::Value::Obj(vec![(
            "event".to_string(),
            serde::Value::Str("gremlin".to_string()),
        )]);
        let err = TraceEvent::from_value(&v).unwrap_err();
        assert!(err.to_string().contains("gremlin"), "{err}");
    }

    #[test]
    fn captured_trace_verifies() {
        let (_, trace) = traced_run();
        assert_eq!(trace.verify(), Ok(()));
        assert_eq!(trace.metrics.misses, 0);
        assert_eq!(trace.metrics.allocated_quanta, 60);
        assert!(trace.events.is_empty());
        assert!(!trace.is_perturbed());
    }

    #[test]
    fn tampered_trace_fails_verification() {
        let (_, mut trace) = traced_run();
        // Starve task 0 of a quantum.
        for slot in &mut trace.slots {
            if let Some(pos) = slot.iter().position(|&i| i == 0) {
                slot.remove(pos);
                break;
            }
        }
        assert!(trace.verify().is_err());
    }

    #[test]
    fn task_set_reconstruction() {
        let (tasks, trace) = traced_run();
        assert_eq!(trace.task_set(), tasks);
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(ScheduleTrace::from_json("{not json").is_err());
    }

    #[test]
    fn perturbed_classification() {
        let mut loss_only = traced_run().1;
        loss_only.events = vec![TraceEvent::QuantumLoss {
            slot: 1,
            proc: 0,
            task: 0,
        }];
        assert!(!loss_only.is_perturbed());
        // Execution-only faults keep the strict checkers in play.
        assert_eq!(loss_only.verify(), Ok(()));

        let mut bursty = traced_run().1;
        bursty.events = vec![TraceEvent::Burst {
            task: 0,
            job: 1,
            delay: 1,
        }];
        assert!(bursty.is_perturbed());
    }
}
