//! Exact global-EDF schedulability (Goossens–Yomsi, PAPERS.md).
//!
//! For a *synchronous* implicit-deadline periodic task set, preemptive
//! global EDF on `m` processors is deterministic, and every period divides
//! the hyperperiod `H = lcm(p_1, …, p_n)`. If the schedule is miss-free
//! over `[0, H)` then the state at `H` (all jobs complete, a fresh
//! synchronous release) equals the state at `0`, so the schedule repeats
//! forever — i.e. the set is schedulable **iff** no deadline is missed in
//! the first hyperperiod. Unlike the uniprocessor case there is *no*
//! critical-instant theorem for global EDF (the Dhall effect breaks the
//! usual utilization arguments), so this feasibility-interval simulation
//! is the canonical *exact* test, complementing the sufficient
//! Goossens–Funk–Baruah utilization bound exposed here as
//! [`gedf_utilization_bound_schedulable`].
//!
//! The simulation is slot-exact but fast-forwards over stretches where no
//! decision can change: whenever every pending job is running (at most
//! `m` pending), all of them progress one quantum per slot until the next
//! release or the earliest completion, so the intervening slots are
//! advanced in one step. Early TRUE exits at idle instants are *unsound*
//! on multiprocessors (idleness does not imply the rest of the
//! hyperperiod is safe), so the test always covers `[0, H)`.

use pfair_model::Slot;

/// Greatest common divisor.
fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Hyperperiod `lcm` of all periods, or `None` on overflow or an empty /
/// zero-period set. The feasibility interval of the exact test.
pub fn hyperperiod(tasks: &[(u64, u64)]) -> Option<u64> {
    let mut h: u64 = 1;
    for &(_, p) in tasks {
        if p == 0 {
            return None;
        }
        h = h.checked_mul(p / gcd(h, p))?;
    }
    Some(h)
}

/// Sufficient utilization bound for global EDF (Goossens, Funk & Baruah):
/// a synchronous implicit-deadline periodic set is schedulable on `m`
/// processors if `U ≤ m·(1 − u_max) + u_max` where `u_max` is the largest
/// single-task utilization. Exact in neither direction — [`exact_gedf_schedulable`]
/// accepts strictly more sets (and never fewer; see the property tests).
///
/// The empty set is vacuously schedulable (`U = 0`, `u_max = 0`).
pub fn gedf_utilization_bound_schedulable(tasks: &[(u64, u64)], m: u32) -> bool {
    if m == 0 {
        return tasks.is_empty();
    }
    if tasks.is_empty() {
        return true;
    }
    let mut total = 0.0f64;
    let mut u_max = 0.0f64;
    for &(e, p) in tasks {
        if p == 0 || e > p {
            return false;
        }
        let u = e as f64 / p as f64;
        total += u;
        u_max = u_max.max(u);
    }
    total <= (m as f64) * (1.0 - u_max) + u_max
}

/// Exact global-EDF schedulability of a synchronous implicit-deadline
/// periodic task set `(exec, period)` (quantum domain) on `m` processors:
/// simulates preemptive job-level global EDF over one hyperperiod and
/// reports whether any deadline is missed (the Goossens–Yomsi
/// feasibility-interval argument — see the module docs).
///
/// Ties between equal deadlines break by task index, matching
/// [`GlobalEdfSim`](crate::GlobalEdfSim); since EDF's miss-free property
/// does not depend on the tie-break, the verdict is tie-break-independent.
///
/// The empty set is vacuously schedulable, a task with `exec > period` is
/// trivially not, and the hyperperiod must fit in `u64` — use
/// [`try_exact_gedf_schedulable`] to handle overflow without panicking.
///
/// # Panics
///
/// Panics if the hyperperiod overflows `u64` or a period is zero.
///
/// # Examples
///
/// The Dhall set is infeasible under global EDF although `U ≤ m`:
///
/// ```
/// use sched_sim::exact_gedf::exact_gedf_schedulable;
///
/// // Two light (1, 9) tasks + one weight-1 (10, 10) task: U ≈ 1.22 ≤ 2.
/// assert!(!exact_gedf_schedulable(&[(1, 9), (1, 9), (10, 10)], 2));
/// // The same set fits on three processors.
/// assert!(exact_gedf_schedulable(&[(1, 9), (1, 9), (10, 10)], 3));
/// ```
pub fn exact_gedf_schedulable(tasks: &[(u64, u64)], m: u32) -> bool {
    try_exact_gedf_schedulable(tasks, m).expect("hyperperiod must fit in u64")
}

/// [`exact_gedf_schedulable`], but reports a hyperperiod overflow (or a
/// zero period) as `Err` instead of panicking.
pub fn try_exact_gedf_schedulable(
    tasks: &[(u64, u64)],
    m: u32,
) -> Result<bool, HyperperiodOverflow> {
    // Tasks with zero cost place no demand; drop them up front so the
    // fast paths below see only real work (their periods still cannot be
    // zero — that is a malformed task, reported via the hyperperiod).
    if tasks.iter().any(|&(_, p)| p == 0) {
        return Err(HyperperiodOverflow);
    }
    let tasks: Vec<(u64, u64)> = tasks.iter().copied().filter(|&(e, _)| e > 0).collect();
    if tasks.is_empty() {
        return Ok(true);
    }
    if m == 0 || tasks.iter().any(|&(e, p)| e > p) {
        return Ok(false);
    }
    let h = hyperperiod(&tasks).ok_or(HyperperiodOverflow)?;
    // Exact utilization test in hyperperiod units: total demand per
    // hyperperiod must fit the m processors (necessary condition; u128
    // keeps the sum exact).
    let demand: u128 = tasks
        .iter()
        .map(|&(e, p)| e as u128 * (h / p) as u128)
        .sum();
    if demand > m as u128 * h as u128 {
        return Ok(false);
    }
    // Each task alone on a processor: always schedulable (e ≤ p).
    if tasks.len() <= m as usize {
        return Ok(true);
    }
    Ok(simulate_gedf(&tasks, m as usize, h))
}

/// Error from [`try_exact_gedf_schedulable`]: the feasibility interval
/// (hyperperiod) does not fit in `u64`, or a period is zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HyperperiodOverflow;

impl std::fmt::Display for HyperperiodOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "hyperperiod overflows u64 (or a period is zero)")
    }
}

impl std::error::Error for HyperperiodOverflow {}

/// Deterministic preemptive global-EDF simulation over `[0, horizon)`;
/// `true` iff miss-free. All tasks have `0 < e ≤ p` and all periods
/// divide `horizon`.
fn simulate_gedf(tasks: &[(u64, u64)], m: usize, horizon: u64) -> bool {
    let n = tasks.len();
    // Remaining quanta of the current job; 0 = between jobs.
    let mut rem: Vec<u64> = vec![0; n];
    // Next release slot per task (synchronous: all release at 0).
    let mut next_release: Vec<Slot> = vec![0; n];
    // Absolute deadline of the current job (valid while rem > 0).
    let mut deadline: Vec<Slot> = vec![0; n];
    // Scratch: pending task indices ordered by (deadline, index).
    let mut pending: Vec<usize> = Vec::with_capacity(n);

    let mut t: Slot = 0;
    while t < horizon {
        // Releases due at t. A carried-over job would have its implicit
        // deadline exactly here, so leftover work means a miss.
        let mut next_event = horizon;
        for i in 0..n {
            if next_release[i] == t {
                if rem[i] > 0 {
                    return false;
                }
                rem[i] = tasks[i].0;
                deadline[i] = t + tasks[i].1;
                next_release[i] = t + tasks[i].1;
            }
            next_event = next_event.min(next_release[i]);
        }
        debug_assert!(next_event > t);

        pending.clear();
        pending.extend((0..n).filter(|&i| rem[i] > 0));
        if pending.is_empty() {
            // Idle stretch: nothing can happen until the next release.
            t = next_event;
            continue;
        }
        if pending.len() <= m {
            // Every pending job runs every slot until a release or the
            // earliest completion — advance the whole stretch at once.
            let min_rem = pending.iter().map(|&i| rem[i]).min().unwrap();
            let delta = (next_event - t).min(min_rem);
            for &i in &pending {
                rem[i] -= delta;
            }
            t += delta;
            continue;
        }
        // Contended slot: the m earliest deadlines run one quantum.
        pending.sort_unstable_by_key(|&i| (deadline[i], i));
        for &i in &pending[..m] {
            rem[i] -= 1;
        }
        t += 1;
    }
    // All deadlines of jobs released before `horizon` are ≤ `horizon`
    // (periods divide the horizon), so leftover work is a miss at H.
    rem.iter().all(|&r| r == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global_edf::{dhall_task_set, GlobalEdfSim};
    use pfair_model::TaskSet;
    use proptest::prelude::*;

    #[test]
    fn empty_set_is_schedulable() {
        assert!(exact_gedf_schedulable(&[], 1));
        assert!(exact_gedf_schedulable(&[], 0));
        assert!(gedf_utilization_bound_schedulable(&[], 4));
        assert!(gedf_utilization_bound_schedulable(&[], 0));
    }

    #[test]
    fn zero_cost_tasks_place_no_demand() {
        assert!(exact_gedf_schedulable(&[(0, 5), (0, 7)], 1));
        assert!(exact_gedf_schedulable(&[(0, 5), (3, 3)], 1));
    }

    #[test]
    fn overloaded_task_rejected() {
        assert!(!exact_gedf_schedulable(&[(5, 4)], 8));
        assert!(!gedf_utilization_bound_schedulable(&[(5, 4)], 8));
    }

    #[test]
    fn zero_processors_reject_nonempty() {
        assert!(!exact_gedf_schedulable(&[(1, 2)], 0));
        assert!(!gedf_utilization_bound_schedulable(&[(1, 2)], 0));
    }

    #[test]
    fn utilization_overload_rejected() {
        // U = 3/2 > 1 processor.
        assert!(!exact_gedf_schedulable(&[(1, 2), (2, 3), (1, 3)], 1));
    }

    #[test]
    fn uniprocessor_full_utilization_accepted() {
        // U = 1 exactly: EDF is optimal on one processor.
        assert!(exact_gedf_schedulable(&[(1, 2), (1, 3), (1, 6)], 1));
    }

    #[test]
    fn dhall_set_rejected_at_m_accepted_at_m_plus_one() {
        for m in [2u32, 3, 4] {
            let pairs: Vec<(u64, u64)> = dhall_task_set(m, 10)
                .iter()
                .map(|(_, t)| (t.exec, t.period))
                .collect();
            assert!(
                !exact_gedf_schedulable(&pairs, m),
                "Dhall set must be gEDF-infeasible on M={m}"
            );
            assert!(exact_gedf_schedulable(&pairs, m + 1));
        }
    }

    #[test]
    fn exact_accepts_where_bound_rejects() {
        // The point of an exact test: (2,3), (2,3), (1,3) on m = 2 has
        // U = 5/3 and u_max = 2/3, so the GFB bound m(1−u_max)+u_max = 4/3
        // rejects — yet the hyperperiod-3 schedule is miss-free.
        let set = [(2u64, 3u64), (2, 3), (1, 3)];
        assert!(!gedf_utilization_bound_schedulable(&set, 2));
        assert!(exact_gedf_schedulable(&set, 2));
    }

    #[test]
    fn hyperperiod_computation() {
        assert_eq!(hyperperiod(&[(1, 4), (1, 6)]), Some(12));
        assert_eq!(hyperperiod(&[]), Some(1));
        assert_eq!(hyperperiod(&[(1, 0)]), None);
        assert_eq!(hyperperiod(&[(1, u64::MAX), (1, u64::MAX - 1)]), None);
    }

    #[test]
    fn overflow_reported_not_panicked() {
        let huge = [(1u64, u64::MAX), (1, u64::MAX - 1), (1, 7), (1, 11)];
        assert_eq!(
            try_exact_gedf_schedulable(&huge, 4),
            Err(HyperperiodOverflow)
        );
    }

    /// Brute-force verdict from [`GlobalEdfSim`]: miss-free over one
    /// hyperperiod *plus the longest period*, so a deadline exactly at H
    /// (checked by the sim only at the next roll-over) is observed too.
    fn brute_force(pairs: &[(u64, u64)], m: u32) -> bool {
        let h = hyperperiod(pairs).unwrap();
        let max_p = pairs.iter().map(|&(_, p)| p).max().unwrap();
        let set = TaskSet::from_pairs(pairs.iter().copied()).unwrap();
        let mut sim = GlobalEdfSim::new(&set, m);
        sim.run(h + max_p).deadline_misses == 0
    }

    proptest! {
        /// The exact test agrees with brute-force global-EDF simulation
        /// on random ≤4-task sets (ISSUE 9 property-test corpus).
        #[test]
        fn prop_exact_matches_brute_force(
            periods in prop::collection::vec(2u64..13, 1..=4),
            fracs in prop::collection::vec(1u64..=12, 4),
            m in 1u32..=3,
        ) {
            let pairs: Vec<(u64, u64)> = periods
                .iter()
                .zip(&fracs)
                .map(|(&p, &f)| (((f * p) / 12).max(1), p))
                .collect();
            prop_assert_eq!(
                exact_gedf_schedulable(&pairs, m),
                brute_force(&pairs, m),
                "set {:?} on m={}", pairs, m
            );
        }

        /// The GFB utilization bound is sufficient: whatever it accepts,
        /// the exact test accepts too.
        #[test]
        fn prop_bound_implies_exact(
            periods in prop::collection::vec(2u64..13, 1..=4),
            fracs in prop::collection::vec(1u64..=12, 4),
            m in 1u32..=3,
        ) {
            let pairs: Vec<(u64, u64)> = periods
                .iter()
                .zip(&fracs)
                .map(|(&p, &f)| (((f * p) / 12).max(1), p))
                .collect();
            if gedf_utilization_bound_schedulable(&pairs, m) {
                prop_assert!(
                    exact_gedf_schedulable(&pairs, m),
                    "bound accepted but exact rejected: {:?} on m={}", pairs, m
                );
            }
        }
    }
}
