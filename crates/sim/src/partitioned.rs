//! Partitioned-EDF multiprocessor simulation.
//!
//! Under partitioning, "each processor schedules tasks independently from a
//! local ready queue" (paper, Section 1). [`PartitionedSim`] runs one
//! event-driven [`UniSim`] per processor over a given task→processor
//! assignment, aggregating the per-processor statistics — the concrete
//! counterpart to the paper's Section 4 accounting (preemptions ≤ jobs,
//! zero migrations by construction) and the baseline against which
//! `MultiSim`'s PD² preemption/migration counts are compared in the
//! `switches` experiment.

use uniproc::{Discipline, UniSim, UniStats};

/// Aggregated statistics from a partitioned run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionedStats {
    /// Sum of job response times across processors.
    pub response_sum: u64,
    /// Largest single job response time.
    pub response_max: u64,
    /// Sum over processors of scheduler invocations.
    pub invocations: u64,
    /// Total preemptions (all local — partitioning never migrates).
    pub preemptions: u64,
    /// Total context switches.
    pub context_switches: u64,
    /// Total released jobs.
    pub released_jobs: u64,
    /// Total completed jobs.
    pub completed_jobs: u64,
    /// Total deadline misses.
    pub deadline_misses: u64,
    /// Total idle time (time units × processors).
    pub idle_time: u64,
}

impl PartitionedStats {
    /// Mean job response time across the whole system.
    pub fn mean_response(&self) -> f64 {
        if self.completed_jobs == 0 {
            0.0
        } else {
            self.response_sum as f64 / self.completed_jobs as f64
        }
    }
}

impl PartitionedStats {
    fn accumulate(&mut self, s: UniStats) {
        self.response_sum += s.response_sum;
        self.response_max = self.response_max.max(s.response_max);
        self.invocations += s.invocations;
        self.preemptions += s.preemptions;
        self.context_switches += s.context_switches;
        self.released_jobs += s.released_jobs;
        self.completed_jobs += s.completed_jobs;
        self.deadline_misses += s.deadline_misses;
        self.idle_time += s.idle_time;
    }
}

/// A multiprocessor system scheduled by partitioning: per-processor EDF
/// (or RM) over a fixed task assignment.
///
/// # Examples
///
/// ```
/// use sched_sim::PartitionedSim;
/// use uniproc::Discipline;
///
/// // Two processors: {(1,2),(1,3)} and {(2,3)}.
/// let tasks = [(1u64, 2u64), (1, 3), (2, 3)];
/// let assignment = [0u32, 0, 1];
/// let mut sim = PartitionedSim::new(&tasks, &assignment, 2, Discipline::Edf);
/// let stats = sim.run(6_000);
/// assert_eq!(stats.deadline_misses, 0);
/// ```
#[derive(Debug)]
pub struct PartitionedSim {
    sims: Vec<UniSim>,
}

impl PartitionedSim {
    /// Creates per-processor simulators from `(exec, period)` tasks and a
    /// task→processor `assignment`.
    ///
    /// # Panics
    ///
    /// Panics if an assignment index is out of range or some processor has
    /// an index gap (processors must be `0..m`).
    pub fn new(tasks: &[(u64, u64)], assignment: &[u32], m: u32, discipline: Discipline) -> Self {
        assert_eq!(tasks.len(), assignment.len());
        let mut groups: Vec<Vec<(u64, u64)>> = vec![Vec::new(); m as usize];
        for (t, &proc) in tasks.iter().zip(assignment) {
            groups[proc as usize].push(*t);
        }
        PartitionedSim {
            sims: groups
                .into_iter()
                .map(|g| UniSim::new(&g, discipline))
                .collect(),
        }
    }

    /// Runs every processor to `horizon` and returns aggregated stats.
    pub fn run(&mut self, horizon: u64) -> PartitionedStats {
        let mut agg = PartitionedStats::default();
        for sim in &mut self.sims {
            agg.accumulate(sim.run(horizon));
        }
        agg
    }

    /// Per-processor statistics (after `run`).
    pub fn per_processor(&self) -> Vec<UniStats> {
        self.sims.iter().map(|s| s.stats()).collect()
    }

    /// Number of processors.
    pub fn processors(&self) -> usize {
        self.sims.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partition_test_util::*;

    /// Minimal in-test FF packing to avoid a dependency cycle with the
    /// `partition` crate (which is downstream of nothing here, but keeping
    /// `sched-sim` independent of it keeps the DAG clean).
    mod partition_test_util {
        pub fn first_fit(tasks: &[(u64, u64)], m: u32) -> Option<Vec<u32>> {
            let mut load = vec![(0u64, 1u64); m as usize]; // running Σe/p as fraction num/den
            let mut assign = Vec::with_capacity(tasks.len());
            'outer: for &(e, p) in tasks {
                for (i, l) in load.iter_mut().enumerate() {
                    // l + e/p ≤ 1 ⇔ l.0·p + e·l.1 ≤ p·l.1
                    if l.0 * p + e * l.1 <= p * l.1 {
                        *l = (l.0 * p + e * l.1, l.1 * p);
                        assign.push(i as u32);
                        continue 'outer;
                    }
                }
                return None;
            }
            Some(assign)
        }
    }

    #[test]
    fn partitioned_edf_schedules_partitionable_sets() {
        let tasks = [(1u64, 2u64), (1, 3), (1, 4), (2, 5), (1, 6)];
        let assign = first_fit(&tasks, 2).unwrap();
        let mut sim = PartitionedSim::new(&tasks, &assign, 2, Discipline::Edf);
        let stats = sim.run(60_000);
        assert_eq!(stats.deadline_misses, 0);
        assert!(stats.completed_jobs > 0);
    }

    #[test]
    fn preemptions_bounded_by_jobs() {
        // The paper's Section 4: "Under EDF, the number of preemptions is
        // at most the number of jobs."
        let tasks = [(1u64, 3u64), (2, 7), (3, 11), (1, 5), (2, 9), (1, 4)];
        let assign = first_fit(&tasks, 2).unwrap();
        let mut sim = PartitionedSim::new(&tasks, &assign, 2, Discipline::Edf);
        let stats = sim.run(100_000);
        assert!(stats.preemptions <= stats.released_jobs);
        assert!(stats.context_switches <= 2 * stats.released_jobs);
    }

    #[test]
    fn per_processor_breakdown_sums_to_aggregate() {
        let tasks = [(1u64, 2u64), (1, 3), (2, 3)];
        let assign = first_fit(&tasks, 2).unwrap();
        let mut sim = PartitionedSim::new(&tasks, &assign, 2, Discipline::Edf);
        let agg = sim.run(10_000);
        let per = sim.per_processor();
        assert_eq!(sim.processors(), 2);
        assert_eq!(
            per.iter().map(|s| s.completed_jobs).sum::<u64>(),
            agg.completed_jobs
        );
        assert_eq!(per.iter().map(|s| s.idle_time).sum::<u64>(), agg.idle_time);
    }

    #[test]
    fn overloaded_processor_misses() {
        // Deliberately bad assignment: both 2/3 tasks on processor 0.
        let tasks = [(2u64, 3u64), (2, 3)];
        let assign = [0u32, 0];
        let mut sim = PartitionedSim::new(&tasks, &assign, 2, Discipline::Edf);
        let stats = sim.run(3_000);
        assert!(stats.deadline_misses > 0);
        // A first-fit packing on 2 processors handles it fine.
        let good = first_fit(&tasks, 2).unwrap();
        let mut sim = PartitionedSim::new(&tasks, &good, 2, Discipline::Edf);
        assert_eq!(sim.run(3_000).deadline_misses, 0);
    }

    #[test]
    fn rm_discipline_works_too() {
        let tasks = [(1u64, 4u64), (1, 5), (1, 6)];
        let assign = [0u32, 0, 0];
        let mut sim = PartitionedSim::new(&tasks, &assign, 1, Discipline::Rm);
        let stats = sim.run(60_000);
        assert_eq!(stats.deadline_misses, 0);
    }
}
