//! Weighted round-robin — the deadline-free baseline.
//!
//! The paper (§4): "Though Pfair scheduling algorithms appear to be
//! different from traditional real-time scheduling algorithms, they are
//! similar to the round-robin algorithm used in general-purpose operating
//! systems. In fact, PD² can be thought of as a deadline-based variant of
//! the weighted round-robin algorithm."
//!
//! [`WrrSim`] implements the classical variant: time is divided into
//! *rounds* of `L` slots; task `T` is entitled to `⌈wt(T)·L⌉` quanta per
//! round, served in a fixed cyclic order on `M` processors. WRR
//! distributes processor time in proportion to weights — over long
//! horizons it is perfectly fair — but it has **no notion of
//! pseudo-deadlines**, so individual subtask windows are routinely
//! violated: the same per-round allocation arriving at the wrong *times*
//! misses Pfair windows (and actual job deadlines) that PD² meets. The
//! tests quantify exactly that gap, which is the paper's point: PD² keeps
//! round-robin's proportional bookkeeping and adds just enough deadline
//! awareness to be optimal.

use pfair_model::{Slot, TaskSet};

/// Statistics from a WRR run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WrrStats {
    /// Quanta allocated in total.
    pub allocated_quanta: u64,
    /// Idle processor-quanta.
    pub idle_quanta: u64,
    /// Completed jobs (a task's job completes when `exec` quanta of its
    /// current period have been served).
    pub completed_jobs: u64,
    /// Job deadline misses (job not complete by its period end; tracked
    /// per period, unserved work is dropped at the boundary).
    pub deadline_misses: u64,
}

/// Global weighted round-robin simulator (see module docs).
#[derive(Debug)]
pub struct WrrSim {
    tasks: Vec<(u64, u64)>,
    m: usize,
    round_len: u64,
    /// Remaining round entitlement per task.
    quota: Vec<u64>,
    /// Remaining work in the current job per task.
    job_remaining: Vec<u64>,
    /// Cyclic service pointer.
    cursor: usize,
    stats: WrrStats,
    now: Slot,
}

impl WrrSim {
    /// Creates a WRR scheduler with round length `round_len` slots.
    pub fn new(tasks: &TaskSet, m: u32, round_len: u64) -> Self {
        assert!(round_len >= 1);
        let pairs: Vec<(u64, u64)> = tasks.iter().map(|(_, t)| (t.exec, t.period)).collect();
        let quota = pairs
            .iter()
            .map(|&(e, p)| (e * round_len).div_ceil(p).max(1))
            .collect();
        WrrSim {
            job_remaining: pairs.iter().map(|&(e, _)| e).collect(),
            tasks: pairs,
            m: m as usize,
            round_len,
            quota,
            cursor: 0,
            stats: WrrStats::default(),
            now: 0,
        }
    }

    /// Runs slots `now..horizon`, returning statistics.
    pub fn run(&mut self, horizon: Slot) -> WrrStats {
        let n = self.tasks.len();
        while self.now < horizon {
            let t = self.now;
            // Round boundary: replenish quotas.
            if t % self.round_len == 0 {
                for (q, &(e, p)) in self.quota.iter_mut().zip(&self.tasks) {
                    *q = (e * self.round_len).div_ceil(p).max(1);
                }
            }
            // Period boundaries: account misses, release next job.
            for i in 0..n {
                let (e, p) = self.tasks[i];
                if t > 0 && t % p == 0 {
                    if self.job_remaining[i] > 0 {
                        self.stats.deadline_misses += 1;
                    }
                    self.job_remaining[i] = e;
                }
            }
            // Serve up to M tasks cyclically: quota and work remaining.
            let mut served = 0usize;
            let mut inspected = 0usize;
            while served < self.m && inspected < n {
                let i = (self.cursor + inspected) % n;
                inspected += 1;
                if self.quota[i] > 0 && self.job_remaining[i] > 0 {
                    self.quota[i] -= 1;
                    self.job_remaining[i] -= 1;
                    if self.job_remaining[i] == 0 {
                        self.stats.completed_jobs += 1;
                    }
                    served += 1;
                }
            }
            self.cursor = (self.cursor + 1) % n.max(1);
            self.stats.allocated_quanta += served as u64;
            self.stats.idle_quanta += (self.m - served) as u64;
            self.now = t + 1;
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MultiSim;
    use pfair_core::sched::SchedConfig;

    fn ts(pairs: &[(u64, u64)]) -> TaskSet {
        TaskSet::from_pairs(pairs.iter().copied()).unwrap()
    }

    /// WRR is proportionally fair over long horizons: allocations track
    /// weights within a round of slack.
    #[test]
    fn wrr_is_long_run_proportional() {
        let set = ts(&[(1, 2), (1, 3), (1, 6)]);
        let mut sim = WrrSim::new(&set, 1, 6);
        let stats = sim.run(6_000);
        // U = 1: no idling once rounds are aligned (round = hyperperiod).
        assert_eq!(stats.idle_quanta, 0);
        assert_eq!(stats.allocated_quanta, 6_000);
    }

    /// The headline gap: a feasible set WRR misses but PD² schedules.
    /// Deadline-blind cyclic service starves a short-period task whenever
    /// the cursor gap `≈ n/M` exceeds its period: here n = 8 tasks on
    /// M = 2 processors (gap ≈ 4) against a victim of period 3.
    #[test]
    fn wrr_misses_where_pd2_meets() {
        let mut pairs = vec![(1u64, 3u64)]; // the victim
        pairs.extend(vec![(5u64, 21u64); 7]);
        let set = ts(&pairs);
        assert_eq!(set.total_utilization(), pfair_model::Rat::from(2u64));
        let horizon = 40 * set.hyperperiod();

        let mut pd2 = MultiSim::new(&set, SchedConfig::pd2(2));
        assert_eq!(pd2.run(horizon).misses, 0, "PD2 is optimal");

        for round in [3u64, 7, 21, 42] {
            let mut wrr = WrrSim::new(&set, 2, round);
            assert!(
                wrr.run(horizon).deadline_misses > 0,
                "WRR must miss at round length {round}"
            );
        }
    }

    /// With a round of 1 slot WRR degenerates to plain round-robin.
    #[test]
    fn degenerate_round_robin() {
        let set = ts(&[(1, 2), (1, 2)]);
        let mut sim = WrrSim::new(&set, 1, 1);
        let stats = sim.run(1_000);
        // Perfectly alternating: everyone meets deadlines here.
        assert_eq!(stats.deadline_misses, 0);
        assert_eq!(stats.allocated_quanta, 1_000);
    }

    #[test]
    fn accounting_adds_up() {
        let set = ts(&[(1, 4), (1, 8)]);
        let mut sim = WrrSim::new(&set, 2, 8);
        let stats = sim.run(800);
        assert_eq!(stats.allocated_quanta + stats.idle_quanta, 1_600);
        // U = 3/8: exactly that fraction of capacity is used.
        assert_eq!(stats.allocated_quanta, 800 * 3 / 8);
    }
}
