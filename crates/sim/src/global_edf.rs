//! Job-level global EDF on `M` processors — the Dhall-effect baseline.
//!
//! The paper's Section 1 motivates Pfair scheduling with Dhall & Liu's
//! observation \[13\] that global scheduling with EDF (or RM) priorities
//! "can result in arbitrarily-low processor utilization": one heavy task
//! plus `M` featherweight tasks with marginally earlier deadlines starves
//! the heavy task at total utilizations barely above 1, on any number of
//! processors. This simulator reproduces that effect; PD² schedules the
//! same sets without misses.
//!
//! The simulation is quantum-driven (slot granularity) with job-level EDF:
//! in each slot the `M` pending jobs with earliest absolute deadlines run.
//! Jobs of the same task never run in parallel with each other (a task is
//! sequential), which is automatic here because a task has at most one
//! pending job per period and tardy jobs delay their successors.

use pfair_model::{Slot, TaskSet};

/// Statistics from a global-EDF run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GlobalEdfStats {
    /// Completed jobs.
    pub completed_jobs: u64,
    /// Jobs that missed their deadline (detected at the deadline).
    pub deadline_misses: u64,
    /// Total allocated quanta.
    pub allocated_quanta: u64,
    /// Idle processor-quanta.
    pub idle_quanta: u64,
    /// Preemptions: a job descheduled while still incomplete.
    pub preemptions: u64,
    /// Migrations: a job resumed on a different processor than it last
    /// ran on (dispatch keeps processor affinity when possible, mirroring
    /// [`MultiSim`](crate::MultiSim)'s assignment rule).
    pub migrations: u64,
}

/// Per-task job state.
#[derive(Debug, Clone, Copy)]
struct JobState {
    /// Remaining quanta of the current job (0 = between jobs).
    remaining: u64,
    /// Absolute deadline of the current job.
    deadline: Slot,
    /// 0-based index of the current job.
    job: u64,
    /// Whether the current job's miss was recorded.
    missed: bool,
}

/// Quantum-driven global EDF simulator over a synchronous periodic task
/// set (quantum-domain [`TaskSet`]).
///
/// # Examples
///
/// ```
/// use pfair_model::TaskSet;
/// use sched_sim::GlobalEdfSim;
///
/// // Dhall effect on M = 2: two light (1,4) tasks + one weight-1 task.
/// // U = 2/4 + 1 = 1.5 ≤ 2, yet global EDF misses.
/// let tasks = TaskSet::from_pairs([(1u64, 4u64), (1, 4), (5, 5)]).unwrap();
/// let mut sim = GlobalEdfSim::new(&tasks, 2);
/// let stats = sim.run(100);
/// assert!(stats.deadline_misses > 0);
/// ```
#[derive(Debug)]
pub struct GlobalEdfSim {
    tasks: Vec<(u64, u64)>,
    /// Actual per-job demand; differs from the declared `exec` for
    /// *misbehaving* tasks (§5.3 temporal-isolation experiments).
    actual_exec: Vec<u64>,
    m: usize,
    jobs: Vec<JobState>,
    stats: GlobalEdfStats,
    /// Deadline misses per task (isolation experiments need to know *who*
    /// missed).
    misses_by_task: Vec<u64>,
    /// Last run of each task: `(slot, job, processor)` — drives the
    /// preemption/migration accounting.
    last_run: Vec<Option<(Slot, u64, usize)>>,
    now: Slot,
}

impl GlobalEdfSim {
    /// Creates a simulator for `tasks` on `m` processors.
    pub fn new(tasks: &TaskSet, m: u32) -> Self {
        let jobs = tasks
            .iter()
            .map(|(_, t)| JobState {
                remaining: t.exec,
                deadline: t.period,
                job: 0,
                missed: false,
            })
            .collect();
        GlobalEdfSim {
            tasks: tasks.iter().map(|(_, t)| (t.exec, t.period)).collect(),
            actual_exec: tasks.iter().map(|(_, t)| t.exec).collect(),
            m: m as usize,
            jobs,
            stats: GlobalEdfStats::default(),
            misses_by_task: vec![0; tasks.len()],
            last_run: vec![None; tasks.len()],
            now: 0,
        }
    }

    /// Makes task `i` *misbehave*: each of its jobs demands `actual` quanta
    /// of execution although it declared (and is prioritized as if it
    /// needed) its original cost. Must be called before `run`.
    ///
    /// Under global EDF the excess demand is served at the job's deadline
    /// priority and steals capacity from well-behaved tasks — the paper's
    /// §5.3 motivation for fairness-based temporal isolation.
    pub fn set_actual_exec(&mut self, i: usize, actual: u64) {
        assert!(actual >= 1);
        self.actual_exec[i] = actual;
        if self.jobs[i].job == 0 && self.now == 0 {
            self.jobs[i].remaining = actual;
        }
    }

    /// Deadline misses per task.
    pub fn misses_by_task(&self) -> &[u64] {
        &self.misses_by_task
    }

    /// Runs slots `now..horizon`; returns accumulated statistics.
    pub fn run(&mut self, horizon: Slot) -> GlobalEdfStats {
        // Scratch: indices of pending jobs sorted by (deadline, task),
        // and per-slot processor occupancy for affinity dispatch.
        let mut pending: Vec<usize> = Vec::with_capacity(self.tasks.len());
        let mut taken: Vec<bool> = vec![false; self.m];
        while self.now < horizon {
            let t = self.now;
            // Job roll-over at period boundaries.
            for (i, js) in self.jobs.iter_mut().enumerate() {
                let (_, p) = self.tasks[i];
                let demand = self.actual_exec[i];
                while t >= (js.job + 1) * p {
                    if js.remaining > 0 && !js.missed {
                        self.stats.deadline_misses += 1;
                        self.misses_by_task[i] += 1;
                    } else if js.remaining == 0 {
                        // Completion was recorded when it finished.
                    }
                    // A tardy job is abandoned at its deadline (bounded-loss
                    // model; keeps successive jobs well-defined).
                    js.job += 1;
                    js.remaining = demand;
                    js.deadline = (js.job + 1) * p;
                    js.missed = false;
                }
            }

            pending.clear();
            pending.extend(
                self.jobs
                    .iter()
                    .enumerate()
                    .filter(|(_, js)| js.remaining > 0)
                    .map(|(i, _)| i),
            );
            pending.sort_unstable_by_key(|&i| (self.jobs[i].deadline, i));
            let chosen = pending.len().min(self.m);
            // A descheduled-but-incomplete job that ran (as the same job)
            // in the previous slot was preempted.
            for &i in &pending[chosen..] {
                if self.last_run[i].is_some_and(|(s, j, _)| s + 1 == t && j == self.jobs[i].job) {
                    self.stats.preemptions += 1;
                }
            }
            // Affinity dispatch: keep the previous processor when free
            // (first pass, in deadline order), then fill the lowest free
            // processors; a task that resumes elsewhere migrated.
            taken.iter_mut().for_each(|b| *b = false);
            for &i in &pending[..chosen] {
                if let Some((_, _, p)) = self.last_run[i] {
                    if !taken[p] {
                        taken[p] = true;
                        self.last_run[i] = Some((t, self.jobs[i].job, p));
                    }
                }
            }
            let mut free = 0usize;
            for &i in &pending[..chosen] {
                if self.last_run[i].is_some_and(|(s, _, _)| s == t) {
                    continue; // kept its processor above
                }
                while taken[free] {
                    free += 1;
                }
                taken[free] = true;
                if self.last_run[i].is_some_and(|(_, _, p)| p != free) {
                    self.stats.migrations += 1;
                }
                self.last_run[i] = Some((t, self.jobs[i].job, free));
            }
            for &i in &pending[..chosen] {
                let js = &mut self.jobs[i];
                js.remaining -= 1;
                self.stats.allocated_quanta += 1;
                if js.remaining == 0 {
                    self.stats.completed_jobs += 1;
                    if t + 1 > js.deadline && !js.missed {
                        js.missed = true;
                        self.stats.deadline_misses += 1;
                        self.misses_by_task[i] += 1;
                    }
                }
            }
            self.stats.idle_quanta += (self.m - chosen) as u64;
            self.now = t + 1;
        }
        self.stats
    }
}

/// Builds the canonical discrete Dhall-effect task set for `m` processors:
/// `m` light tasks `(1, p−1)` — whose deadlines fall strictly before the
/// heavy task's — plus one weight-1 task `(p, p)`. Total utilization
/// `1 + m/(p−1)`, arbitrarily close to 1 for large `p`, yet global EDF
/// misses on `m` processors while PD² does not.
pub fn dhall_task_set(m: u32, p: u64) -> TaskSet {
    assert!(p >= 3);
    let mut pairs = vec![(1u64, p - 1); m as usize];
    pairs.push((p, p));
    TaskSet::from_pairs(pairs).expect("valid dhall set")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MultiSim;
    use pfair_core::sched::SchedConfig;

    #[test]
    fn dhall_effect_misses_under_global_edf() {
        for m in [2u32, 4, 8] {
            let set = dhall_task_set(m, 10);
            // U = 1 + m/10 ≤ m for m ≥ 2.
            assert!(set.feasible_on(m));
            let mut sim = GlobalEdfSim::new(&set, m);
            let stats = sim.run(200);
            assert!(
                stats.deadline_misses > 0,
                "global EDF must exhibit the Dhall effect on M={m}"
            );
        }
    }

    #[test]
    fn same_sets_are_schedulable_by_pd2() {
        for m in [2u32, 4, 8] {
            let set = dhall_task_set(m, 10);
            let mut sim = MultiSim::new(&set, SchedConfig::pd2(m));
            let metrics = sim.run(200);
            assert_eq!(metrics.misses, 0, "PD2 schedules the Dhall set on M={m}");
        }
    }

    #[test]
    fn underloaded_global_edf_is_fine() {
        // Light load, no heavy task: global EDF does well.
        let set = TaskSet::from_pairs([(1u64, 5u64), (1, 7), (2, 11), (1, 4)]).unwrap();
        let mut sim = GlobalEdfSim::new(&set, 2);
        let stats = sim.run(5_000);
        assert_eq!(stats.deadline_misses, 0);
        assert!(stats.completed_jobs > 0);
    }

    #[test]
    fn single_processor_global_edf_matches_feasibility() {
        // On one processor, (quantum-level) EDF schedules any U ≤ 1 set.
        let set = TaskSet::from_pairs([(1u64, 2u64), (1, 3), (1, 6)]).unwrap();
        let mut sim = GlobalEdfSim::new(&set, 1);
        let stats = sim.run(600);
        assert_eq!(stats.deadline_misses, 0);
        assert_eq!(stats.idle_quanta, 0);
    }

    #[test]
    fn accounting_adds_up() {
        let set = dhall_task_set(2, 10);
        let mut sim = GlobalEdfSim::new(&set, 2);
        let stats = sim.run(100);
        assert_eq!(stats.allocated_quanta + stats.idle_quanta, 200);
    }

    #[test]
    fn no_migrations_on_one_processor() {
        let set = TaskSet::from_pairs([(1u64, 2u64), (2, 6), (1, 6)]).unwrap();
        let mut sim = GlobalEdfSim::new(&set, 1);
        let stats = sim.run(600);
        assert_eq!(stats.migrations, 0);
        // (2, 6) is interleaved by the tighter (1, 2) deadlines.
        assert!(stats.preemptions > 0);
    }

    #[test]
    fn affinity_keeps_uncontended_tasks_put() {
        // Two tasks on two processors: each keeps its processor forever.
        let set = TaskSet::from_pairs([(1u64, 2u64), (2, 3)]).unwrap();
        let mut sim = GlobalEdfSim::new(&set, 2);
        let stats = sim.run(600);
        assert_eq!(stats.preemptions, 0);
        assert_eq!(stats.migrations, 0);
        assert_eq!(stats.deadline_misses, 0);
    }

    #[test]
    fn misses_scale_with_horizon() {
        let set = dhall_task_set(2, 10);
        let mut short = GlobalEdfSim::new(&set, 2);
        let s1 = short.run(100);
        let mut long = GlobalEdfSim::new(&set, 2);
        let s2 = long.run(1_000);
        assert!(s2.deadline_misses > s1.deadline_misses);
    }
}
