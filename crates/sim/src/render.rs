//! ASCII schedule rendering — the visualization style of the paper's
//! Figs. 1 and 5, for examples, experiments, and debugging.

use pfair_model::{TaskId, TaskSet};
use std::fmt::Write as _;

/// Renders `schedule` (slot → tasks) as one `#`/`.` row per task, with a
/// slot ruler every five columns. `labels[i]` names task `i`; pass `None`
/// to use `T0, T1, …`.
pub fn render_schedule(
    schedule: &[Vec<TaskId>],
    n_tasks: usize,
    labels: Option<&[String]>,
) -> String {
    let horizon = schedule.len();
    let width = labels
        .map(|ls| ls.iter().map(String::len).max().unwrap_or(2))
        .unwrap_or(3 + n_tasks.to_string().len())
        .max(2);
    let mut out = String::new();
    for i in 0..n_tasks {
        let default_label;
        let label = match labels {
            Some(ls) => ls[i].as_str(),
            None => {
                default_label = format!("T{i}");
                &default_label
            }
        };
        let _ = write!(out, "{label:>width$} ");
        for slot in schedule {
            out.push(if slot.iter().any(|t| t.index() == i) {
                '#'
            } else {
                '.'
            });
        }
        out.push('\n');
    }
    // Ruler.
    let _ = write!(out, "{:>width$} ", "");
    for t in 0..horizon {
        out.push(if t % 10 == 0 {
            '|'
        } else if t % 5 == 0 {
            '+'
        } else {
            ' '
        });
    }
    out.push('\n');
    let _ = write!(out, "{:>width$} ", "");
    let mut t = 0;
    while t < horizon {
        let mark = t.to_string();
        let _ = write!(out, "{mark:<10}");
        t += 10;
    }
    out.push('\n');
    out
}

/// Renders a schedule with window markers for one task: `[` at each
/// pseudo-release, `)` at each pseudo-deadline (Fig. 1 style).
pub fn render_task_windows(tasks: &TaskSet, id: TaskId, horizon: u64) -> String {
    use pfair_core::subtask;
    let w = tasks.task(id).weight();
    let mut out = String::new();
    let mut i = 1u64;
    loop {
        let win = subtask::window(w, i);
        if win.release >= horizon {
            break;
        }
        let mut line = String::new();
        for t in 0..horizon {
            line.push(if t == win.release {
                '['
            } else if t + 1 == win.deadline {
                ')'
            } else if win.contains(t) {
                '-'
            } else {
                ' '
            });
        }
        let _ = writeln!(out, "T{i:<3} {line}");
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfair_model::TaskSet;

    #[test]
    fn renders_rows_and_ruler() {
        let schedule = vec![
            vec![TaskId(0), TaskId(1)],
            vec![TaskId(0)],
            vec![],
            vec![TaskId(1)],
        ];
        let s = render_schedule(&schedule, 2, None);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // 2 tasks + 2 ruler lines
        assert!(lines[0].contains("##.."));
        assert!(lines[1].contains("#..#"));
    }

    #[test]
    fn custom_labels() {
        let schedule = vec![vec![TaskId(0)]];
        let s = render_schedule(&schedule, 1, Some(&["V(1/2)".to_string()]));
        assert!(s.starts_with("V(1/2) #"));
    }

    #[test]
    fn window_rendering_matches_fig1a() {
        let tasks = TaskSet::from_pairs([(8u64, 11u64)]).unwrap();
        let s = render_task_windows(&tasks, TaskId(0), 11);
        let first = s.lines().next().unwrap();
        // T1's window [0, 2): '[' at column 0 (after the "T1   " prefix),
        // ')' at column 1.
        assert!(first.starts_with("T1   [)"));
        // Eight subtask windows open before slot 11.
        assert_eq!(s.lines().count(), 8);
    }
}
