//! Schedule verification: window containment.
//!
//! [`pfair_core::lag::check_pfair`] validates the lag bound; this module
//! adds the equivalent (for synchronous periodic tasks) but more
//! diagnostic *window* view: the `k`-th quantum allocated to task `T` must
//! land inside `w(T_k) = [r(T_k), d(T_k))`. A schedule satisfies the lag
//! bound iff it satisfies window containment (paper, Section 2), and the
//! property tests assert exactly that equivalence.

use pfair_core::subtask;
use pfair_model::{Slot, TaskId, TaskSet};
use std::fmt;

/// A subtask scheduled outside its window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowViolation {
    /// The offending task.
    pub task: TaskId,
    /// 1-based subtask index.
    pub index: u64,
    /// Slot in which the subtask was scheduled.
    pub slot: Slot,
    /// The window it should have been inside.
    pub release: Slot,
    /// Window deadline.
    pub deadline: Slot,
}

impl fmt::Display for WindowViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "subtask {} of {} scheduled in slot {} outside window [{}, {})",
            self.index, self.task, self.slot, self.release, self.deadline
        )
    }
}

/// Checks window containment of a synchronous periodic schedule: the `k`-th
/// allocation of each task must fall within `[r(T_k), d(T_k))`. Returns the
/// first violation.
pub fn check_windows(tasks: &TaskSet, schedule: &[Vec<TaskId>]) -> Result<(), WindowViolation> {
    let mut check = IncrementalWindowCheck::new(tasks);
    for slot_tasks in schedule {
        check.observe_slot(slot_tasks)?;
    }
    Ok(())
}

/// Online version of [`check_windows`]: feed it each slot's scheduled
/// tasks as the simulation produces them and it reports the first window
/// violation immediately, without retaining the schedule. Used by the
/// fault-injection runner as an invariant watchdog — with fault injection
/// confined to the *execution* of quanta (never the scheduler's decision),
/// a plain-Pfair schedule of a synchronous periodic set must stay
/// window-containing even while faults rage.
///
/// Task ids outside the initial set (dynamically joined tasks) are
/// ignored: their windows are offset by their join slot, which this check
/// does not model. It is likewise only meaningful under
/// [`EarlyRelease::None`](pfair_core::EarlyRelease) and without IS delays,
/// both of which legitimately move allocations outside the synchronous
/// windows.
#[derive(Debug, Clone)]
pub struct IncrementalWindowCheck {
    weights: Vec<pfair_model::Weight>,
    counts: Vec<u64>,
    now: Slot,
}

impl IncrementalWindowCheck {
    /// A checker for the given (initial) task set.
    pub fn new(tasks: &TaskSet) -> Self {
        IncrementalWindowCheck {
            weights: tasks.iter().map(|(_, t)| t.weight()).collect(),
            counts: vec![0u64; tasks.len()],
            now: 0,
        }
    }

    /// Observes the scheduler's picks for the next slot.
    pub fn observe_slot(&mut self, slot_tasks: &[TaskId]) -> Result<(), WindowViolation> {
        let t = self.now;
        self.now += 1;
        for &id in slot_tasks {
            let Some(&w) = self.weights.get(id.index()) else {
                continue; // dynamically joined: windows not modeled
            };
            self.counts[id.index()] += 1;
            let k = self.counts[id.index()];
            let r = subtask::release(w, k);
            let d = subtask::deadline(w, k);
            if t < r || t >= d {
                return Err(WindowViolation {
                    task: id,
                    index: k,
                    slot: t,
                    release: r,
                    deadline: d,
                });
            }
        }
        Ok(())
    }

    /// Slots observed so far.
    pub fn slots_seen(&self) -> Slot {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MultiSim;
    use pfair_core::lag::check_pfair;
    use pfair_core::sched::SchedConfig;
    use pfair_core::Policy;
    use proptest::prelude::*;

    fn ts(pairs: &[(u64, u64)]) -> TaskSet {
        TaskSet::from_pairs(pairs.iter().copied()).unwrap()
    }

    #[test]
    fn accepts_pd2_schedule() {
        let set = ts(&[(2, 3), (2, 3), (2, 3)]);
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(2));
        sim.record_schedule();
        sim.run(30);
        assert_eq!(check_windows(&set, sim.schedule().unwrap()), Ok(()));
    }

    /// The incremental checker agrees with the batch checker slot for slot
    /// and ignores unknown (dynamically joined) ids.
    #[test]
    fn incremental_check_matches_batch() {
        let set = ts(&[(2, 3), (1, 2), (3, 7)]);
        let m = set.min_processors();
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(m));
        sim.record_schedule();
        sim.run(2 * set.hyperperiod());
        let schedule = sim.schedule().unwrap();

        let mut inc = IncrementalWindowCheck::new(&set);
        for slot in schedule {
            assert_eq!(inc.observe_slot(slot), Ok(()));
        }
        assert_eq!(inc.slots_seen(), 2 * set.hyperperiod());

        // A violation surfaces on exactly the offending slot…
        let mut inc = IncrementalWindowCheck::new(&ts(&[(1, 4)]));
        assert_eq!(inc.observe_slot(&[TaskId(0)]), Ok(()));
        let v = inc.observe_slot(&[TaskId(0)]).unwrap_err();
        assert_eq!((v.index, v.slot), (2, 1));
        // …and unknown ids are skipped rather than panicking.
        let mut inc = IncrementalWindowCheck::new(&ts(&[(1, 4)]));
        assert_eq!(inc.observe_slot(&[TaskId(7)]), Ok(()));
    }

    #[test]
    fn rejects_early_and_late() {
        let set = ts(&[(1, 4)]);
        // First window is [0, 4); scheduling in slot 4 is late for T1…
        let late = vec![vec![], vec![], vec![], vec![], vec![TaskId(0)]];
        let v = check_windows(&set, &late).unwrap_err();
        assert_eq!((v.index, v.slot), (1, 4));
        assert!(v.to_string().contains("outside window"));
        // …and the second subtask's window is [4, 8): slot 1 is early.
        let early = vec![vec![TaskId(0)], vec![TaskId(0)]];
        let v = check_windows(&set, &early).unwrap_err();
        assert_eq!((v.index, v.slot), (2, 1));
    }

    /// Window containment ⟺ Pfair lag bound, on randomly generated
    /// schedules. (Kept outside the proptest glob because proptest's
    /// prelude re-exports an incompatible `Rng` trait.)
    #[test]
    fn window_and_lag_checks_agree_on_real_schedules() {
        use rand::{Rng as _, SeedableRng as _};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..50 {
            // Random feasible set.
            let n = rng.gen_range(2..6);
            let mut pairs = Vec::new();
            for _ in 0..n {
                let p = rng.gen_range(2u64..12);
                let e = rng.gen_range(1..=p);
                pairs.push((e, p));
            }
            let set = ts(&pairs);
            let m = set.min_processors();
            let mut sim = MultiSim::new(&set, SchedConfig::pd2(m));
            sim.record_schedule();
            sim.run(2 * set.hyperperiod().min(5_000));
            let schedule = sim.schedule().unwrap().to_vec();
            let lag_ok = check_pfair(&set, &schedule, m).is_ok();
            let win_ok = check_windows(&set, &schedule).is_ok();
            assert_eq!(lag_ok, win_ok, "set {pairs:?}");
            assert!(win_ok, "PD2 schedules are always valid: {pairs:?}");
        }
    }

    proptest! {
        /// PD² passes both checks for arbitrary feasible task sets — the
        /// optimality property (Srinivasan & Anderson [39]) observed
        /// empirically.
        #[test]
        fn prop_pd2_always_valid(
            raw in prop::collection::vec((1u64..8, 2u64..14), 2..7),
            seed_m_extra in 0u32..2,
        ) {
            let pairs: Vec<(u64, u64)> = raw.iter().map(|&(e, p)| (e.min(p), p)).collect();
            let set = ts(&pairs);
            let m = set.min_processors() + seed_m_extra;
            let horizon = (2 * set.hyperperiod()).min(4_000);
            let mut sim = MultiSim::new(&set, SchedConfig::pd2(m));
            sim.record_schedule();
            sim.run(horizon);
            prop_assert_eq!(sim.metrics().misses, 0);
            prop_assert_eq!(check_windows(&set, sim.schedule().unwrap()), Ok(()));
            prop_assert!(check_pfair(&set, sim.schedule().unwrap(), m).is_ok());
        }

        /// PF and PD are optimal too: no misses on feasible sets.
        #[test]
        fn prop_pf_pd_optimal(
            raw in prop::collection::vec((1u64..6, 2u64..10), 2..6),
            pol in prop::sample::select(vec![Policy::Pf, Policy::Pd]),
        ) {
            let pairs: Vec<(u64, u64)> = raw.iter().map(|&(e, p)| (e.min(p), p)).collect();
            let set = ts(&pairs);
            let m = set.min_processors();
            let horizon = (2 * set.hyperperiod()).min(3_000);
            let mut sim = MultiSim::new(&set, SchedConfig::pd2(m).with_policy(pol));
            let metrics = sim.run(horizon);
            prop_assert_eq!(metrics.misses, 0, "{} missed", pol.name());
        }
    }
}
