//! Schedule verification: window containment.
//!
//! [`pfair_core::lag::check_pfair`] validates the lag bound; this module
//! adds the equivalent (for synchronous periodic tasks) but more
//! diagnostic *window* view: the `k`-th quantum allocated to task `T` must
//! land inside `w(T_k) = [r(T_k), d(T_k))`. A schedule satisfies the lag
//! bound iff it satisfies window containment (paper, Section 2), and the
//! property tests assert exactly that equivalence.
//!
//! # Event-aware verification
//!
//! Faulted runs perturb the scheduler in ways the synchronous windows do
//! not model — but every perturbation the simulator supports has an exact
//! window-level meaning, so a perturbed schedule is still checkable given
//! the [`TraceEvent`] record of what happened:
//!
//! * [`TraceEvent::Burst`] — the IS model: job `j` arriving `δ` late adds
//!   `δ` to the task's cumulative offset θ, and subtask `T_k` of job ≥ `j`
//!   occupies `[r(T_k) + θ, d(T_k) + θ)` (paper, Section 3).
//! * [`TraceEvent::Shed`] — the task leaves under the safe leave rule and
//!   is dropped from the check at its departure slot; any later
//!   allocation to it is a violation.
//! * [`TraceEvent::Rejoin`] — the §5.2 join rule: the new incarnation's
//!   windows are the synchronous windows shifted right by the join slot
//!   (the scheduler admits it with θ = join time).
//! * [`TraceEvent::CatchUp`] — ERfair: from the trip slot on, subtasks
//!   may legally run *before* their Pfair releases, so only the deadline
//!   half of each window — equivalent to the ERfair lag bound
//!   `lag < 1` — remains enforceable.
//! * [`TraceEvent::Capacity`], [`TraceEvent::ProcDown`],
//!   [`TraceEvent::QuantumLoss`], [`TraceEvent::Overrun`] — no effect on
//!   window containment (capacity only shrinks the per-slot pick count;
//!   the others steal useful work without touching the scheduler).
//!
//! Feed events to [`IncrementalWindowCheck::apply_event`] as they happen
//! (or use [`check_windows_with_events`] for an archived schedule) and
//! every recovery policy becomes verifiable, not just fault-free runs.

use crate::trace::TraceEvent;
use pfair_core::subtask;
use pfair_model::{Slot, Task, TaskId, TaskSet, Weight};
use std::fmt;

/// A subtask scheduled outside its window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowViolation {
    /// The offending task.
    pub task: TaskId,
    /// 1-based subtask index.
    pub index: u64,
    /// Slot in which the subtask was scheduled.
    pub slot: Slot,
    /// The window it should have been inside.
    pub release: Slot,
    /// Window deadline.
    pub deadline: Slot,
}

impl fmt::Display for WindowViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "subtask {} of {} scheduled in slot {} outside window [{}, {})",
            self.index, self.task, self.slot, self.release, self.deadline
        )
    }
}

/// Checks window containment of a synchronous periodic schedule: the `k`-th
/// allocation of each task must fall within `[r(T_k), d(T_k))`. Returns the
/// first violation.
pub fn check_windows(tasks: &TaskSet, schedule: &[Vec<TaskId>]) -> Result<(), WindowViolation> {
    check_windows_with_events(tasks, schedule, &[])
}

/// Checks window containment of an archived schedule under the recorded
/// fault/recovery events (see the module docs for the per-event
/// semantics). Job-keyed burst events apply from the start; slot-keyed
/// events are applied before their slot is checked, in slot order.
///
/// With an empty event list this is exactly the strict synchronous check.
pub fn check_windows_with_events(
    tasks: &TaskSet,
    schedule: &[Vec<TaskId>],
    events: &[TraceEvent],
) -> Result<(), WindowViolation> {
    let mut check = IncrementalWindowCheck::new(tasks);
    let mut slotted: Vec<&TraceEvent> = Vec::new();
    for ev in events {
        match ev.slot() {
            None => check.apply_event(ev), // job-keyed: applies globally
            Some(_) => slotted.push(ev),
        }
    }
    // Stable by slot, preserving recorded order within a slot (a shed and
    // a rejoin can share one).
    slotted.sort_by_key(|ev| ev.slot());
    let mut next = 0;
    for (t, slot_tasks) in schedule.iter().enumerate() {
        while next < slotted.len() && slotted[next].slot() <= Some(t as Slot) {
            check.apply_event(slotted[next]);
            next += 1;
        }
        check.observe_slot(slot_tasks)?;
    }
    Ok(())
}

/// Per-task window bookkeeping for [`IncrementalWindowCheck`].
#[derive(Debug, Clone)]
struct CheckTask {
    weight: Weight,
    /// Unreduced per-job execution cost (job boundaries depend on it).
    exec: u64,
    /// Allocations observed so far (the last seen subtask index).
    count: u64,
    /// Slot the task's windows are measured from (join slot; 0 initially).
    origin: Slot,
    /// Cleared when the task is shed: no further allocations are legal.
    active: bool,
    /// Recorded burst delays as `(job, delay)`, ascending by job.
    bursts: Vec<(u64, u64)>,
}

impl CheckTask {
    /// Total window shift of subtask `k`: the origin plus the cumulative
    /// IS offset θ through `k`'s job — mirroring the scheduler, which adds
    /// each job's delay to θ when it queues the job's first subtask.
    fn shift(&self, k: u64) -> Slot {
        let job = (k - 1) / self.exec;
        let theta: u64 = self
            .bursts
            .iter()
            .take_while(|&&(j, _)| j <= job)
            .map(|&(_, d)| d)
            .sum();
        self.origin + theta
    }
}

/// Online version of [`check_windows`] / [`check_windows_with_events`]:
/// feed it each slot's scheduled tasks as the simulation produces them and
/// it reports the first window violation immediately, without retaining
/// the schedule. Used by the fault-injection runner as an invariant
/// watchdog over *every* recovery policy: perturbations are accounted for
/// by feeding their [`TraceEvent`]s through [`Self::apply_event`] before
/// the affected slot is observed.
#[derive(Debug, Clone)]
pub struct IncrementalWindowCheck {
    tasks: Vec<CheckTask>,
    now: Slot,
    /// Slot from which ERfair catch-up relaxes the release half of the
    /// check (`None` = never engaged: strict windows throughout).
    er_from: Option<Slot>,
}

impl IncrementalWindowCheck {
    /// A checker for the given (initial) task set.
    pub fn new(tasks: &TaskSet) -> Self {
        IncrementalWindowCheck {
            tasks: tasks
                .iter()
                .map(|(_, t)| CheckTask {
                    weight: t.weight(),
                    exec: t.exec,
                    count: 0,
                    origin: 0,
                    active: true,
                    bursts: Vec::new(),
                })
                .collect(),
            now: 0,
            er_from: None,
        }
    }

    /// Incorporates one recorded event (see the module docs). Slot-keyed
    /// events must be applied before the slot they are keyed to is
    /// observed; burst events may be applied at any point before the
    /// delayed job's subtasks appear. Events that do not affect window
    /// containment are accepted and ignored, so callers can feed the raw
    /// stream. Inconsistent rejoins (ids that do not extend the task list,
    /// or invalid parameters) are ignored rather than trusted.
    pub fn apply_event(&mut self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Burst { task, job, delay } => {
                if let Some(ct) = self.tasks.get_mut(task as usize) {
                    let pos = ct.bursts.partition_point(|&(j, _)| j < job);
                    ct.bursts.insert(pos, (job, delay));
                }
            }
            TraceEvent::Shed { task, .. } => {
                if let Some(ct) = self.tasks.get_mut(task as usize) {
                    ct.active = false;
                }
            }
            TraceEvent::Rejoin {
                slot,
                task,
                exec,
                period,
            } => {
                // The scheduler assigns fresh ids densely, so an honest
                // rejoin extends the list by exactly one.
                if task as usize == self.tasks.len() {
                    if let Ok(t) = Task::new(exec, period) {
                        self.tasks.push(CheckTask {
                            weight: t.weight(),
                            exec: t.exec,
                            count: 0,
                            origin: slot,
                            active: true,
                            bursts: Vec::new(),
                        });
                    }
                }
            }
            TraceEvent::CatchUp { slot } => {
                self.er_from = Some(self.er_from.map_or(slot, |s| s.min(slot)));
            }
            TraceEvent::ProcDown { .. }
            | TraceEvent::QuantumLoss { .. }
            | TraceEvent::Overrun { .. }
            | TraceEvent::Capacity { .. } => {}
        }
    }

    /// Observes the scheduler's picks for the next slot.
    pub fn observe_slot(&mut self, slot_tasks: &[TaskId]) -> Result<(), WindowViolation> {
        let t = self.now;
        self.now += 1;
        let relaxed = self.er_from.is_some_and(|s| t >= s);
        for &id in slot_tasks {
            let Some(ct) = self.tasks.get_mut(id.index()) else {
                continue; // joined outside the event record: not modeled
            };
            let k = ct.count + 1;
            let shift = ct.shift(k);
            let r = subtask::release(ct.weight, k) + shift;
            let d = subtask::deadline(ct.weight, k) + shift;
            // A shed task must never be scheduled again; its next window
            // is as good a diagnostic as any.
            let early = t < r && !relaxed;
            if !ct.active || early || t >= d {
                return Err(WindowViolation {
                    task: id,
                    index: k,
                    slot: t,
                    release: r,
                    deadline: d,
                });
            }
            ct.count = k;
        }
        Ok(())
    }

    /// Slots observed so far.
    pub fn slots_seen(&self) -> Slot {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MultiSim;
    use pfair_core::lag::check_pfair;
    use pfair_core::sched::SchedConfig;
    use pfair_core::Policy;
    use proptest::prelude::*;

    fn ts(pairs: &[(u64, u64)]) -> TaskSet {
        TaskSet::from_pairs(pairs.iter().copied()).unwrap()
    }

    #[test]
    fn accepts_pd2_schedule() {
        let set = ts(&[(2, 3), (2, 3), (2, 3)]);
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(2));
        sim.record_schedule();
        sim.run(30);
        assert_eq!(check_windows(&set, sim.schedule().unwrap()), Ok(()));
    }

    /// The incremental checker agrees with the batch checker slot for slot
    /// and ignores unknown (dynamically joined) ids.
    #[test]
    fn incremental_check_matches_batch() {
        let set = ts(&[(2, 3), (1, 2), (3, 7)]);
        let m = set.min_processors();
        let mut sim = MultiSim::new(&set, SchedConfig::pd2(m));
        sim.record_schedule();
        sim.run(2 * set.hyperperiod());
        let schedule = sim.schedule().unwrap();

        let mut inc = IncrementalWindowCheck::new(&set);
        for slot in schedule {
            assert_eq!(inc.observe_slot(slot), Ok(()));
        }
        assert_eq!(inc.slots_seen(), 2 * set.hyperperiod());

        // A violation surfaces on exactly the offending slot…
        let mut inc = IncrementalWindowCheck::new(&ts(&[(1, 4)]));
        assert_eq!(inc.observe_slot(&[TaskId(0)]), Ok(()));
        let v = inc.observe_slot(&[TaskId(0)]).unwrap_err();
        assert_eq!((v.index, v.slot), (2, 1));
        // …and unknown ids are skipped rather than panicking.
        let mut inc = IncrementalWindowCheck::new(&ts(&[(1, 4)]));
        assert_eq!(inc.observe_slot(&[TaskId(7)]), Ok(()));
    }

    #[test]
    fn rejects_early_and_late() {
        let set = ts(&[(1, 4)]);
        // First window is [0, 4); scheduling in slot 4 is late for T1…
        let late = vec![vec![], vec![], vec![], vec![], vec![TaskId(0)]];
        let v = check_windows(&set, &late).unwrap_err();
        assert_eq!((v.index, v.slot), (1, 4));
        assert!(v.to_string().contains("outside window"));
        // …and the second subtask's window is [4, 8): slot 1 is early.
        let early = vec![vec![TaskId(0)], vec![TaskId(0)]];
        let v = check_windows(&set, &early).unwrap_err();
        assert_eq!((v.index, v.slot), (2, 1));
    }

    /// A burst event shifts the task's later windows right, making an
    /// otherwise-early allocation illegal and an otherwise-late one legal.
    #[test]
    fn burst_event_shifts_windows() {
        let set = ts(&[(1, 4)]);
        // Job 1 (subtask 2) delayed by 2: its window moves [4, 8) → [6, 10).
        let burst = TraceEvent::Burst {
            task: 0,
            job: 1,
            delay: 2,
        };
        // Slot 5 is legal synchronously but early under the burst…
        let mut sched = vec![
            vec![TaskId(0)],
            vec![],
            vec![],
            vec![],
            vec![],
            vec![TaskId(0)],
        ];
        assert_eq!(check_windows(&set, &sched), Ok(()));
        let v = check_windows_with_events(&set, &sched, &[burst]).unwrap_err();
        assert_eq!((v.index, v.slot, v.release), (2, 5, 6));
        // …while slot 8 is late synchronously but fine under the burst.
        sched.truncate(5);
        sched.extend([vec![], vec![], vec![], vec![TaskId(0)]]);
        assert!(check_windows(&set, &sched).is_err());
        assert_eq!(check_windows_with_events(&set, &sched, &[burst]), Ok(()));
    }

    /// Shed drops the task from the check at its slot; a later allocation
    /// to the departed id is flagged.
    #[test]
    fn shed_event_drops_task_and_flags_zombies() {
        let set = ts(&[(1, 2), (1, 4)]);
        let shed = TraceEvent::Shed { slot: 2, task: 1 };
        // Task 1 scheduled at slot 0, then shed at slot 2: clean.
        let clean = vec![vec![TaskId(0), TaskId(1)], vec![], vec![TaskId(0)], vec![]];
        assert_eq!(check_windows_with_events(&set, &clean, &[shed]), Ok(()));
        // The same schedule with a post-shed allocation is rejected.
        let zombie = vec![
            vec![TaskId(0), TaskId(1)],
            vec![],
            vec![TaskId(0)],
            vec![TaskId(1)],
        ];
        let v = check_windows_with_events(&set, &zombie, &[shed]).unwrap_err();
        assert_eq!((v.task, v.slot), (TaskId(1), 3));
    }

    /// A rejoined task's windows start at its join slot (§5.2 join rule).
    #[test]
    fn rejoin_event_models_shifted_windows() {
        let set = ts(&[(1, 2)]);
        let events = [
            TraceEvent::Shed { slot: 0, task: 0 },
            TraceEvent::Rejoin {
                slot: 3,
                task: 1,
                exec: 1,
                period: 2,
            },
        ];
        // New id 1 joins at slot 3: first window [3, 5), second [5, 7).
        let ok = vec![
            vec![],
            vec![],
            vec![],
            vec![TaskId(1)],
            vec![],
            vec![TaskId(1)],
        ];
        assert_eq!(check_windows_with_events(&set, &ok, &events), Ok(()));
        // Scheduling it before the join-shifted release is a violation.
        let early = vec![vec![], vec![], vec![], vec![TaskId(1)], vec![TaskId(1)]];
        let v = check_windows_with_events(&set, &early, &events).unwrap_err();
        assert_eq!((v.task, v.index, v.slot, v.release), (TaskId(1), 2, 4, 5));
    }

    /// From the catch-up slot on, early allocations are legal (ERfair) but
    /// late ones still are not.
    #[test]
    fn catchup_event_relaxes_releases_only() {
        let set = ts(&[(1, 4)]);
        // Subtask 2's window is [4, 8); slot 1 is early.
        let early = vec![vec![TaskId(0)], vec![TaskId(0)]];
        assert!(check_windows(&set, &early).is_err());
        let engaged = [TraceEvent::CatchUp { slot: 1 }];
        assert_eq!(check_windows_with_events(&set, &early, &engaged), Ok(()));
        // …but only from the trip slot: engaged at slot 2 it is still early.
        let late_trip = [TraceEvent::CatchUp { slot: 2 }];
        assert!(check_windows_with_events(&set, &early, &late_trip).is_err());
        // Deadlines keep biting under ER: slot 8 is past subtask 2's d.
        let late = vec![
            vec![TaskId(0)],
            vec![],
            vec![],
            vec![],
            vec![],
            vec![],
            vec![],
            vec![],
            vec![TaskId(0)],
        ];
        assert!(check_windows_with_events(&set, &late, &engaged).is_err());
    }

    /// Window containment ⟺ Pfair lag bound, on randomly generated
    /// schedules. (Kept outside the proptest glob because proptest's
    /// prelude re-exports an incompatible `Rng` trait.)
    #[test]
    fn window_and_lag_checks_agree_on_real_schedules() {
        use rand::{Rng as _, SeedableRng as _};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..50 {
            // Random feasible set.
            let n = rng.gen_range(2..6);
            let mut pairs = Vec::new();
            for _ in 0..n {
                let p = rng.gen_range(2u64..12);
                let e = rng.gen_range(1..=p);
                pairs.push((e, p));
            }
            let set = ts(&pairs);
            let m = set.min_processors();
            let mut sim = MultiSim::new(&set, SchedConfig::pd2(m));
            sim.record_schedule();
            sim.run(2 * set.hyperperiod().min(5_000));
            let schedule = sim.schedule().unwrap().to_vec();
            let lag_ok = check_pfair(&set, &schedule, m).is_ok();
            let win_ok = check_windows(&set, &schedule).is_ok();
            assert_eq!(lag_ok, win_ok, "set {pairs:?}");
            assert!(win_ok, "PD2 schedules are always valid: {pairs:?}");
        }
    }

    proptest! {
        /// PD² passes both checks for arbitrary feasible task sets — the
        /// optimality property (Srinivasan & Anderson [39]) observed
        /// empirically.
        #[test]
        fn prop_pd2_always_valid(
            raw in prop::collection::vec((1u64..8, 2u64..14), 2..7),
            seed_m_extra in 0u32..2,
        ) {
            let pairs: Vec<(u64, u64)> = raw.iter().map(|&(e, p)| (e.min(p), p)).collect();
            let set = ts(&pairs);
            let m = set.min_processors() + seed_m_extra;
            let horizon = (2 * set.hyperperiod()).min(4_000);
            let mut sim = MultiSim::new(&set, SchedConfig::pd2(m));
            sim.record_schedule();
            sim.run(horizon);
            prop_assert_eq!(sim.metrics().misses, 0);
            prop_assert_eq!(check_windows(&set, sim.schedule().unwrap()), Ok(()));
            prop_assert!(check_pfair(&set, sim.schedule().unwrap(), m).is_ok());
        }

        /// PF and PD are optimal too: no misses on feasible sets.
        #[test]
        fn prop_pf_pd_optimal(
            raw in prop::collection::vec((1u64..6, 2u64..10), 2..6),
            pol in prop::sample::select(vec![Policy::Pf, Policy::Pd]),
        ) {
            let pairs: Vec<(u64, u64)> = raw.iter().map(|&(e, p)| (e.min(p), p)).collect();
            let set = ts(&pairs);
            let m = set.min_processors();
            let horizon = (2 * set.hyperperiod()).min(3_000);
            let mut sim = MultiSim::new(&set, SchedConfig::pd2(m).with_policy(pol));
            let metrics = sim.run(horizon);
            prop_assert_eq!(metrics.misses, 0, "{} missed", pol.name());
        }
    }
}
