//! Differential tests: the event-driven scheduler core must produce
//! **byte-identical** schedules to the slow reference oracle (per-slot
//! scan, exact rational tags, full sort) across every workload shape the
//! paper exercises — periodic, ERfair, IS-burst, and join/leave — for all
//! five policies and both residual id orders. CI runs this suite as the
//! trace-diff gate for the fast core.

use pfair_core::sched::{
    CoreKind, DelayModel, EarlyRelease, MapDelays, PfairScheduler, SchedConfig, SporadicDelays,
};
use pfair_core::Policy;
use pfair_model::{Task, TaskId, TaskSet};
use proptest::prelude::*;
use sched_sim::MultiSim;

fn ts(pairs: &[(u64, u64)]) -> TaskSet {
    TaskSet::from_pairs(pairs.iter().copied()).unwrap()
}

/// Every (policy, id-order, eligibility) combination the scheduler
/// supports.
fn all_configs(m: u32) -> Vec<SchedConfig> {
    let mut cfgs = Vec::new();
    for pol in Policy::ALL {
        for er in [
            EarlyRelease::None,
            EarlyRelease::IntraJob,
            EarlyRelease::Unrestricted,
        ] {
            for hif in [false, true] {
                cfgs.push(
                    SchedConfig::pd2(m)
                        .with_policy(pol)
                        .with_early_release(er)
                        .with_higher_id_first(hif),
                );
            }
        }
    }
    cfgs
}

/// Runs the same scheduler twice — fast and reference — and asserts the
/// slot-by-slot schedules and recorded misses are identical.
fn assert_cores_agree<D, F>(make: F, cfg: SchedConfig, horizon: u64)
where
    D: DelayModel,
    F: Fn(SchedConfig) -> PfairScheduler<D>,
{
    let mut fast = make(cfg);
    let mut slow = make(cfg.with_core(CoreKind::Reference));
    let fast_sched = fast.run(horizon);
    let slow_sched = slow.run(horizon);
    assert_eq!(
        fast_sched, slow_sched,
        "schedule diverged: {:?} er={:?} hif={}",
        cfg.policy, cfg.early_release, cfg.higher_id_first
    );
    assert_eq!(fast.misses(), slow.misses());
}

#[test]
fn periodic_all_policies_and_orders() {
    let set = ts(&[(8, 11), (1, 3), (2, 5), (5, 7), (3, 4), (1, 2), (2, 3)]);
    let m = set.min_processors();
    for cfg in all_configs(m) {
        assert_cores_agree(|c| PfairScheduler::new(&set, c), cfg, 400);
    }
}

#[test]
fn full_utilization_heavy_set() {
    // All-heavy full utilization is where group-deadline tie-breaks (and
    // the packed gd field) carry the schedule.
    let set = ts(&[(2, 3), (2, 3), (2, 3), (3, 4), (3, 4), (5, 6), (11, 12)]);
    // Σ = 2+3/2+5/6+11/12 = 5.25 → 6 processors with slack; also try exact.
    for m in [6u32] {
        for cfg in all_configs(m) {
            assert_cores_agree(|c| PfairScheduler::new(&set, c), cfg, 300);
        }
    }
}

#[test]
fn is_burst_delays_match() {
    // IS-delayed releases (the paper's Fig. 1(b) shape, scaled up): a
    // handful of subtasks across tasks release late.
    let set = ts(&[(8, 11), (2, 5), (1, 2), (3, 7)]);
    let m = set.min_processors();
    let delays = {
        let mut d = MapDelays::new();
        d.insert(TaskId(0), 5, 2)
            .insert(TaskId(0), 13, 1)
            .insert(TaskId(1), 2, 4)
            .insert(TaskId(2), 7, 3)
            .insert(TaskId(3), 1, 1);
        d
    };
    for cfg in all_configs(m) {
        assert_cores_agree(
            |c| PfairScheduler::with_delays(&set, c, delays.clone()),
            cfg,
            400,
        );
    }
}

#[test]
fn sporadic_job_delays_match() {
    let set = ts(&[(2, 4), (3, 6), (1, 3)]);
    let m = set.min_processors();
    let delays = {
        let mut d = SporadicDelays::for_tasks(&set);
        d.delay_job(TaskId(0), 1, 3)
            .delay_job(TaskId(1), 0, 2)
            .delay_job(TaskId(2), 4, 7);
        d
    };
    for cfg in all_configs(m) {
        assert_cores_agree(
            |c| PfairScheduler::with_delays(&set, c, delays.clone()),
            cfg,
            300,
        );
    }
}

#[test]
fn asynchronous_phases_match() {
    let set = ts(&[(1, 2), (2, 3), (1, 6), (3, 8)]);
    let phases = [0u64, 1, 5, 11];
    for cfg in all_configs(2) {
        assert_cores_agree(|c| PfairScheduler::with_phases(&set, &phases, c), cfg, 300);
    }
}

/// Drives an identical join/leave script against both cores.
#[test]
fn join_leave_churn_matches() {
    let set = ts(&[(1, 2), (1, 3)]);
    type ChurnStep = (u64, Option<(u64, u64)>, Option<u32>);
    let script: &[ChurnStep] = &[
        // (slot, join (e, p), leave id)
        (4, Some((2, 5)), None),
        (9, None, Some(1)),
        (15, Some((1, 4)), None),
        (22, Some((1, 6)), None),
        (30, None, Some(2)),
        (41, Some((2, 3)), None),
    ];
    for pol in Policy::ALL {
        for hif in [false, true] {
            let cfg = SchedConfig::pd2(2)
                .with_policy(pol)
                .with_higher_id_first(hif);
            let run = |c: SchedConfig| {
                let mut sched = PfairScheduler::new(&set, c);
                let mut schedule = Vec::new();
                let mut out = Vec::new();
                for t in 0..80u64 {
                    for &(at, join, leave) in script {
                        if at == t {
                            if let Some((e, p)) = join {
                                let _ = sched.join(Task::new(e, p).unwrap(), t);
                            }
                            if let Some(id) = leave {
                                let _ = sched.leave(TaskId(id), t);
                            }
                        }
                    }
                    out.clear();
                    sched.tick(t, &mut out);
                    schedule.push(out.clone());
                }
                (schedule, sched.misses().to_vec())
            };
            let fast = run(cfg);
            let slow = run(cfg.with_core(CoreKind::Reference));
            assert_eq!(fast, slow, "{} hif={hif} diverged", pol.name());
        }
    }
}

/// The cores agree when driven through the full simulator dispatch path
/// (affinity assignment, preemption/migration accounting): identical
/// schedules force identical [`sched_sim::RunMetrics`].
#[test]
fn simulator_metrics_match_across_cores() {
    let set = ts(&[(8, 11), (1, 3), (2, 5), (5, 7), (3, 4)]);
    let m = set.min_processors();
    for pol in Policy::ALL {
        let cfg = SchedConfig::pd2(m).with_policy(pol);
        let mut fast = MultiSim::new(&set, cfg);
        fast.record_schedule();
        let fm = fast.run(500);
        let mut slow = MultiSim::new(&set, cfg.with_core(CoreKind::Reference));
        slow.record_schedule();
        let sm = slow.run(500);
        assert_eq!(fm, sm, "{} metrics diverged", pol.name());
        assert_eq!(fast.schedule().unwrap(), slow.schedule().unwrap());
    }
}

/// The cores agree under fault injection: the fault layer perturbs
/// execution downstream of the scheduling decision, so identical schedules
/// force identical fault metrics too.
#[test]
fn fault_hook_runs_match_across_cores() {
    use sched_sim::{FaultHook, SlotFaults};

    struct PeriodicFaults;
    impl FaultHook for PeriodicFaults {
        fn slot_faults(&mut self, t: u64, _m: u32, out: &mut SlotFaults) {
            if t % 17 == 4 {
                out.down.push(0);
            }
            if t % 23 == 9 {
                out.wasted.push(1);
            }
        }
        fn overrun(&mut self, task: TaskId, job: u64) -> u64 {
            u64::from(task == TaskId(1) && job == 2)
        }
    }

    let set = ts(&[(2, 3), (2, 3), (2, 3), (1, 2)]);
    let run = |cfg: SchedConfig| {
        let mut sim = MultiSim::new(&set, cfg);
        sim.record_schedule();
        sim.set_fault_hook(Box::new(PeriodicFaults));
        let metrics = sim.run(400);
        let faults = sim.finalize_faults();
        (metrics, faults, sim.schedule().unwrap().to_vec())
    };
    let cfg = SchedConfig::pd2(3);
    let fast = run(cfg);
    let slow = run(cfg.with_core(CoreKind::Reference));
    assert_eq!(fast.0, slow.0);
    assert_eq!(fast.1, slow.1);
    assert_eq!(fast.2, slow.2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Differential fuzz: random feasible task sets, random policy/order,
    /// identical schedules over a medium horizon.
    #[test]
    fn fuzz_random_task_sets(
        raw in prop::collection::vec((1u64..8, 2u64..16), 1..8),
        pol in prop::sample::select(Policy::ALL.to_vec()),
        er_raw in 0u32..3,
        hif_raw in 0u32..2,
    ) {
        let set = TaskSet::from_pairs(raw.into_iter().map(|(e, p)| (e.min(p), p))).unwrap();
        let m = set.min_processors();
        let er = match er_raw {
            0 => EarlyRelease::None,
            1 => EarlyRelease::IntraJob,
            _ => EarlyRelease::Unrestricted,
        };
        let cfg = SchedConfig::pd2(m)
            .with_policy(pol)
            .with_early_release(er)
            .with_higher_id_first(hif_raw == 1);
        let horizon = (2 * set.hyperperiod()).min(1_500);
        let mut fast = PfairScheduler::new(&set, cfg);
        let mut slow = PfairScheduler::new(&set, cfg.with_core(CoreKind::Reference));
        prop_assert_eq!(fast.run(horizon), slow.run(horizon));
        prop_assert_eq!(fast.misses(), slow.misses());
    }
}
