//! Physical-time tasks (microsecond domain).
//!
//! The overhead-accounting experiments of the paper's Section 4 operate on
//! tasks whose execution costs and periods are physical durations: context
//! switches cost `C = 5 µs`, the PD² quantum is `q = 1 ms`, cache-related
//! preemption delays are tens of microseconds. [`PhysTask`] represents such
//! a task with integer microsecond parameters; conversion into the
//! quantum-domain `Task` used by the Pfair machinery rounds
//! the execution cost *up* to a whole number of quanta — the paper calls
//! this rounding out explicitly as "one source of schedulability loss in
//! PD²" (Section 4, "Challenges in Pfair scheduling").
//!
//! Periods are required to be multiples of the quantum, as the paper
//! assumes ("We assume that p is a multiple of q").

use crate::rat::Rat;
use crate::task::Task;
use crate::weight::WeightError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors converting physical-time tasks to the quantum domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantumError {
    /// The period is not a multiple of the quantum size.
    PeriodNotMultiple {
        /// Offending period (µs).
        period_us: u64,
        /// Quantum size (µs).
        quantum_us: u64,
    },
    /// After rounding, the task was invalid (e.g. execution exceeds period —
    /// the task is unschedulable at this quantum size).
    Invalid(WeightError),
    /// The quantum size was zero.
    ZeroQuantum,
}

impl fmt::Display for QuantumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantumError::PeriodNotMultiple {
                period_us,
                quantum_us,
            } => write!(
                f,
                "period {period_us}µs is not a multiple of the quantum {quantum_us}µs"
            ),
            QuantumError::Invalid(e) => write!(f, "task invalid after quantum rounding: {e}"),
            QuantumError::ZeroQuantum => write!(f, "quantum size is zero"),
        }
    }
}

impl std::error::Error for QuantumError {}

/// A task with physical-time parameters, in integer microseconds.
///
/// # Examples
///
/// ```
/// use pfair_model::PhysTask;
///
/// // 3.2 ms of work every 20 ms.
/// let t = PhysTask::new(3_200, 20_000);
/// assert!((t.utilization() - 0.16).abs() < 1e-12);
///
/// // With a 1 ms quantum the cost rounds up to 4 quanta out of 20.
/// let q = t.to_quantum_task(1_000).unwrap();
/// assert_eq!((q.exec, q.period), (4, 20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhysTask {
    /// Worst-case execution time per job, µs.
    pub wcet_us: u64,
    /// Period (and relative deadline), µs.
    pub period_us: u64,
}

impl PhysTask {
    /// Creates a physical task.
    ///
    /// # Panics
    ///
    /// Panics if `wcet_us == 0` or `period_us == 0`; a physical task *may*
    /// temporarily have `wcet > period` (it is then simply unschedulable,
    /// which the experiments need to detect rather than forbid).
    pub fn new(wcet_us: u64, period_us: u64) -> Self {
        assert!(wcet_us > 0, "zero WCET");
        assert!(period_us > 0, "zero period");
        PhysTask { wcet_us, period_us }
    }

    /// Utilization `wcet / period` as `f64` (physical domain is where the
    /// workspace tolerates floats; overhead math is µs-granular anyway).
    pub fn utilization(&self) -> f64 {
        self.wcet_us as f64 / self.period_us as f64
    }

    /// Exact utilization as a rational.
    pub fn utilization_exact(&self) -> Rat {
        Rat::new(self.wcet_us as i128, self.period_us as i128)
    }

    /// True iff the task cannot meet its deadline even alone on a processor.
    pub fn is_overloaded(&self) -> bool {
        self.wcet_us > self.period_us
    }

    /// Converts to a quantum-domain [`Task`]: execution rounds **up** to
    /// `⌈wcet/q⌉` quanta, the period must divide evenly into `period/q`
    /// quanta.
    pub fn to_quantum_task(&self, quantum_us: u64) -> Result<Task, QuantumError> {
        if quantum_us == 0 {
            return Err(QuantumError::ZeroQuantum);
        }
        if self.period_us % quantum_us != 0 {
            return Err(QuantumError::PeriodNotMultiple {
                period_us: self.period_us,
                quantum_us,
            });
        }
        let exec_q = self.wcet_us.div_ceil(quantum_us);
        let period_q = self.period_us / quantum_us;
        Task::new(exec_q, period_q).map_err(QuantumError::Invalid)
    }

    /// The quantum-rounded utilization `⌈wcet/q⌉ / (period/q)` — the
    /// utilization PD² actually "sees". Always ≥ [`Self::utilization`].
    pub fn quantized_utilization(&self, quantum_us: u64) -> Result<Rat, QuantumError> {
        self.to_quantum_task(quantum_us).map(|t| t.utilization())
    }
}

impl fmt::Display for PhysTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(wcet={}µs, p={}µs)", self.wcet_us, self.period_us)
    }
}

/// A set of physical-time tasks.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhysTaskSet {
    /// The tasks, indexed by position.
    pub tasks: Vec<PhysTask>,
}

impl PhysTaskSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a task, returning its index.
    pub fn push(&mut self, t: PhysTask) -> usize {
        self.tasks.push(t);
        self.tasks.len() - 1
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total utilization (f64; reporting/partitioning domain).
    pub fn total_utilization(&self) -> f64 {
        self.tasks.iter().map(PhysTask::utilization).sum()
    }

    /// Exact total utilization.
    pub fn total_utilization_exact(&self) -> Rat {
        self.tasks.iter().map(PhysTask::utilization_exact).sum()
    }

    /// Converts every task to the quantum domain (fails on the first task
    /// whose period is not quantum-aligned or that overflows a full
    /// processor after rounding).
    pub fn to_quantum_tasks(&self, quantum_us: u64) -> Result<crate::TaskSet, QuantumError> {
        self.tasks
            .iter()
            .map(|t| t.to_quantum_task(quantum_us))
            .collect::<Result<crate::TaskSet, _>>()
    }

    /// Iterate over tasks.
    pub fn iter(&self) -> std::slice::Iter<'_, PhysTask> {
        self.tasks.iter()
    }
}

impl FromIterator<PhysTask> for PhysTaskSet {
    fn from_iter<I: IntoIterator<Item = PhysTask>>(iter: I) -> Self {
        PhysTaskSet {
            tasks: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantum_rounding_rounds_up() {
        let t = PhysTask::new(1, 10_000); // 1 µs of work, 10 ms period
        let q = t.to_quantum_task(1_000).unwrap();
        // The paper: "if a task has a small execution requirement of ε, it
        // must be increased to 1 [quantum]".
        assert_eq!(q.exec, 1);
        assert_eq!(q.period, 10);
        assert!(q.utilization() > t.utilization_exact());
    }

    #[test]
    fn exact_multiple_does_not_round() {
        let t = PhysTask::new(3_000, 9_000);
        let q = t.to_quantum_task(1_000).unwrap();
        assert_eq!((q.exec, q.period), (3, 9));
        assert_eq!(q.utilization(), t.utilization_exact());
    }

    #[test]
    fn misaligned_period_rejected() {
        let t = PhysTask::new(100, 1_500);
        let err = t.to_quantum_task(1_000).unwrap_err();
        assert!(matches!(err, QuantumError::PeriodNotMultiple { .. }));
        assert!(err.to_string().contains("multiple"));
    }

    #[test]
    fn overload_after_rounding_rejected() {
        // 1.2 ms of work per 1 ms period can never fit.
        let t = PhysTask::new(1_200, 1_000);
        assert!(t.is_overloaded());
        assert!(matches!(
            t.to_quantum_task(1_000),
            Err(QuantumError::Invalid(_))
        ));
    }

    #[test]
    fn zero_quantum_rejected() {
        let t = PhysTask::new(10, 1_000);
        assert_eq!(t.to_quantum_task(0), Err(QuantumError::ZeroQuantum));
    }

    #[test]
    fn set_conversion_and_totals() {
        let set: PhysTaskSet = [PhysTask::new(500, 2_000), PhysTask::new(250, 1_000)]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
        assert!((set.total_utilization() - 0.5).abs() < 1e-12);
        assert_eq!(set.total_utilization_exact(), Rat::new(1, 2));
        let qs = set.to_quantum_tasks(1_000).unwrap();
        assert_eq!(qs.len(), 2);
        // 500µs rounds to 1 quantum of 2; 250µs rounds to 1 of 1.
        assert_eq!(qs.total_utilization(), Rat::new(3, 2));
    }

    proptest! {
        #[test]
        fn prop_quantization_never_decreases_utilization(
            wcet in 1u64..1_000_000,
            periods in 1u64..1_000,
            q in prop::sample::select(vec![100u64, 250, 500, 1_000, 2_000]),
        ) {
            let t = PhysTask::new(wcet, periods * q);
            if let Ok(qt) = t.to_quantum_task(q) {
                prop_assert!(qt.utilization() >= t.utilization_exact());
                // And the over-approximation is less than one quantum per
                // period: e_q − e/q < 1.
                let slack = qt.utilization() - t.utilization_exact();
                prop_assert!(slack < Rat::new(1, (t.period_us / q) as i128));
            }
        }
    }
}
