//! Exact signed rational arithmetic.
//!
//! Pfair lags and utilization sums must be computed exactly: the lag bound
//! `-1 < lag < 1` in the paper's Equation (1) is a strict rational
//! inequality, and a floating-point representation would make the property
//! tests in `sched-sim` unsound. [`Rat`] keeps a normalized `i128/i128`
//! representation; with task parameters bounded by `u64` and horizons below
//! `2^40` slots, all intermediate products fit comfortably in `i128`.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An exact rational number `num/den` with `den > 0`, stored in lowest terms.
///
/// # Examples
///
/// ```
/// use pfair_model::Rat;
///
/// let a = Rat::new(8, 11); // a task weight of 8/11
/// let b = Rat::new(3, 11);
/// assert_eq!(a + b, Rat::ONE);
/// assert!(a > Rat::new(1, 2)); // "heavy" in the paper's terminology
/// assert_eq!((a * Rat::from(22u64)).to_integer(), Some(16));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

/// Greatest common divisor (Stein's binary algorithm; inputs
/// non-negative). Shift/subtract only — `i128` division costs tens of
/// cycles per step and this sits on the admission (`WeightSum`) and lag
/// paths, where Euclid's remainder loop dominated profiles.
fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a as u128, b as u128);
    if a == 0 {
        return b as i128;
    }
    if b == 0 {
        return a as i128;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return (a << shift) as i128;
        }
    }
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates `num/den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "Rat with zero denominator");
        let sign = if (num < 0) != (den < 0) && num != 0 {
            -1
        } else {
            1
        };
        let (num, den) = (num.unsigned_abs(), den.unsigned_abs());
        let g = gcd(num as i128, den as i128).max(1);
        Rat {
            num: sign * (num as i128 / g),
            den: den as i128 / g,
        }
    }

    /// Numerator (sign-carrying) of the normalized representation.
    pub fn numer(self) -> i128 {
        self.num
    }

    /// Denominator (always positive) of the normalized representation.
    pub fn denom(self) -> i128 {
        self.den
    }

    /// `⌊self⌋`.
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// `⌈self⌉`.
    pub fn ceil(self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    /// Returns `Some(n)` if this rational is the integer `n`.
    pub fn to_integer(self) -> Option<i128> {
        (self.den == 1).then_some(self.num)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn recip(self) -> Self {
        Rat::new(self.den, self.num)
    }

    /// Absolute value.
    pub fn abs(self) -> Self {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Truthy when strictly negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Truthy when exactly zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Lossy conversion for reporting/statistics only (never used by the
    /// scheduling core).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Overflow-checked addition: `None` if the exact result does not fit
    /// the normalized `i128/i128` representation. Summing many rationals
    /// with unrelated denominators (e.g. hundreds of random task weights)
    /// legitimately exceeds `i128`; see `WeightSum` in the `weight` module
    /// for the graceful fallback.
    pub fn checked_add(self, rhs: Rat) -> Option<Rat> {
        let g = gcd(self.den, rhs.den);
        let lhs_scale = rhs.den / g;
        let rhs_scale = self.den / g;
        let num = self
            .num
            .checked_mul(lhs_scale)?
            .checked_add(rhs.num.checked_mul(rhs_scale)?)?;
        let den = self.den.checked_mul(lhs_scale)?;
        Some(Rat::new(num, den))
    }

    /// Overflow-checked subtraction.
    pub fn checked_sub(self, rhs: Rat) -> Option<Rat> {
        self.checked_add(-rhs)
    }

    /// `min` of two rationals.
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// `max` of two rationals.
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i128> for Rat {
    fn from(n: i128) -> Self {
        Rat { num: n, den: 1 }
    }
}

impl From<u64> for Rat {
    fn from(n: u64) -> Self {
        Rat {
            num: n as i128,
            den: 1,
        }
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Self {
        Rat {
            num: n as i128,
            den: 1,
        }
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        // Reduce by gcd of denominators first to keep intermediates small.
        let g = gcd(self.den, rhs.den);
        let lhs_scale = rhs.den / g;
        let rhs_scale = self.den / g;
        Rat::new(
            self.num * lhs_scale + rhs.num * rhs_scale,
            self.den * lhs_scale,
        )
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        // Cross-reduce before multiplying to avoid overflow.
        let g1 = gcd(self.num.abs().max(1), rhs.den);
        let g2 = gcd(rhs.num.abs().max(1), self.den);
        Rat::new(
            (self.num / g1) * (rhs.num / g2),
            (self.den / g2) * (rhs.den / g1),
        )
    }
}

impl Div for Rat {
    type Output = Rat;
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal is the definition
    fn div(self, rhs: Rat) -> Rat {
        self * rhs.recip()
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        // Fast path: den > 0 on both sides, so cross-multiplication
        // preserves order when the products fit.
        if let (Some(l), Some(r)) = (
            self.num.checked_mul(other.den),
            other.num.checked_mul(self.den),
        ) {
            return l.cmp(&r);
        }
        // Overflow-proof exact comparison by continued-fraction descent
        // (each step is one Euclid round; remainders strictly shrink).
        cmp_frac(self.num, self.den, other.num, other.den)
    }
}

/// Compares `a/b` vs `c/d` exactly without overflow; `b, d > 0`.
fn cmp_frac(a: i128, b: i128, c: i128, d: i128) -> Ordering {
    match (a.signum()).cmp(&c.signum()) {
        Ordering::Equal => {}
        other => return other,
    }
    match a.signum() {
        0 => Ordering::Equal,
        s if s < 0 => cmp_frac_pos(-c, d, -a, b),
        _ => cmp_frac_pos(a, b, c, d),
    }
}

/// Compares `a/b` vs `c/d` for strictly positive fractions.
fn cmp_frac_pos(mut a: i128, mut b: i128, mut c: i128, mut d: i128) -> Ordering {
    loop {
        let (qa, qc) = (a / b, c / d);
        if qa != qc {
            return qa.cmp(&qc);
        }
        let (ra, rc) = (a % b, c % d);
        match (ra == 0, rc == 0) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            (false, false) => {
                // Equal integer parts: compare ra/b vs rc/d, i.e. the
                // reciprocals flipped: d/rc vs b/ra.
                let (na, nb, nc, nd) = (d, rc, b, ra);
                a = na;
                b = nb;
                c = nc;
                d = nd;
            }
        }
    }
}

impl std::iter::Sum for Rat {
    fn sum<I: Iterator<Item = Rat>>(iter: I) -> Rat {
        iter.fold(Rat::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn normalization() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, 4), Rat::new(1, -2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(0, 7), Rat::ZERO);
        assert_eq!(Rat::new(0, -7).numer(), 0);
        assert_eq!(Rat::new(0, -7).denom(), 1);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::new(6, 2).floor(), 3);
        assert_eq!(Rat::new(6, 2).ceil(), 3);
        assert_eq!(Rat::ZERO.floor(), 0);
        assert_eq!(Rat::ZERO.ceil(), 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 3);
        let b = Rat::new(1, 6);
        assert_eq!(a + b, Rat::new(1, 2));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 18));
        assert_eq!(a / b, Rat::from(2u64));
        assert_eq!(-a, Rat::new(-1, 3));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(2, 3) > Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert!(Rat::new(5, 10) == Rat::new(1, 2));
        assert_eq!(Rat::new(3, 7).min(Rat::new(2, 7)), Rat::new(2, 7));
        assert_eq!(Rat::new(3, 7).max(Rat::new(2, 7)), Rat::new(3, 7));
    }

    #[test]
    fn sum_iterator() {
        let total: Rat = (1..=4u64).map(|i| Rat::new(1, i as i128)).sum();
        assert_eq!(total, Rat::new(25, 12));
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(8, 11).to_string(), "8/11");
        assert_eq!(Rat::from(3u64).to_string(), "3");
        assert_eq!(format!("{:?}", Rat::new(8, 11)), "8/11");
    }

    #[test]
    fn recip_and_to_integer() {
        assert_eq!(Rat::new(3, 4).recip(), Rat::new(4, 3));
        assert_eq!(Rat::new(8, 4).to_integer(), Some(2));
        assert_eq!(Rat::new(8, 5).to_integer(), None);
    }

    fn arb_rat() -> impl Strategy<Value = Rat> {
        (-1_000_000i128..1_000_000, 1i128..1_000_000).prop_map(|(n, d)| Rat::new(n, d))
    }

    proptest! {
        #[test]
        fn prop_add_commutative(a in arb_rat(), b in arb_rat()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn prop_add_associative(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn prop_mul_distributes(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn prop_sub_inverse(a in arb_rat(), b in arb_rat()) {
            prop_assert_eq!(a + b - b, a);
        }

        #[test]
        fn prop_floor_le_ceil(a in arb_rat()) {
            prop_assert!(Rat::from(a.floor()) <= a);
            prop_assert!(a <= Rat::from(a.ceil()));
            prop_assert!(a.ceil() - a.floor() <= 1);
        }

        #[test]
        fn prop_normalized(a in arb_rat()) {
            let g = super::gcd(a.numer().abs(), a.denom());
            prop_assert!(g == 1 || a.numer() == 0);
            prop_assert!(a.denom() > 0);
        }

        #[test]
        fn prop_cmp_overflow_path_matches_fast_path(
            n1 in 1i128..1_000_000, d1 in 1i128..1_000_000,
            n2 in 1i128..1_000_000, d2 in 1i128..1_000_000,
        ) {
            // The continued-fraction path must agree with cross
            // multiplication whenever both are applicable.
            let a = Rat::new(n1, d1);
            let b = Rat::new(n2, d2);
            prop_assert_eq!(
                super::cmp_frac(a.numer(), a.denom(), b.numer(), b.denom()),
                a.cmp(&b)
            );
            let na = -a;
            prop_assert_eq!(
                super::cmp_frac(na.numer(), na.denom(), b.numer(), b.denom()),
                na.cmp(&b)
            );
        }

        #[test]
        fn prop_order_consistent_with_f64(a in arb_rat(), b in arb_rat()) {
            // f64 has 53 bits of mantissa; inputs are < 2^40 so exact.
            let (fa, fb) = (a.to_f64(), b.to_f64());
            if fa < fb { prop_assert!(a < b); }
            if fa > fb { prop_assert!(a > b); }
        }
    }
}
