//! Quantum-domain tasks and task sets.
//!
//! A [`Task`] is the paper's periodic task `T` with integer execution cost
//! `T.e` and integer period `T.p`, both measured in quanta. The same
//! parameters describe sporadic and intra-sporadic tasks — those models
//! differ only in *when* subtasks/jobs become eligible, which is behaviour
//! owned by `pfair-core`'s release processes, not by the static description.

use crate::rat::Rat;
use crate::weight::{Weight, WeightError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense identifier of a task within a [`TaskSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The identifier as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A recurrent task: execution cost `e` and period `p` in quanta.
///
/// # Examples
///
/// ```
/// use pfair_model::Task;
///
/// // The paper's running example: weight 8/11.
/// let t = Task::new(8, 11).unwrap();
/// assert_eq!(t.weight().numer(), 8);
/// assert!(t.weight().is_heavy());
/// assert_eq!(t.utilization(), pfair_model::Rat::new(8, 11));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Task {
    /// Execution cost per job, in quanta (`T.e`).
    pub exec: u64,
    /// Period, in quanta (`T.p`).
    pub period: u64,
}

impl Task {
    /// Creates a task with execution cost `exec` and period `period`.
    pub fn new(exec: u64, period: u64) -> Result<Self, WeightError> {
        // Validate through Weight (0 < e ≤ p, p > 0).
        Weight::new(exec, period)?;
        Ok(Task { exec, period })
    }

    /// `wt(T) = T.e / T.p` in lowest terms.
    pub fn weight(&self) -> Weight {
        Weight::new(self.exec, self.period).expect("validated at construction")
    }

    /// Utilization as an exact rational (same value as the weight).
    pub fn utilization(&self) -> Rat {
        Rat::new(self.exec as i128, self.period as i128)
    }

    /// True iff `wt(T) ≥ 1/2`.
    pub fn is_heavy(&self) -> bool {
        self.weight().is_heavy()
    }

    /// Number of subtasks per job (= execution cost in quanta).
    pub fn subtasks_per_job(&self) -> u64 {
        self.exec
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(e={}, p={})", self.exec, self.period)
    }
}

/// An indexed collection of tasks; `TaskId(i)` names the `i`-th task.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// An empty task set.
    pub fn new() -> Self {
        TaskSet::default()
    }

    /// Builds a task set from `(exec, period)` pairs.
    pub fn from_pairs<I>(pairs: I) -> Result<Self, WeightError>
    where
        I: IntoIterator<Item = (u64, u64)>,
    {
        let mut ts = TaskSet::new();
        for (e, p) in pairs {
            ts.push(Task::new(e, p)?);
        }
        Ok(ts)
    }

    /// Appends a task, returning its identifier.
    pub fn push(&mut self, task: Task) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(task);
        id
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True iff there are no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task named by `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Fallible lookup.
    pub fn get(&self, id: TaskId) -> Option<&Task> {
        self.tasks.get(id.index())
    }

    /// Iterates `(TaskId, &Task)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &Task)> + '_ {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (TaskId(i as u32), t))
    }

    /// All task ids.
    pub fn ids(&self) -> impl Iterator<Item = TaskId> {
        (0..self.tasks.len() as u32).map(TaskId)
    }

    /// Exact total utilization `Σ_T wt(T)`.
    ///
    /// # Panics
    ///
    /// The exact sum can overflow `i128` for large sets of tasks with
    /// unrelated periods; use [`Self::utilization_sum`] (which degrades
    /// gracefully) for such sets.
    pub fn total_utilization(&self) -> Rat {
        self.tasks.iter().map(Task::utilization).sum()
    }

    /// Total utilization as an overflow-tolerant [`WeightSum`](crate::WeightSum).
    pub fn utilization_sum(&self) -> crate::WeightSum {
        let mut sum = crate::WeightSum::new();
        for t in &self.tasks {
            sum.add(t.weight());
        }
        sum
    }

    /// The paper's feasibility condition (Equation (2)): an IS/periodic/
    /// sporadic task system is feasible on `m` processors iff
    /// `Σ wt(T) ≤ m`.
    pub fn feasible_on(&self, m: u32) -> bool {
        self.utilization_sum().at_most(m)
    }

    /// Smallest processor count on which the set is feasible
    /// (`⌈Σ wt(T)⌉`, and at least 1 for a nonempty set).
    pub fn min_processors(&self) -> u32 {
        let c = self.utilization_sum().ceil();
        u32::try_from(c.max(u64::from(!self.is_empty()))).expect("processor count fits u32")
    }

    /// Hyperperiod: least common multiple of all periods. Saturates at
    /// `u64::MAX` on overflow (callers cap simulation horizons anyway).
    pub fn hyperperiod(&self) -> u64 {
        fn gcd(mut a: u64, mut b: u64) -> u64 {
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a
        }
        self.tasks.iter().fold(1u64, |acc, t| {
            let g = gcd(acc, t.period);
            (acc / g).saturating_mul(t.period)
        })
    }
}

impl FromIterator<Task> for TaskSet {
    fn from_iter<I: IntoIterator<Item = Task>>(iter: I) -> Self {
        TaskSet {
            tasks: iter.into_iter().collect(),
        }
    }
}

impl std::ops::Index<TaskId> for TaskSet {
    type Output = Task;
    fn index(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(pairs: &[(u64, u64)]) -> TaskSet {
        TaskSet::from_pairs(pairs.iter().copied()).unwrap()
    }

    #[test]
    fn construction_and_lookup() {
        let set = ts(&[(2, 3), (1, 4)]);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert_eq!(set[TaskId(0)].exec, 2);
        assert_eq!(set.task(TaskId(1)).period, 4);
        assert!(set.get(TaskId(2)).is_none());
        let ids: Vec<_> = set.ids().collect();
        assert_eq!(ids, vec![TaskId(0), TaskId(1)]);
    }

    #[test]
    fn rejects_invalid_tasks() {
        assert!(Task::new(0, 3).is_err());
        assert!(Task::new(4, 3).is_err());
        assert!(Task::new(3, 0).is_err());
        assert!(TaskSet::from_pairs([(1, 2), (0, 1)]).is_err());
    }

    #[test]
    fn total_utilization_exact() {
        // The classical partitioning counterexample: three tasks of weight
        // 2/3 fill two processors exactly (paper, Section 1).
        let set = ts(&[(2, 3), (2, 3), (2, 3)]);
        assert_eq!(set.total_utilization(), Rat::from(2u64));
        assert!(set.feasible_on(2));
        assert!(!set.feasible_on(1));
        assert_eq!(set.min_processors(), 2);
    }

    #[test]
    fn min_processors_rounds_up() {
        let set = ts(&[(1, 2), (1, 3)]);
        // 1/2 + 1/3 = 5/6 → 1 processor.
        assert_eq!(set.min_processors(), 1);
        let set = ts(&[(1, 2), (2, 3)]);
        // 7/6 → 2 processors.
        assert_eq!(set.min_processors(), 2);
        assert_eq!(TaskSet::new().min_processors(), 0);
    }

    #[test]
    fn hyperperiod() {
        let set = ts(&[(1, 4), (1, 6), (1, 10)]);
        assert_eq!(set.hyperperiod(), 60);
        assert_eq!(TaskSet::new().hyperperiod(), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TaskId(3).to_string(), "T3");
        assert_eq!(Task::new(2, 3).unwrap().to_string(), "(e=2, p=3)");
    }

    #[test]
    fn from_iterator() {
        let set: TaskSet = [Task::new(1, 2).unwrap(), Task::new(1, 3).unwrap()]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }
}
