//! Discrete time: slots, quanta, and subtask windows.
//!
//! Under Pfair scheduling, processor time is allocated in fixed-size quanta;
//! the interval `[t, t+1)` is *slot* `t` (paper, Section 2). This module
//! fixes the conventions used across the workspace:
//!
//! * [`Slot`] indexes a slot (equivalently, the time at its start).
//! * [`SlotCount`] measures durations in whole quanta.
//! * [`Window`] is the half-open interval `[release, deadline)` within which
//!   a subtask must be scheduled.

/// Index of a scheduling slot; slot `t` covers real time `[t, t+1)` quanta.
pub type Slot = u64;

/// A duration measured in whole quanta/slots.
pub type SlotCount = u64;

/// The half-open interval `w(Tᵢ) = [r(Tᵢ), d(Tᵢ))` in which subtask `Tᵢ`
/// must be scheduled (paper, Section 2).
///
/// # Examples
///
/// ```
/// use pfair_model::Window;
///
/// let w = Window::new(0, 2); // first subtask of a weight-8/11 task
/// assert_eq!(w.len(), 2);
/// assert!(w.contains(0) && w.contains(1) && !w.contains(2));
/// assert!(w.overlaps(&Window::new(1, 3)));
/// assert!(!w.overlaps(&Window::new(2, 4)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Window {
    /// Pseudo-release: first slot in which the subtask may be scheduled.
    pub release: Slot,
    /// Pseudo-deadline: first slot in which it may *no longer* be scheduled.
    pub deadline: Slot,
}

impl Window {
    /// Creates `[release, deadline)`.
    ///
    /// # Panics
    ///
    /// Panics if `deadline <= release` (windows always have length ≥ 1).
    pub fn new(release: Slot, deadline: Slot) -> Self {
        assert!(
            deadline > release,
            "window deadline {deadline} must exceed release {release}"
        );
        Window { release, deadline }
    }

    /// `|w(Tᵢ)| = d(Tᵢ) − r(Tᵢ)`.
    pub fn len(&self) -> SlotCount {
        self.deadline - self.release
    }

    /// Windows are never empty; provided for clippy-idiomatic completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True iff slot `t` lies inside the window.
    pub fn contains(&self, t: Slot) -> bool {
        self.release <= t && t < self.deadline
    }

    /// True iff the two half-open intervals intersect.
    pub fn overlaps(&self, other: &Window) -> bool {
        self.release < other.deadline && other.release < self.deadline
    }

    /// Last slot belonging to the window (`deadline − 1`).
    pub fn last_slot(&self) -> Slot {
        self.deadline - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_geometry() {
        let w = Window::new(3, 6);
        assert_eq!(w.len(), 3);
        assert_eq!(w.last_slot(), 5);
        assert!(!w.is_empty());
        assert!(w.contains(3));
        assert!(w.contains(5));
        assert!(!w.contains(6));
        assert!(!w.contains(2));
    }

    #[test]
    #[should_panic(expected = "must exceed")]
    fn empty_window_panics() {
        let _ = Window::new(4, 4);
    }

    #[test]
    fn overlap_cases() {
        let a = Window::new(0, 2);
        assert!(a.overlaps(&Window::new(1, 2)));
        assert!(a.overlaps(&Window::new(0, 1)));
        assert!(!a.overlaps(&Window::new(2, 3)));
        // Consecutive Pfair windows either overlap by one slot or are
        // disjoint (paper, Section 2).
        let b = Window::new(1, 3);
        assert!(a.overlaps(&b));
    }
}
