//! Task weights.
//!
//! A periodic task `T` with integer execution cost `T.e` and integer period
//! `T.p` has weight `wt(T) = T.e / T.p` with `0 < wt(T) ≤ 1` (paper,
//! Section 2). The weight is the *rate* at which the task must execute: in
//! an ideal fluid schedule, `T` receives `wt(T) · L` quanta over any
//! interval of length `L`.
//!
//! [`Weight`] stores the ratio in lowest terms as `u64` numerator and
//! denominator. All Pfair subtask formulas (`pfair-core`) are written in
//! terms of the weight only, which is why the reduction to lowest terms is
//! harmless: a task with `e = 4, p = 8` has exactly the same windows as one
//! with `e = 1, p = 2`.

use crate::rat::Rat;
use std::fmt;

/// Error building a [`Weight`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightError {
    /// The numerator was zero (a task must make progress).
    ZeroExecution,
    /// The denominator was zero.
    ZeroPeriod,
    /// The ratio exceeded one (a sequential task cannot use more than one
    /// processor's worth of time).
    OverUnit,
}

impl fmt::Display for WeightError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightError::ZeroExecution => write!(f, "weight numerator (execution cost) is zero"),
            WeightError::ZeroPeriod => write!(f, "weight denominator (period) is zero"),
            WeightError::OverUnit => write!(f, "weight exceeds 1"),
        }
    }
}

impl std::error::Error for WeightError {}

/// A task weight: a rational in `(0, 1]`, kept in lowest terms.
///
/// # Examples
///
/// ```
/// use pfair_model::Weight;
///
/// let w = Weight::new(8, 11).unwrap();
/// assert!(w.is_heavy());               // 8/11 ≥ 1/2
/// assert_eq!(w.numer(), 8);
/// assert_eq!(Weight::new(4, 8).unwrap(), Weight::new(1, 2).unwrap());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Weight {
    /// Numerator in lowest terms; `1 ≤ num ≤ den`.
    num: u64,
    /// Denominator in lowest terms; `den ≥ 1`.
    den: u64,
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Weight {
    /// The full weight `1`, i.e. a task that needs a processor in every slot.
    pub const ONE: Weight = Weight { num: 1, den: 1 };

    /// Creates the weight `e/p` in lowest terms.
    pub fn new(e: u64, p: u64) -> Result<Self, WeightError> {
        if e == 0 {
            return Err(WeightError::ZeroExecution);
        }
        if p == 0 {
            return Err(WeightError::ZeroPeriod);
        }
        if e > p {
            return Err(WeightError::OverUnit);
        }
        let g = gcd(e, p);
        Ok(Weight {
            num: e / g,
            den: p / g,
        })
    }

    /// Numerator in lowest terms.
    pub fn numer(self) -> u64 {
        self.num
    }

    /// Denominator in lowest terms.
    pub fn denom(self) -> u64 {
        self.den
    }

    /// The weight as an exact rational.
    pub fn as_rat(self) -> Rat {
        Rat::new(self.num as i128, self.den as i128)
    }

    /// A task is *heavy* iff `wt(T) ≥ 1/2` (paper, Section 2).
    pub fn is_heavy(self) -> bool {
        2 * self.num >= self.den
    }

    /// A task is *light* iff `wt(T) < 1/2`.
    pub fn is_light(self) -> bool {
        !self.is_heavy()
    }

    /// True iff the weight is exactly one.
    pub fn is_unit(self) -> bool {
        self.num == self.den
    }

    /// Lossy conversion for reporting only.
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl fmt::Debug for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

/// An exact-while-possible running sum of task weights.
///
/// Admission control (the feasibility condition `Σ wt(T) ≤ M`, paper
/// Equation (2)) wants exact arithmetic, but the exact sum of hundreds of
/// weights with unrelated denominators overflows any fixed-width rational.
/// `WeightSum` keeps the exact [`Rat`] as long as it fits and transparently
/// degrades to an `f64` shadow (always maintained) when it no longer does;
/// comparisons use the exact value when available and the shadow with a
/// tiny conservative epsilon otherwise. In practice the exact path covers
/// every boundary-tight case (small, structured denominators), while the
/// approximate path only ever handles sums whose distance from an integer
/// boundary dwarfs f64 error.
#[derive(Debug, Clone, Copy)]
pub struct WeightSum {
    exact: Option<Rat>,
    approx: f64,
}

impl Default for WeightSum {
    fn default() -> Self {
        Self::new()
    }
}

impl WeightSum {
    /// Comparison slack used once exactness has been lost. Accumulated f64
    /// error over even millions of additions stays orders of magnitude
    /// below this.
    const EPS: f64 = 1e-7;

    /// Zero.
    pub fn new() -> Self {
        WeightSum {
            exact: Some(Rat::ZERO),
            approx: 0.0,
        }
    }

    /// Adds a weight.
    pub fn add(&mut self, w: Weight) {
        self.exact = self.exact.and_then(|e| e.checked_add(w.as_rat()));
        self.approx += w.to_f64();
    }

    /// Subtracts a weight (of a leaving task).
    pub fn sub(&mut self, w: Weight) {
        self.exact = self.exact.and_then(|e| e.checked_sub(w.as_rat()));
        self.approx -= w.to_f64();
    }

    /// Whether the sum is still exact.
    pub fn is_exact(&self) -> bool {
        self.exact.is_some()
    }

    /// `self ≤ m`? — exact when possible, else within a tiny epsilon
    /// (`1e-7`, far above accumulated f64 error, far below any real gap).
    pub fn at_most(&self, m: u32) -> bool {
        match self.exact {
            Some(e) => e <= Rat::from(m as u64),
            None => self.approx <= m as f64 + Self::EPS,
        }
    }

    /// `⌈self⌉` — the minimum integer capacity covering the sum.
    pub fn ceil(&self) -> u64 {
        match self.exact {
            Some(e) => e.ceil().max(0) as u64,
            None => (self.approx - Self::EPS).ceil().max(0.0) as u64,
        }
    }

    /// `self + w ≤ m`? — the admission test, without committing the add.
    pub fn fits_after_adding(&self, w: Weight, m: u32) -> bool {
        let bound = Rat::from(m as u64);
        match self.exact.and_then(|e| e.checked_add(w.as_rat())) {
            Some(next) => next <= bound,
            None => self.approx + w.to_f64() <= m as f64 + Self::EPS,
        }
    }

    /// The sum as `f64` (always available).
    pub fn to_f64(&self) -> f64 {
        self.approx
    }

    /// The exact sum, if it still fits.
    pub fn exact(&self) -> Option<Rat> {
        self.exact
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_reduction() {
        let w = Weight::new(4, 8).unwrap();
        assert_eq!(w.numer(), 1);
        assert_eq!(w.denom(), 2);
        assert_eq!(w, Weight::new(1, 2).unwrap());
        assert_eq!(Weight::new(7, 7).unwrap(), Weight::ONE);
    }

    #[test]
    fn rejects_invalid() {
        assert_eq!(Weight::new(0, 5), Err(WeightError::ZeroExecution));
        assert_eq!(Weight::new(5, 0), Err(WeightError::ZeroPeriod));
        assert_eq!(Weight::new(6, 5), Err(WeightError::OverUnit));
    }

    #[test]
    fn heavy_light_boundary() {
        // Heavy iff weight >= 1/2.
        assert!(Weight::new(1, 2).unwrap().is_heavy());
        assert!(Weight::new(8, 11).unwrap().is_heavy());
        assert!(Weight::new(5, 11).unwrap().is_light());
        assert!(Weight::ONE.is_heavy());
        assert!(Weight::new(1, 3).unwrap().is_light());
    }

    #[test]
    fn ordering_follows_value() {
        // NOTE: Ord on Weight is derived lexicographically over (num, den) in
        // lowest terms — fine for map keys, but value comparisons must go
        // through as_rat(). This test documents the distinction.
        let a = Weight::new(1, 3).unwrap();
        let b = Weight::new(2, 5).unwrap();
        assert!(a.as_rat() < b.as_rat());
    }

    #[test]
    fn error_display() {
        assert!(WeightError::OverUnit.to_string().contains("exceeds"));
        assert!(WeightError::ZeroExecution.to_string().contains("zero"));
        assert!(WeightError::ZeroPeriod.to_string().contains("zero"));
    }

    proptest! {
        #[test]
        fn prop_lowest_terms(e in 1u64..10_000, p in 1u64..10_000) {
            prop_assume!(e <= p);
            let w = Weight::new(e, p).unwrap();
            prop_assert_eq!(super::gcd(w.numer(), w.denom()), 1);
            prop_assert_eq!(w.as_rat(), crate::Rat::new(e as i128, p as i128));
        }

        #[test]
        fn prop_heavy_iff_rat_ge_half(e in 1u64..10_000, p in 1u64..10_000) {
            prop_assume!(e <= p);
            let w = Weight::new(e, p).unwrap();
            prop_assert_eq!(w.is_heavy(), w.as_rat() >= crate::Rat::new(1, 2));
            prop_assert_eq!(w.is_light(), !w.is_heavy());
        }

        /// WeightSum stays within EPS of the exact value while exact, and
        /// its feasibility verdicts match exact arithmetic when available.
        #[test]
        fn prop_weight_sum_consistency(
            raw in prop::collection::vec((1u64..30, 1u64..30), 1..20),
        ) {
            let mut sum = WeightSum::new();
            let mut exact = crate::Rat::ZERO;
            for &(a, b) in &raw {
                let (e, p) = if a <= b { (a, b) } else { (b, a) };
                let w = Weight::new(e, p).unwrap();
                sum.add(w);
                exact += w.as_rat();
            }
            prop_assert!(sum.is_exact(), "small denominators stay exact");
            prop_assert_eq!(sum.exact().unwrap(), exact);
            prop_assert!((sum.to_f64() - exact.to_f64()).abs() < 1e-9);
        }
    }

    #[test]
    fn weight_sum_survives_overflow() {
        // Hundreds of near-coprime denominators: the exact i128 rational
        // overflows, the f64 shadow keeps answering.
        let mut sum = WeightSum::new();
        let mut expect = 0.0;
        for p in 2..400u64 {
            let w = Weight::new(1, 2 * p + 1).unwrap();
            sum.add(w);
            expect += w.to_f64();
        }
        assert!(!sum.is_exact());
        assert!((sum.to_f64() - expect).abs() < 1e-9);
        // Feasibility checks still work approximately.
        assert!(sum.fits_after_adding(Weight::new(1, 2).unwrap(), 10));
        assert!(!sum.fits_after_adding(Weight::new(1, 2).unwrap(), 3));
    }

    #[test]
    fn weight_sum_exact_boundary() {
        let mut sum = WeightSum::new();
        sum.add(Weight::new(2, 3).unwrap());
        sum.add(Weight::new(2, 3).unwrap());
        // 4/3 + 2/3 = 2 exactly: fits on 2, not with anything more.
        assert!(sum.fits_after_adding(Weight::new(2, 3).unwrap(), 2));
        sum.add(Weight::new(2, 3).unwrap());
        assert!(!sum.fits_after_adding(Weight::new(1, 1_000_000).unwrap(), 2));
        sum.sub(Weight::new(2, 3).unwrap());
        assert_eq!(sum.exact().unwrap(), crate::Rat::new(4, 3));
    }
}
