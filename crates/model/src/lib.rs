//! # pfair-model
//!
//! Task model, time representation, and exact rational arithmetic for the
//! Pfair multiprocessor scheduling stack.
//!
//! This crate is the foundation of the reproduction of *The Case for Fair
//! Multiprocessor Scheduling* (Srinivasan, Holman, Anderson, Baruah, 2003).
//! Everything the Pfair theory manipulates — task weights `wt(T) = T.e/T.p`,
//! lags, pseudo-release/deadline formulas — is defined over exact integer
//! quantities. Floating point is deliberately absent from this crate: the
//! Pfair lag invariant `-1 < lag(T, t) < 1` is an exact statement and the
//! property tests in the rest of the workspace assert it exactly.
//!
//! ## Contents
//!
//! * [`rat`] — an exact signed rational type ([`Rat`]) with `i128`
//!   intermediates, used for lags and utilization sums.
//! * [`weight`] — the [`Weight`] of a task, a rational in `(0, 1]` stored in
//!   lowest terms.
//! * [`task`] — [`Task`] (integer execution cost and period in quanta),
//!   [`TaskId`], and [`TaskSet`] with feasibility queries.
//! * [`time`] — slot/quantum time aliases and the [`Window`] of a subtask.
//! * [`phys`] — physical-time tasks ([`PhysTask`], microsecond domain) used
//!   by the overhead-accounting experiments of the paper's Section 4, and
//!   conversion into quantum-domain [`Task`]s.
//!
//! ## Conventions
//!
//! Time is discrete. Slot `t` is the real interval `[t, t+1)` quanta; "time
//! `t`" means the beginning of slot `t` (paper, Section 2). All executions
//! and periods of quantum-domain tasks are positive integers, and a task's
//! weight never exceeds one (no intra-task parallelism).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod phys;
pub mod rat;
pub mod task;
pub mod time;
pub mod weight;

pub use phys::{PhysTask, PhysTaskSet, QuantumError};
pub use rat::Rat;
pub use task::{Task, TaskId, TaskSet};
pub use time::{Slot, SlotCount, Window};
pub use weight::{Weight, WeightError, WeightSum};
