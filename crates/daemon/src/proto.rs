//! Wire protocol: length-prefixed JSON frames over a Unix-domain socket.
//!
//! Every message is a 4-byte little-endian length followed by that many
//! bytes of JSON. The schema is deliberately narrow — flat structs with
//! numeric fields and unit-variant enums — both to fit the vendored serde
//! derive (no attributes, no data-carrying variants) and to keep host
//! processes out of the scheduling kernel: a client can express *what* it
//! wants admitted, never *how* the scheduler should run.
//!
//! Requests carry physical-time parameters (`wcet_us`, `period_us`); the
//! daemon owns the overhead model and quantization, and replies with the
//! inflated weight and window parameters it actually admitted. A client
//! never sees — and cannot forge — scheduler-internal state.

use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// Frames larger than this are rejected as corrupt before any buffer is
/// grown — a garbage length prefix must not look like an allocation
/// request.
pub const MAX_FRAME: u32 = 1 << 20;

/// What the client asks the daemon to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Admit a new task (`wcet_us` + `period_us` required).
    Join,
    /// Remove task `task` under the §5.2 safe-leave rule.
    Leave,
    /// Change task `task` to the new `wcet_us`/`period_us` (leave+join).
    Reweight,
    /// Report scheduler state and an `obs` metrics snapshot.
    Stats,
    /// Switch this connection to the decision/snapshot stream.
    Subscribe,
    /// Stop the daemon cleanly (drains pending batch first).
    Shutdown,
}

/// One client request. Fields irrelevant to `op` are `None`/ignored.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// What to do.
    pub op: Op,
    /// Client-chosen correlation id, echoed verbatim in the reply. The
    /// daemon routes replies by connection (never by nonce, which may
    /// collide across clients); distinct nonces per in-flight request
    /// let a pipelining client match replies on its own connection. Also
    /// a deterministic within-batch tie-break ahead of the
    /// server-assigned intake index.
    pub nonce: u64,
    /// Target task id (`Leave`/`Reweight`).
    pub task: Option<u32>,
    /// Worst-case execution time in µs (`Join`/`Reweight`).
    pub wcet_us: Option<u64>,
    /// Period in µs (`Join`/`Reweight`); must be a multiple of the
    /// daemon's quantum.
    pub period_us: Option<u64>,
}

impl Request {
    /// A join request for (`wcet_us`, `period_us`).
    pub fn join(nonce: u64, wcet_us: u64, period_us: u64) -> Self {
        Request {
            op: Op::Join,
            nonce,
            task: None,
            wcet_us: Some(wcet_us),
            period_us: Some(period_us),
        }
    }

    /// A leave request for `task`.
    pub fn leave(nonce: u64, task: u32) -> Self {
        Request {
            op: Op::Leave,
            nonce,
            task: Some(task),
            wcet_us: None,
            period_us: None,
        }
    }

    /// A reweight request: `task` → (`wcet_us`, `period_us`).
    pub fn reweight(nonce: u64, task: u32, wcet_us: u64, period_us: u64) -> Self {
        Request {
            op: Op::Reweight,
            nonce,
            task: Some(task),
            wcet_us: Some(wcet_us),
            period_us: Some(period_us),
        }
    }

    /// A bare request carrying only an op (Stats/Subscribe/Shutdown).
    pub fn bare(op: Op, nonce: u64) -> Self {
        Request {
            op,
            nonce,
            task: None,
            wcet_us: None,
            period_us: None,
        }
    }
}

/// Outcome of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// Join/Reweight admitted; `task` is the assigned id.
    Admitted,
    /// Join/Reweight rejected by the admission test (Σwt would exceed M).
    Rejected,
    /// Leave accepted; `free_at` is the slot the weight reclaims.
    Left,
    /// Stats reply; `snapshot` holds the recorder snapshot JSON.
    Stats,
    /// Connection switched to the stream; [`StreamMsg`] frames follow.
    Subscribed,
    /// Daemon is shutting down.
    ShuttingDown,
    /// Malformed or inapplicable request; see `error`.
    Error,
}

/// The daemon's reply to one [`Request`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reply {
    /// Echo of the request nonce.
    pub nonce: u64,
    /// Outcome.
    pub status: Status,
    /// Slot at which the decision took effect (= the batch's quantum).
    pub slot: u64,
    /// Assigned task id (`Admitted`) or the departing id (`Left`).
    pub task: Option<u32>,
    /// Numerator of the admitted (overhead-inflated, quantized) weight.
    pub weight_num: Option<u64>,
    /// Denominator of the admitted weight.
    pub weight_den: Option<u64>,
    /// Inflated per-job cost in quanta (`E` of Equation (3)).
    pub quanta: Option<u64>,
    /// Period in quanta.
    pub period_quanta: Option<u64>,
    /// Slot of the admitted task's first pseudo-release (θ = join slot).
    pub first_release: Option<u64>,
    /// Leave only: slot at which the departing weight is reclaimed
    /// (`d(T_i) + b(T_i)` of the safe-leave rule).
    pub free_at: Option<u64>,
    /// Stats only: `obs::Snapshot` JSON.
    pub snapshot: Option<String>,
    /// Stats only: number of active tasks.
    pub task_count: Option<u64>,
    /// Stats only: total admitted weight in parts-per-million of one
    /// processor (`Σwt × 10⁶`, so `processors × 10⁶` is full capacity).
    pub weight_ppm: Option<u64>,
    /// Human-readable reason when `status` is `Rejected`/`Error`.
    pub error: Option<String>,
}

impl Reply {
    /// A minimal reply skeleton; callers fill in the relevant fields.
    pub fn new(nonce: u64, status: Status, slot: u64) -> Self {
        Reply {
            nonce,
            status,
            slot,
            task: None,
            weight_num: None,
            weight_den: None,
            quanta: None,
            period_quanta: None,
            first_release: None,
            free_at: None,
            snapshot: None,
            task_count: None,
            weight_ppm: None,
            error: None,
        }
    }
}

/// Kind of a streamed frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamKind {
    /// One scheduling decision: the task ids dispatched in `slot`.
    Decision,
    /// A periodic `obs::Recorder` snapshot (JSON in `snapshot`).
    Snapshot,
    /// The daemon is shutting down; no further frames follow.
    Bye,
}

/// One frame pushed to a subscribed client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamMsg {
    /// What this frame carries.
    pub kind: StreamKind,
    /// Slot the frame describes.
    pub slot: u64,
    /// `Decision`: task ids scheduled in this slot, processor order.
    pub scheduled: Option<Vec<u32>>,
    /// `Snapshot`: recorder snapshot JSON.
    pub snapshot: Option<String>,
}

/// Writes one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, json: &str) -> io::Result<()> {
    let bytes = json.as_bytes();
    if bytes.len() as u64 > MAX_FRAME as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME", bytes.len()),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` means the peer closed the connection
/// cleanly *between* frames; a close mid-frame is an error.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<String>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME (corrupt stream?)"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_through_json() {
        for req in [
            Request::join(7, 1_000, 10_000),
            Request::leave(8, 3),
            Request::reweight(9, 3, 2_000, 20_000),
            Request::bare(Op::Stats, 10),
            Request::bare(Op::Subscribe, 11),
            Request::bare(Op::Shutdown, 12),
        ] {
            let json = serde_json::to_string(&req).unwrap();
            let back: Request = serde_json::from_str(&json).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn reply_roundtrips_through_json() {
        let mut reply = Reply::new(42, Status::Admitted, 17);
        reply.task = Some(5);
        reply.weight_num = Some(2);
        reply.weight_den = Some(10);
        reply.quanta = Some(2);
        reply.period_quanta = Some(10);
        reply.first_release = Some(17);
        let json = serde_json::to_string(&reply).unwrap();
        let back: Reply = serde_json::from_str(&json).unwrap();
        assert_eq!(back, reply);
    }

    #[test]
    fn frames_roundtrip_and_eof_between_frames_is_clean() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"a\":1}").unwrap();
        write_frame(&mut buf, "xyz").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("{\"a\":1}"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("xyz"));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_length_prefix_is_an_error_not_an_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "abcdef").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }
}
