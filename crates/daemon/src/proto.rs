//! Wire protocol: length-prefixed JSON frames over a Unix-domain or TCP
//! stream.
//!
//! Every message is a 4-byte little-endian length followed by that many
//! bytes of JSON. The schema is deliberately narrow — flat structs with
//! numeric fields and unit-variant enums — both to fit the vendored serde
//! derive (no attributes, no data-carrying variants) and to keep host
//! processes out of the scheduling kernel: a client can express *what* it
//! wants admitted, never *how* the scheduler should run.
//!
//! Requests carry physical-time parameters (`wcet_us`, `period_us`); the
//! daemon owns the overhead model and quantization, and replies with the
//! inflated weight and window parameters it actually admitted. A client
//! never sees — and cannot forge — scheduler-internal state.
//!
//! Every request may carry a `set` naming the task-set shard it targets;
//! a missing `set` means the `default` set, so pre-multi-set clients keep
//! working unchanged (the vendored serde treats a missing field as
//! `null`, which only `Option` fields accept).
//!
//! Framing errors are *classified*, not passed through as raw I/O:
//! [`FrameError`] distinguishes a peer that closed cleanly between frames
//! from one that died mid-frame ([`FrameError::Disconnected`]), a corrupt
//! or oversized frame ([`FrameError::Malformed`]), and a read timeout —
//! so clients can exit with their documented codes instead of surfacing
//! `read_exact`'s "failed to fill whole buffer".

use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{self, Read, Write};

/// Frames larger than this are rejected as corrupt before any buffer is
/// grown — a garbage length prefix must not look like an allocation
/// request.
pub const MAX_FRAME: u32 = 1 << 20;

/// The task-set shard a request targets when it names none.
pub const DEFAULT_SET: &str = "default";

/// What the client asks the daemon to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Admit a new task (`wcet_us` + `period_us` required).
    Join,
    /// Remove task `task` under the §5.2 safe-leave rule.
    Leave,
    /// Change task `task` to the new `wcet_us`/`period_us` (leave+join).
    Reweight,
    /// Report scheduler state and an `obs` metrics snapshot.
    Stats,
    /// Switch this connection to the decision/snapshot stream of `set`.
    Subscribe,
    /// Create an independent task-set shard named `set`.
    CreateSet,
    /// Tear down shard `set`; its trace is kept for the shutdown report.
    DropSet,
    /// List the live shard names.
    ListSets,
    /// Stop the daemon cleanly (drains pending batches first).
    Shutdown,
}

/// One client request. Fields irrelevant to `op` are `None`/ignored.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// What to do.
    pub op: Op,
    /// Client-chosen correlation id, echoed verbatim in the reply. The
    /// daemon routes replies by connection (never by nonce, which may
    /// collide across clients); distinct nonces per in-flight request
    /// let a pipelining client match replies on its own connection. Also
    /// a deterministic within-batch tie-break ahead of the
    /// server-assigned intake index.
    pub nonce: u64,
    /// Task-set shard this request targets; `None` means
    /// [`DEFAULT_SET`]. Required (non-`None`) for `CreateSet`/`DropSet`.
    pub set: Option<String>,
    /// Target task id (`Leave`/`Reweight`).
    pub task: Option<u32>,
    /// Worst-case execution time in µs (`Join`/`Reweight`).
    pub wcet_us: Option<u64>,
    /// Period in µs (`Join`/`Reweight`); must be a multiple of the
    /// daemon's quantum.
    pub period_us: Option<u64>,
}

impl Request {
    /// A join request for (`wcet_us`, `period_us`).
    pub fn join(nonce: u64, wcet_us: u64, period_us: u64) -> Self {
        Request {
            op: Op::Join,
            nonce,
            set: None,
            task: None,
            wcet_us: Some(wcet_us),
            period_us: Some(period_us),
        }
    }

    /// A leave request for `task`.
    pub fn leave(nonce: u64, task: u32) -> Self {
        Request {
            op: Op::Leave,
            nonce,
            set: None,
            task: Some(task),
            wcet_us: None,
            period_us: None,
        }
    }

    /// A reweight request: `task` → (`wcet_us`, `period_us`).
    pub fn reweight(nonce: u64, task: u32, wcet_us: u64, period_us: u64) -> Self {
        Request {
            op: Op::Reweight,
            nonce,
            set: None,
            task: Some(task),
            wcet_us: Some(wcet_us),
            period_us: Some(period_us),
        }
    }

    /// A bare request carrying only an op (Stats/Subscribe/Shutdown/…).
    pub fn bare(op: Op, nonce: u64) -> Self {
        Request {
            op,
            nonce,
            set: None,
            task: None,
            wcet_us: None,
            period_us: None,
        }
    }

    /// The same request aimed at task-set shard `set`.
    pub fn with_set(mut self, set: impl Into<String>) -> Self {
        self.set = Some(set.into());
        self
    }

    /// The shard this request targets ([`DEFAULT_SET`] when unset).
    pub fn set_name(&self) -> &str {
        self.set.as_deref().unwrap_or(DEFAULT_SET)
    }
}

/// Outcome of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// Join/Reweight admitted; `task` is the assigned id.
    Admitted,
    /// Join/Reweight rejected by the admission test (Σwt would exceed M).
    Rejected,
    /// Leave accepted; `free_at` is the slot the weight reclaims.
    Left,
    /// Stats reply; `snapshot` holds the recorder snapshot JSON.
    Stats,
    /// Connection switched to the stream; [`StreamMsg`] frames follow.
    Subscribed,
    /// `CreateSet` succeeded; `set` echoes the new shard's name.
    SetCreated,
    /// `DropSet` succeeded; `set` echoes the departed shard's name.
    SetDropped,
    /// `ListSets` reply; `sets` holds the live shard names (sorted).
    SetList,
    /// Daemon is shutting down.
    ShuttingDown,
    /// Malformed or inapplicable request; see `error`.
    Error,
}

/// The daemon's reply to one [`Request`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reply {
    /// Echo of the request nonce.
    pub nonce: u64,
    /// Outcome.
    pub status: Status,
    /// Slot (of the target set) at which the decision took effect.
    pub slot: u64,
    /// The task-set shard that answered (admission/stats/set ops).
    pub set: Option<String>,
    /// `SetList` only: live shard names, sorted.
    pub sets: Option<Vec<String>>,
    /// Assigned task id (`Admitted`) or the departing id (`Left`).
    pub task: Option<u32>,
    /// Numerator of the admitted (overhead-inflated, quantized) weight.
    pub weight_num: Option<u64>,
    /// Denominator of the admitted weight.
    pub weight_den: Option<u64>,
    /// Inflated per-job cost in quanta (`E` of Equation (3)).
    pub quanta: Option<u64>,
    /// Period in quanta.
    pub period_quanta: Option<u64>,
    /// Slot of the admitted task's first pseudo-release (θ = join slot).
    pub first_release: Option<u64>,
    /// Leave only: slot at which the departing weight is reclaimed
    /// (`d(T_i) + b(T_i)` of the safe-leave rule).
    pub free_at: Option<u64>,
    /// Stats only: `obs::Snapshot` JSON.
    pub snapshot: Option<String>,
    /// Stats only: number of active tasks in the target set.
    pub task_count: Option<u64>,
    /// Stats only: the target set's admitted weight in parts-per-million
    /// of one processor (`Σwt × 10⁶`, so `processors × 10⁶` is full
    /// capacity).
    pub weight_ppm: Option<u64>,
    /// Human-readable reason when `status` is `Rejected`/`Error`.
    pub error: Option<String>,
}

impl Reply {
    /// A minimal reply skeleton; callers fill in the relevant fields.
    pub fn new(nonce: u64, status: Status, slot: u64) -> Self {
        Reply {
            nonce,
            status,
            slot,
            set: None,
            sets: None,
            task: None,
            weight_num: None,
            weight_den: None,
            quanta: None,
            period_quanta: None,
            first_release: None,
            free_at: None,
            snapshot: None,
            task_count: None,
            weight_ppm: None,
            error: None,
        }
    }
}

/// Kind of a streamed frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamKind {
    /// One scheduling decision: the task ids dispatched in `slot`.
    Decision,
    /// A periodic `obs::Recorder` snapshot (JSON in `snapshot`).
    Snapshot,
    /// The subscribed set (or the whole daemon) is going away; no
    /// further frames for it follow.
    Bye,
}

/// One frame pushed to a subscribed client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamMsg {
    /// What this frame carries.
    pub kind: StreamKind,
    /// Slot (of `set`) the frame describes.
    pub slot: u64,
    /// The task-set shard the frame describes.
    pub set: Option<String>,
    /// `Decision`: task ids scheduled in this slot, processor order.
    pub scheduled: Option<Vec<u32>>,
    /// `Snapshot`: recorder snapshot JSON.
    pub snapshot: Option<String>,
}

/// Why reading a frame failed, classified — transports and clients act
/// on the class, not on the underlying `io::ErrorKind` zoo.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly *between* frames.
    Closed,
    /// The peer vanished mid-frame (EOF, reset, broken pipe with a
    /// partial frame outstanding).
    Disconnected,
    /// The stream is corrupt: an oversized length prefix or a frame
    /// that is not valid UTF-8. Resynchronization is impossible — the
    /// connection must be dropped.
    Malformed(String),
    /// A read timed out; `mid_frame` says whether the peer had started
    /// (and stalled inside) a frame.
    TimedOut {
        /// Whether a partial frame was outstanding when time ran out.
        mid_frame: bool,
    },
    /// Any other transport error.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "peer closed the connection"),
            FrameError::Disconnected => write!(f, "peer disconnected mid-frame"),
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
            FrameError::TimedOut { mid_frame: true } => write!(f, "read timed out mid-frame"),
            FrameError::TimedOut { mid_frame: false } => write!(f, "read timed out"),
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Whether an `io::ErrorKind` means "the read timed out" — both the
/// nonblocking and the `SO_RCVTIMEO` spellings.
fn is_timeout(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Whether an `io::ErrorKind` means "the peer is gone".
fn is_gone(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
    )
}

/// Writes one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, json: &str) -> io::Result<()> {
    let bytes = json.as_bytes();
    if bytes.len() as u64 > MAX_FRAME as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME", bytes.len()),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame, blocking. `Ok(None)` means the peer closed the
/// connection cleanly *between* frames; every failure mode inside a
/// frame comes back classified as a [`FrameError`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<String>, FrameError> {
    let mut reader = FrameReader::new();
    match reader.poll(r) {
        Ok(Some(frame)) => Ok(Some(frame)),
        // A blocking reader maps would-block to a timeout error: the
        // socket's read timeout expired.
        Ok(None) => Err(FrameError::TimedOut {
            mid_frame: reader.mid_frame(),
        }),
        Err(FrameError::Closed) => Ok(None),
        Err(e) => Err(e),
    }
}

/// Incremental frame reader: feeds on a (possibly nonblocking or
/// timeout-sliced) stream without ever losing partial progress the way a
/// bare `read_exact` would on `WouldBlock`.
///
/// `poll` returns `Ok(Some(frame))` when a frame completes,
/// `Ok(None)` when the stream would block / timed out with the partial
/// state retained, and a classified [`FrameError`] otherwise.
#[derive(Default)]
pub struct FrameReader {
    len: [u8; 4],
    len_got: usize,
    body: Vec<u8>,
    body_got: usize,
    in_body: bool,
}

impl FrameReader {
    /// An empty reader, between frames.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Whether a partial frame is outstanding.
    pub fn mid_frame(&self) -> bool {
        self.in_body || self.len_got > 0
    }

    /// Pulls from `r` until a frame completes, the stream would block,
    /// or the stream fails.
    pub fn poll<R: Read>(&mut self, r: &mut R) -> Result<Option<String>, FrameError> {
        loop {
            if !self.in_body {
                debug_assert!(self.len_got < 4);
                match r.read(&mut self.len[self.len_got..]) {
                    Ok(0) => {
                        return Err(if self.len_got == 0 {
                            FrameError::Closed
                        } else {
                            FrameError::Disconnected
                        });
                    }
                    Ok(n) => self.len_got += n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) if is_timeout(e.kind()) => return Ok(None),
                    Err(e) if is_gone(e.kind()) => {
                        return Err(if self.len_got == 0 {
                            FrameError::Closed
                        } else {
                            FrameError::Disconnected
                        });
                    }
                    Err(e) => return Err(FrameError::Io(e)),
                }
                if self.len_got < 4 {
                    continue;
                }
                let len = u32::from_le_bytes(self.len);
                if len > MAX_FRAME {
                    return Err(FrameError::Malformed(format!(
                        "frame length {len} exceeds MAX_FRAME ({MAX_FRAME})"
                    )));
                }
                self.in_body = true;
                self.body = vec![0u8; len as usize];
                self.body_got = 0;
            }
            while self.body_got < self.body.len() {
                match r.read(&mut self.body[self.body_got..]) {
                    Ok(0) => return Err(FrameError::Disconnected),
                    Ok(n) => self.body_got += n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) if is_timeout(e.kind()) => return Ok(None),
                    Err(e) if is_gone(e.kind()) => return Err(FrameError::Disconnected),
                    Err(e) => return Err(FrameError::Io(e)),
                }
            }
            let body = std::mem::take(&mut self.body);
            self.len_got = 0;
            self.body_got = 0;
            self.in_body = false;
            return String::from_utf8(body)
                .map(Some)
                .map_err(|e| FrameError::Malformed(format!("frame is not UTF-8: {e}")));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_through_json() {
        for req in [
            Request::join(7, 1_000, 10_000),
            Request::leave(8, 3).with_set("alpha"),
            Request::reweight(9, 3, 2_000, 20_000),
            Request::bare(Op::Stats, 10),
            Request::bare(Op::Subscribe, 11).with_set("beta"),
            Request::bare(Op::CreateSet, 12).with_set("gamma"),
            Request::bare(Op::DropSet, 13).with_set("gamma"),
            Request::bare(Op::ListSets, 14),
            Request::bare(Op::Shutdown, 15),
        ] {
            let json = serde_json::to_string(&req).unwrap();
            let back: Request = serde_json::from_str(&json).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn legacy_request_without_set_field_parses_as_default_set() {
        // A pre-multi-set client's frame: no `set` key at all.
        let json = r#"{"op":"Join","nonce":3,"task":null,"wcet_us":1000,"period_us":4000}"#;
        let req: Request = serde_json::from_str(json).unwrap();
        assert_eq!(req.set, None);
        assert_eq!(req.set_name(), DEFAULT_SET);
    }

    #[test]
    fn reply_roundtrips_through_json() {
        let mut reply = Reply::new(42, Status::Admitted, 17);
        reply.set = Some("alpha".to_string());
        reply.task = Some(5);
        reply.weight_num = Some(2);
        reply.weight_den = Some(10);
        reply.quanta = Some(2);
        reply.period_quanta = Some(10);
        reply.first_release = Some(17);
        let json = serde_json::to_string(&reply).unwrap();
        let back: Reply = serde_json::from_str(&json).unwrap();
        assert_eq!(back, reply);

        let mut list = Reply::new(1, Status::SetList, 0);
        list.sets = Some(vec!["alpha".to_string(), "default".to_string()]);
        let json = serde_json::to_string(&list).unwrap();
        let back: Reply = serde_json::from_str(&json).unwrap();
        assert_eq!(back, list);
    }

    #[test]
    fn frames_roundtrip_and_eof_between_frames_is_clean() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"a\":1}").unwrap();
        write_frame(&mut buf, "xyz").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("{\"a\":1}"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("xyz"));
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_length_prefix_is_malformed_not_an_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = &buf[..];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Malformed(_))));
    }

    #[test]
    fn truncated_frame_is_a_disconnect_not_a_raw_io_error() {
        // Peer dies mid-body.
        let mut buf = Vec::new();
        write_frame(&mut buf, "abcdef").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = &buf[..];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Disconnected)));
        // Peer dies mid-length-prefix.
        let short = [1u8, 0];
        let mut r = &short[..];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Disconnected)));
    }

    #[test]
    fn frame_reader_survives_arbitrary_fragmentation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"hello\":\"world\"}").unwrap();
        write_frame(&mut buf, "second").unwrap();
        // Feed one byte at a time through a reader that "would block"
        // between every byte: no partial progress may be lost.
        struct OneByte<'a>(&'a [u8], bool);
        impl Read for OneByte<'_> {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                if self.1 {
                    self.1 = false;
                    return Err(io::Error::from(io::ErrorKind::WouldBlock));
                }
                self.1 = true;
                if self.0.is_empty() {
                    return Ok(0);
                }
                out[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let mut src = OneByte(&buf, false);
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        loop {
            match reader.poll(&mut src) {
                Ok(Some(f)) => frames.push(f),
                Ok(None) => continue,
                Err(FrameError::Closed) => break,
                Err(e) => panic!("unexpected frame error: {e}"),
            }
        }
        assert_eq!(frames, vec!["{\"hello\":\"world\"}", "second"]);
        assert!(!reader.mid_frame());
    }

    #[test]
    fn non_utf8_frame_is_malformed() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&[0xff, 0xfe, 0xfd]);
        let mut r = &buf[..];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Malformed(_))));
    }
}
