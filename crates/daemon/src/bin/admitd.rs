//! The admission daemon binary.
//!
//! ```text
//! admitd --socket /tmp/admit.sock --cpus 4 [--pace real|virtual]
//!        [--quantum-us 1000] [--ctx-switch-us 5] [--no-overhead]
//!        [--max-batch 1024] [--snapshot-every 256] [--no-trace]
//!        [--max-sets 64] [--idle-timeout-ms 30000]
//!        [--trace-out trace.json] [--metrics-out metrics.json]
//! admitd --listen 127.0.0.1:7133 [same options]
//! ```
//!
//! Exactly one of `--socket <path>` (Unix-domain) or `--listen
//! <addr:port>` (TCP; port 0 picks an ephemeral port) must be given.
//! Prints `admitd: listening on <unix:path|tcp://ip:port>` to stderr once
//! bound — with the *actual* address, so a `--listen 127.0.0.1:0` caller
//! can parse the port — then serves until a client sends Shutdown.
//!
//! At shutdown every task-set shard reports independently, and with
//! `--trace-out base.json` each set's offline-verifiable
//! [`ScheduleTrace`](sched_sim::ScheduleTrace) is written to its own
//! file: the `default` set to `base.json`, set `alpha` to
//! `base.alpha.json`, and sets dropped mid-run to
//! `base.<name>.dropped-<i>.json` (so a dropped-then-recreated name
//! cannot clobber either trace).

use daemon::cli::Cli;
use daemon::server::{self, Bind, Pace, ServerConfig};
use overhead::OverheadParams;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn main() {
    let cli = Cli::parse();
    const USAGE: &str = "admitd (--socket <path> | --listen <addr:port>) [options]";
    let bind = match (cli.get("socket"), cli.get("listen")) {
        (Some(path), None) => Bind::Unix(PathBuf::from(path)),
        (None, Some(addr)) => Bind::Tcp(addr.to_string()),
        _ => {
            eprintln!("usage: {USAGE}");
            std::process::exit(2);
        }
    };
    let cpus: u32 = cli.get_or("cpus", 4);

    let mut params = if cli.flag("no-overhead") {
        OverheadParams::zero()
    } else {
        OverheadParams::paper2003()
    };
    params.quantum_us = cli.get_or("quantum-us", params.quantum_us);
    params.ctx_switch_us = cli.get_or("ctx-switch-us", params.ctx_switch_us);

    let mut cfg = ServerConfig::bound(bind, cpus);
    cfg.core.params = params;
    cfg.core.max_batch = cli.get_or("max-batch", cfg.core.max_batch);
    cfg.core.record_trace = !cli.flag("no-trace");
    cfg.snapshot_every = cli.get_or("snapshot-every", cfg.snapshot_every);
    cfg.max_sets = cli.get_or("max-sets", cfg.max_sets);
    cfg.idle_timeout =
        Duration::from_millis(cli.get_or("idle-timeout-ms", cfg.idle_timeout.as_millis() as u64));
    cfg.pace = match cli.get("pace").unwrap_or("virtual") {
        "virtual" => Pace::Virtual,
        "real" => Pace::RealTime,
        other => {
            eprintln!("admitd: unknown --pace {other} (expected real|virtual)");
            std::process::exit(2);
        }
    };

    let bound = match server::bind(cfg) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("admitd: bind: {e}");
            std::process::exit(2);
        }
    };
    eprintln!("admitd: listening on {}", bound.local_label());
    let report = match bound.serve() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("admitd: {e}");
            std::process::exit(2);
        }
    };

    let mut dropped_seen = 0usize;
    for set in &report.sets {
        let (admitted, rejected, left, reweighted) = set.counts;
        eprintln!(
            "admitd: set `{}`{} ran {} slot(s): {admitted} admitted, {rejected} rejected, \
             {left} left, {reweighted} reweighted",
            set.name,
            if set.dropped { " (dropped)" } else { "" },
            set.slots,
        );
        if let Some(base) = cli.get("trace-out") {
            let path = trace_path(base, &set.name, set.dropped.then_some(dropped_seen));
            match &set.trace {
                Some(trace) => {
                    if let Err(e) = std::fs::write(&path, trace.to_json()) {
                        eprintln!("admitd: writing {path}: {e}");
                        std::process::exit(2);
                    }
                    eprintln!("admitd: set `{}` trace written to {path}", set.name);
                }
                None => eprintln!("admitd: --trace-out ignored (started with --no-trace)"),
            }
        }
        if set.dropped {
            dropped_seen += 1;
        }
    }
    if let Some(path) = cli.get("metrics-out") {
        if let Err(e) = std::fs::write(path, report.snapshot.to_json()) {
            eprintln!("admitd: writing {path}: {e}");
            std::process::exit(2);
        }
    }
}

/// Per-set trace file name under the `--trace-out` base path: the
/// `default` set takes the base verbatim (backward compatible), others
/// splice their name (and a drop ordinal) before the extension.
fn trace_path(base: &str, set: &str, dropped_ordinal: Option<usize>) -> String {
    if set == daemon::proto::DEFAULT_SET && dropped_ordinal.is_none() {
        return base.to_string();
    }
    let p = Path::new(base);
    let stem = p.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    let ext = p
        .extension()
        .and_then(|s| s.to_str())
        .map(|e| format!(".{e}"))
        .unwrap_or_default();
    let tag = match dropped_ordinal {
        Some(i) => format!("{set}.dropped-{i}"),
        None => set.to_string(),
    };
    let name = format!("{stem}.{tag}{ext}");
    p.with_file_name(name).display().to_string()
}
