//! The admission daemon binary.
//!
//! ```text
//! admitd --socket /tmp/admit.sock --cpus 4 [--pace real|virtual]
//!        [--quantum-us 1000] [--ctx-switch-us 5] [--no-overhead]
//!        [--max-batch 1024] [--snapshot-every 256] [--no-trace]
//!        [--trace-out trace.json] [--metrics-out metrics.json]
//! ```
//!
//! Prints `admitd: listening on <path>` to stderr once the socket is
//! bound, serves until a client sends Shutdown, then optionally dumps the
//! full [`ScheduleTrace`](sched_sim::ScheduleTrace) (verifiable offline
//! with `verify_trace`) and the final metrics snapshot.

use daemon::cli::Cli;
use daemon::server::{self, Pace, ServerConfig};
use overhead::OverheadParams;
use std::path::PathBuf;

fn main() {
    let cli = Cli::parse();
    let socket = PathBuf::from(cli.require("socket", "admitd --socket <path> [options]"));
    let cpus: u32 = cli.get_or("cpus", 4);

    let mut params = if cli.flag("no-overhead") {
        OverheadParams::zero()
    } else {
        OverheadParams::paper2003()
    };
    params.quantum_us = cli.get_or("quantum-us", params.quantum_us);
    params.ctx_switch_us = cli.get_or("ctx-switch-us", params.ctx_switch_us);

    let mut cfg = ServerConfig::new(socket.clone(), cpus);
    cfg.core.params = params;
    cfg.core.max_batch = cli.get_or("max-batch", cfg.core.max_batch);
    cfg.core.record_trace = !cli.flag("no-trace");
    cfg.snapshot_every = cli.get_or("snapshot-every", cfg.snapshot_every);
    cfg.pace = match cli.get("pace").unwrap_or("virtual") {
        "virtual" => Pace::Virtual,
        "real" => Pace::RealTime,
        other => {
            eprintln!("admitd: unknown --pace {other} (expected real|virtual)");
            std::process::exit(2);
        }
    };

    eprintln!("admitd: listening on {}", socket.display());
    let report = match server::run(cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("admitd: {e}");
            std::process::exit(2);
        }
    };

    let (admitted, rejected, left, reweighted) = report.counts;
    eprintln!(
        "admitd: shut down after {} slot(s): {admitted} admitted, {rejected} rejected, \
         {left} left, {reweighted} reweighted",
        report.slots
    );
    if let Some(path) = cli.get("trace-out") {
        match &report.trace {
            Some(trace) => {
                if let Err(e) = std::fs::write(path, trace.to_json()) {
                    eprintln!("admitd: writing {path}: {e}");
                    std::process::exit(2);
                }
                eprintln!("admitd: trace written to {path}");
            }
            None => eprintln!("admitd: --trace-out ignored (started with --no-trace)"),
        }
    }
    if let Some(path) = cli.get("metrics-out") {
        if let Err(e) = std::fs::write(path, report.snapshot.to_json()) {
            eprintln!("admitd: writing {path}: {e}");
            std::process::exit(2);
        }
    }
}
