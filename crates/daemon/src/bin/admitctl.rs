//! Operator CLI for the admission daemon.
//!
//! ```text
//! admitctl --socket S join --wcet-us 1000 --period-us 10000
//! admitctl --socket S leave --task 3
//! admitctl --socket S reweight --task 3 --wcet-us 2000 --period-us 10000
//! admitctl --socket S stats
//! admitctl --socket S watch [--frames 10]
//! admitctl --socket S create-set --set alpha
//! admitctl --socket S drop-set --set alpha
//! admitctl --socket S list-sets
//! admitctl --socket S shutdown
//! ```
//!
//! `--tcp <addr:port>` targets a TCP daemon instead of `--socket <path>`.
//! `--set <name>` aims join/leave/reweight/stats/watch at a task-set
//! shard (default: the daemon's `default` set).
//!
//! Exit codes: 0 = the daemon said yes (admitted/left/stats/...),
//! 1 = the daemon said no (rejected or error reply, daemon died),
//! 2 = usage / transport failure. `stats` prints the metrics snapshot
//! JSON on stdout so scripts can parse it.

use daemon::cli::Cli;
use daemon::client::{DaemonAddr, DaemonClient};
use daemon::proto::{Status, StreamKind};
use std::path::PathBuf;

const USAGE: &str = "admitctl (--socket <path> | --tcp <addr:port>) \
                     <join|leave|reweight|stats|watch|create-set|drop-set|list-sets|shutdown> \
                     [--set <name>] [options]";

fn main() {
    let cli = Cli::parse();
    let addr = match (cli.get("socket"), cli.get("tcp")) {
        (Some(path), None) => DaemonAddr::Unix(PathBuf::from(path)),
        (None, Some(addr)) => DaemonAddr::Tcp(addr.to_string()),
        _ => {
            eprintln!("usage: {USAGE}");
            std::process::exit(2);
        }
    };
    let mut client = match DaemonClient::connect_to(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("admitctl: connecting to {addr:?}: {e}");
            std::process::exit(2);
        }
    };
    client.set_scope(cli.get("set"));

    let cmd = cli.positional(0).unwrap_or_else(|| {
        eprintln!("usage: {USAGE}");
        std::process::exit(2);
    });

    let result = match cmd {
        "join" => client.join(
            cli.require("wcet-us", USAGE)
                .parse()
                .unwrap_or_else(bad("wcet-us")),
            cli.require("period-us", USAGE)
                .parse()
                .unwrap_or_else(bad("period-us")),
        ),
        "leave" => client.leave(
            cli.require("task", USAGE)
                .parse()
                .unwrap_or_else(bad("task")),
        ),
        "reweight" => client.reweight(
            cli.require("task", USAGE)
                .parse()
                .unwrap_or_else(bad("task")),
            cli.require("wcet-us", USAGE)
                .parse()
                .unwrap_or_else(bad("wcet-us")),
            cli.require("period-us", USAGE)
                .parse()
                .unwrap_or_else(bad("period-us")),
        ),
        "stats" => client.stats(),
        "create-set" => client.create_set(cli.require("set", USAGE)),
        "drop-set" => client.drop_set(cli.require("set", USAGE)),
        "list-sets" => client.list_sets(),
        "shutdown" => client.shutdown(),
        "watch" => {
            let frames: u64 = cli.get_or("frames", 10);
            return watch(client, frames);
        }
        other => {
            eprintln!("admitctl: unknown command `{other}`\nusage: {USAGE}");
            std::process::exit(2);
        }
    };

    let reply = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("admitctl: {e}");
            std::process::exit(1);
        }
    };

    match reply.status {
        Status::Admitted => {
            println!(
                "admitted task={} set={} weight={}/{} quanta={} period_quanta={} \
                 first_release={} slot={}",
                reply.task.unwrap_or(0),
                reply.set.as_deref().unwrap_or("default"),
                reply.weight_num.unwrap_or(0),
                reply.weight_den.unwrap_or(0),
                reply.quanta.unwrap_or(0),
                reply.period_quanta.unwrap_or(0),
                reply.first_release.unwrap_or(0),
                reply.slot,
            );
        }
        Status::Left => {
            println!(
                "left task={} set={} free_at={} slot={}",
                reply.task.unwrap_or(0),
                reply.set.as_deref().unwrap_or("default"),
                reply.free_at.unwrap_or(0),
                reply.slot,
            );
        }
        Status::Stats => {
            eprintln!(
                "set={} slot={} tasks={} weight_ppm={}",
                reply.set.as_deref().unwrap_or("default"),
                reply.slot,
                reply.task_count.unwrap_or(0),
                reply.weight_ppm.unwrap_or(0),
            );
            println!("{}", reply.snapshot.unwrap_or_else(|| "{}".to_string()));
        }
        Status::SetCreated => {
            println!("created set={}", reply.set.as_deref().unwrap_or("?"));
        }
        Status::SetDropped => {
            println!("dropped set={}", reply.set.as_deref().unwrap_or("?"));
        }
        Status::SetList => {
            for name in reply.sets.unwrap_or_default() {
                println!("{name}");
            }
        }
        Status::ShuttingDown => println!("daemon shutting down (slot={})", reply.slot),
        Status::Rejected => {
            eprintln!(
                "rejected: {} (slot={})",
                reply.error.as_deref().unwrap_or("no reason given"),
                reply.slot,
            );
            std::process::exit(1);
        }
        Status::Error => {
            eprintln!(
                "error: {} (slot={})",
                reply.error.as_deref().unwrap_or("no detail"),
                reply.slot,
            );
            std::process::exit(1);
        }
        Status::Subscribed => unreachable!("subscribe is only sent by `watch`"),
    }
}

fn bad<T>(key: &'static str) -> impl Fn(std::num::ParseIntError) -> T {
    move |_| {
        eprintln!("admitctl: invalid value for --{key}");
        std::process::exit(2);
    }
}

/// Streams `frames` decision/snapshot frames to stdout, then exits. A
/// daemon death surfaces as a clean error with exit 1, never a hang.
fn watch(client: DaemonClient, frames: u64) {
    let mut sub = match client.subscribe() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("admitctl: subscribe: {e}");
            std::process::exit(1);
        }
    };
    let mut seen = 0;
    while seen < frames {
        match sub.next() {
            Ok(msg) => {
                let set = msg.set.as_deref().unwrap_or("default").to_string();
                match msg.kind {
                    StreamKind::Decision => println!(
                        "set={set} slot={} scheduled={:?}",
                        msg.slot,
                        msg.scheduled.unwrap_or_default()
                    ),
                    StreamKind::Snapshot => println!(
                        "set={set} slot={} snapshot={}",
                        msg.slot,
                        msg.snapshot.unwrap_or_default()
                    ),
                    StreamKind::Bye => {
                        println!("daemon said goodbye (set={set} slot={})", msg.slot);
                        return;
                    }
                }
                seen += 1;
            }
            Err(e) => {
                eprintln!("admitctl: stream ended: {e}");
                std::process::exit(1);
            }
        }
    }
}
