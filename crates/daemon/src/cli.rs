//! Minimal `--key value` argument parsing for the daemon binaries.
//!
//! Same conventions as the experiments crate's parser (a `--key` whose
//! next token starts with `--` is a bare flag), plus positional tokens
//! for `admitctl`-style subcommands. Kept local because `experiments`
//! depends on this crate — the parsers must not form a cycle.

use std::collections::BTreeMap;

/// Parsed command line: positionals plus `--key [value]` pairs.
#[derive(Debug, Default)]
pub struct Cli {
    positional: Vec<String>,
    named: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Cli {
    /// Parses `std::env::args` (skipping the binary name).
    pub fn parse() -> Cli {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit token stream.
    pub fn from_args<I: Iterator<Item = String>>(args: I) -> Cli {
        let mut cli = Cli::default();
        let mut it = args.peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = it.next().expect("peeked");
                        cli.named.insert(key.to_string(), v);
                    }
                    _ => cli.flags.push(key.to_string()),
                }
            } else {
                cli.positional.push(tok);
            }
        }
        cli
    }

    /// The `i`-th positional token (subcommand etc.).
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// The raw value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.named.get(key).map(String::as_str)
    }

    /// Whether bare `--key` was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Parses `--key` as `T`, defaulting when absent. Exits with code 2
    /// on an unparsable value — these are operator binaries.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("invalid value for --{key}: {v}");
                std::process::exit(2);
            }),
        }
    }

    /// The value of `--key`, or exits with code 2 and `usage`.
    pub fn require(&self, key: &str, usage: &str) -> &str {
        self.get(key).unwrap_or_else(|| {
            eprintln!("missing required --{key}\nusage: {usage}");
            std::process::exit(2);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(toks: &[&str]) -> Cli {
        Cli::from_args(toks.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_subcommand_pairs_and_flags() {
        let c = cli(&[
            "join",
            "--wcet-us",
            "1000",
            "--verbose",
            "--period-us",
            "4000",
        ]);
        assert_eq!(c.positional(0), Some("join"));
        assert_eq!(c.get("wcet-us"), Some("1000"));
        assert_eq!(c.get_or::<u64>("period-us", 0), 4000);
        assert!(c.flag("verbose"));
        assert!(!c.flag("quiet"));
        assert_eq!(c.get_or::<u64>("absent", 7), 7);
    }
}
