//! Scheduler-as-a-service: the PD² admission daemon.
//!
//! The batch sweeps in `crates/experiments` exercise the §5.2 join/leave
//! protocol offline; this crate puts the same machinery under *live*
//! traffic. A long-running daemon owns a registry of independent
//! task-set shards — each one a [`MultiSim`](sched_sim::MultiSim) plus
//! PD² scheduler — accepts task join/leave/reweight requests over a
//! Unix-domain socket or TCP, runs the overhead-aware admission test
//! (Equation (3) inflation + the Σwt ≤ M feasibility bound) per set, and
//! replies admit/reject with the computed weight and first
//! pseudo-release. Requests arriving within one quantum are decided
//! together against a single schedulability evaluation *within their
//! set* (sets advance independently), and the evaluation pass is
//! allocation-free (scratch buffers sized at startup).
//!
//! Layout mirrors a narrow-kernel process split: [`proto`] is the whole
//! wire schema (flat structs, length-prefixed JSON), [`core`] is the
//! admission kernel (no I/O), [`server`] owns the socket and threads,
//! [`client`] is what host processes link. `admitctl` and `admitd` are
//! thin binaries over these.

pub mod cli;
pub mod client;
pub mod core;
pub mod proto;
pub mod server;

pub use crate::core::{AdmissionCore, CoreConfig, SetRegistry, SetReport};
pub use client::{ClientError, DaemonAddr, DaemonClient};
pub use server::{bind, run, Bind, BoundServer, Pace, RunReport, ServerConfig};

/// Instrumentation bracketing the allocation-free admission fast path.
///
/// The daemon cannot ship a global allocator (binaries and tests choose
/// their own), so it marks the fast path instead: evaluation passes run
/// under a thread-local [`FastPathGuard`]. A test installs a counting
/// `#[global_allocator]` that calls [`is_active`] on every allocation and
/// bumps [`FAST_PATH_ALLOCS`] when one lands inside the guard — the soak
/// test asserts the counter stays zero across 10⁵ socket requests.
pub mod alloc_probe {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Allocations observed inside a [`FastPathGuard`] by an installed
    /// counting allocator. Never incremented by this crate itself.
    pub static FAST_PATH_ALLOCS: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        // const-init: reading this from inside a GlobalAlloc impl is
        // safe — no lazy initialization, no allocation.
        static ACTIVE: Cell<bool> = const { Cell::new(false) };
    }

    /// RAII marker for the current thread's fast-path section.
    pub struct FastPathGuard(());

    impl FastPathGuard {
        /// Marks the current thread as on the fast path until drop.
        pub fn enter() -> FastPathGuard {
            ACTIVE.with(|a| a.set(true));
            FastPathGuard(())
        }
    }

    impl Drop for FastPathGuard {
        fn drop(&mut self) {
            ACTIVE.with(|a| a.set(false));
        }
    }

    /// Whether the calling thread is inside a fast-path section. Safe to
    /// call from a `GlobalAlloc` implementation (returns `false` during
    /// thread teardown instead of panicking).
    pub fn is_active() -> bool {
        ACTIVE.try_with(|a| a.get()).unwrap_or(false)
    }

    /// Records one fast-path allocation; called by counting allocators.
    pub fn record() {
        FAST_PATH_ALLOCS.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads and resets the counter (test setup).
    pub fn take() -> u64 {
        FAST_PATH_ALLOCS.swap(0, Ordering::Relaxed)
    }
}
