//! The admission core: a live [`MultiSim`] + PD² scheduler plus the
//! batch-per-quantum admission test.
//!
//! Requests arriving within one quantum are decided *together* against a
//! single schedulability evaluation: the batch is put into a canonical
//! order (leaves, then reweights, then joins, each sub-ordered by task
//! parameters *ascending* — target id for leaves/reweights, then
//! `(period, cost)` for joins — with the nonce as tie-break and the
//! intake index as a final server-assigned tie-break so sort keys are
//! always distinct), and one pass over that order charges a single
//! running [`WeightSum`] copied from the live scheduler. The outcome is
//! therefore a pure function of the *multiset* of requests in the batch —
//! arrival interleaving cannot change who gets admitted, and two
//! byte-identical requests are interchangeable (see
//! `batch_order_is_deterministic`).
//!
//! The evaluation pass ([`AdmissionCore::evaluate`]) is allocation-free:
//! every buffer it touches (pending batch, canonical order, verdicts, the
//! departed-this-batch scratch) is sized once at startup, and the
//! per-request work is pure arithmetic — `inflate_pd2` fixed-point
//! iteration and rational weight sums. [`alloc_probe`](crate::alloc_probe)
//! brackets the pass so a counting allocator in the test suite can assert
//! the zero-allocation property end-to-end under soak traffic.
//!
//! Departures stay conservative: a leave frees its weight at the §5.2
//! safe point (`free_at`), not at the decision slot, so joins in the same
//! batch are charged against the *pre-leave* sum. A join that only fits
//! after the safe point is rejected now and can simply retry.

use crate::alloc_probe;
use crate::proto::{Reply, Request, Status, DEFAULT_SET};
use overhead::{inflate_pd2, InflateError, OverheadParams};
use pfair_core::{NoDelay, SchedConfig};
use pfair_model::{PhysTask, Slot, Task, TaskId, TaskSet, Weight};
use sched_sim::{MultiSim, ScheduleTrace, TraceEvent};
use std::collections::BTreeMap;

/// Static configuration of one admission core.
#[derive(Debug, Clone)]
pub struct CoreConfig {
    /// Processor count `M`.
    pub processors: u32,
    /// Overhead model used by the admission test (Equation (3)).
    pub params: OverheadParams,
    /// Maximum requests decided in one batch; arrivals beyond this within
    /// a single quantum are refused with a retryable error. Also sizes
    /// every fast-path scratch buffer.
    pub max_batch: usize,
    /// Record the full schedule + event stream for trace capture. Costs
    /// memory per slot; soak runs that only need verification keep it on,
    /// long-lived daemons may turn it off.
    pub record_trace: bool,
}

impl CoreConfig {
    /// `M` processors, paper overhead model, 1024-request batches,
    /// trace recording on.
    pub fn new(processors: u32) -> Self {
        CoreConfig {
            processors,
            params: OverheadParams::paper2003(),
            max_batch: 1024,
            record_trace: true,
        }
    }
}

/// Why a request was refused, as a copyable code (no strings on the fast
/// path; [`reject_reason`] maps codes to text at reply time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCode {
    /// Σwt would exceed `M` (Equation (2) over inflated weights).
    Overload,
    /// The task alone cannot meet its deadline once inflated.
    TaskOverload,
    /// `period_us` is not a multiple of the quantum.
    PeriodNotQuantumMultiple,
    /// The inflation fixed point failed to settle.
    NoConvergence,
    /// `task` does not name an active task.
    NoSuchTask,
    /// Required fields missing for this op.
    Malformed,
}

/// Human-readable reason for a [`RejectCode`].
pub fn reject_reason(code: RejectCode) -> &'static str {
    match code {
        RejectCode::Overload => "admission test failed: total weight would exceed M",
        RejectCode::TaskOverload => "task infeasible: inflated cost exceeds its period",
        RejectCode::PeriodNotQuantumMultiple => "period is not a multiple of the quantum",
        RejectCode::NoConvergence => "overhead inflation did not converge",
        RejectCode::NoSuchTask => "no such active task",
        RejectCode::Malformed => "missing required fields for this op",
    }
}

/// The evaluation pass's verdict on one request. Copy-only — strings and
/// scheduler mutations happen in [`AdmissionCore::apply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    /// Join admitted with the inflated parameters.
    AdmitJoin {
        quanta: u64,
        period_quanta: u64,
        weight_num: u64,
        weight_den: u64,
    },
    /// Reweight admitted (old task leaves, new parameters join).
    AdmitReweight {
        quanta: u64,
        period_quanta: u64,
        weight_num: u64,
        weight_den: u64,
    },
    /// Leave accepted.
    Leave,
    /// Refused.
    Reject(RejectCode),
}

/// A live scheduler behind the admission test.
pub struct AdmissionCore {
    sim: MultiSim<NoDelay>,
    /// The *initial* task set (always empty — every task arrives by
    /// join, recorded as a `Rejoin` event, which is exactly the shape the
    /// event-aware window checker verifies).
    initial: TaskSet,
    cfg: CoreConfig,
    slot: Slot,
    // ---- fast-path scratch, sized once at startup ----
    /// Requests accepted into the current batch.
    pending: Vec<Request>,
    /// Canonical decision order (indices into `pending`).
    order: Vec<u32>,
    /// Verdict per pending request (same indexing as `pending`).
    verdicts: Vec<Verdict>,
    /// Task ids departing in this batch (leave or reweight), to refuse
    /// duplicate departures deterministically.
    departing: Vec<u32>,
    /// Currently active tasks (scheduler `task_count` counts id slots).
    active: u64,
    admitted: u64,
    rejected: u64,
    left: u64,
    reweighted: u64,
}

impl AdmissionCore {
    /// Builds an empty core: no tasks, slot 0.
    pub fn new(cfg: CoreConfig) -> Self {
        let initial = TaskSet::new();
        let mut sim = MultiSim::new(&initial, SchedConfig::pd2(cfg.processors));
        if cfg.record_trace {
            sim.record_schedule();
            sim.record_events();
        }
        AdmissionCore {
            sim,
            initial,
            slot: 0,
            pending: Vec::with_capacity(cfg.max_batch),
            order: Vec::with_capacity(cfg.max_batch),
            verdicts: Vec::with_capacity(cfg.max_batch),
            departing: Vec::with_capacity(cfg.max_batch),
            active: 0,
            admitted: 0,
            rejected: 0,
            left: 0,
            reweighted: 0,
            cfg,
        }
    }

    /// Attaches a recorder to the underlying simulator (slot metrics).
    pub fn set_recorder(&mut self, rec: &obs::Recorder) {
        self.sim.set_recorder(rec);
    }

    /// The next slot to be scheduled (= the slot the current batch's
    /// decisions take effect at).
    pub fn slot(&self) -> Slot {
        self.slot
    }

    /// Number of active tasks.
    pub fn task_count(&self) -> usize {
        self.active as usize
    }

    /// Total admitted weight in parts-per-million of one processor.
    pub fn weight_ppm(&self) -> u64 {
        (self.sim.scheduler().total_weight().to_f64() * 1e6).round() as u64
    }

    /// Lifetime admission counters: (admitted, rejected, left, reweighted).
    pub fn counts(&self) -> (u64, u64, u64, u64) {
        (self.admitted, self.rejected, self.left, self.reweighted)
    }

    /// Queues a request into the current batch. `false` means the batch
    /// is full — the caller should refuse the request as retryable.
    pub fn push_request(&mut self, req: Request) -> bool {
        if self.pending.len() == self.cfg.max_batch {
            return false;
        }
        self.pending.push(req);
        true
    }

    /// Requests queued in the current batch.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Decides the queued batch, applies it to the scheduler at the
    /// current slot, advances the simulation by one quantum, and appends
    /// one reply per request to `replies` (in canonical decision order).
    /// Returns the slot the batch was decided at.
    pub fn decide_batch(&mut self, replies: &mut Vec<Reply>) -> Slot {
        self.evaluate();
        let at = self.apply(replies);
        self.step();
        at
    }

    /// Advances the simulation one quantum with no pending decisions
    /// (real-time pacing ticks even when no requests arrived).
    pub fn step(&mut self) -> &[Option<TaskId>] {
        self.slot += 1;
        self.sim.step()
    }

    /// Task ids dispatched in the most recent slot (processor order).
    pub fn last_chosen(&self) -> &[TaskId] {
        self.sim.last_chosen()
    }

    /// Intake-order index of each reply appended by the last
    /// [`decide_batch`](Self::decide_batch): `replies[k]` answered the
    /// `decided_order()[k]`-th request accepted into that batch via
    /// [`push_request`](Self::push_request). The transport routes replies
    /// back to connections through this mapping — nonces are
    /// client-chosen and may collide across clients, so they cannot
    /// identify a connection.
    pub fn decided_order(&self) -> &[u32] {
        &self.order
    }

    /// The canonical sort key of a request: leaves before reweights
    /// before joins, then by target/parameters ascending, then by nonce.
    /// Nonces are client-chosen, so two clients can submit byte-identical
    /// requests with colliding nonces; [`evaluate`](Self::evaluate)
    /// appends the intake index as a final tie-break, making the full
    /// sort key unique and the order total.
    fn canon_key(req: &Request) -> (u8, u64, u64, u64) {
        match req.op {
            crate::proto::Op::Leave => (0, u64::from(req.task.unwrap_or(u32::MAX)), 0, req.nonce),
            crate::proto::Op::Reweight => (
                1,
                u64::from(req.task.unwrap_or(u32::MAX)),
                req.period_us.unwrap_or(u64::MAX),
                req.nonce,
            ),
            _ => (
                2,
                req.period_us.unwrap_or(u64::MAX),
                req.wcet_us.unwrap_or(u64::MAX),
                req.nonce,
            ),
        }
    }

    /// The allocation-free evaluation pass: canonical ordering plus one
    /// schedulability sweep charging a single running weight sum.
    fn evaluate(&mut self) {
        let _guard = alloc_probe::FastPathGuard::enter();
        let m = self.cfg.processors;
        let n = self.sim.scheduler().task_count();

        self.order.clear();
        self.verdicts.clear();
        self.departing.clear();
        for i in 0..self.pending.len() {
            self.order.push(i as u32);
            self.verdicts.push(Verdict::Reject(RejectCode::Malformed));
        }
        let pending = &self.pending;
        // The intake index makes every key distinct: byte-identical
        // requests from different clients decide in arrival order, which
        // is immaterial (they are interchangeable) but keeps the sort
        // total and the reply-to-slot mapping exact.
        self.order
            .sort_unstable_by_key(|&i| (Self::canon_key(&pending[i as usize]), i));

        // One evaluation for the whole batch: the running sum starts from
        // the live scheduler total and is only ever *charged* (leaves
        // stay charged until their safe point — see module docs).
        let mut sum = self.sim.scheduler().total_weight();
        for k in 0..self.order.len() {
            let idx = self.order[k] as usize;
            let req = &self.pending[idx];
            let verdict = match req.op {
                crate::proto::Op::Leave => match req.task {
                    None => Verdict::Reject(RejectCode::Malformed),
                    Some(t) => {
                        if !self.sim.scheduler().is_active(TaskId(t)) || self.departing.contains(&t)
                        {
                            Verdict::Reject(RejectCode::NoSuchTask)
                        } else {
                            self.departing.push(t);
                            Verdict::Leave
                        }
                    }
                },
                crate::proto::Op::Reweight => match (req.task, req.wcet_us, req.period_us) {
                    (Some(t), Some(wcet), Some(period)) => {
                        if !self.sim.scheduler().is_active(TaskId(t)) || self.departing.contains(&t)
                        {
                            Verdict::Reject(RejectCode::NoSuchTask)
                        } else {
                            match Self::admit_one(&self.cfg, m, n, &mut sum, wcet, period) {
                                Ok((quanta, period_quanta, num, den)) => {
                                    self.departing.push(t);
                                    Verdict::AdmitReweight {
                                        quanta,
                                        period_quanta,
                                        weight_num: num,
                                        weight_den: den,
                                    }
                                }
                                Err(code) => Verdict::Reject(code),
                            }
                        }
                    }
                    _ => Verdict::Reject(RejectCode::Malformed),
                },
                _ => match (req.wcet_us, req.period_us) {
                    (Some(wcet), Some(period)) => {
                        match Self::admit_one(&self.cfg, m, n, &mut sum, wcet, period) {
                            Ok((quanta, period_quanta, num, den)) => Verdict::AdmitJoin {
                                quanta,
                                period_quanta,
                                weight_num: num,
                                weight_den: den,
                            },
                            Err(code) => Verdict::Reject(code),
                        }
                    }
                    _ => Verdict::Reject(RejectCode::Malformed),
                },
            };
            self.verdicts[idx] = verdict;
        }
    }

    /// Inflates one candidate and charges it against the running sum.
    /// Pure arithmetic — no allocation.
    fn admit_one(
        cfg: &CoreConfig,
        m: u32,
        n: usize,
        sum: &mut pfair_model::WeightSum,
        wcet_us: u64,
        period_us: u64,
    ) -> Result<(u64, u64, u64, u64), RejectCode> {
        let inflated = inflate_pd2(PhysTask::new(wcet_us, period_us), &cfg.params, m, n, 0.0)
            .map_err(|e| match e {
                InflateError::Overload { .. } => RejectCode::TaskOverload,
                InflateError::PeriodNotQuantumMultiple => RejectCode::PeriodNotQuantumMultiple,
                InflateError::NoConvergence => RejectCode::NoConvergence,
            })?;
        let w = Weight::new(inflated.quanta, inflated.period_quanta)
            .map_err(|_| RejectCode::TaskOverload)?;
        let mut charged = *sum;
        charged.add(w);
        if !charged.at_most(m) {
            return Err(RejectCode::Overload);
        }
        *sum = charged;
        Ok((
            inflated.quanta,
            inflated.period_quanta,
            inflated.weight.numer() as u64,
            inflated.weight.denom() as u64,
        ))
    }

    /// Applies the evaluated batch to the scheduler at the current slot
    /// and builds replies (canonical order). Clears the batch.
    fn apply(&mut self, replies: &mut Vec<Reply>) -> Slot {
        let now = self.slot;
        for k in 0..self.order.len() {
            let idx = self.order[k] as usize;
            let req = self.pending[idx].clone();
            let reply = match self.verdicts[idx] {
                Verdict::Leave => {
                    let task = req.task.expect("validated in evaluate");
                    match self.sim.scheduler_mut().leave(TaskId(task), now) {
                        Ok(free_at) => {
                            self.sim.push_event(TraceEvent::Shed { slot: now, task });
                            self.left += 1;
                            self.active -= 1;
                            let mut r = Reply::new(req.nonce, Status::Left, now);
                            r.task = Some(task);
                            r.free_at = Some(free_at);
                            r
                        }
                        Err(e) => {
                            let mut r = Reply::new(req.nonce, Status::Error, now);
                            r.error = Some(format!("leave failed: {e}"));
                            r
                        }
                    }
                }
                Verdict::AdmitJoin {
                    quanta,
                    period_quanta,
                    weight_num,
                    weight_den,
                } => match self.join_inflated(quanta, period_quanta, now) {
                    Ok(id) => {
                        self.admitted += 1;
                        self.active += 1;
                        let mut r = Reply::new(req.nonce, Status::Admitted, now);
                        r.task = Some(id.0);
                        r.quanta = Some(quanta);
                        r.period_quanta = Some(period_quanta);
                        r.weight_num = Some(weight_num);
                        r.weight_den = Some(weight_den);
                        r.first_release = Some(now);
                        r
                    }
                    Err(msg) => {
                        let mut r = Reply::new(req.nonce, Status::Error, now);
                        r.error = Some(msg);
                        r
                    }
                },
                Verdict::AdmitReweight {
                    quanta,
                    period_quanta,
                    weight_num,
                    weight_den,
                } => {
                    let old = req.task.expect("validated in evaluate");
                    // The evaluation pass pre-checked the new weight
                    // against the *uncredited* sum, so this leave+join
                    // cannot overload; a rejected reweight never touches
                    // the old task.
                    match self.sim.scheduler_mut().leave(TaskId(old), now) {
                        Ok(_) => {
                            self.sim.push_event(TraceEvent::Shed {
                                slot: now,
                                task: old,
                            });
                            match self.join_inflated(quanta, period_quanta, now) {
                                Ok(id) => {
                                    self.reweighted += 1;
                                    let mut r = Reply::new(req.nonce, Status::Admitted, now);
                                    r.task = Some(id.0);
                                    r.quanta = Some(quanta);
                                    r.period_quanta = Some(period_quanta);
                                    r.weight_num = Some(weight_num);
                                    r.weight_den = Some(weight_den);
                                    r.first_release = Some(now);
                                    r
                                }
                                Err(msg) => {
                                    // The old task really departed even
                                    // though the rejoin failed — keep the
                                    // counters consistent with scheduler
                                    // state.
                                    self.left += 1;
                                    self.active -= 1;
                                    let mut r = Reply::new(req.nonce, Status::Error, now);
                                    r.error = Some(format!(
                                        "reweight: old task {old} left but rejoin failed: {msg}"
                                    ));
                                    r
                                }
                            }
                        }
                        Err(e) => {
                            let mut r = Reply::new(req.nonce, Status::Error, now);
                            r.error = Some(format!("reweight: leave failed: {e}"));
                            r
                        }
                    }
                }
                Verdict::Reject(code) => {
                    let status = match code {
                        RejectCode::NoSuchTask | RejectCode::Malformed => Status::Error,
                        _ => Status::Rejected,
                    };
                    if status == Status::Rejected {
                        self.rejected += 1;
                    }
                    let mut r = Reply::new(req.nonce, status, now);
                    r.error = Some(reject_reason(code).to_string());
                    r
                }
            };
            replies.push(reply);
        }
        self.pending.clear();
        now
    }

    /// Joins the already-inflated task at `now`, registering it with the
    /// dispatcher and recording the §5.2 join as a `Rejoin` event.
    fn join_inflated(
        &mut self,
        quanta: u64,
        period_quanta: u64,
        now: Slot,
    ) -> Result<TaskId, String> {
        let task =
            Task::new(quanta, period_quanta).map_err(|e| format!("inflated task invalid: {e}"))?;
        let id = self
            .sim
            .scheduler_mut()
            .join(task, now)
            .map_err(|e| format!("scheduler refused pre-admitted join: {e}"))?;
        self.sim.register_task(id, task);
        self.sim.push_event(TraceEvent::Rejoin {
            slot: now,
            task: id.0,
            exec: quanta,
            period: period_quanta,
        });
        Ok(id)
    }

    /// Captures the run as a [`ScheduleTrace`]: empty initial task set,
    /// every admission a `Rejoin` event, every departure a `Shed` —
    /// exactly the shape `ScheduleTrace::verify` window-checks offline.
    /// `None` if `record_trace` was off.
    pub fn trace(&self) -> Option<ScheduleTrace> {
        ScheduleTrace::capture(&self.initial, &self.sim).ok()
    }
}

/// One set's lifetime summary, reported at drop or shutdown.
pub struct SetReport {
    /// The set's name.
    pub name: String,
    /// Slots this set simulated.
    pub slots: u64,
    /// (admitted, rejected, left, reweighted) totals.
    pub counts: (u64, u64, u64, u64),
    /// The set's full schedule trace (when `record_trace` was on).
    pub trace: Option<ScheduleTrace>,
    /// Whether the set was dropped before shutdown (disambiguates a
    /// re-created name in the final report).
    pub dropped: bool,
}

/// A `SetId`-keyed registry of independent admission cores — one live
/// `MultiSim` + scheduler per task-set shard, all built from the same
/// [`CoreConfig`] template.
///
/// Sets are fully isolated: each has its own slot counter, weight sum,
/// batch scratch, and schedule trace, and each decides its batches in
/// the canonical order *within* the set while sets advance
/// independently. The registry always starts with (and re-admits
/// requests that name no set into) the [`DEFAULT_SET`].
pub struct SetRegistry {
    template: CoreConfig,
    max_sets: usize,
    recorder: obs::Recorder,
    sets: BTreeMap<String, AdmissionCore>,
    /// Reports of dropped sets, in drop order, kept for the shutdown
    /// report so a dropped set's trace still window-verifies offline.
    dropped: Vec<SetReport>,
}

impl SetRegistry {
    /// A registry with just the default set. Every core (present and
    /// future) reports into `recorder`.
    pub fn new(template: CoreConfig, max_sets: usize, recorder: &obs::Recorder) -> Self {
        let mut reg = SetRegistry {
            template,
            max_sets: max_sets.max(1),
            recorder: recorder.clone(),
            sets: BTreeMap::new(),
            dropped: Vec::new(),
        };
        reg.insert(DEFAULT_SET.to_string());
        reg
    }

    fn insert(&mut self, name: String) {
        let mut core = AdmissionCore::new(self.template.clone());
        core.set_recorder(&self.recorder);
        self.sets.insert(name, core);
    }

    /// Validates a client-supplied set name: path-safe (it becomes part
    /// of trace file names), bounded, non-empty.
    pub fn valid_name(name: &str) -> Result<(), String> {
        if name.is_empty() || name.len() > 64 {
            return Err("set name must be 1..=64 characters".to_string());
        }
        if !name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
        {
            return Err("set name may only contain [A-Za-z0-9._-]".to_string());
        }
        if name.starts_with('.') {
            return Err("set name may not start with '.'".to_string());
        }
        Ok(())
    }

    /// Creates an empty set named `name`.
    pub fn create(&mut self, name: &str) -> Result<(), String> {
        Self::valid_name(name)?;
        if self.sets.contains_key(name) {
            return Err(format!("set `{name}` already exists"));
        }
        if self.sets.len() >= self.max_sets {
            return Err(format!(
                "set limit reached ({} of {} live)",
                self.sets.len(),
                self.max_sets
            ));
        }
        self.insert(name.to_string());
        Ok(())
    }

    /// Tears down set `name`, retaining its report (and trace) for the
    /// shutdown summary. The default set is droppable too — requests
    /// naming no set then fail with "no such set" until it is recreated.
    pub fn drop_set(&mut self, name: &str) -> Result<(), String> {
        let core = self
            .sets
            .remove(name)
            .ok_or_else(|| format!("no such set `{name}`"))?;
        self.dropped.push(Self::report_of(name, &core, true));
        Ok(())
    }

    fn report_of(name: &str, core: &AdmissionCore, dropped: bool) -> SetReport {
        SetReport {
            name: name.to_string(),
            slots: core.slot(),
            counts: core.counts(),
            trace: core.trace(),
            dropped,
        }
    }

    /// The core serving set `name`, if live.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut AdmissionCore> {
        self.sets.get_mut(name)
    }

    /// Live set names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.sets.keys().cloned().collect()
    }

    /// Number of live sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether no sets are live (possible once `default` is dropped).
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Iterates live sets in name order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&str, &mut AdmissionCore)> {
        self.sets.iter_mut().map(|(k, v)| (k.as_str(), v))
    }

    /// Consumes the registry into per-set reports: dropped sets first
    /// (in drop order), then the live ones (sorted by name).
    pub fn into_reports(mut self) -> Vec<SetReport> {
        let mut reports = std::mem::take(&mut self.dropped);
        for (name, core) in &self.sets {
            reports.push(Self::report_of(name, core, false));
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{Op, Request};

    fn core(m: u32) -> AdmissionCore {
        let mut cfg = CoreConfig::new(m);
        // Zero overhead keeps weights human-checkable: 1000µs/4000µs = 1/4.
        cfg.params = OverheadParams::zero();
        AdmissionCore::new(cfg)
    }

    fn decide(core: &mut AdmissionCore, reqs: Vec<Request>) -> Vec<Reply> {
        for r in reqs {
            assert!(core.push_request(r));
        }
        let mut replies = Vec::new();
        core.decide_batch(&mut replies);
        replies
    }

    #[test]
    fn join_then_leave_roundtrip() {
        let mut c = core(1);
        let replies = decide(&mut c, vec![Request::join(1, 1_000, 4_000)]);
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].status, Status::Admitted);
        assert_eq!(replies[0].task, Some(0));
        assert_eq!(replies[0].weight_num, Some(1));
        assert_eq!(replies[0].weight_den, Some(4));
        assert_eq!(replies[0].first_release, Some(0));
        assert_eq!(c.task_count(), 1);

        let replies = decide(&mut c, vec![Request::leave(2, 0)]);
        assert_eq!(replies[0].status, Status::Left);
        assert!(replies[0].free_at.is_some());
        assert_eq!(c.task_count(), 0);
    }

    #[test]
    fn overloaded_join_is_rejected_capacity_preserved() {
        let mut c = core(1);
        // Three half-weight tasks into M=1: two admit, one rejects.
        let replies = decide(
            &mut c,
            vec![
                Request::join(1, 2_000, 4_000),
                Request::join(2, 2_000, 4_000),
                Request::join(3, 2_000, 4_000),
            ],
        );
        let admitted = replies
            .iter()
            .filter(|r| r.status == Status::Admitted)
            .count();
        let rejected = replies
            .iter()
            .filter(|r| r.status == Status::Rejected)
            .count();
        assert_eq!((admitted, rejected), (2, 1));
        // The nonce tie-break admits the two lowest nonces.
        assert_eq!(
            replies.iter().find(|r| r.nonce == 3).unwrap().status,
            Status::Rejected
        );
    }

    #[test]
    fn batch_order_is_deterministic_under_arrival_permutations() {
        // 6 requests, only some of which fit; every arrival permutation
        // must admit the same subset and produce identical reply vectors.
        let reqs = [
            Request::join(10, 2_000, 4_000),
            Request::join(11, 2_000, 4_000),
            Request::join(12, 1_000, 4_000),
            Request::join(13, 1_000, 2_000),
            Request::join(14, 3_000, 4_000),
            Request::join(15, 1_000, 8_000),
        ];
        let mut reference: Option<Vec<Reply>> = None;
        // A handful of distinct permutations (rotations + reversal).
        for p in 0..reqs.len() + 1 {
            let mut batch: Vec<Request> = reqs.to_vec();
            if p == reqs.len() {
                batch.reverse();
            } else {
                batch.rotate_left(p);
            }
            let mut c = core(1);
            let replies = decide(&mut c, batch);
            match &reference {
                None => reference = Some(replies),
                Some(expect) => assert_eq!(&replies, expect, "permutation {p} diverged"),
            }
        }
        let expect = reference.unwrap();
        // Canonical order is parameter-sorted, not nonce-sorted: the
        // half-weight 1000/2000 task sorts first among joins.
        assert_eq!(expect[0].nonce, 13);
    }

    #[test]
    fn identical_requests_with_colliding_nonces_each_get_a_reply() {
        // Two clients can submit byte-identical requests (same op,
        // params, and nonce). The intake-index tie-break keeps the sort
        // total: both decide, in intake order, with distinct task ids.
        let mut c = core(2);
        let reqs = vec![
            Request::join(1, 1_000, 4_000),
            Request::join(1, 1_000, 4_000),
        ];
        for r in reqs {
            assert!(c.push_request(r));
        }
        let mut replies = Vec::new();
        c.decide_batch(&mut replies);
        assert_eq!(replies.len(), 2);
        assert_eq!(c.decided_order(), &[0, 1], "intake order breaks the tie");
        assert!(replies.iter().all(|r| r.status == Status::Admitted));
        assert_ne!(replies[0].task, replies[1].task);
    }

    #[test]
    fn leaves_decide_before_joins_but_weight_stays_charged() {
        let mut c = core(1);
        let replies = decide(&mut c, vec![Request::join(1, 2_000, 4_000)]);
        let id = replies[0].task.unwrap();
        // Same quantum: leave the half-weight task and try to join a
        // 3/4-weight one. The leave is accepted but its weight is charged
        // until free_at, so the join must be rejected (conservative).
        let replies = decide(
            &mut c,
            vec![Request::join(2, 3_000, 4_000), Request::leave(3, id)],
        );
        // Canonical order: the leave decides first, and decided_order
        // maps each reply back to its intake slot (join was pushed
        // first, so replies[0] answers pending slot 1).
        assert_eq!(replies[0].nonce, 3);
        assert_eq!(c.decided_order(), &[1, 0]);
        assert_eq!(replies[0].status, Status::Left);
        assert_eq!(replies[1].status, Status::Rejected);
        // Once the safe point has been ticked past, the join fits.
        let free_at = replies[0].free_at.unwrap();
        while c.slot() <= free_at {
            c.step();
        }
        let replies = decide(&mut c, vec![Request::join(4, 3_000, 4_000)]);
        assert_eq!(replies[0].status, Status::Admitted);
    }

    #[test]
    fn duplicate_leave_in_one_batch_refused_deterministically() {
        let mut c = core(2);
        let replies = decide(&mut c, vec![Request::join(1, 1_000, 4_000)]);
        let id = replies[0].task.unwrap();
        let replies = decide(&mut c, vec![Request::leave(7, id), Request::leave(5, id)]);
        // Nonce 5 sorts first and wins; nonce 7 sees NoSuchTask.
        assert_eq!(replies[0].nonce, 5);
        assert_eq!(replies[0].status, Status::Left);
        assert_eq!(replies[1].nonce, 7);
        assert_eq!(replies[1].status, Status::Error);
    }

    #[test]
    fn reweight_rejection_keeps_old_task() {
        let mut c = core(1);
        let replies = decide(&mut c, vec![Request::join(1, 1_000, 4_000)]);
        let id = replies[0].task.unwrap();
        // 5/4 weight cannot fit anywhere: rejected, old task untouched.
        let replies = decide(&mut c, vec![Request::reweight(2, id, 5_000, 4_000)]);
        assert_eq!(replies[0].status, Status::Rejected);
        assert_eq!(c.task_count(), 1);
        // A feasible reweight departs the old id and admits a fresh one.
        let replies = decide(&mut c, vec![Request::reweight(3, id, 2_000, 4_000)]);
        assert_eq!(replies[0].status, Status::Admitted);
        let new_id = replies[0].task.unwrap();
        assert_ne!(new_id, id);
        assert_eq!(c.task_count(), 1);
    }

    #[test]
    fn malformed_requests_error_without_scheduler_changes() {
        let mut c = core(1);
        let replies = decide(
            &mut c,
            vec![
                Request {
                    op: Op::Join,
                    nonce: 1,
                    set: None,
                    task: None,
                    wcet_us: Some(1_000),
                    period_us: None,
                },
                Request::leave(2, 99),
            ],
        );
        assert!(replies.iter().all(|r| r.status == Status::Error));
        assert_eq!(c.task_count(), 0);
    }

    #[test]
    fn period_not_multiple_of_quantum_rejects() {
        let mut cfg = CoreConfig::new(1);
        cfg.params = OverheadParams::paper2003(); // q = 1000µs
        let mut c = AdmissionCore::new(cfg);
        let replies = decide(&mut c, vec![Request::join(1, 100, 1_500)]);
        assert_eq!(replies[0].status, Status::Rejected);
        assert!(replies[0].error.as_deref().unwrap().contains("quantum"));
    }

    #[test]
    fn registry_sets_are_isolated_and_advance_independently() {
        let mut cfg = CoreConfig::new(1);
        cfg.params = OverheadParams::zero();
        let rec = obs::Recorder::disabled();
        let mut reg = SetRegistry::new(cfg, 8, &rec);
        reg.create("alpha").expect("create alpha");
        assert_eq!(
            reg.names(),
            vec!["alpha".to_string(), "default".to_string()]
        );

        // Each set has its own M=1 capacity: a full-processor task fits
        // in *both* — weight sums never cross sets.
        for set in ["default", "alpha"] {
            let core = reg.get_mut(set).expect("live set");
            let replies = decide(core, vec![Request::join(1, 4_000, 4_000)]);
            assert_eq!(replies[0].status, Status::Admitted, "set {set}");
        }
        // Only the default set steps further: slots diverge.
        for _ in 0..10 {
            reg.get_mut("default").unwrap().step();
        }
        assert_eq!(reg.get_mut("alpha").unwrap().slot(), 1);
        assert_eq!(reg.get_mut("default").unwrap().slot(), 11);

        // Duplicate create and unknown drop both refuse with a reason.
        assert!(reg.create("alpha").is_err());
        assert!(reg.drop_set("nope").is_err());
        // Dropping keeps the report (and its verified trace) around.
        reg.drop_set("alpha").expect("drop alpha");
        assert!(reg.get_mut("alpha").is_none());
        let reports = reg.into_reports();
        assert_eq!(reports.len(), 2);
        let alpha = reports.iter().find(|r| r.name == "alpha").unwrap();
        assert!(alpha.dropped);
        alpha
            .trace
            .as_ref()
            .expect("dropped set keeps its trace")
            .verify()
            .expect("dropped set's trace window-verifies");
    }

    #[test]
    fn registry_rejects_bad_names_and_enforces_the_cap() {
        let mut cfg = CoreConfig::new(1);
        cfg.params = OverheadParams::zero();
        let rec = obs::Recorder::disabled();
        let mut reg = SetRegistry::new(cfg, 2, &rec);
        for bad in ["", "a/b", "..", ".hidden", "x".repeat(65).as_str(), "a b"] {
            assert!(reg.create(bad).is_err(), "name {bad:?} must be refused");
        }
        reg.create("ok-1").expect("fits under the cap");
        let err = reg.create("ok-2").expect_err("cap of 2 is enforced");
        assert!(err.contains("limit"), "{err}");
    }

    #[test]
    fn trace_of_dynamic_traffic_window_verifies() {
        let mut c = core(2);
        let mut ids = Vec::new();
        for i in 0..8u64 {
            let replies = decide(&mut c, vec![Request::join(i, 1_000, 4_000)]);
            if replies[0].status == Status::Admitted {
                ids.push(replies[0].task.unwrap());
            }
        }
        // Interleave leaves and more joins, then run a while.
        for (k, id) in ids.iter().take(4).enumerate() {
            decide(&mut c, vec![Request::leave(100 + k as u64, *id)]);
        }
        for _ in 0..50 {
            c.step();
        }
        let trace = c.trace().expect("trace recording is on");
        trace
            .verify()
            .expect("dynamic join/leave trace must window-verify");
    }
}
