//! Client side of the admission protocol: what host processes link.
//!
//! [`DaemonClient`] wraps one connection. The simple wrappers
//! ([`DaemonClient::join`] etc.) are call/response; [`DaemonClient::send`]
//! / [`DaemonClient::recv`] expose the two halves so open-loop load
//! generators can keep a window of requests in flight. Every read carries
//! a timeout, and a daemon that dies mid-stream (SIGKILL included)
//! surfaces as [`ClientError::Disconnected`] — never a hang.

use crate::proto::{read_frame, write_frame, Op, Reply, Request, Status, StreamMsg};
use std::fmt;
use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport error (includes read timeouts).
    Io(io::Error),
    /// The daemon closed the connection (or was killed) while a reply
    /// was outstanding.
    Disconnected,
    /// The daemon answered something unintelligible.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Disconnected => write!(f, "daemon closed the connection"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One connection to the admission daemon.
pub struct DaemonClient {
    stream: UnixStream,
    next_nonce: u64,
}

impl DaemonClient {
    /// Connects, with a default 10 s read timeout.
    pub fn connect<P: AsRef<Path>>(socket: P) -> io::Result<DaemonClient> {
        let stream = UnixStream::connect(socket)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        Ok(DaemonClient {
            stream,
            next_nonce: 1,
        })
    }

    /// Connects, retrying until `deadline` elapses — for racing a daemon
    /// that is still binding its socket.
    pub fn connect_retry<P: AsRef<Path>>(
        socket: P,
        deadline: Duration,
    ) -> io::Result<DaemonClient> {
        let start = Instant::now();
        loop {
            match Self::connect(socket.as_ref()) {
                Ok(c) => return Ok(c),
                Err(e) if start.elapsed() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Overrides the read timeout (`None` blocks forever).
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(t)
    }

    fn nonce(&mut self) -> u64 {
        let n = self.next_nonce;
        self.next_nonce += 1;
        n
    }

    /// Sends a request without waiting for its reply (pipelining half).
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        let json = serde_json::to_string(req)
            .map_err(|e| ClientError::Protocol(format!("unserializable request: {e}")))?;
        write_frame(&mut self.stream, &json).map_err(ClientError::Io)
    }

    /// Receives the next reply frame (pipelining half).
    pub fn recv(&mut self) -> Result<Reply, ClientError> {
        match read_frame(&mut self.stream) {
            Ok(Some(json)) => serde_json::from_str(&json)
                .map_err(|e| ClientError::Protocol(format!("bad reply: {e}"))),
            Ok(None) => Err(ClientError::Disconnected),
            Err(e)
                if e.kind() == io::ErrorKind::UnexpectedEof
                    || e.kind() == io::ErrorKind::ConnectionReset
                    || e.kind() == io::ErrorKind::BrokenPipe =>
            {
                Err(ClientError::Disconnected)
            }
            Err(e) => Err(ClientError::Io(e)),
        }
    }

    /// Call/response: send one request, wait for its reply.
    pub fn call(&mut self, req: &Request) -> Result<Reply, ClientError> {
        self.send(req)?;
        let reply = self.recv()?;
        if reply.nonce != req.nonce {
            return Err(ClientError::Protocol(format!(
                "reply nonce {} does not match request nonce {} (pipelined call/response mix?)",
                reply.nonce, req.nonce
            )));
        }
        Ok(reply)
    }

    /// Requests admission of (`wcet_us`, `period_us`).
    pub fn join(&mut self, wcet_us: u64, period_us: u64) -> Result<Reply, ClientError> {
        let n = self.nonce();
        self.call(&Request::join(n, wcet_us, period_us))
    }

    /// Requests departure of `task`.
    pub fn leave(&mut self, task: u32) -> Result<Reply, ClientError> {
        let n = self.nonce();
        self.call(&Request::leave(n, task))
    }

    /// Requests a reweight of `task` to (`wcet_us`, `period_us`).
    pub fn reweight(
        &mut self,
        task: u32,
        wcet_us: u64,
        period_us: u64,
    ) -> Result<Reply, ClientError> {
        let n = self.nonce();
        self.call(&Request::reweight(n, task, wcet_us, period_us))
    }

    /// Fetches scheduler stats and a metrics snapshot.
    pub fn stats(&mut self) -> Result<Reply, ClientError> {
        let n = self.nonce();
        self.call(&Request::bare(Op::Stats, n))
    }

    /// Asks the daemon to shut down cleanly.
    pub fn shutdown(&mut self) -> Result<Reply, ClientError> {
        let n = self.nonce();
        self.call(&Request::bare(Op::Shutdown, n))
    }

    /// Switches this connection to the decision/snapshot stream.
    pub fn subscribe(mut self) -> Result<Subscription, ClientError> {
        let n = self.nonce();
        let reply = self.call(&Request::bare(Op::Subscribe, n))?;
        if reply.status != Status::Subscribed {
            return Err(ClientError::Protocol(format!(
                "subscribe refused: {:?}",
                reply.status
            )));
        }
        Ok(Subscription {
            stream: self.stream,
        })
    }

    /// A fresh nonce for hand-built pipelined requests.
    pub fn take_nonce(&mut self) -> u64 {
        self.nonce()
    }
}

/// A connection switched to the stream; yields [`StreamMsg`] frames.
pub struct Subscription {
    stream: UnixStream,
}

impl Subscription {
    /// Next stream frame. [`ClientError::Disconnected`] when the daemon
    /// goes away (cleanly or not).
    // Deliberately `next` despite the Iterator-shaped name: the stream
    // is infinite-until-error, and `Result` (not `Option`) is the point.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<StreamMsg, ClientError> {
        match read_frame(&mut self.stream) {
            Ok(Some(json)) => serde_json::from_str(&json)
                .map_err(|e| ClientError::Protocol(format!("bad stream frame: {e}"))),
            Ok(None) => Err(ClientError::Disconnected),
            Err(e)
                if e.kind() == io::ErrorKind::UnexpectedEof
                    || e.kind() == io::ErrorKind::ConnectionReset =>
            {
                Err(ClientError::Disconnected)
            }
            Err(e) => Err(ClientError::Io(e)),
        }
    }

    /// Overrides the read timeout for stream frames.
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(t)
    }
}
