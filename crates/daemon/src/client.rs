//! Client side of the admission protocol: what host processes link.
//!
//! [`DaemonClient`] wraps one connection — Unix-domain or TCP, chosen by
//! [`DaemonAddr`]. The simple wrappers ([`DaemonClient::join`] etc.) are
//! call/response; [`DaemonClient::send`] / [`DaemonClient::recv`] expose
//! the two halves so open-loop load generators can keep a window of
//! requests in flight. [`DaemonClient::set_scope`] aims the wrappers at a
//! named task-set shard (`None` = the daemon's `default` set).
//!
//! Every read carries a timeout, and failures come back *classified*: a
//! daemon that dies mid-stream (SIGKILL included) surfaces as
//! [`ClientError::Disconnected`], a corrupt stream as
//! [`ClientError::MalformedFrame`], a stall as [`ClientError::TimedOut`]
//! — never a hang, and never a raw `read_exact` "failed to fill whole
//! buffer" message.

use crate::proto::{read_frame, write_frame, FrameError, Op, Reply, Request, Status, StreamMsg};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport error other than the classified cases below.
    Io(io::Error),
    /// The daemon closed the connection (or was killed) while a reply
    /// was outstanding.
    Disconnected,
    /// The read timed out with the daemon still connected.
    TimedOut,
    /// The byte stream is corrupt (bad length prefix / non-UTF-8); the
    /// connection cannot be resynchronized.
    MalformedFrame(String),
    /// The daemon answered something unintelligible.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Disconnected => write!(f, "daemon closed the connection"),
            ClientError::TimedOut => write!(f, "timed out waiting for the daemon"),
            ClientError::MalformedFrame(m) => write!(f, "malformed frame from daemon: {m}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            // From a client's perspective a clean close with a reply
            // outstanding is still a disconnect.
            FrameError::Closed | FrameError::Disconnected => ClientError::Disconnected,
            FrameError::TimedOut { .. } => ClientError::TimedOut,
            FrameError::Malformed(m) => ClientError::MalformedFrame(m),
            FrameError::Io(e) => ClientError::Io(e),
        }
    }
}

/// Where the daemon lives.
#[derive(Debug, Clone)]
pub enum DaemonAddr {
    /// Unix-domain socket path.
    Unix(PathBuf),
    /// TCP address, e.g. `127.0.0.1:7133`.
    Tcp(String),
}

/// One transport stream, either flavor. Both ends expose the identical
/// framing, so everything above this enum is transport-agnostic.
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(t),
            Stream::Tcp(s) => s.set_read_timeout(t),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// One connection to the admission daemon.
pub struct DaemonClient {
    stream: Stream,
    next_nonce: u64,
    /// Task-set shard the convenience wrappers target (`None` = default).
    scope: Option<String>,
}

impl DaemonClient {
    /// Connects over a Unix socket, with a default 10 s read timeout.
    pub fn connect<P: AsRef<Path>>(socket: P) -> io::Result<DaemonClient> {
        Self::connect_to(&DaemonAddr::Unix(socket.as_ref().to_path_buf()))
    }

    /// Connects over TCP, with a default 10 s read timeout.
    pub fn connect_tcp(addr: impl Into<String>) -> io::Result<DaemonClient> {
        Self::connect_to(&DaemonAddr::Tcp(addr.into()))
    }

    /// Connects to either transport, with a default 10 s read timeout.
    pub fn connect_to(addr: &DaemonAddr) -> io::Result<DaemonClient> {
        let stream = match addr {
            DaemonAddr::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
            DaemonAddr::Tcp(addr) => {
                let s = TcpStream::connect(addr.as_str())?;
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }
        };
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        Ok(DaemonClient {
            stream,
            next_nonce: 1,
            scope: None,
        })
    }

    /// Connects over a Unix socket, retrying until `deadline` elapses —
    /// for racing a daemon that is still binding its socket.
    pub fn connect_retry<P: AsRef<Path>>(
        socket: P,
        deadline: Duration,
    ) -> io::Result<DaemonClient> {
        Self::connect_to_retry(&DaemonAddr::Unix(socket.as_ref().to_path_buf()), deadline)
    }

    /// Connects to either transport, retrying until `deadline` elapses.
    pub fn connect_to_retry(addr: &DaemonAddr, deadline: Duration) -> io::Result<DaemonClient> {
        let start = Instant::now();
        loop {
            match Self::connect_to(addr) {
                Ok(c) => return Ok(c),
                Err(e) if start.elapsed() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Aims the convenience wrappers (join/leave/…) at task-set shard
    /// `set`. `None` targets the daemon's `default` set (the wire
    /// default, so pre-multi-set daemons keep working).
    pub fn set_scope(&mut self, set: Option<impl Into<String>>) {
        self.scope = set.map(Into::into);
    }

    /// Overrides the read timeout (`None` blocks forever).
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(t)
    }

    fn nonce(&mut self) -> u64 {
        let n = self.next_nonce;
        self.next_nonce += 1;
        n
    }

    /// Applies the connection's scope to a wrapper-built request.
    fn scoped(&self, req: Request) -> Request {
        match &self.scope {
            Some(set) => req.with_set(set.clone()),
            None => req,
        }
    }

    /// Sends a request without waiting for its reply (pipelining half).
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        let json = serde_json::to_string(req)
            .map_err(|e| ClientError::Protocol(format!("unserializable request: {e}")))?;
        write_frame(&mut self.stream, &json).map_err(ClientError::Io)
    }

    /// Receives the next reply frame (pipelining half).
    pub fn recv(&mut self) -> Result<Reply, ClientError> {
        match read_frame(&mut self.stream) {
            Ok(Some(json)) => serde_json::from_str(&json)
                .map_err(|e| ClientError::Protocol(format!("bad reply: {e}"))),
            Ok(None) => Err(ClientError::Disconnected),
            Err(e) => Err(e.into()),
        }
    }

    /// Call/response: send one request, wait for its reply.
    pub fn call(&mut self, req: &Request) -> Result<Reply, ClientError> {
        self.send(req)?;
        let reply = self.recv()?;
        if reply.nonce != req.nonce {
            return Err(ClientError::Protocol(format!(
                "reply nonce {} does not match request nonce {} (pipelined call/response mix?)",
                reply.nonce, req.nonce
            )));
        }
        Ok(reply)
    }

    /// Requests admission of (`wcet_us`, `period_us`).
    pub fn join(&mut self, wcet_us: u64, period_us: u64) -> Result<Reply, ClientError> {
        let n = self.nonce();
        let req = self.scoped(Request::join(n, wcet_us, period_us));
        self.call(&req)
    }

    /// Requests departure of `task`.
    pub fn leave(&mut self, task: u32) -> Result<Reply, ClientError> {
        let n = self.nonce();
        let req = self.scoped(Request::leave(n, task));
        self.call(&req)
    }

    /// Requests a reweight of `task` to (`wcet_us`, `period_us`).
    pub fn reweight(
        &mut self,
        task: u32,
        wcet_us: u64,
        period_us: u64,
    ) -> Result<Reply, ClientError> {
        let n = self.nonce();
        let req = self.scoped(Request::reweight(n, task, wcet_us, period_us));
        self.call(&req)
    }

    /// Fetches the scoped set's stats and a metrics snapshot.
    pub fn stats(&mut self) -> Result<Reply, ClientError> {
        let n = self.nonce();
        let req = self.scoped(Request::bare(Op::Stats, n));
        self.call(&req)
    }

    /// Creates an independent task-set shard named `set`.
    pub fn create_set(&mut self, set: impl Into<String>) -> Result<Reply, ClientError> {
        let n = self.nonce();
        self.call(&Request::bare(Op::CreateSet, n).with_set(set))
    }

    /// Tears down task-set shard `set`.
    pub fn drop_set(&mut self, set: impl Into<String>) -> Result<Reply, ClientError> {
        let n = self.nonce();
        self.call(&Request::bare(Op::DropSet, n).with_set(set))
    }

    /// Lists the daemon's live task-set shards.
    pub fn list_sets(&mut self) -> Result<Reply, ClientError> {
        let n = self.nonce();
        self.call(&Request::bare(Op::ListSets, n))
    }

    /// Asks the daemon to shut down cleanly.
    pub fn shutdown(&mut self) -> Result<Reply, ClientError> {
        let n = self.nonce();
        self.call(&Request::bare(Op::Shutdown, n))
    }

    /// Switches this connection to the scoped set's decision/snapshot
    /// stream.
    pub fn subscribe(mut self) -> Result<Subscription, ClientError> {
        let n = self.nonce();
        let req = self.scoped(Request::bare(Op::Subscribe, n));
        let reply = self.call(&req)?;
        if reply.status != Status::Subscribed {
            return Err(ClientError::Protocol(format!(
                "subscribe refused: {:?}",
                reply.status
            )));
        }
        Ok(Subscription {
            stream: self.stream,
        })
    }

    /// A fresh nonce for hand-built pipelined requests.
    pub fn take_nonce(&mut self) -> u64 {
        self.nonce()
    }
}

/// A connection switched to the stream; yields [`StreamMsg`] frames.
pub struct Subscription {
    stream: Stream,
}

impl Subscription {
    /// Next stream frame. [`ClientError::Disconnected`] when the daemon
    /// goes away (cleanly or not).
    // Deliberately `next` despite the Iterator-shaped name: the stream
    // is infinite-until-error, and `Result` (not `Option`) is the point.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<StreamMsg, ClientError> {
        match read_frame(&mut self.stream) {
            Ok(Some(json)) => serde_json::from_str(&json)
                .map_err(|e| ClientError::Protocol(format!("bad stream frame: {e}"))),
            Ok(None) => Err(ClientError::Disconnected),
            Err(e) => Err(e.into()),
        }
    }

    /// Overrides the read timeout for stream frames.
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(t)
    }
}
