//! The daemon's transport and batch loop: a [`Listener`] (Unix-domain or
//! TCP) in front of a [`SetRegistry`] of independent admission cores.
//!
//! Threading model: one acceptor thread, one reader thread per
//! connection, one writer thread per connection, and a single *batch
//! loop* (the caller's thread) owning every admission core. Readers parse
//! frames and forward work items over an mpsc channel; the batch loop
//! drains everything that arrived within the current quantum, decides
//! each set's batch independently (canonical order *within* a set), and
//! routes replies back through per-connection channels. No lock is ever
//! taken around scheduler state — the cores are single-owner by
//! construction, mirroring the narrow-kernel split the protocol is
//! designed around.
//!
//! Both transports share the length-prefixed JSON framing, the
//! max-frame-size cap, and an idle-connection timeout: a peer that
//! stalls mid-frame (half-open TCP connection, SIGKILLed client) is
//! reaped after [`ServerConfig::idle_timeout`] instead of pinning a
//! reader thread forever. Subscribed connections are exempt — their
//! reader exits after the upgrade and liveness is policed by write
//! failures on the stream.
//!
//! Client disconnects are tolerated at every point: a reply or stream
//! frame that cannot be delivered is dropped (the decision it reported
//! stands — an admitted task whose client vanished stays admitted until
//! somebody leaves it), and a reader error just ends that connection.

use crate::core::{CoreConfig, SetRegistry, SetReport};
use crate::proto::{
    write_frame, FrameError, FrameReader, Op, Reply, Request, Status, StreamKind, StreamMsg,
};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// How the daemon advances quantum edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pace {
    /// A quantum edge fires whenever at least one request is pending:
    /// the batch is whatever arrived while the previous batch was being
    /// decided, and only the sets with pending work step. Idle slots are
    /// not simulated. This is the soak/test mode — simulated time
    /// decouples from wall time entirely.
    Virtual,
    /// Quantum edges fire every `quantum_us` of wall time whether or not
    /// requests arrived, and *every* live set steps at each edge, so all
    /// simulations track wall time and subscribers see idle slots too.
    /// Arrivals accumulate until the current edge is reached (they never
    /// advance it early); if deciding a batch overruns the quantum, the
    /// next edge is re-anchored rather than burst-replayed, so slots
    /// never advance faster than wall time.
    RealTime,
}

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum Bind {
    /// A Unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7133` (port 0 picks one).
    Tcp(String),
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Transport endpoint.
    pub bind: Bind,
    /// Admission-core template: every set (the default and each
    /// `create_set`) is built from this.
    pub core: CoreConfig,
    /// Quantum pacing.
    pub pace: Pace,
    /// Stream an `obs` snapshot to a set's subscribers every this many
    /// of that set's slots (0 = never).
    pub snapshot_every: u64,
    /// Reap a connection whose peer has been silent this long — a
    /// stalled half-open TCP peer must not pin a reader thread forever.
    /// Subscribed connections are exempt (they are write-only).
    pub idle_timeout: Duration,
    /// Maximum live task-set shards.
    pub max_sets: usize,
}

impl ServerConfig {
    /// Unix transport, virtual pacing, `M` processors, snapshots every
    /// 256 slots, 30 s idle timeout, up to 64 sets.
    pub fn new(socket: PathBuf, processors: u32) -> Self {
        Self::bound(Bind::Unix(socket), processors)
    }

    /// Same defaults over TCP.
    pub fn tcp(addr: impl Into<String>, processors: u32) -> Self {
        Self::bound(Bind::Tcp(addr.into()), processors)
    }

    /// Same defaults over an explicit [`Bind`].
    pub fn bound(bind: Bind, processors: u32) -> Self {
        ServerConfig {
            bind,
            core: CoreConfig::new(processors),
            pace: Pace::Virtual,
            snapshot_every: 256,
            idle_timeout: Duration::from_secs(30),
            max_sets: 64,
        }
    }
}

/// What the daemon did over its lifetime, returned when it shuts down.
pub struct RunReport {
    /// Per-set reports: sets dropped mid-run first (in drop order), then
    /// the sets still live at shutdown (sorted by name). Each carries
    /// its own offline-verifiable `ScheduleTrace`.
    pub sets: Vec<SetReport>,
    /// Final recorder snapshot (shared across sets).
    pub snapshot: obs::Snapshot,
}

impl RunReport {
    /// The default set's report, if it was still live at shutdown.
    pub fn default_set(&self) -> Option<&SetReport> {
        self.sets
            .iter()
            .find(|s| s.name == crate::proto::DEFAULT_SET && !s.dropped)
    }
}

// ---------------------------------------------------------------------------
// Transport abstraction: Unix-domain and TCP share everything above the
// accept/connect calls.
// ---------------------------------------------------------------------------

/// One accepted connection. Every method the server needs from a stream,
/// object-safe so `Box<dyn Conn>` can cross thread spawns.
pub trait Conn: Read + Write + Send {
    /// An independently readable/writable handle to the same socket
    /// (the per-connection writer thread owns the clone).
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>>;
    /// Sets the read timeout (the reader polls in slices of it).
    fn set_read_timeout_conn(&self, t: Option<Duration>) -> io::Result<()>;
    /// Shuts down both directions, unblocking any peer reads.
    fn shutdown_conn(&self);
}

impl Conn for UnixStream {
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }
    fn set_read_timeout_conn(&self, t: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(t)
    }
    fn shutdown_conn(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

impl Conn for TcpStream {
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }
    fn set_read_timeout_conn(&self, t: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(t)
    }
    fn shutdown_conn(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

/// A bound, non-blocking accept source.
pub trait Listener: Send {
    /// Accepts one pending connection; `WouldBlock` when none is queued
    /// (the accept loop backs off and re-polls).
    fn accept_conn(&self) -> io::Result<Box<dyn Conn>>;
    /// A clonable handle for the acceptor thread.
    fn try_clone_listener(&self) -> io::Result<Box<dyn Listener>>;
    /// Human-readable bound address (`unix:<path>` / `tcp://<addr>`).
    fn local_label(&self) -> String;
}

impl Listener for UnixListener {
    fn accept_conn(&self) -> io::Result<Box<dyn Conn>> {
        let (stream, _) = self.accept()?;
        // The listener is non-blocking; accepted sockets start blocking
        // with per-read timeouts applied by the reader.
        stream.set_nonblocking(false)?;
        Ok(Box::new(stream))
    }
    fn try_clone_listener(&self) -> io::Result<Box<dyn Listener>> {
        Ok(Box::new(self.try_clone()?))
    }
    fn local_label(&self) -> String {
        match self
            .local_addr()
            .ok()
            .and_then(|a| a.as_pathname().map(|p: &Path| p.display().to_string()))
        {
            Some(p) => format!("unix:{p}"),
            None => "unix:?".to_string(),
        }
    }
}

impl Listener for TcpListener {
    fn accept_conn(&self) -> io::Result<Box<dyn Conn>> {
        let (stream, _) = self.accept()?;
        stream.set_nonblocking(false)?;
        // Admission requests are latency-sensitive single frames;
        // Nagling them behind a 40 ms delayed ACK would dwarf the
        // decision latency the daemon is measured on.
        let _ = stream.set_nodelay(true);
        Ok(Box::new(stream))
    }
    fn try_clone_listener(&self) -> io::Result<Box<dyn Listener>> {
        Ok(Box::new(self.try_clone()?))
    }
    fn local_label(&self) -> String {
        match self.local_addr() {
            Ok(a) => format!("tcp://{a}"),
            Err(_) => "tcp://?".to_string(),
        }
    }
}

/// Binds a Unix socket, recovering the path from an unclean previous
/// death: if the path is occupied, a connect probe distinguishes a live
/// daemon (refuse to steal its socket) from a stale file left by a
/// SIGKILLed one (unlink and bind fresh).
fn bind_unix(path: &Path) -> io::Result<UnixListener> {
    match UnixListener::bind(path) {
        Ok(l) => Ok(l),
        Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
            match UnixStream::connect(path) {
                Ok(_) => Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("{}: another daemon is live on this socket", path.display()),
                )),
                // Nobody home behind the file: a previous daemon died
                // uncleanly. Unlink and take over the path.
                Err(_) => {
                    std::fs::remove_file(path)?;
                    UnixListener::bind(path)
                }
            }
        }
        Err(e) => Err(e),
    }
}

/// A bound-but-not-yet-serving daemon: lets the caller learn the actual
/// address (ephemeral TCP ports) before the first client can connect.
pub struct BoundServer {
    cfg: ServerConfig,
    listener: Box<dyn Listener>,
    label: String,
    /// Unix only: the path to unlink on clean shutdown.
    cleanup: Option<PathBuf>,
}

/// Binds the configured endpoint. Setup failures — including
/// `set_nonblocking`, which an earlier version silently swallowed — are
/// surfaced here, before any client can connect.
pub fn bind(cfg: ServerConfig) -> io::Result<BoundServer> {
    let (listener, cleanup): (Box<dyn Listener>, Option<PathBuf>) = match &cfg.bind {
        Bind::Unix(path) => {
            let l = bind_unix(path)?;
            l.set_nonblocking(true)?;
            (Box::new(l), Some(path.clone()))
        }
        Bind::Tcp(addr) => {
            let l = TcpListener::bind(addr.as_str())?;
            l.set_nonblocking(true)?;
            (Box::new(l), None)
        }
    };
    let label = listener.local_label();
    Ok(BoundServer {
        cfg,
        listener,
        label,
        cleanup,
    })
}

impl BoundServer {
    /// Where the daemon is actually listening (`unix:<path>` or
    /// `tcp://<ip>:<port>` with the ephemeral port resolved).
    pub fn local_label(&self) -> &str {
        &self.label
    }

    /// Serves until a client sends `Shutdown`; returns the run report.
    pub fn serve(self) -> io::Result<RunReport> {
        let report = serve(&self.cfg, &*self.listener);
        if let Some(path) = &self.cleanup {
            let _ = std::fs::remove_file(path);
        }
        report
    }
}

/// Binds and serves in one call.
pub fn run(cfg: ServerConfig) -> io::Result<RunReport> {
    bind(cfg)?.serve()
}

/// One parsed request plus the channel its reply goes back on.
struct WorkItem {
    req: Request,
    reply_tx: Sender<String>,
}

/// Per-set connection-facing state, parallel to the registry: where the
/// current batch's replies go, and who is subscribed to the set's
/// decision stream.
#[derive(Default)]
struct SetChannels {
    /// `routes[i]` is the connection whose request became the i-th
    /// pending slot of the set's current batch (intake order) —
    /// index-aligned with `AdmissionCore::decided_order`, never keyed on
    /// client-chosen nonces, which can collide across connections.
    routes: Vec<Sender<String>>,
    subscribers: Vec<Sender<String>>,
}

fn serve(cfg: &ServerConfig, listener: &dyn Listener) -> io::Result<RunReport> {
    let rec = obs::Recorder::enabled();
    let mut registry = SetRegistry::new(cfg.core.clone(), cfg.max_sets, &rec);
    let batches = rec.counter("daemon.batches");
    let batched_requests = rec.counter("daemon.requests");
    let refused_full = rec.counter("daemon.batch_full_refusals");
    let batch_size = rec.log2_histogram("daemon.batch_size");
    let decide_ns = rec.timer("daemon.decide_ns");

    let (work_tx, work_rx) = channel::<WorkItem>();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let acceptor = {
        let work_tx = work_tx.clone();
        let listener = listener.try_clone_listener()?;
        let stop = std::sync::Arc::clone(&stop);
        let idle_timeout = cfg.idle_timeout;
        // Non-blocking accept poll so shutdown never races a blocked
        // accept(2). On WouldBlock the loop backs off exponentially
        // (1 ms → 50 ms) instead of spinning at a fixed short period —
        // an idle daemon burns ~20 wakeups/s, not hundreds.
        std::thread::spawn(move || {
            const BACKOFF_MIN: Duration = Duration::from_millis(1);
            const BACKOFF_MAX: Duration = Duration::from_millis(50);
            let mut backoff = BACKOFF_MIN;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                match listener.accept_conn() {
                    Ok(conn) => {
                        backoff = BACKOFF_MIN;
                        spawn_connection(conn, work_tx.clone(), idle_timeout);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(BACKOFF_MAX);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
        })
    };
    drop(work_tx);

    let quantum = Duration::from_micros(cfg.core.params.quantum_us.max(1));
    let mut chans: BTreeMap<String, SetChannels> = BTreeMap::new();
    chans.insert(
        crate::proto::DEFAULT_SET.to_string(),
        SetChannels::default(),
    );
    let mut replies: Vec<Reply> = Vec::new();
    let mut shutdown_acks: Vec<(u64, Sender<String>)> = Vec::new();
    // DropSet is deferred past the batch decision so requests already
    // pending in the doomed set still get their replies.
    let mut drop_requests: Vec<(String, u64, Sender<String>)> = Vec::new();
    let mut shutting_down = false;
    let mut disconnected = false;
    let mut next_edge = Instant::now() + quantum;

    while !shutting_down {
        let total_pending: usize = registry.iter_mut().map(|(_, c)| c.pending_len()).sum();
        if disconnected && total_pending == 0 {
            break; // acceptor gone and all connections closed
        }
        // Returns true when the item was a shutdown request.
        let mut intake = |item: WorkItem,
                          registry: &mut SetRegistry,
                          chans: &mut BTreeMap<String, SetChannels>|
         -> bool {
            let set_name = item.req.set_name().to_string();
            match item.req.op {
                Op::Join | Op::Leave | Op::Reweight => {
                    let nonce = item.req.nonce;
                    let Some(core) = registry.get_mut(&set_name) else {
                        send_no_such_set(&item.reply_tx, nonce, &set_name);
                        return false;
                    };
                    let slot = core.slot();
                    if core.push_request(item.req) {
                        chans
                            .get_mut(&set_name)
                            .expect("chans mirrors registry")
                            .routes
                            .push(item.reply_tx);
                    } else {
                        refused_full.add(1);
                        let mut r = Reply::new(nonce, Status::Error, slot);
                        r.set = Some(set_name);
                        r.error = Some("batch full; retry next quantum".to_string());
                        send_reply(&item.reply_tx, &r);
                    }
                    false
                }
                Op::Stats => {
                    let Some(core) = registry.get_mut(&set_name) else {
                        send_no_such_set(&item.reply_tx, item.req.nonce, &set_name);
                        return false;
                    };
                    let mut r = Reply::new(item.req.nonce, Status::Stats, core.slot());
                    r.task_count = Some(core.task_count() as u64);
                    r.weight_ppm = Some(core.weight_ppm());
                    r.set = Some(set_name);
                    r.sets = Some(registry.names());
                    r.snapshot = Some(rec.snapshot().to_json());
                    send_reply(&item.reply_tx, &r);
                    false
                }
                Op::Subscribe => {
                    let Some(core) = registry.get_mut(&set_name) else {
                        send_no_such_set(&item.reply_tx, item.req.nonce, &set_name);
                        return false;
                    };
                    let mut r = Reply::new(item.req.nonce, Status::Subscribed, core.slot());
                    r.set = Some(set_name.clone());
                    send_reply(&item.reply_tx, &r);
                    chans
                        .get_mut(&set_name)
                        .expect("chans mirrors registry")
                        .subscribers
                        .push(item.reply_tx);
                    false
                }
                Op::CreateSet => {
                    let nonce = item.req.nonce;
                    let r = match item.req.set.as_deref() {
                        None => {
                            let mut r = Reply::new(nonce, Status::Error, 0);
                            r.error = Some("create_set requires an explicit `set`".to_string());
                            r
                        }
                        Some(name) => match registry.create(name) {
                            Ok(()) => {
                                chans.insert(name.to_string(), SetChannels::default());
                                let mut r = Reply::new(nonce, Status::SetCreated, 0);
                                r.set = Some(name.to_string());
                                r.sets = Some(registry.names());
                                r
                            }
                            Err(e) => {
                                let mut r = Reply::new(nonce, Status::Error, 0);
                                r.set = Some(name.to_string());
                                r.error = Some(e);
                                r
                            }
                        },
                    };
                    send_reply(&item.reply_tx, &r);
                    false
                }
                Op::DropSet => {
                    match item.req.set.as_deref() {
                        None => {
                            let mut r = Reply::new(item.req.nonce, Status::Error, 0);
                            r.error = Some("drop_set requires an explicit `set`".to_string());
                            send_reply(&item.reply_tx, &r);
                        }
                        Some(name) => {
                            drop_requests.push((name.to_string(), item.req.nonce, item.reply_tx));
                        }
                    }
                    false
                }
                Op::ListSets => {
                    let mut r = Reply::new(item.req.nonce, Status::SetList, 0);
                    r.sets = Some(registry.names());
                    send_reply(&item.reply_tx, &r);
                    false
                }
                Op::Shutdown => {
                    shutdown_acks.push((item.req.nonce, item.reply_tx));
                    true
                }
            }
        };
        // Gather one quantum's batch. Virtual pace blocks for the first
        // item and takes whatever else already arrived; real-time pace
        // accumulates arrivals until the absolute quantum edge is
        // reached, so sustained traffic cannot advance slots faster than
        // wall time.
        match cfg.pace {
            Pace::Virtual => {
                match work_rx.recv() {
                    Ok(item) => shutting_down |= intake(item, &mut registry, &mut chans),
                    Err(_) => disconnected = true,
                }
                while let Ok(item) = work_rx.try_recv() {
                    shutting_down |= intake(item, &mut registry, &mut chans);
                }
            }
            Pace::RealTime => {
                while !shutting_down && !disconnected {
                    let now = Instant::now();
                    if now >= next_edge {
                        break;
                    }
                    match work_rx.recv_timeout(next_edge - now) {
                        Ok(item) => shutting_down |= intake(item, &mut registry, &mut chans),
                        Err(RecvTimeoutError::Timeout) => break,
                        Err(RecvTimeoutError::Disconnected) => disconnected = true,
                    }
                }
                next_edge += quantum;
                let now = Instant::now();
                if next_edge < now {
                    // Deciding the previous batch overran the quantum (or
                    // the host stalled): re-anchor instead of bursting
                    // catch-up edges.
                    next_edge = now + quantum;
                }
            }
        }

        // Decide each set's batch independently. Virtual pace steps only
        // the sets with pending work (plus everyone on shutdown, so
        // final replies drain); real-time pace steps every set at every
        // wall-clock edge.
        for (name, core) in registry.iter_mut() {
            let pending = core.pending_len();
            if pending == 0 && cfg.pace == Pace::Virtual {
                continue;
            }
            let ch = chans.get_mut(name).expect("chans mirrors registry");
            batches.add(1);
            batched_requests.add(pending as u64);
            batch_size.record(pending as u64);
            replies.clear();
            let span = decide_ns.start();
            let decided_at = core.decide_batch(&mut replies);
            drop(span);

            // Replies come back in canonical order; `decided_order()[k]`
            // is the intake index of the request `replies[k]` answered,
            // which indexes straight into this set's routes. Routing is
            // therefore by connection, never by the client-chosen nonce —
            // two clients with colliding nonces in one batch each still
            // get their own reply.
            let order = core.decided_order();
            debug_assert_eq!(order.len(), replies.len());
            for (k, reply) in replies.iter_mut().enumerate() {
                if let Some(tx) = order.get(k).and_then(|&i| ch.routes.get(i as usize)) {
                    reply.set = Some(name.to_string());
                    send_reply(tx, reply);
                }
            }
            ch.routes.clear();

            // Stream the set's decision (and periodic snapshots).
            if !ch.subscribers.is_empty() {
                let msg = StreamMsg {
                    kind: StreamKind::Decision,
                    slot: decided_at,
                    set: Some(name.to_string()),
                    scheduled: Some(core.last_chosen().iter().map(|id| id.0).collect()),
                    snapshot: None,
                };
                broadcast(&mut ch.subscribers, &msg);
                if cfg.snapshot_every > 0 && decided_at % cfg.snapshot_every == 0 {
                    let msg = StreamMsg {
                        kind: StreamKind::Snapshot,
                        slot: decided_at,
                        set: Some(name.to_string()),
                        scheduled: None,
                        snapshot: Some(rec.snapshot().to_json()),
                    };
                    broadcast(&mut ch.subscribers, &msg);
                }
            }
        }

        // Deferred set drops: the doomed set's batch was just decided,
        // so every pending reply has been routed. Subscribers of the
        // dropped set get a Bye.
        for (name, nonce, tx) in drop_requests.drain(..) {
            match registry.drop_set(&name) {
                Ok(()) => {
                    if let Some(mut ch) = chans.remove(&name) {
                        let bye = StreamMsg {
                            kind: StreamKind::Bye,
                            slot: 0,
                            set: Some(name.clone()),
                            scheduled: None,
                            snapshot: None,
                        };
                        broadcast(&mut ch.subscribers, &bye);
                    }
                    let mut r = Reply::new(nonce, Status::SetDropped, 0);
                    r.set = Some(name);
                    r.sets = Some(registry.names());
                    send_reply(&tx, &r);
                }
                Err(e) => {
                    let mut r = Reply::new(nonce, Status::Error, 0);
                    r.set = Some(name);
                    r.error = Some(e);
                    send_reply(&tx, &r);
                }
            }
        }
    }

    // Clean shutdown: acknowledge, say goodbye to every set's
    // subscribers, stop the acceptor.
    for (nonce, tx) in shutdown_acks.drain(..) {
        send_reply(&tx, &Reply::new(nonce, Status::ShuttingDown, 0));
    }
    for (name, ch) in chans.iter_mut() {
        let bye = StreamMsg {
            kind: StreamKind::Bye,
            slot: 0,
            set: Some(name.clone()),
            scheduled: None,
            snapshot: None,
        };
        broadcast(&mut ch.subscribers, &bye);
        ch.subscribers.clear();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let _ = acceptor.join();

    Ok(RunReport {
        sets: registry.into_reports(),
        snapshot: rec.snapshot(),
    })
}

/// Serializes and sends one reply; delivery failure means the client is
/// gone, which is not the daemon's problem.
fn send_reply(tx: &Sender<String>, reply: &Reply) {
    if let Ok(json) = serde_json::to_string(reply) {
        let _ = tx.send(json);
    }
}

/// Error reply for a request naming an unknown set.
fn send_no_such_set(tx: &Sender<String>, nonce: u64, set: &str) {
    let mut r = Reply::new(nonce, Status::Error, 0);
    r.set = Some(set.to_string());
    r.error = Some(format!("no such set `{set}` (create_set first)"));
    send_reply(tx, &r);
}

/// Broadcasts a stream frame, dropping subscribers whose connection died.
fn broadcast(subscribers: &mut Vec<Sender<String>>, msg: &StreamMsg) {
    let Ok(json) = serde_json::to_string(msg) else {
        return;
    };
    subscribers.retain(|tx| tx.send(json.clone()).is_ok());
}

/// Spawns the reader + writer threads for one accepted connection.
fn spawn_connection(conn: Box<dyn Conn>, work_tx: Sender<WorkItem>, idle_timeout: Duration) {
    let Ok(write_half) = conn.try_clone_conn() else {
        return;
    };
    let (reply_tx, reply_rx) = channel::<String>();
    std::thread::spawn(move || writer_loop(write_half, reply_rx));
    std::thread::spawn(move || reader_loop(conn, work_tx, reply_tx, idle_timeout));
}

/// Forwards reply/stream frames to the socket until the channel closes
/// (all senders dropped) or the peer disappears.
fn writer_loop(mut conn: Box<dyn Conn>, reply_rx: Receiver<String>) {
    for json in reply_rx {
        if write_frame(&mut conn, &json).is_err() {
            break;
        }
    }
    conn.shutdown_conn();
}

/// Parses request frames and forwards them to the batch loop.
///
/// Reads are sliced by a short socket timeout so the loop can track how
/// long the peer has been silent; a connection idle (or stalled
/// mid-frame) past `idle_timeout` is shut down — a half-open TCP peer
/// costs one reader thread for at most the timeout, never forever. A
/// malformed frame (oversized length prefix, non-UTF-8 payload) is
/// answered best-effort and closes *this* connection only; EOF just ends
/// it. A `Subscribe` upgrade ends the reader too: the connection becomes
/// write-only and its liveness is policed by stream-write failures.
///
/// The reader never shuts the socket down itself: exiting drops its
/// reply sender, the writer drains whatever is still queued (the
/// best-effort error reply included), and the *writer* closes the
/// connection — otherwise the close races the final frame.
fn reader_loop(
    mut conn: Box<dyn Conn>,
    work_tx: Sender<WorkItem>,
    reply_tx: Sender<String>,
    idle_timeout: Duration,
) {
    const SLICE: Duration = Duration::from_millis(100);
    if conn.set_read_timeout_conn(Some(SLICE)).is_err() {
        return;
    }
    let mut reader = FrameReader::new();
    let mut silent = Duration::ZERO;
    loop {
        match reader.poll(&mut conn) {
            Ok(Some(frame)) => {
                silent = Duration::ZERO;
                let req: Request = match serde_json::from_str(&frame) {
                    Ok(r) => r,
                    Err(e) => {
                        let mut r = Reply::new(0, Status::Error, 0);
                        r.error = Some(format!("unparsable request: {e}"));
                        send_reply(&reply_tx, &r);
                        break;
                    }
                };
                let subscribe = req.op == Op::Subscribe;
                let item = WorkItem {
                    req,
                    reply_tx: reply_tx.clone(),
                };
                if work_tx.send(item).is_err() {
                    break; // batch loop has shut down
                }
                if subscribe {
                    // Write-only from here on; do NOT shut the socket
                    // down — the writer owns it now.
                    return;
                }
            }
            Ok(None) => {
                // A would-block slice elapsed with no progress.
                silent += SLICE;
                if silent >= idle_timeout {
                    let mut r = Reply::new(0, Status::Error, 0);
                    r.error = Some(if reader.mid_frame() {
                        "connection stalled mid-frame; closing".to_string()
                    } else {
                        "connection idle too long; closing".to_string()
                    });
                    send_reply(&reply_tx, &r);
                    break;
                }
            }
            Err(FrameError::Malformed(m)) => {
                let mut r = Reply::new(0, Status::Error, 0);
                r.error = Some(format!("malformed frame: {m}"));
                send_reply(&reply_tx, &r);
                break;
            }
            Err(_) => break, // Closed / Disconnected / hard I/O error
        }
    }
}
