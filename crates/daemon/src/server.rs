//! The daemon's transport: a Unix-domain socket in front of one
//! [`AdmissionCore`].
//!
//! Threading model: one acceptor thread, one reader thread per
//! connection, one writer thread per connection, and a single *batch
//! loop* (the caller's thread) owning the admission core. Readers parse
//! frames and forward work items over an mpsc channel; the batch loop
//! drains everything that arrived within the current quantum, decides it
//! as one batch, and routes replies back through per-connection channels.
//! No lock is ever taken around scheduler state — the core is
//! single-owner by construction, mirroring the narrow-kernel split the
//! protocol is designed around.
//!
//! Client disconnects are tolerated at every point: a reply or stream
//! frame that cannot be delivered is dropped (the decision it reported
//! stands — an admitted task whose client vanished stays admitted until
//! somebody leaves it), and a reader error just ends that connection.

use crate::core::{AdmissionCore, CoreConfig};
use crate::proto::{read_frame, write_frame, Op, Reply, Request, Status, StreamKind, StreamMsg};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// How the daemon advances quantum edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pace {
    /// A quantum edge fires whenever at least one request is pending:
    /// the batch is whatever arrived while the previous batch was being
    /// decided. Idle slots are not simulated. This is the soak/test mode
    /// — simulated time decouples from wall time entirely.
    Virtual,
    /// Quantum edges fire every `quantum_us` of wall time whether or not
    /// requests arrived, so the simulation tracks wall time and
    /// subscribers see idle slots too. Arrivals accumulate until the
    /// current edge is reached (they never advance it early); if deciding
    /// a batch overruns the quantum, the next edge is re-anchored rather
    /// than burst-replayed, so slots never advance faster than wall time.
    RealTime,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Socket path; removed and re-bound at startup, removed at exit.
    pub socket: PathBuf,
    /// Admission core parameters.
    pub core: CoreConfig,
    /// Quantum pacing.
    pub pace: Pace,
    /// Stream an `obs` snapshot to subscribers every this many slots
    /// (0 = never).
    pub snapshot_every: u64,
}

impl ServerConfig {
    /// Virtual pacing, `M` processors, snapshots every 256 slots.
    pub fn new(socket: PathBuf, processors: u32) -> Self {
        ServerConfig {
            socket,
            core: CoreConfig::new(processors),
            pace: Pace::Virtual,
            snapshot_every: 256,
        }
    }
}

/// What the daemon did over its lifetime, returned when it shuts down.
pub struct RunReport {
    /// Slots simulated.
    pub slots: u64,
    /// (admitted, rejected, left, reweighted) totals.
    pub counts: (u64, u64, u64, u64),
    /// Final recorder snapshot.
    pub snapshot: obs::Snapshot,
    /// Full schedule trace (when `record_trace` was on).
    pub trace: Option<sched_sim::ScheduleTrace>,
}

/// One parsed request plus the channel its reply goes back on.
struct WorkItem {
    req: Request,
    reply_tx: Sender<String>,
}

/// Runs the daemon until a client sends `Shutdown`. Binds the socket,
/// then serves; returns the run report after a clean shutdown.
pub fn run(cfg: ServerConfig) -> io::Result<RunReport> {
    let _ = std::fs::remove_file(&cfg.socket);
    let listener = UnixListener::bind(&cfg.socket)?;
    let report = serve(&cfg, listener);
    let _ = std::fs::remove_file(&cfg.socket);
    report
}

fn serve(cfg: &ServerConfig, listener: UnixListener) -> io::Result<RunReport> {
    let rec = obs::Recorder::enabled();
    let mut core = AdmissionCore::new(cfg.core.clone());
    core.set_recorder(&rec);
    let batches = rec.counter("daemon.batches");
    let batched_requests = rec.counter("daemon.requests");
    let refused_full = rec.counter("daemon.batch_full_refusals");
    let batch_size = rec.log2_histogram("daemon.batch_size");
    let decide_ns = rec.timer("daemon.decide_ns");

    let (work_tx, work_rx) = channel::<WorkItem>();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let acceptor = {
        let work_tx = work_tx.clone();
        let listener = listener.try_clone()?;
        let stop = std::sync::Arc::clone(&stop);
        // Non-blocking accept poll so shutdown never races a blocked
        // accept(2): the loop re-checks the stop flag every few ms.
        std::thread::spawn(move || {
            let _ = listener.set_nonblocking(true);
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        spawn_connection(stream, work_tx.clone());
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        })
    };
    drop(work_tx);

    let quantum = Duration::from_micros(cfg.core.params.quantum_us.max(1));
    let mut subscribers: Vec<Sender<String>> = Vec::new();
    let mut replies: Vec<Reply> = Vec::new();
    // `reply_routes[i]` is the connection whose request became the i-th
    // pending slot of the current batch (intake order) — index-aligned
    // with `AdmissionCore::decided_order`, never keyed on client-chosen
    // nonces, which can collide across connections.
    let mut reply_routes: Vec<Sender<String>> = Vec::new();
    let mut shutdown_acks: Vec<(u64, Sender<String>)> = Vec::new();
    let mut shutting_down = false;
    let mut disconnected = false;
    let mut next_edge = Instant::now() + quantum;

    while !shutting_down {
        if disconnected && core.pending_len() == 0 {
            break; // acceptor gone and all connections closed
        }
        reply_routes.clear();
        // Returns true when the item was a shutdown request.
        let mut intake = |item: WorkItem,
                          core: &mut AdmissionCore,
                          subscribers: &mut Vec<Sender<String>>|
         -> bool {
            match item.req.op {
                Op::Join | Op::Leave | Op::Reweight => {
                    let nonce = item.req.nonce;
                    if core.push_request(item.req) {
                        reply_routes.push(item.reply_tx);
                    } else {
                        refused_full.add(1);
                        let mut r = Reply::new(nonce, Status::Error, core.slot());
                        r.error = Some("batch full; retry next quantum".to_string());
                        send_reply(&item.reply_tx, &r);
                    }
                    false
                }
                Op::Stats => {
                    let mut r = Reply::new(item.req.nonce, Status::Stats, core.slot());
                    r.task_count = Some(core.task_count() as u64);
                    r.weight_ppm = Some(core.weight_ppm());
                    r.snapshot = Some(rec.snapshot().to_json());
                    send_reply(&item.reply_tx, &r);
                    false
                }
                Op::Subscribe => {
                    let r = Reply::new(item.req.nonce, Status::Subscribed, core.slot());
                    send_reply(&item.reply_tx, &r);
                    subscribers.push(item.reply_tx);
                    false
                }
                Op::Shutdown => {
                    shutdown_acks.push((item.req.nonce, item.reply_tx));
                    true
                }
            }
        };
        // Gather one quantum's batch. Virtual pace blocks for the first
        // item and takes whatever else already arrived; real-time pace
        // accumulates arrivals until the absolute quantum edge is
        // reached, so sustained traffic cannot advance slots faster than
        // wall time.
        match cfg.pace {
            Pace::Virtual => {
                match work_rx.recv() {
                    Ok(item) => shutting_down |= intake(item, &mut core, &mut subscribers),
                    Err(_) => disconnected = true,
                }
                while let Ok(item) = work_rx.try_recv() {
                    shutting_down |= intake(item, &mut core, &mut subscribers);
                }
            }
            Pace::RealTime => {
                while !shutting_down && !disconnected {
                    let now = Instant::now();
                    if now >= next_edge {
                        break;
                    }
                    match work_rx.recv_timeout(next_edge - now) {
                        Ok(item) => shutting_down |= intake(item, &mut core, &mut subscribers),
                        Err(RecvTimeoutError::Timeout) => break,
                        Err(RecvTimeoutError::Disconnected) => disconnected = true,
                    }
                }
                next_edge += quantum;
                let now = Instant::now();
                if next_edge < now {
                    // Deciding the previous batch overran the quantum (or
                    // the host stalled): re-anchor instead of bursting
                    // catch-up edges.
                    next_edge = now + quantum;
                }
            }
        }

        if core.pending_len() == 0 && cfg.pace == Pace::Virtual && !shutting_down {
            continue; // stats/subscribe only — no quantum edge needed
        }

        // Decide the batch and advance one quantum.
        batches.add(1);
        batched_requests.add(core.pending_len() as u64);
        batch_size.record(core.pending_len() as u64);
        replies.clear();
        let span = decide_ns.start();
        let decided_at = core.decide_batch(&mut replies);
        drop(span);

        // Replies come back in canonical order; `decided_order()[k]` is
        // the intake index of the request `replies[k]` answered, which
        // indexes straight into `reply_routes`. Routing is therefore by
        // connection, never by the client-chosen nonce — two clients with
        // colliding nonces in one batch each still get their own reply.
        let order = core.decided_order();
        debug_assert_eq!(order.len(), replies.len());
        for (k, reply) in replies.iter().enumerate() {
            if let Some(tx) = order.get(k).and_then(|&i| reply_routes.get(i as usize)) {
                send_reply(tx, reply);
            }
        }

        // Stream the quantum's decision (and periodic snapshots).
        if !subscribers.is_empty() {
            let msg = StreamMsg {
                kind: StreamKind::Decision,
                slot: decided_at,
                scheduled: Some(core.last_chosen().iter().map(|id| id.0).collect()),
                snapshot: None,
            };
            broadcast(&mut subscribers, &msg);
            if cfg.snapshot_every > 0 && decided_at % cfg.snapshot_every == 0 {
                let msg = StreamMsg {
                    kind: StreamKind::Snapshot,
                    slot: decided_at,
                    scheduled: None,
                    snapshot: Some(rec.snapshot().to_json()),
                };
                broadcast(&mut subscribers, &msg);
            }
        }
    }

    // Clean shutdown: acknowledge, say goodbye to subscribers, unblock
    // the acceptor by removing the socket and poking one last connect.
    let final_slot = core.slot();
    for (nonce, tx) in shutdown_acks.drain(..) {
        send_reply(&tx, &Reply::new(nonce, Status::ShuttingDown, final_slot));
    }
    let bye = StreamMsg {
        kind: StreamKind::Bye,
        slot: final_slot,
        scheduled: None,
        snapshot: None,
    };
    broadcast(&mut subscribers, &bye);
    subscribers.clear();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let _ = acceptor.join();
    let _ = std::fs::remove_file(&cfg.socket);
    drop(listener);

    Ok(RunReport {
        slots: core.slot(),
        counts: core.counts(),
        snapshot: rec.snapshot(),
        trace: core.trace(),
    })
}

/// Serializes and sends one reply; delivery failure means the client is
/// gone, which is not the daemon's problem.
fn send_reply(tx: &Sender<String>, reply: &Reply) {
    if let Ok(json) = serde_json::to_string(reply) {
        let _ = tx.send(json);
    }
}

/// Broadcasts a stream frame, dropping subscribers whose connection died.
fn broadcast(subscribers: &mut Vec<Sender<String>>, msg: &StreamMsg) {
    let Ok(json) = serde_json::to_string(msg) else {
        return;
    };
    subscribers.retain(|tx| tx.send(json.clone()).is_ok());
}

/// Spawns the reader + writer threads for one accepted connection.
fn spawn_connection(stream: UnixStream, work_tx: Sender<WorkItem>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (reply_tx, reply_rx) = channel::<String>();
    std::thread::spawn(move || writer_loop(write_half, reply_rx));
    std::thread::spawn(move || reader_loop(stream, work_tx, reply_tx));
}

/// Forwards reply/stream frames to the socket until the channel closes
/// (all senders dropped) or the peer disappears.
fn writer_loop(mut stream: UnixStream, reply_rx: Receiver<String>) {
    for json in reply_rx {
        if write_frame(&mut stream, &json).is_err() {
            break;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Parses request frames and forwards them to the batch loop. A parse
/// error is answered (best-effort) and closes the connection; EOF just
/// ends it.
fn reader_loop(mut stream: UnixStream, work_tx: Sender<WorkItem>, reply_tx: Sender<String>) {
    // EOF and read errors both just end the connection.
    while let Ok(Some(frame)) = read_frame(&mut stream) {
        let req: Request = match serde_json::from_str(&frame) {
            Ok(r) => r,
            Err(e) => {
                let mut r = Reply::new(0, Status::Error, 0);
                r.error = Some(format!("unparsable request: {e}"));
                send_reply(&reply_tx, &r);
                break;
            }
        };
        let item = WorkItem {
            req,
            reply_tx: reply_tx.clone(),
        };
        if work_tx.send(item).is_err() {
            break; // batch loop has shut down
        }
    }
}
