//! Event-driven uniprocessor simulator for EDF and RM.
//!
//! The simulator advances directly from event to event (job releases and
//! completions) instead of ticking every time unit, so horizons of 10⁶
//! time units — the paper's measurement horizon for Fig. 2 — are cheap.
//!
//! The ready queue is a binary heap, as in the implementation the paper
//! measured ("We used binary heaps to implement the priority queues of
//! both schedulers", Section 4). Scheduler *invocations* are counted at
//! every job release and completion, matching the paper's description of
//! when the EDF scheduler runs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Priority discipline for the uniprocessor simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Discipline {
    /// Earliest-deadline-first (dynamic priority; deadline = period end).
    Edf,
    /// Rate-monotonic (static priority; smaller period = higher priority).
    Rm,
}

impl Discipline {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Discipline::Edf => "EDF",
            Discipline::Rm => "RM",
        }
    }
}

/// A pending job in the ready queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Job {
    /// Priority key: absolute deadline (EDF) or period (RM); smaller wins.
    key: u64,
    /// Release time (for response-time accounting).
    release: u64,
    /// Tie-break sequence number (FIFO within equal priority).
    seq: u64,
    /// Index of the owning task.
    task: u32,
    /// Absolute deadline (for miss detection).
    deadline: u64,
    /// Remaining execution.
    remaining: u64,
}

// Min-order by (key, seq): BinaryHeap<Reverse<Job>> pops smallest.
impl Ord for Job {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.key, self.seq, self.task).cmp(&(other.key, other.seq, other.task))
    }
}
impl PartialOrd for Job {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Counters collected over a simulation run.
///
/// `mean_response()` gives the average job response time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UniStats {
    /// Sum of job response times (completion − release), for mean
    /// computation; time units of the simulation.
    pub response_sum: u64,
    /// Largest single job response time.
    pub response_max: u64,
    /// Scheduler invocations (one per job release and per job completion).
    pub invocations: u64,
    /// Preemptions: a running job displaced by a higher-priority release.
    pub preemptions: u64,
    /// Context switches: loads of a job that is not the one just running
    /// (≤ 2 × jobs for EDF, the bound used in the paper's Section 4).
    pub context_switches: u64,
    /// Completed jobs.
    pub completed_jobs: u64,
    /// Released jobs.
    pub released_jobs: u64,
    /// Jobs that completed after their deadline (or were still late at the
    /// horizon).
    pub deadline_misses: u64,
    /// Total idle time units.
    pub idle_time: u64,
}

impl UniStats {
    /// Mean job response time (0 when no job completed).
    pub fn mean_response(&self) -> f64 {
        if self.completed_jobs == 0 {
            0.0
        } else {
            self.response_sum as f64 / self.completed_jobs as f64
        }
    }
}

/// Event-driven uniprocessor simulator over synchronous periodic tasks
/// given as `(exec, period)` pairs (any time unit; deadlines are implicit,
/// equal to periods).
///
/// # Examples
///
/// ```
/// use uniproc::{Discipline, UniSim};
///
/// // Liu & Layland's classic pair: U = 1/2 + 2/5 = 0.9.
/// let mut sim = UniSim::new(&[(1, 2), (2, 5)], Discipline::Edf);
/// let stats = sim.run(10_000);
/// assert_eq!(stats.deadline_misses, 0);
/// assert_eq!(stats.idle_time, 1_000); // 10% idle
/// ```
#[derive(Debug)]
pub struct UniSim {
    tasks: Vec<(u64, u64)>,
    discipline: Discipline,
    ready: BinaryHeap<Reverse<Job>>,
    /// Release event queue: (next release time, task index), one entry per
    /// task — O(log N) per release instead of an O(N) scan, matching the
    /// event-timer implementation the paper's measurements assume.
    releases: BinaryHeap<Reverse<(u64, u32)>>,
    running: Option<Job>,
    /// Task index of the last job that occupied the processor.
    last_on_cpu: Option<u32>,
    now: u64,
    seq: u64,
    stats: UniStats,
}

impl UniSim {
    /// Creates a simulator. Every task must have `0 < exec ≤ period`.
    pub fn new(tasks: &[(u64, u64)], discipline: Discipline) -> Self {
        for &(e, p) in tasks {
            assert!(e > 0 && p > 0 && e <= p, "invalid task (e={e}, p={p})");
        }
        UniSim {
            tasks: tasks.to_vec(),
            discipline,
            ready: BinaryHeap::with_capacity(tasks.len()),
            releases: (0..tasks.len() as u32).map(|i| Reverse((0, i))).collect(),
            running: None,
            last_on_cpu: None,
            now: 0,
            seq: 0,
            stats: UniStats::default(),
        }
    }

    /// The discipline in use.
    pub fn discipline(&self) -> Discipline {
        self.discipline
    }

    /// Statistics so far.
    pub fn stats(&self) -> UniStats {
        self.stats
    }

    /// Current simulation time.
    pub fn now(&self) -> u64 {
        self.now
    }

    fn release_due(&mut self) {
        while let Some(&Reverse((rel, i))) = self.releases.peek() {
            if rel > self.now {
                break;
            }
            self.releases.pop();
            let (e, p) = self.tasks[i as usize];
            self.ready.push(Reverse(Job {
                key: match self.discipline {
                    Discipline::Edf => rel + p,
                    Discipline::Rm => p,
                },
                seq: self.seq,
                task: i,
                release: rel,
                deadline: rel + p,
                remaining: e,
            }));
            self.seq += 1;
            self.releases.push(Reverse((rel + p, i)));
            self.stats.released_jobs += 1;
            self.stats.invocations += 1;
        }
    }

    /// Earliest future release time, if any.
    fn next_release_time(&self) -> u64 {
        self.releases
            .peek()
            .map(|&Reverse((t, _))| t)
            .unwrap_or(u64::MAX)
    }

    /// Ensures the highest-priority pending job is running, counting
    /// preemptions and context switches.
    fn dispatch(&mut self) {
        let Some(&Reverse(top)) = self.ready.peek() else {
            return;
        };
        match self.running {
            Some(cur) if cur <= top => {} // current job keeps the CPU
            Some(cur) => {
                // Preempted by a higher-priority job.
                self.ready.pop();
                self.ready.push(Reverse(cur));
                self.running = Some(top);
                self.stats.preemptions += 1;
                self.stats.context_switches += 1;
                self.last_on_cpu = Some(top.task);
            }
            None => {
                self.ready.pop();
                self.running = Some(top);
                if self.last_on_cpu != Some(top.task) {
                    self.stats.context_switches += 1;
                }
                self.last_on_cpu = Some(top.task);
            }
        }
    }

    /// Runs until `horizon`, returning the accumulated statistics.
    ///
    /// The returned `deadline_misses` includes both jobs that *completed*
    /// late and jobs still pending past their deadline at the horizon
    /// (so chronic starvation is visible). The internal counter (and hence
    /// [`Self::stats`]) tracks only completed-late jobs; the pending-late
    /// adjustment is recomputed per call, keeping repeated incremental
    /// `run` calls consistent with a single fresh run.
    pub fn run(&mut self, horizon: u64) -> UniStats {
        assert!(horizon >= self.now, "horizon precedes current time");
        while self.now < horizon {
            self.release_due();
            self.dispatch();
            let next_rel = self.next_release_time().min(horizon);
            match self.running.as_mut() {
                None => {
                    // Idle until the next release (or the horizon).
                    self.stats.idle_time += next_rel - self.now;
                    self.now = next_rel;
                }
                Some(job) => {
                    let completion = self.now + job.remaining;
                    if completion <= next_rel {
                        // Run to completion.
                        self.now = completion;
                        if completion > job.deadline {
                            self.stats.deadline_misses += 1;
                        }
                        let response = completion - job.release;
                        self.stats.response_sum += response;
                        self.stats.response_max = self.stats.response_max.max(response);
                        self.stats.completed_jobs += 1;
                        self.stats.invocations += 1;
                        self.running = None;
                    } else {
                        // Run until the release, then re-evaluate.
                        job.remaining -= next_rel - self.now;
                        self.now = next_rel;
                    }
                }
            }
        }
        let mut snapshot = self.stats;
        snapshot.deadline_misses += self
            .ready
            .iter()
            .map(|Reverse(j)| j)
            .chain(self.running.as_ref())
            .filter(|j| j.deadline <= self.now && j.remaining > 0)
            .count() as u64;
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edf_full_utilization_no_misses() {
        // U = 1/2 + 1/3 + 1/6 = 1: EDF schedules it with zero idle.
        let mut sim = UniSim::new(&[(1, 2), (1, 3), (1, 6)], Discipline::Edf);
        let s = sim.run(600);
        assert_eq!(s.deadline_misses, 0);
        assert_eq!(s.idle_time, 0);
        assert_eq!(s.completed_jobs, 300 + 200 + 100);
    }

    #[test]
    fn edf_overload_misses() {
        // U = 2/3 + 2/3 > 1: misses are inevitable.
        let mut sim = UniSim::new(&[(2, 3), (2, 3)], Discipline::Edf);
        let s = sim.run(300);
        assert!(s.deadline_misses > 0);
    }

    #[test]
    fn rm_liu_layland_counterexample() {
        // The classic U = 5/6 pair that RM cannot schedule but EDF can:
        // (1,2) & (2,5)? That one RM *can* schedule. Use (2,5) & (4,7):
        // U ≈ 0.971 > 2(√2−1); RM misses, EDF does not.
        let tasks = [(2u64, 5u64), (4, 7)];
        let mut rm = UniSim::new(&tasks, Discipline::Rm);
        let rm_stats = rm.run(35 * 20);
        assert!(rm_stats.deadline_misses > 0, "RM must miss: {rm_stats:?}");
        let mut edf = UniSim::new(&tasks, Discipline::Edf);
        let edf_stats = edf.run(35 * 20);
        assert_eq!(edf_stats.deadline_misses, 0, "EDF schedules U ≤ 1");
    }

    #[test]
    fn rm_prefers_short_period() {
        // RM: the (1,2) task preempts the long-running (5,10) job at every
        // release.
        let mut sim = UniSim::new(&[(5, 10), (1, 2)], Discipline::Rm);
        let s = sim.run(1000);
        assert_eq!(s.deadline_misses, 0);
        assert!(s.preemptions > 0);
    }

    #[test]
    fn edf_preemption_bound() {
        // Under EDF the number of preemptions is at most the number of jobs
        // (paper, Section 4), hence context switches ≤ 2 × jobs.
        let mut sim = UniSim::new(&[(1, 3), (2, 7), (3, 11), (1, 5)], Discipline::Edf);
        let s = sim.run(100_000);
        assert!(s.preemptions <= s.released_jobs);
        assert!(s.context_switches <= 2 * s.released_jobs);
    }

    #[test]
    fn invocations_count_releases_and_completions() {
        let mut sim = UniSim::new(&[(1, 4)], Discipline::Edf);
        let s = sim.run(40);
        assert_eq!(s.released_jobs, 10);
        assert_eq!(s.completed_jobs, 10);
        assert_eq!(s.invocations, 20);
    }

    #[test]
    fn idle_time_accounting() {
        let mut sim = UniSim::new(&[(1, 4)], Discipline::Edf);
        let s = sim.run(400);
        assert_eq!(s.idle_time, 300);
    }

    #[test]
    fn incremental_runs_accumulate() {
        let mut sim = UniSim::new(&[(1, 2), (2, 5)], Discipline::Edf);
        sim.run(100);
        let s = sim.run(200);
        let mut fresh = UniSim::new(&[(1, 2), (2, 5)], Discipline::Edf);
        let f = fresh.run(200);
        assert_eq!(s, f, "resume must match a fresh run");
    }

    #[test]
    #[should_panic(expected = "invalid task")]
    fn rejects_overloaded_task() {
        let _ = UniSim::new(&[(3, 2)], Discipline::Edf);
    }

    #[test]
    fn single_task_exact_schedule() {
        // One task (3,5): runs 3, idles 2, repeats.
        let mut sim = UniSim::new(&[(3, 5)], Discipline::Rm);
        let s = sim.run(50);
        assert_eq!(s.completed_jobs, 10);
        assert_eq!(s.idle_time, 20);
        assert_eq!(s.preemptions, 0);
        assert_eq!(s.deadline_misses, 0);
    }
}
