//! # uniproc
//!
//! Uniprocessor real-time scheduling: event-driven **EDF** and **RM**
//! simulators and the classical schedulability tests, as required by the
//! partitioning half of *The Case for Fair Multiprocessor Scheduling*
//! (Section 3).
//!
//! Under partitioning, "each processor can be scheduled independently using
//! uniprocessor scheduling algorithms such as RM and EDF". This crate
//! provides:
//!
//! * [`sim`] — an event-driven uniprocessor simulator ([`sim::UniSim`])
//!   parameterized by priority discipline ([`sim::Discipline::Edf`] /
//!   [`sim::Discipline::Rm`]), with binary-heap ready queues matching the
//!   implementation the paper timed, and preemption / context-switch /
//!   invocation accounting.
//! * [`analysis`] — schedulability tests: the exact EDF utilization test,
//!   the Liu–Layland RM bound, the hyperbolic bound, and the Lehoczky
//!   exact time-demand analysis \[25\].
//! * [`cbs`] — the constant-bandwidth server (§5.3's "additional
//!   mechanism" for temporal isolation under EDF), with the vanilla-EDF
//!   control showing why it is needed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod cbs;
pub mod sim;

pub use analysis::{
    edf_schedulable, rm_exact_schedulable, rm_hyperbolic_schedulable, rm_ll_bound,
    rm_ll_schedulable, rm_response_time,
};
pub use cbs::{CbsSim, CbsStats, Request};
pub use sim::{Discipline, UniSim, UniStats};
