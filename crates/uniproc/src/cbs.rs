//! Constant-bandwidth server (CBS) on uniprocessor EDF — §5.3's contrast.
//!
//! "Temporal isolation can be achieved among EDF-scheduled tasks by using
//! additional mechanisms such as the constant-bandwidth server \[1\]. In
//! this approach, the deadline of a job is postponed when it consumes its
//! worst-case execution time … Though effective, the use of such
//! mechanisms increases scheduling overhead."
//!
//! [`CbsSim`] is a quantum-granular EDF simulator with hard periodic tasks
//! plus one CBS (budget `Q` per period `P`, bandwidth `U_s = Q/P`) serving
//! an aperiodic/misbehaving request stream. The CBS rules (Abeni &
//! Buttazzo):
//!
//! * the server executes at its current *server deadline* under EDF;
//! * each quantum served consumes budget; on exhaustion the budget
//!   recharges to `Q` and the deadline postpones by `P`;
//! * a request arriving to an idle server recharges eagerly if the current
//!   (budget, deadline) pair would exceed the bandwidth:
//!   `q_s ≥ (d_s − t)·U_s ⇒ d_s ← t + P, q_s ← Q`.
//!
//! The tests show the §5.3 triangle: (a) vanilla EDF admits the overload
//! directly and hard tasks miss; (b) CBS confines it — hard tasks never
//! miss no matter how much the stream demands; (c) the isolation costs
//! extra scheduler work, counted in
//! [`CbsStats::server_rule_invocations`] — the overhead the paper
//! contrasts with Pfair's built-in isolation.

/// Statistics from a CBS simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CbsStats {
    /// Hard-task jobs completed.
    pub hard_jobs: u64,
    /// Hard-task deadline misses.
    pub hard_misses: u64,
    /// Aperiodic requests fully served.
    pub served_requests: u64,
    /// Quanta delivered to the server.
    pub server_quanta: u64,
    /// CBS bookkeeping events: budget recharges + deadline postponements —
    /// the "increased scheduling overhead" of §5.3.
    pub server_rule_invocations: u64,
    /// Idle quanta.
    pub idle: u64,
}

/// One aperiodic request: arrival time and execution demand (quanta).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Arrival time (quantum index).
    pub arrival: u64,
    /// Demand in quanta.
    pub demand: u64,
}

/// Quantum-granular EDF + CBS simulator (see module docs).
#[derive(Debug)]
pub struct CbsSim {
    /// Hard periodic tasks `(exec, period)`, implicit deadlines.
    hard: Vec<(u64, u64)>,
    /// Server budget per period.
    q: u64,
    /// Server period.
    p: u64,
    /// Aperiodic requests, sorted by arrival.
    requests: Vec<Request>,
}

impl CbsSim {
    /// Creates a simulator. The hard tasks plus the server bandwidth must
    /// not exceed the processor: `Σ eᵢ/pᵢ + Q/P ≤ 1` is the admission
    /// condition CBS guarantees isolation under (checked by the caller or
    /// asserted here).
    pub fn new(hard: &[(u64, u64)], q: u64, p: u64, mut requests: Vec<Request>) -> Self {
        assert!(q >= 1 && p >= 1 && q <= p, "invalid server (Q={q}, P={p})");
        for &(e, pp) in hard {
            assert!(e > 0 && e <= pp, "invalid hard task");
        }
        requests.sort_by_key(|r| r.arrival);
        CbsSim {
            hard: hard.to_vec(),
            q,
            p,
            requests,
        }
    }

    /// Exact hard+server utilization ≤ 1?
    pub fn admissible(&self) -> bool {
        use pfair_model::Rat;
        let u: Rat = self
            .hard
            .iter()
            .map(|&(e, p)| Rat::new(e as i128, p as i128))
            .sum::<Rat>()
            + Rat::new(self.q as i128, self.p as i128);
        u <= Rat::ONE
    }

    /// Runs to `horizon`, returning statistics.
    pub fn run(&mut self, horizon: u64) -> CbsStats {
        let n = self.hard.len();
        let mut stats = CbsStats::default();
        // Hard-task job state: remaining work + absolute deadline.
        let mut remaining = vec![0u64; n];
        let mut job_deadline = vec![0u64; n];
        // Server state.
        let us_num = self.q;
        let us_den = self.p;
        let mut budget = self.q;
        let mut server_deadline = 0u64; // 0 = inactive
        let mut backlog: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
        let mut next_request = 0usize;

        for t in 0..horizon {
            // Hard releases at period boundaries.
            for i in 0..n {
                let (e, p) = self.hard[i];
                if t % p == 0 {
                    if remaining[i] > 0 {
                        stats.hard_misses += 1;
                        remaining[i] = 0; // abandon tardy job
                    }
                    remaining[i] = e;
                    job_deadline[i] = t + p;
                }
            }
            // Request arrivals.
            while next_request < self.requests.len() && self.requests[next_request].arrival <= t {
                let r = self.requests[next_request];
                next_request += 1;
                if r.demand == 0 {
                    continue;
                }
                let server_was_idle = backlog.is_empty();
                backlog.push_back(r.demand);
                if server_was_idle {
                    // CBS wake-up rule: recharge if the current pair would
                    // exceed the bandwidth: q_s ≥ (d_s − t)·U_s.
                    let lhs = budget * us_den;
                    let rhs = server_deadline.saturating_sub(t) * us_num;
                    if lhs >= rhs {
                        server_deadline = t + self.p;
                        budget = self.q;
                        stats.server_rule_invocations += 1;
                    }
                }
            }

            // EDF pick: earliest deadline among pending hard jobs and the
            // server (if it has backlog).
            let mut pick: Option<(u64, usize)> = None; // (deadline, index; n = server)
            for i in 0..n {
                if remaining[i] > 0 {
                    let cand = (job_deadline[i], i);
                    if pick.map(|p| cand < p).unwrap_or(true) {
                        pick = Some(cand);
                    }
                }
            }
            if !backlog.is_empty() {
                let cand = (server_deadline, n);
                if pick.map(|p| cand < p).unwrap_or(true) {
                    pick = Some(cand);
                }
            }

            match pick {
                None => stats.idle += 1,
                Some((_, i)) if i < n => {
                    remaining[i] -= 1;
                    if remaining[i] == 0 {
                        stats.hard_jobs += 1;
                        if t + 1 > job_deadline[i] {
                            stats.hard_misses += 1;
                        }
                    }
                }
                Some(_) => {
                    // Serve the server's head-of-line request.
                    let head = backlog.front_mut().expect("backlog nonempty");
                    *head -= 1;
                    stats.server_quanta += 1;
                    if *head == 0 {
                        backlog.pop_front();
                        stats.served_requests += 1;
                    }
                    budget -= 1;
                    if budget == 0 {
                        // Budget exhausted: recharge and postpone.
                        budget = self.q;
                        server_deadline += self.p;
                        stats.server_rule_invocations += 1;
                    }
                }
            }
        }
        stats
    }
}

/// Vanilla-EDF control: the same aperiodic stream admitted directly as
/// EDF jobs with relative deadline `p` — no server, no isolation.
pub fn edf_without_server(
    hard: &[(u64, u64)],
    p: u64,
    requests: &[Request],
    horizon: u64,
) -> CbsStats {
    let n = hard.len();
    let mut stats = CbsStats::default();
    let mut remaining = vec![0u64; n];
    let mut job_deadline = vec![0u64; n];
    let mut reqs: Vec<Request> = requests.to_vec();
    reqs.sort_by_key(|r| r.arrival);
    let mut next_request = 0usize;
    // Pending aperiodic work: (deadline, remaining).
    let mut aperiodic: Vec<(u64, u64)> = Vec::new();

    for t in 0..horizon {
        for i in 0..n {
            let (e, pp) = hard[i];
            if t % pp == 0 {
                if remaining[i] > 0 {
                    stats.hard_misses += 1;
                    remaining[i] = 0;
                }
                remaining[i] = e;
                job_deadline[i] = t + pp;
            }
        }
        while next_request < reqs.len() && reqs[next_request].arrival <= t {
            let r = reqs[next_request];
            next_request += 1;
            if r.demand > 0 {
                aperiodic.push((t + p, r.demand));
            }
        }
        // EDF over everything.
        let hard_pick = (0..n)
            .filter(|&i| remaining[i] > 0)
            .min_by_key(|&i| job_deadline[i]);
        let ap_pick = aperiodic
            .iter()
            .enumerate()
            .min_by_key(|(_, &(d, _))| d)
            .map(|(i, &(d, _))| (d, i));
        let run_aperiodic = match (hard_pick, ap_pick) {
            (None, None) => {
                stats.idle += 1;
                continue;
            }
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (Some(i), Some((ap_d, _))) => ap_d < job_deadline[i],
        };
        if run_aperiodic {
            let (_, ap_i) = ap_pick.expect("aperiodic chosen");
            let (_, rem) = &mut aperiodic[ap_i];
            *rem -= 1;
            stats.server_quanta += 1;
            if *rem == 0 {
                aperiodic.swap_remove(ap_i);
                stats.served_requests += 1;
            }
        } else {
            let i = hard_pick.expect("hard chosen");
            remaining[i] -= 1;
            if remaining[i] == 0 {
                stats.hard_jobs += 1;
                if t + 1 > job_deadline[i] {
                    stats.hard_misses += 1;
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bursty, over-demanding aperiodic stream: 4 quanta of demand every
    /// 10, i.e. 2× the server bandwidth.
    fn overload_stream(horizon: u64) -> Vec<Request> {
        (0..horizon / 10)
            .map(|k| Request {
                arrival: k * 10,
                demand: 4,
            })
            .collect()
    }

    const HARD: [(u64, u64); 2] = [(2, 5), (1, 4)]; // U = 0.65

    #[test]
    fn cbs_isolates_hard_tasks_from_overload() {
        // Server Q=2, P=10 (U_s = 0.2; total 0.85 ≤ 1 admissible).
        let mut sim = CbsSim::new(&HARD, 2, 10, overload_stream(10_000));
        assert!(sim.admissible());
        let stats = sim.run(10_000);
        assert_eq!(stats.hard_misses, 0, "CBS must confine the overload");
        // CBS is work-conserving: it serves its guaranteed bandwidth plus
        // whatever slack the hard tasks leave (1 − 0.65 here) — but never
        // at the hard tasks' expense. Guaranteed floor and slack ceiling:
        assert!(
            stats.server_quanta >= 10_000 / 10 * 2 - 2,
            "bandwidth floor"
        );
        assert!(
            stats.server_quanta <= (10_000.0 * 0.35) as u64 + 4,
            "cannot exceed hard-task slack: {}",
            stats.server_quanta
        );
    }

    #[test]
    fn vanilla_edf_leaks_the_overload() {
        let stats = edf_without_server(&HARD, 10, &overload_stream(10_000), 10_000);
        assert!(
            stats.hard_misses > 0,
            "direct EDF admission must harm the hard tasks"
        );
    }

    #[test]
    fn cbs_serves_within_bandwidth_when_honest() {
        // Honest stream: 1 quantum every 10 (half the server bandwidth).
        let reqs: Vec<Request> = (0..1_000)
            .map(|k| Request {
                arrival: k * 10,
                demand: 1,
            })
            .collect();
        let mut sim = CbsSim::new(&HARD, 2, 10, reqs);
        let stats = sim.run(10_000);
        assert_eq!(stats.hard_misses, 0);
        assert_eq!(stats.served_requests, 1_000);
    }

    #[test]
    fn isolation_costs_bookkeeping() {
        // §5.3: "the use of such mechanisms increases scheduling overhead."
        let mut sim = CbsSim::new(&HARD, 2, 10, overload_stream(10_000));
        let stats = sim.run(10_000);
        // Every recharge/postponement is scheduler work plain EDF never
        // does; under sustained overload it recurs every server period.
        assert!(
            stats.server_rule_invocations > 500,
            "got {}",
            stats.server_rule_invocations
        );
    }

    #[test]
    fn idle_server_recharges_eagerly() {
        // One early request, then silence, then another: the second must
        // get a fresh deadline (not inherit a stale one).
        let reqs = vec![
            Request {
                arrival: 0,
                demand: 1,
            },
            Request {
                arrival: 500,
                demand: 1,
            },
        ];
        let mut sim = CbsSim::new(&HARD, 2, 10, reqs);
        let stats = sim.run(1_000);
        assert_eq!(stats.served_requests, 2);
        assert_eq!(stats.hard_misses, 0);
    }

    #[test]
    #[should_panic(expected = "invalid server")]
    fn rejects_bad_server() {
        let _ = CbsSim::new(&HARD, 11, 10, vec![]);
    }
}
